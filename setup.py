"""Setuptools shim for environments without the ``wheel`` package.

``pip install -e .`` uses PEP 517 editable builds, which require
``wheel``; fully offline environments may lack it.  This shim keeps the
legacy path working there::

    python setup.py develop --user

Metadata lives in pyproject.toml; only what the legacy path needs is
repeated here.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
