"""Tests for the alternative scenario presets (repro.traces.scenarios)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.strategies import HYBRID
from repro.sim.simulator import Simulator, build_model
from repro.traces.datasets import default_bundle
from repro.traces.scenarios import (
    EUROPE_DATACENTERS,
    EUROPE_FRONTENDS,
    europe_bundle,
    renewable_heavy_bundle,
)


class TestEuropeBundle:
    @pytest.fixture(scope="class")
    def bundle(self):
        return europe_bundle(hours=24)

    def test_geometry(self, bundle):
        assert bundle.regions == EUROPE_DATACENTERS
        assert bundle.frontends == EUROPE_FRONTENDS
        assert bundle.arrivals.shape == (24, 6)
        assert bundle.latency_ms.shape == (6, 4)

    def test_latencies_continental_scale(self, bundle):
        # Intra-European distances: everything within ~3000 km -> 60 ms.
        assert bundle.latency_ms.max() < 70.0
        assert bundle.latency_ms.min() > 1.0

    def test_nordic_grid_is_clean(self, bundle):
        idx = list(bundle.regions).index("stockholm")
        assert bundle.carbon_rates[:, idx].mean() < 80.0

    def test_german_grid_is_dirtier_than_nordic(self, bundle):
        de = list(bundle.regions).index("frankfurt")
        se = list(bundle.regions).index("stockholm")
        assert (
            bundle.carbon_rates[:, de].mean()
            > 3 * bundle.carbon_rates[:, se].mean()
        )

    def test_full_stack_runs(self, bundle):
        model = build_model(bundle)
        comp = Simulator(model, bundle).compare_strategies(hours=4)
        assert np.isfinite(comp.hybrid.ufc).all()
        # Hybrid still dominates in the new geography.
        assert (comp.hybrid.ufc >= comp.grid.ufc - 1e-4).all()

    def test_deterministic(self):
        a = europe_bundle(hours=6, seed=3)
        b = europe_bundle(hours=6, seed=3)
        np.testing.assert_array_equal(a.prices, b.prices)
        np.testing.assert_array_equal(a.carbon_rates, b.carbon_rates)

    def test_does_not_corrupt_default_bundle(self):
        """Registering Europe presets must not change the paper bundle."""
        before = default_bundle(hours=6)
        europe_bundle(hours=6)
        after = default_bundle(hours=6)
        np.testing.assert_array_equal(before.prices, after.prices)
        np.testing.assert_array_equal(before.carbon_rates, after.carbon_rates)


class TestRenewableHeavyBundle:
    def test_same_geometry_lower_carbon(self):
        modern = renewable_heavy_bundle(hours=24)
        legacy = default_bundle(hours=24)
        assert modern.regions == legacy.regions
        np.testing.assert_array_equal(modern.prices, legacy.prices)
        np.testing.assert_array_equal(modern.arrivals, legacy.arrivals)
        # Fleet-average intensity drops by at least a third.
        assert (
            modern.carbon_rates.mean() < 0.66 * legacy.carbon_rates.mean()
        )

    def test_carbon_tax_lever_is_muted(self):
        """With a cleaner grid, the same tax moves utilization less —
        the policy insight the scenario exists to demonstrate."""
        from repro.costs.carbon import LinearCarbonTax

        hours = 24
        tax = LinearCarbonTax(140.0)
        legacy = default_bundle(hours=hours)
        modern = renewable_heavy_bundle(hours=hours)
        util = {}
        for name, bundle in (("legacy", legacy), ("modern", modern)):
            model = build_model(bundle).with_emission_costs(tax)
            result = Simulator(model, bundle).run(HYBRID)
            util[name] = result.mean_utilization()
        assert util["modern"] < util["legacy"]
