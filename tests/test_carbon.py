"""Tests for repro.costs.carbon: intensity and emission-cost functions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costs.carbon import (
    FUEL_CARBON_RATES_G_PER_KWH,
    CapAndTrade,
    LinearCarbonTax,
    NoEmissionCost,
    QuadraticEmissionCost,
    SteppedCarbonTax,
    carbon_intensity,
)
from repro.optim.scalar import minimize_convex_on_interval


class TestCarbonIntensity:
    def test_pure_coal(self):
        assert carbon_intensity({"coal": 10.0}) == pytest.approx(968.0)

    def test_equal_coal_gas_mix(self):
        # Paper Eq. (1): weighted average of Table III rates.
        assert carbon_intensity({"coal": 1.0, "gas": 1.0}) == pytest.approx(
            (968.0 + 440.0) / 2
        )

    def test_weights_matter(self):
        mix = {"coal": 3.0, "wind": 1.0}
        assert carbon_intensity(mix) == pytest.approx((3 * 968.0 + 22.5) / 4)

    def test_unknown_fuel_rejected(self):
        with pytest.raises(KeyError):
            carbon_intensity({"fusion": 1.0})

    def test_negative_generation_rejected(self):
        with pytest.raises(ValueError):
            carbon_intensity({"coal": -1.0})

    def test_zero_mix_rejected(self):
        with pytest.raises(ValueError):
            carbon_intensity({"coal": 0.0})

    def test_table_iii_values_present(self):
        for fuel in ("nuclear", "coal", "gas", "oil", "hydro", "wind"):
            assert fuel in FUEL_CARBON_RATES_G_PER_KWH

    @given(
        coal=st.floats(min_value=0.01, max_value=10),
        gas=st.floats(min_value=0.01, max_value=10),
        wind=st.floats(min_value=0.01, max_value=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_intensity_bounded_by_extremes(self, coal, gas, wind):
        c = carbon_intensity({"coal": coal, "gas": gas, "wind": wind})
        assert 22.5 <= c <= 968.0


def prox_reference(v, c_rate, linear, d, rho):
    """Golden-section reference for the nu prox.

    The bracket must contain the minimizer: the quadratic term pins it
    below ``d + (|linear| + max slope impact)/rho``.
    """
    hi = abs(d) * 3 + (abs(linear) + 300.0) / rho + 50.0
    return minimize_convex_on_interval(
        lambda x: v.cost(c_rate * x) + linear * x + 0.5 * rho * (x - d) ** 2,
        0.0,
        hi,
        tol=1e-13,
    )


class TestLinearCarbonTax:
    def test_cost_units(self):
        # $25/tonne == $0.025/kg.
        tax = LinearCarbonTax(25.0)
        assert tax.cost(1000.0) == pytest.approx(25.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            LinearCarbonTax(-1.0)

    def test_prox_closed_form(self):
        tax = LinearCarbonTax(25.0)
        # nu = d - (linear + rate_kg * c)/rho.
        nu = tax.prox_nu(c_rate=400.0, linear=2.0, d=15.0, rho=1.0)
        assert nu == pytest.approx(15.0 - (2.0 + 0.025 * 400.0))

    def test_prox_clamps_at_zero(self):
        tax = LinearCarbonTax(25.0)
        assert tax.prox_nu(c_rate=400.0, linear=100.0, d=1.0, rho=1.0) == 0.0

    def test_quadratic_coefficients(self):
        tax = LinearCarbonTax(40.0)
        a, b = tax.nu_quadratic(500.0)
        assert a == 0.0
        assert b == pytest.approx(0.04 * 500.0)

    def test_epigraph_single_segment(self):
        tax = LinearCarbonTax(40.0)
        segments = tax.nu_epigraph(500.0)
        assert len(segments) == 1
        slope, intercept = segments[0]
        assert slope == pytest.approx(0.04 * 500.0)
        assert intercept == 0.0

    @given(
        rate=st.floats(min_value=0, max_value=200),
        c=st.floats(min_value=0, max_value=1000),
        linear=st.floats(min_value=-50, max_value=100),
        d=st.floats(min_value=-5, max_value=20),
        rho=st.floats(min_value=0.05, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_prox_matches_reference(self, rate, c, linear, d, rho):
        tax = LinearCarbonTax(rate)
        exact = tax.prox_nu(c_rate=c, linear=linear, d=d, rho=rho)
        ref = prox_reference(tax, c, linear, d, rho)
        # A value-based minimizer can only locate a minimum to about
        # sqrt(eps * |f*| / rho); small rho with a large |linear| makes
        # the objective flat enough that a fixed abs=1e-5 flakes
        # (e.g. linear=-43.46, rho=0.0625 -> minimizer ~695, noise
        # floor ~2e-5).  rel=1e-7 covers that regime.
        assert exact == pytest.approx(ref, abs=1e-5, rel=1e-7)


class TestSteppedCarbonTax:
    def make(self):
        return SteppedCarbonTax(
            thresholds_kg=[0.0, 1000.0, 3000.0],
            rates_per_tonne=[10.0, 30.0, 80.0],
        )

    def test_bracketed_cost(self):
        tax = self.make()
        # 2000 kg: 1000 @ $10/t + 1000 @ $30/t = 10 + 30.
        assert tax.cost(2000.0) == pytest.approx(40.0)

    def test_cost_is_convex_increasing(self):
        tax = self.make()
        xs = np.linspace(0, 6000, 100)
        vals = np.array([tax.cost(x) for x in xs])
        assert (np.diff(vals) >= -1e-12).all()
        assert (np.diff(vals, 2) >= -1e-9).all()

    def test_decreasing_rates_rejected(self):
        with pytest.raises(ValueError):
            SteppedCarbonTax([0.0, 100.0], [30.0, 10.0])

    def test_prox_zero_carbon_rate(self):
        tax = self.make()
        assert tax.prox_nu(c_rate=0.0, linear=1.0, d=3.0, rho=1.0) == pytest.approx(2.0)

    def test_epigraph_is_tight_envelope(self):
        tax = self.make()
        segments = tax.nu_epigraph(500.0)
        assert len(segments) == 3
        for nu in np.linspace(0, 20, 40):
            envelope = max(s * nu + i for s, i in segments)
            assert envelope == pytest.approx(tax.cost(500.0 * nu), abs=1e-9)

    @given(
        c=st.floats(min_value=10, max_value=1000),
        linear=st.floats(min_value=-50, max_value=100),
        d=st.floats(min_value=-5, max_value=30),
        rho=st.floats(min_value=0.05, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_prox_matches_reference(self, c, linear, d, rho):
        tax = self.make()
        exact = tax.prox_nu(c_rate=c, linear=linear, d=d, rho=rho)
        ref = prox_reference(tax, c, linear, d, rho)
        obj = lambda x: tax.cost(c * x) + linear * x + 0.5 * rho * (x - d) ** 2
        assert obj(exact) <= obj(ref) + 1e-7


class TestCapAndTrade:
    def test_buying_above_cap(self):
        ct = CapAndTrade(cap_kg=1000.0, buy_price_per_tonne=20.0)
        # 500 kg above cap at $20/tonne = $10, minus unsold... with equal
        # sell price: V(E) = 20/1000 * (E - cap).
        assert ct.cost(1500.0) == pytest.approx(10.0)

    def test_selling_below_cap(self):
        ct = CapAndTrade(
            cap_kg=1000.0, buy_price_per_tonne=20.0, sell_price_per_tonne=10.0
        )
        # 400 kg unused permits sold at $10/tonne -> -$4.
        assert ct.cost(600.0) == pytest.approx(-4.0)

    def test_exact_cap_costs_nothing(self):
        ct = CapAndTrade(cap_kg=1000.0, buy_price_per_tonne=20.0)
        assert ct.cost(1000.0) == pytest.approx(0.0)

    def test_zero_cap_is_linear_pricing(self):
        ct = CapAndTrade(cap_kg=0.0, buy_price_per_tonne=20.0)
        assert ct.cost(500.0) == pytest.approx(10.0)

    def test_sell_above_buy_rejected(self):
        with pytest.raises(ValueError):
            CapAndTrade(cap_kg=10.0, buy_price_per_tonne=10.0, sell_price_per_tonne=20.0)

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            CapAndTrade(cap_kg=-1.0)

    def test_epigraph_is_tight_envelope(self):
        ct = CapAndTrade(
            cap_kg=800.0, buy_price_per_tonne=25.0, sell_price_per_tonne=12.0
        )
        segments = ct.nu_epigraph(400.0)
        for nu in np.linspace(0, 10, 30):
            envelope = max(s * nu + i for s, i in segments)
            assert envelope == pytest.approx(ct.cost(400.0 * nu), abs=1e-9)

    @given(
        cap=st.one_of(st.just(0.0), st.floats(min_value=0.5, max_value=3000)),
        c=st.floats(min_value=10, max_value=1000),
        d=st.floats(min_value=-5, max_value=30),
        rho=st.floats(min_value=0.05, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_prox_matches_reference(self, cap, c, d, rho):
        ct = CapAndTrade(cap_kg=cap, buy_price_per_tonne=30.0,
                         sell_price_per_tonne=15.0)
        exact = ct.prox_nu(c_rate=c, linear=5.0, d=d, rho=rho)
        obj = lambda x: ct.cost(c * x) + 5.0 * x + 0.5 * rho * (x - d) ** 2
        ref = prox_reference(ct, c, 5.0, d, rho)
        assert obj(exact) <= obj(ref) + 1e-7


class TestQuadraticEmissionCost:
    def test_cost(self):
        v = QuadraticEmissionCost(rate_per_tonne=20.0, quad_per_kg2=0.001)
        assert v.cost(100.0) == pytest.approx(0.001 * 10000 + 0.02 * 100)

    def test_prox_closed_form_against_reference(self):
        v = QuadraticEmissionCost(rate_per_tonne=20.0, quad_per_kg2=1e-5)
        exact = v.prox_nu(c_rate=500.0, linear=3.0, d=8.0, rho=0.5)
        ref = prox_reference(v, 500.0, 3.0, 8.0, 0.5)
        assert exact == pytest.approx(ref, abs=1e-5)

    def test_strong_convexity_coefficient_exposed(self):
        v = QuadraticEmissionCost(rate_per_tonne=10.0, quad_per_kg2=2e-5)
        a, b = v.nu_quadratic(300.0)
        assert a == pytest.approx(2e-5 * 300.0**2)
        assert b == pytest.approx(0.01 * 300.0)

    def test_negative_coefficients_rejected(self):
        with pytest.raises(ValueError):
            QuadraticEmissionCost(rate_per_tonne=-1.0, quad_per_kg2=0.0)


class TestNoEmissionCost:
    def test_always_zero(self):
        v = NoEmissionCost()
        assert v.cost(1e9) == 0.0

    def test_prox_is_plain_shrink(self):
        v = NoEmissionCost()
        assert v.prox_nu(c_rate=500.0, linear=2.0, d=5.0, rho=1.0) == pytest.approx(3.0)
