"""Tests for the CLI (repro.cli) and the CSV exporters."""

from __future__ import annotations

import csv
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.experiments.export import export_all


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.command == "simulate"
        assert args.strategy == "hybrid"
        assert args.solver == "centralized"
        assert args.hours == 168

    def test_global_options_precede_command(self):
        args = build_parser().parse_args(["--hours", "24", "sweep", "tax"])
        assert args.hours == 24
        assert args.kind == "tax"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_simulate(self, capsys):
        assert main(["--hours", "3", "simulate", "--strategy", "grid"]) == 0
        out = capsys.readouterr().out
        assert "strategy            : Grid" in out

    def test_simulate_distributed(self, capsys):
        assert main(
            ["--hours", "2", "simulate", "--solver", "distributed"]
        ) == 0
        out = capsys.readouterr().out
        assert "iterations" in out

    def test_compare(self, capsys):
        assert main(["--hours", "3", "compare"]) == 0
        out = capsys.readouterr().out
        assert "Hybrid" in out and "Fuel cell" in out
        assert "improvement" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_sweep_price(self, capsys):
        assert main(["--hours", "4", "sweep", "price"]) == 0
        assert "p0" in capsys.readouterr().out

    def test_sweep_tax(self, capsys):
        assert main(["--hours", "4", "sweep", "tax"]) == 0
        assert "carbon-tax" in capsys.readouterr().out

    def test_convergence(self, capsys):
        assert main(["--hours", "3", "convergence"]) == 0
        assert "CDF" in capsys.readouterr().out

    def test_report_fast(self, capsys):
        assert main(["--hours", "3", "report", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Fig. 8" in out
        assert "Fig. 9" not in out  # skipped by --fast


class TestExport:
    @pytest.fixture(scope="class")
    def exported(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("results")
        paths = export_all(out, hours=26)
        return out, paths

    def test_all_files_written(self, exported):
        out, paths = exported
        names = {p.name for p in paths}
        assert names == {
            "table1_energy_costs.csv",
            "fig3_traces.csv",
            "fig4_ufc_improvements.csv",
            "fig5to7_strategy_series.csv",
            "fig8_utilization.csv",
            "fig9_price_sweep.csv",
            "fig10_tax_sweep.csv",
            "fig11_convergence_cdf.csv",
        }
        for p in paths:
            assert p.exists() and p.stat().st_size > 0

    def test_csv_structure(self, exported):
        out, _ = exported
        with (Path(out) / "fig4_ufc_improvements.csv").open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["hour", "i_hg", "i_hf", "i_fg"]
        assert len(rows) == 1 + 26  # header + one row per slot

    def test_table1_csv_values(self, exported):
        out, _ = exported
        with (Path(out) / "table1_energy_costs.csv").open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["site", "grid", "fuel_cell", "hybrid"]
        sites = {row[0] for row in rows[1:]}
        assert sites == {"dallas", "san_jose"}
        for row in rows[1:]:
            assert float(row[2]) == pytest.approx(27957.0, rel=1e-6)
