"""Tests for the batched engine lane (repro.engine.batch + HorizonEngine).

The lane's contract: same SlotOutcome stream, telemetry, metrics and
certificates as the scalar path, with allocations matching within
certification tolerance (batched and scalar interior-point iterates
both stop at solver tolerance; along degenerate flat-valley directions
the allocations may differ while every KKT certificate still passes —
UFC values agree tightly).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compiled import CompiledQPStructure
from repro.core.strategies import ALL_STRATEGIES, FUEL_CELL, HYBRID
from repro.engine import HorizonEngine, available_solvers, create_solver
from repro.engine.batch import CentralizedBatchSlotSolver, _share_groups
from repro.engine.resilience import ResilienceConfig
from repro.sim.simulator import Simulator


HOURS = 24


@pytest.fixture(scope="module")
def sim(request):
    small_model = request.getfixturevalue("small_model")
    small_bundle = request.getfixturevalue("small_bundle")
    return Simulator(small_model, small_bundle)


@pytest.fixture(scope="module")
def hybrid_problems(sim):
    return [sim.problem_for_slot(t, HYBRID) for t in range(HOURS)]


@pytest.fixture(scope="module")
def mixed_problems(sim):
    """Alternating strategies: exercises per-group batch dispatch."""
    return [
        sim.problem_for_slot(t, ALL_STRATEGIES[t % len(ALL_STRATEGIES)])
        for t in range(HOURS)
    ]


class TestRegistration:
    def test_registered_and_constructible(self):
        assert "centralized-batch" in available_solvers()
        solver = create_solver("centralized-batch")
        assert isinstance(solver, CentralizedBatchSlotSolver)
        assert solver.name == "centralized-batch"

    def test_scalar_solve_delegates_bit_identically(self, hybrid_problems):
        batch_solver = CentralizedBatchSlotSolver()
        scalar_solver = create_solver("centralized")
        problem = hybrid_problems[0]
        compiled = batch_solver.compile(problem.model, problem.strategy)
        a = batch_solver.solve(problem, compiled=compiled)
        b = scalar_solver.solve(
            problem, compiled=scalar_solver.compile(problem.model, problem.strategy)
        )
        assert np.array_equal(a.allocation.lam, b.allocation.lam)
        assert np.array_equal(a.allocation.mu, b.allocation.mu)
        assert np.array_equal(a.allocation.nu, b.allocation.nu)
        assert a.ufc == b.ufc


class TestSolveBatch:
    def test_results_in_input_order_with_diagnostics(self, hybrid_problems):
        solver = CentralizedBatchSlotSolver()
        problems = hybrid_problems[:6]
        compiled = solver.compile(problems[0].model, problems[0].strategy)
        results = solver.solve_batch(problems, compiled=compiled)
        assert len(results) == len(problems)
        for res, problem in zip(results, problems):
            assert res.converged
            assert res.extras["batched"] is True
            assert res.extras["batch_size"] == len(problems)
            eq_dual, ineq_dual = res.extras["duals"]
            assert eq_dual.ndim == 1 and ineq_dual.ndim == 1
            assert res.ufc == problem.ufc(res.allocation)

    def test_single_slot_batch_matches_scalar_within_tolerance(self, hybrid_problems):
        solver = CentralizedBatchSlotSolver()
        problem = hybrid_problems[3]
        compiled = solver.compile(problem.model, problem.strategy)
        [batched] = solver.solve_batch([problem], compiled=compiled)
        scalar = solver.solve(problem, compiled=compiled)
        assert batched.converged and scalar.converged
        assert batched.ufc == pytest.approx(scalar.ufc, rel=1e-6, abs=1e-3)

    def test_empty_batch(self):
        assert CentralizedBatchSlotSolver().solve_batch([]) == []

    def test_without_compiled_structure(self, hybrid_problems):
        """to_qp() fallback when no compiled structure is passed."""
        solver = CentralizedBatchSlotSolver()
        results = solver.solve_batch(hybrid_problems[:3])
        assert all(r.converged for r in results)

    def test_share_groups_partition(self, mixed_problems):
        qps = [p.to_qp() for p in mixed_problems[:6]]
        groups = _share_groups(qps)
        covered = sorted(i for members in groups for i in members)
        assert covered == list(range(6))
        for members in groups:
            rep = qps[members[0]]
            for i in members[1:]:
                assert np.array_equal(rep.A, qps[i].A)
                assert np.array_equal(rep.G, qps[i].G)
        # Alternating strategies cannot all share one structure.
        assert len(groups) > 1


class TestCompiledBatchAssembly:
    def test_qp_for_batch_bit_identical_to_qp_for(self, sim, hybrid_problems):
        for strategy in ALL_STRATEGIES:
            problems = [sim.problem_for_slot(t, strategy) for t in range(8)]
            compiled = CompiledQPStructure(problems[0].model, strategy)
            batch_forms = compiled.qp_for_batch([p.inputs for p in problems])
            for t, problem in enumerate(problems):
                ref = compiled.qp_for(problem.inputs)
                assert np.array_equal(batch_forms[t].P, ref.P), (strategy.name, t)
                assert np.array_equal(batch_forms[t].q, ref.q), (strategy.name, t)
                assert np.array_equal(batch_forms[t].b, ref.b), (strategy.name, t)
                assert batch_forms[t].A is compiled.qp_for(problem.inputs).A
                assert np.array_equal(batch_forms[t].G, ref.G)
                assert np.array_equal(batch_forms[t].h, ref.h)


class TestEngineLane:
    def test_auto_enables_for_capable_solver(self, hybrid_problems):
        engine = HorizonEngine("centralized-batch")
        outcomes = engine.run(hybrid_problems)
        assert engine.last_summary.executor == "serial-batch"
        assert all(o.result is not None and o.result.converged for o in outcomes)
        assert all(o.result.extras.get("batched") for o in outcomes)

    def test_scalar_solver_stays_on_scalar_path(self, hybrid_problems):
        engine = HorizonEngine("centralized")
        engine.run(hybrid_problems[:4])
        assert engine.last_summary.executor == "serial"

    def test_batch_false_forces_scalar_path(self, hybrid_problems):
        engine = HorizonEngine("centralized-batch")
        outcomes = engine.run(hybrid_problems[:4], batch=False)
        assert engine.last_summary.executor == "serial"
        assert all(not o.result.extras.get("batched", False) for o in outcomes)

    def test_parity_with_scalar_lane(self, hybrid_problems):
        batched = HorizonEngine("centralized-batch").run(hybrid_problems)
        scalar = HorizonEngine("centralized").run(hybrid_problems)
        for b, s in zip(batched, scalar):
            assert b.result.converged and s.result.converged
            assert b.result.ufc == pytest.approx(s.result.ufc, rel=1e-4, abs=1e-2)

    def test_mixed_strategies_group_per_structure(self, mixed_problems):
        engine = HorizonEngine("centralized-batch")
        outcomes = engine.run(mixed_problems)
        assert engine.last_summary.executor == "serial-batch"
        for o, p in zip(outcomes, mixed_problems):
            assert o.result.converged, p.strategy.name
            assert o.result.extras.get("batched")

    def test_every_batched_slot_certifies(self, hybrid_problems):
        engine = HorizonEngine("centralized-batch", certify=True)
        outcomes = engine.run(hybrid_problems)
        assert len(outcomes) == HOURS
        for o in outcomes:
            assert o.certificate is not None, o.index
            assert o.certificate.ok, (o.index, o.certificate)

    def test_telemetry_compile_accounting(self, hybrid_problems):
        engine = HorizonEngine("centralized-batch")
        outcomes = engine.run(hybrid_problems[:6])
        # First slot of the (single) group pays the compile; the rest
        # are cache hits with zero compile time, like the scalar path.
        assert outcomes[0].telemetry.cache_hit is False
        assert all(o.telemetry.cache_hit for o in outcomes[1:])
        assert all(o.telemetry.compile_s == 0.0 for o in outcomes[1:])
        assert all(o.telemetry.wall_s > 0 for o in outcomes)

    def test_pool_batch_executor(self, hybrid_problems):
        engine = HorizonEngine("centralized-batch", workers=2, oversubscribe=True)
        outcomes = engine.run(hybrid_problems)
        assert engine.last_summary.executor == "pool-batch"
        assert all(o.result is not None and o.result.converged for o in outcomes)
        assert [o.index for o in outcomes] == list(range(HOURS))


class TestEngineLaneErrors:
    def test_batch_true_requires_capable_solver(self, hybrid_problems):
        engine = HorizonEngine("centralized")
        with pytest.raises(ValueError, match="solve_batch"):
            engine.run(hybrid_problems[:2], batch=True)

    def test_batch_true_rejects_warm_start(self, hybrid_problems):
        engine = HorizonEngine("centralized-batch")
        with pytest.raises(ValueError, match="warm"):
            engine.run(hybrid_problems[:2], warm_start=True, batch=True)

    def test_batch_true_rejects_resilience(self, hybrid_problems):
        engine = HorizonEngine(
            "centralized-batch", resilience=ResilienceConfig()
        )
        with pytest.raises(ValueError, match="resilience"):
            engine.run(hybrid_problems[:2], batch=True)

    def test_resilience_auto_disables_batching(self, hybrid_problems):
        engine = HorizonEngine(
            "centralized-batch", resilience=ResilienceConfig()
        )
        engine.run(hybrid_problems[:3])
        assert engine.last_summary.executor == "serial"

    def test_poisoned_group_falls_back_per_slot(self, hybrid_problems):
        class PoisonedBatchSolver(CentralizedBatchSlotSolver):
            def solve_batch(self, problems, compiled=None):
                raise RuntimeError("batch kernel poisoned")

        engine = HorizonEngine(PoisonedBatchSolver())
        outcomes = engine.run(hybrid_problems[:5])
        assert engine.last_summary.executor == "serial-batch"
        for o in outcomes:
            assert o.error is None
            assert o.result is not None and o.result.converged
            assert not o.result.extras.get("batched", False)

    def test_per_slot_solve_error_is_isolated(self, hybrid_problems, sim):
        """A group-level failure plus one genuinely broken slot: the
        broken slot reports its error, the others still solve."""

        class BrokenSlotSolver(CentralizedBatchSlotSolver):
            def solve_batch(self, problems, compiled=None):
                raise RuntimeError("force scalar fallback")

            def solve(self, problem, compiled=None, warm=None):
                if problem.inputs.arrivals[0] < 0:
                    raise RuntimeError("poisoned slot")
                return super().solve(problem, compiled=compiled, warm=warm)

        problems = [sim.problem_for_slot(t, HYBRID) for t in range(3)]
        bad = problems[1]
        bad_inputs = type(bad.inputs)(
            arrivals=bad.inputs.arrivals.copy(),
            prices=bad.inputs.prices,
            carbon_rates=bad.inputs.carbon_rates,
        )
        bad_inputs.arrivals[0] = -1.0
        problems[1] = type(bad)(bad.model, bad_inputs, strategy=bad.strategy)

        engine = HorizonEngine(BrokenSlotSolver())
        outcomes = engine.run(problems)
        assert outcomes[0].result is not None
        assert outcomes[2].result is not None
        assert outcomes[1].result is None
        assert outcomes[1].error_type is not None


class TestSolverStrategies:
    @pytest.mark.parametrize("strategy", [HYBRID, FUEL_CELL], ids=lambda s: s.name)
    def test_batched_week_strategy_parity(self, sim, strategy):
        problems = [sim.problem_for_slot(t, strategy) for t in range(12)]
        batched = HorizonEngine("centralized-batch", certify=True).run(problems)
        scalar = HorizonEngine("centralized").run(problems)
        for b, s in zip(batched, scalar):
            assert b.certificate.ok
            assert b.result.ufc == pytest.approx(s.result.ufc, rel=1e-4, abs=1e-2)
