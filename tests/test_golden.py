"""Golden-value regression tests.

Every quantity in ``tests/data/golden_values.json`` is deterministic
(seeded generators, deterministic solvers), so any drift signals an
unintentional behavior change in the traces, solvers or metrics.
After an *intentional* change, regenerate with
``python tests/data/make_golden.py`` and commit the diff.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

GOLDEN = json.loads(
    (Path(__file__).parent / "data" / "golden_values.json").read_text()
)
HOURS = GOLDEN["meta"]["hours"]
SEED = GOLDEN["meta"]["seed"]

# Trace statistics are bit-deterministic; solver outputs go through the
# interior-point method, so allow tiny numerical headroom.
TRACE_TOL = 1e-9
SOLVER_TOL = 1e-5


@pytest.fixture(scope="module")
def comparison():
    from repro.experiments.common import cached_comparison

    return cached_comparison(hours=HOURS, seed=SEED)


@pytest.fixture(scope="module")
def bundle():
    from repro.traces.datasets import default_bundle

    return default_bundle(hours=HOURS, seed=SEED)


class TestTraceAnchors:
    def test_price_means(self, bundle):
        for k, region in enumerate(bundle.regions):
            assert float(bundle.prices[:, k].mean()) == pytest.approx(
                GOLDEN["price_means"][region], rel=TRACE_TOL, abs=1e-5
            ), region

    def test_carbon_means(self, bundle):
        for k, region in enumerate(bundle.regions):
            assert float(bundle.carbon_rates[:, k].mean()) == pytest.approx(
                GOLDEN["carbon_means"][region], rel=TRACE_TOL, abs=1e-5
            ), region

    def test_workload_mean(self, bundle):
        assert float(bundle.arrivals.sum(axis=1).mean()) == pytest.approx(
            GOLDEN["workload_total_mean"], rel=TRACE_TOL, abs=1e-3
        )

    def test_table1_cells(self):
        from repro.experiments.table1 import run_table1

        result = run_table1()
        for site, row in GOLDEN["table1"].items():
            for key, value in row.items():
                assert result.costs[site][key] == pytest.approx(
                    value, rel=TRACE_TOL, abs=1e-3
                ), (site, key)


class TestSolverAnchors:
    @pytest.mark.parametrize("strategy", ["hybrid", "grid", "fuel_cell"])
    def test_strategy_metrics(self, comparison, strategy):
        result = {
            "hybrid": comparison.hybrid,
            "grid": comparison.grid,
            "fuel_cell": comparison.fuel_cell,
        }[strategy]
        anchors = GOLDEN[strategy]
        assert float(result.ufc.mean()) == pytest.approx(
            anchors["mean_ufc"], rel=SOLVER_TOL
        )
        assert result.total_energy_cost() == pytest.approx(
            anchors["total_energy_cost"], rel=SOLVER_TOL
        )

    def test_hybrid_detail_metrics(self, comparison):
        anchors = GOLDEN["hybrid"]
        assert comparison.hybrid.total_carbon_tonnes() == pytest.approx(
            anchors["total_carbon_tonnes"], rel=SOLVER_TOL
        )
        assert float(comparison.hybrid.avg_latency_ms.mean()) == pytest.approx(
            anchors["mean_latency_ms"], rel=SOLVER_TOL
        )
        assert comparison.hybrid.mean_utilization() == pytest.approx(
            anchors["mean_utilization"], rel=1e-4, abs=1e-6
        )


class TestGoldenFileIntegrity:
    def test_metadata_present(self):
        assert GOLDEN["meta"]["hours"] == 48
        assert GOLDEN["meta"]["seed"] == 2014

    def test_regenerator_matches_schema(self):
        """make_golden.py produces the same keys as the checked-in file
        (without re-running the expensive computation)."""
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "make_golden", Path(__file__).parent / "data" / "make_golden.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert module.HOURS == GOLDEN["meta"]["hours"]
        assert module.SEED == GOLDEN["meta"]["seed"]
