"""Tests for repro.optim.kkt: the block-elimination KKT path.

The precision contract lives at the linear-algebra layer: for any
barrier weights, the block elimination must solve the same condensed
KKT system as a dense factorization to ~1e-10.  End-to-end solver
parity is gap-limited (any two interior-point runs differ by
O(sqrt(gap)) along weakly-active directions), so whole-solve tests
compare objectives and KKT residuals, not raw iterates.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.centralized import CentralizedSolver
from repro.core.compiled import CompiledQPStructure
from repro.core.problem import UFCProblem
from repro.core.strategies import HYBRID
from repro.optim.ipqp import solve_qp
from repro.optim.kkt import (
    _EQ_DELTA,
    _BlockKKTFactor,
    StructuredQPCompiler,
    StructuredSlotQP,
    full_reach,
    solve_structured_qp,
)


def random_sqp(
    seed: int,
    m: int = 12,
    n: int = 5,
    k: int = 3,
    include_mu: bool = True,
    include_nu: bool = True,
) -> StructuredSlotQP:
    """A feasible strictly-convex reach-sparse QP with random sparsity.

    Feasibility by construction: capacities cover the uniform split of
    every front-end's arrivals, and the power rows are always
    satisfiable because ``nu`` (or ``mu`` up to ``mu_max`` sized above
    peak demand) can absorb any demand.
    """
    rng = np.random.default_rng(seed)
    reach = np.stack([rng.choice(n, size=k, replace=False) for _ in range(m)])
    b = rng.normal(size=(m, k, k)) * 0.6
    h_blocks = b @ b.transpose(0, 2, 1) + 2.0 * np.eye(k)
    arrivals = rng.uniform(0.5, 2.0, m)
    lam0 = np.repeat(arrivals[:, None] / k, k, axis=1)
    colsum = np.bincount(reach.ravel(), weights=lam0.ravel(), minlength=n)
    capacities = colsum * 1.4 + 0.3
    betas = rng.uniform(0.5, 1.5, n)
    kw = {}
    if include_mu:
        kw["q_mu"] = rng.uniform(40, 90, n)
        # Sized above worst-case demand so mu alone can cover power
        # when the grid block is disabled.
        kw["mu_max"] = betas * capacities + 1.0
    if include_nu:
        kw["p_nu"] = rng.uniform(0.2, 1.0, n)
        kw["q_nu"] = rng.uniform(10, 60, n)
    return StructuredSlotQP(
        reach=reach,
        h_blocks=h_blocks,
        q_lam=rng.normal(size=(m, k)) * 2.0,
        arrivals=arrivals,
        capacities=capacities,
        alphas=rng.uniform(0.1, 0.4, n),
        betas=betas,
        lam_scale=1.0,
        num_datacenters=n,
        **kw,
    )


def dense_condensed_kkt(sqp: StructuredSlotQP, w: np.ndarray) -> np.ndarray:
    """``[[P + G' diag(w) G, A'], [A, -delta I]]`` via the dense bridge."""
    P, _q, A, _b, G, _h = sqp.to_dense()
    dim, ne = sqp.dim, sqp.num_eq
    kkt = np.zeros((dim + ne, dim + ne))
    kkt[:dim, :dim] = P + G.T @ (w[:, None] * G)
    kkt[:dim, dim:] = A.T
    kkt[dim:, :dim] = A
    kkt[dim:, dim:] = -_EQ_DELTA * np.eye(ne)
    return kkt


def kkt_residuals(sqp: StructuredSlotQP, res) -> tuple[float, float, float]:
    """(dual, equality, complementarity-ish) residuals via matvecs."""
    r_dual = sqp.obj_grad(res.x) + sqp.at_mul(res.eq_dual) + sqp.gt_mul(res.ineq_dual)
    r_eq = sqp.eq_residual(res.x)
    slack = sqp.ineq_slack(res.x)
    comp = float(np.abs(res.ineq_dual * slack).max())
    return float(np.abs(r_dual).max()), float(np.abs(r_eq).max()), comp


SHAPE_CASES = [
    {},  # hybrid-shaped: mu and nu blocks
    {"include_mu": False},  # grid-only
    {"include_nu": False},  # fuel-cell-only
    {"k": 1},  # degenerate fan-in: a single reachable DC per front-end
    {"m": 30, "n": 8, "k": 4},
]


class TestEliminationAlgebra:
    """The elimination solves the same system a dense LU solves."""

    @pytest.mark.parametrize("case", SHAPE_CASES, ids=["hybrid", "no_mu", "no_nu", "k1", "wide"])
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_dense_kkt_solve(self, case, seed):
        sqp = random_sqp(seed, **case)
        rng = np.random.default_rng(seed + 1000)
        # Barrier weights spanning 12 orders of magnitude — mid-solve
        # interior-point territory.
        w = np.exp(rng.uniform(-6, 6, sqp.num_ineq))
        factor = _BlockKKTFactor(sqp, w)
        kkt = dense_condensed_kkt(sqp, w)
        r1 = rng.normal(size=sqp.dim)
        r2 = rng.normal(size=sqp.num_eq)
        ref = np.linalg.solve(kkt, np.concatenate([r1, r2]))
        dx, dy, resid = factor.solve_refined(r1, r2, 1e-13)
        assert resid < 1e-10
        np.testing.assert_allclose(dx, ref[: sqp.dim], atol=1e-10)
        np.testing.assert_allclose(dy, ref[sqp.dim :], atol=1e-10)

    def test_residual_vec_matches_dense_matvec(self):
        sqp = random_sqp(3)
        rng = np.random.default_rng(99)
        w = np.exp(rng.uniform(-3, 3, sqp.num_ineq))
        factor = _BlockKKTFactor(sqp, w)
        kkt = dense_condensed_kkt(sqp, w)
        dx = rng.normal(size=sqp.dim)
        dy = rng.normal(size=sqp.num_eq)
        r1 = rng.normal(size=sqp.dim)
        r2 = rng.normal(size=sqp.num_eq)
        res_x, res_eq = factor.residual_vec(dx, dy, r1, r2)
        dense = kkt @ np.concatenate([dx, dy]) - np.concatenate([r1, r2])
        np.testing.assert_allclose(res_x, dense[: sqp.dim], atol=1e-10)
        np.testing.assert_allclose(res_eq, dense[sqp.dim :], atol=1e-10)

    def test_extended_precision_schur_agrees(self):
        sqp = random_sqp(7)
        rng = np.random.default_rng(7)
        w = np.exp(rng.uniform(-4, 4, sqp.num_ineq))
        plain = _BlockKKTFactor(sqp, w)
        extended = _BlockKKTFactor(sqp, w)
        extended.enable_extended()
        r1 = rng.normal(size=sqp.dim)
        r2 = rng.normal(size=sqp.num_eq)
        dx_p, dy_p = plain.solve(r1, r2)
        dx_e, dy_e = extended.solve(r1, r2)
        np.testing.assert_allclose(dx_e, dx_p, atol=1e-10)
        np.testing.assert_allclose(dy_e, dy_p, atol=1e-10)


class TestStructuredSolver:
    """End-to-end solves against the dense route on the same QP."""

    @pytest.mark.parametrize("case", SHAPE_CASES, ids=["hybrid", "no_mu", "no_nu", "k1", "wide"])
    @pytest.mark.parametrize("seed", range(4))
    def test_parity_with_dense_route(self, case, seed):
        sqp = random_sqp(seed, **case)
        rs = solve_structured_qp(sqp, tol=1e-10, max_iter=200)
        P, q, A, b, G, h = sqp.to_dense()
        rd = solve_qp(P, q, A=A, b=b, G=G, h=h, tol=1e-10, max_iter=200)
        assert rs.converged and rd.converged
        # Objectives agree to gap-level accuracy; iterates only to
        # O(sqrt(gap)) (weak-activity degeneracy is generic, and the
        # dense route itself moves as much under a tolerance change).
        scale = 1.0 + abs(rd.value)
        assert abs(rs.value - rd.value) <= 1e-5 * scale
        np.testing.assert_allclose(rs.x, rd.x, atol=1e-3)
        rdual, req, comp = kkt_residuals(sqp, rs)
        assert rdual < 1e-6 and req < 1e-6 and comp < 1e-6

    def test_degenerate_fan_in_forces_lambda(self):
        # k=1: the simplex rows pin lam to the arrivals exactly.
        sqp = random_sqp(11, k=1)
        res = solve_structured_qp(sqp, tol=1e-10, max_iter=200)
        assert res.converged
        lam, _mu, _nu = sqp.split_x(res.x)
        np.testing.assert_allclose(lam[:, 0], sqp.arrivals, atol=1e-7)

    def test_duals_and_value_match_dense(self):
        sqp = random_sqp(5)
        rs = solve_structured_qp(sqp, tol=1e-10, max_iter=200)
        P, q, A, b, G, h = sqp.to_dense()
        rd = solve_qp(P, q, A=A, b=b, G=G, h=h, tol=1e-10, max_iter=200)
        # Capacity prices (the economically meaningful duals) agree.
        np.testing.assert_allclose(
            rs.ineq_dual[: sqp.num_datacenters],
            rd.ineq_dual[: sqp.num_datacenters],
            atol=1e-4,
        )
        assert abs(rs.gap) < 1e-7

    def test_nonconverged_returns_best_iterate(self):
        # Starved of iterations, the solver must hand back its best
        # iterate rather than whatever the last step produced.
        sqp = random_sqp(0)
        res = solve_structured_qp(sqp, tol=1e-12, max_iter=3)
        assert not res.converged
        assert np.isfinite(res.x).all()
        assert np.abs(sqp.eq_residual(res.x)).max() < 10.0


class TestFullReachBridge:
    """reach=None reproduces the dense compiled layout."""

    def test_full_reach_pattern(self):
        reach = full_reach(3, 4)
        assert reach.shape == (3, 4)
        assert (reach == np.arange(4)).all()

    def test_compiler_on_paper_model(self, tiny_model, tiny_inputs):
        compiled = CompiledQPStructure(tiny_model, HYBRID)
        sc = StructuredQPCompiler(tiny_model, HYBRID)
        sqp = sc.structured_qp_for(tiny_inputs)
        qp = compiled.qp_for(tiny_inputs)
        P, q, A, b, G, h = sqp.to_dense()
        # Primal blocks and equality rows share one canonical layout.
        np.testing.assert_array_equal(P, qp.P)
        np.testing.assert_array_equal(q, qp.q)
        np.testing.assert_array_equal(A, qp.A)
        np.testing.assert_array_equal(b, qp.b)
        # Inequality rows agree as sets (the mu bound families are
        # interleaved differently); compare via sorted row signatures.
        sig = lambda M, v: sorted(map(tuple, np.column_stack([M, v]).tolist()))  # noqa: E731
        assert sig(G, h) == sig(qp.G, qp.h)

    def test_auto_mode_stays_bit_identical_at_paper_scale(
        self, tiny_model, tiny_inputs
    ):
        problem = UFCProblem(tiny_model, tiny_inputs, strategy=HYBRID)
        compiled = CompiledQPStructure(tiny_model, HYBRID)
        dense = CentralizedSolver(kkt_mode="dense").solve(problem, compiled)
        auto = CentralizedSolver(kkt_mode="auto").solve(problem, compiled)
        np.testing.assert_array_equal(auto.allocation.lam, dense.allocation.lam)
        np.testing.assert_array_equal(auto.allocation.mu, dense.allocation.mu)
        np.testing.assert_array_equal(auto.allocation.nu, dense.allocation.nu)

    def test_forced_structured_mode_agrees_on_objective(
        self, tiny_model, tiny_inputs
    ):
        problem = UFCProblem(tiny_model, tiny_inputs, strategy=HYBRID)
        compiled = CompiledQPStructure(tiny_model, HYBRID)
        dense = CentralizedSolver(kkt_mode="dense").solve(problem, compiled)
        structured = CentralizedSolver(kkt_mode="structured").solve(
            problem, compiled
        )
        assert structured.converged
        assert abs(structured.ufc - dense.ufc) <= 1e-4 * (1.0 + abs(dense.ufc))


class TestReachValidation:
    def test_rejects_duplicate_dc(self):
        reach = np.array([[0, 0]])
        with pytest.raises(ValueError, match="repeat"):
            random_sqp_with_reach(reach)

    def test_rejects_out_of_range(self):
        reach = np.array([[0, 7]])
        with pytest.raises(ValueError):
            random_sqp_with_reach(reach)

    def test_rejects_float_reach(self):
        reach = np.array([[0.0, 1.0]])
        with pytest.raises(ValueError, match="integer"):
            random_sqp_with_reach(reach)


def random_sqp_with_reach(reach: np.ndarray) -> StructuredSlotQP:
    m, k = reach.shape
    n = 3
    return StructuredSlotQP(
        reach=reach,
        h_blocks=np.tile(np.eye(k), (m, 1, 1)),
        q_lam=np.zeros((m, k)),
        arrivals=np.ones(m),
        capacities=np.full(n, 10.0),
        alphas=np.full(n, 0.1),
        betas=np.ones(n),
        lam_scale=1.0,
        p_nu=np.ones(n),
        q_nu=np.ones(n),
        num_datacenters=n,
    )
