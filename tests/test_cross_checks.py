"""Cross-checks between independent solver implementations.

Every optimization kernel is verified against a *different* solver on
the same instance (active-set vs interior-point, exact water-filling
vs interior-point, prox vs epigraph), so a bug would have to appear
identically in two unrelated code paths to slip through.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.admg.solver import ADMGState, DistributedUFCSolver
from repro.core.centralized import optimal_power_split
from repro.core.problem import SlotInputs, UFCProblem
from repro.core.strategies import HYBRID
from repro.optim.ipqp import solve_qp
from repro.optim.rank_one import solve_capped_rank_one_qp
from repro.optim.simplex import minimize_qp_simplex


class TestSimplexQPvsInteriorPoint:
    @given(seed=st.integers(0, 400), total=st.floats(min_value=0.5, max_value=20))
    @settings(max_examples=60, deadline=None)
    def test_same_optimum(self, seed, total):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 7))
        half = rng.normal(size=(n, n))
        H = half @ half.T + 0.05 * np.eye(n)
        q = rng.normal(size=n) * 3

        active_set = minimize_qp_simplex(H, q, total)
        ip = solve_qp(
            H, q,
            A=np.ones((1, n)), b=np.array([total]),
            G=-np.eye(n), h=np.zeros(n),
        )
        assert active_set.value == pytest.approx(
            ip.value, abs=1e-5 * max(1.0, abs(ip.value))
        )


class TestRankOneQPvsInteriorPoint:
    @given(seed=st.integers(0, 400))
    @settings(max_examples=60, deadline=None)
    def test_same_optimum(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 8))
        c = rng.normal(size=n) * 4
        rho = float(rng.uniform(0.1, 2.0))
        beta = float(rng.uniform(0.0, 1.0))
        cap = float(rng.uniform(0.5, 10.0))

        exact = solve_capped_rank_one_qp(c, rho=rho, beta=beta, cap=cap)
        P = rho * (np.eye(n) + beta**2 * np.ones((n, n)))
        ip = solve_qp(
            P, -c,
            G=np.vstack([-np.eye(n), np.ones((1, n))]),
            h=np.concatenate([np.zeros(n), [cap]]),
        )

        def value(a):
            return 0.5 * a @ P @ a - c @ a

        assert value(exact) == pytest.approx(
            value(ip.x), abs=1e-5 * max(1.0, abs(value(ip.x)))
        )


class TestPowerSplitVsInteriorPoint:
    def test_fixed_routing_split_matches_full_qp(self, tiny_model, tiny_inputs):
        """For a fixed routing, optimal_power_split must equal the full
        QP restricted to that routing (solved by the IP method)."""
        problem = UFCProblem(tiny_model, tiny_inputs)
        lam = np.array([[300.0, 100.0], [200.0, 400.0], [100.0, 400.0]])
        loads = lam.sum(axis=0)
        mu, nu = optimal_power_split(tiny_model, tiny_inputs, loads)

        # Restricted QP over (mu, nu): power balance per site + bounds.
        n = 2
        demand = tiny_model.alphas + tiny_model.betas * loads
        P = np.zeros((2 * n, 2 * n))
        q = np.concatenate(
            [
                np.full(n, tiny_model.fuel_cell_price),
                tiny_inputs.prices
                + 0.025 * tiny_inputs.carbon_rates,  # $25/t flat tax
            ]
        )
        A = np.hstack([np.eye(n), np.eye(n)])
        G = np.vstack(
            [
                -np.eye(2 * n),
                np.hstack([np.eye(n), np.zeros((n, n))]),
            ]
        )
        h = np.concatenate([np.zeros(2 * n), tiny_model.mu_max])
        ip = solve_qp(P, q, A=A, b=demand, G=G, h=h)
        split_cost = q[:n] @ mu + q[n:] @ nu
        assert split_cost == pytest.approx(ip.value, abs=1e-5)


class TestADMGTrajectoryInvariants:
    def test_lambda_rows_always_feasible(self, small_model, small_bundle):
        """Every prediction's routing block lies on its simplex — an
        invariant of the lambda subproblem, at every iteration."""
        from repro.sim.simulator import Simulator

        problem = Simulator(small_model, small_bundle).problem_for_slot(3, HYBRID)
        solver = DistributedUFCSolver(rho=0.3, tol=1e-3, max_iter=60)
        view, scaled_inputs = solver.scaled_context(problem)
        state = ADMGState.zeros(view.num_frontends, view.num_datacenters)
        for _ in range(25):
            state, prediction = solver.iterate(problem, state)
            np.testing.assert_allclose(
                prediction.lam.sum(axis=1), scaled_inputs.arrivals, rtol=1e-6
            )
            assert (prediction.lam >= -1e-10).all()
            assert (prediction.mu >= -1e-12).all()
            assert (prediction.mu <= view.mu_max + 1e-12).all()
            assert (prediction.nu >= -1e-12).all()
            assert (prediction.a >= -1e-12).all()
            assert (
                prediction.a.sum(axis=0) <= view.capacities * (1 + 1e-9)
            ).all()

    def test_residuals_eventually_small(self, small_model, small_bundle):
        from repro.sim.simulator import Simulator

        problem = Simulator(small_model, small_bundle).problem_for_slot(3, HYBRID)
        solver = DistributedUFCSolver(rho=0.3, tol=1e-4, max_iter=2000)
        res = solver.solve(problem)
        assert res.converged
        # Residual trajectories decay by orders of magnitude overall.
        assert res.coupling_residuals[-1] < 1e-4
        assert res.power_residuals[-1] < 1e-4


class TestObjectiveConsistency:
    @given(seed=st.integers(0, 200))
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_qp_and_metrics_agree_on_random_points(self, seed, tiny_model):
        """At random feasible points the compiled QP objective differs
        from the exact metric objective by the same constant (PL
        intercepts), regardless of the point."""
        rng = np.random.default_rng(seed)
        arrivals = rng.uniform(100, 800, size=3)
        inputs = SlotInputs(
            arrivals=arrivals,
            prices=rng.uniform(10, 120, size=2),
            carbon_rates=rng.uniform(100, 900, size=2),
        )
        problem = UFCProblem(tiny_model, inputs)
        qp = problem.to_qp()

        def qp_value(alloc):
            x = np.concatenate(
                [alloc.lam.ravel() / qp.lam_scale, alloc.mu, alloc.nu]
            )
            return 0.5 * x @ qp.P @ x + qp.q @ x

        from repro.core.repair import polish_allocation

        gaps = []
        for _ in range(3):
            w = rng.random((3, 2))
            lam = arrivals[:, None] * w / w.sum(axis=1, keepdims=True)
            alloc = polish_allocation(tiny_model, inputs, lam)
            gaps.append(problem.objective_min(alloc) - qp_value(alloc))
        assert max(gaps) - min(gaps) < 1e-7 * max(1.0, abs(gaps[0]))
