"""Tests for the trace substrate (repro.traces)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.costs.carbon import FUEL_CARBON_RATES_G_PER_KWH
from repro.traces.datasets import TraceBundle, default_bundle, paper_setup
from repro.traces.fuelmix import REGION_FUEL_MIXES, carbon_rate_series, fuel_mix_series
from repro.traces.geography import (
    CITY_COORDINATES,
    DATACENTER_CITIES,
    FRONTEND_CITIES,
    distance_matrix,
    haversine_km,
)
from repro.traces.power_demand import facebook_power_profile
from repro.traces.prices import REGION_PRICE_PRESETS, lmp_series
from repro.traces.workload import hp_workload_shape, split_workload, workload_matrix


class TestGeography:
    def test_paper_sites_present(self):
        assert DATACENTER_CITIES == ("calgary", "san_jose", "dallas", "pittsburgh")
        assert len(FRONTEND_CITIES) == 10

    def test_haversine_zero_distance(self):
        c = CITY_COORDINATES["dallas"]
        assert haversine_km(c, c) == pytest.approx(0.0)

    def test_haversine_known_pair(self):
        # New York - Los Angeles great-circle distance ~ 3940 km.
        d = haversine_km(CITY_COORDINATES["new_york"], CITY_COORDINATES["los_angeles"])
        assert 3800 < d < 4100

    def test_haversine_symmetry(self):
        a, b = CITY_COORDINATES["chicago"], CITY_COORDINATES["miami"]
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a))

    def test_distance_matrix_shape_and_positivity(self):
        d = distance_matrix()
        assert d.shape == (10, 4)
        assert (d > 0).all()
        assert d.max() < 5000  # continental scale

    def test_unknown_city_raises(self):
        with pytest.raises(KeyError):
            distance_matrix(sources=("atlantis",))


class TestWorkload:
    def test_deterministic(self):
        a = hp_workload_shape(hours=48, seed=5)
        b = hp_workload_shape(hours=48, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_seed_changes_series(self):
        a = hp_workload_shape(hours=48, seed=5)
        b = hp_workload_shape(hours=48, seed=6)
        assert not np.array_equal(a, b)

    def test_bounds(self):
        w = hp_workload_shape(hours=168)
        assert (w >= 0.05).all() and (w <= 0.98).all()

    def test_diurnal_pattern(self):
        """Peak-hour mean beats trough-hour mean on weekdays."""
        w = hp_workload_shape(hours=120, noise_sigma=0.0)
        by_hour = w.reshape(5, 24).mean(axis=0)
        assert by_hour[14] > by_hour[2] * 1.4

    def test_weekend_damping(self):
        w = hp_workload_shape(hours=168, noise_sigma=0.0)
        weekday = w[:120].mean()
        weekend = w[120:].mean()
        assert weekend < weekday

    def test_invalid_hours(self):
        with pytest.raises(ValueError):
            hp_workload_shape(hours=0)

    def test_split_normalized(self):
        w = split_workload(10, seed=1)
        assert w.sum() == pytest.approx(1.0)
        assert (w > 0).all()

    def test_split_validation(self):
        with pytest.raises(ValueError):
            split_workload(0)

    def test_matrix_respects_utilization_target(self):
        m = workload_matrix(total_servers=50_000, hours=72, utilization_target=0.8)
        assert m.sum(axis=1).max() == pytest.approx(0.8 * 50_000, rel=1e-9)
        assert (m >= 0).all()

    def test_matrix_timezone_offsets_shift_peaks(self):
        east = workload_matrix(
            1000, num_frontends=1, hours=48, utilization_target=1.0,
            frontend_utc_offsets=np.array([-5.0]),
        )
        west = workload_matrix(
            1000, num_frontends=1, hours=48, utilization_target=1.0,
            frontend_utc_offsets=np.array([-8.0]),
        )
        assert np.argmax(east[:24, 0]) < np.argmax(west[:24, 0])

    def test_matrix_validation(self):
        with pytest.raises(ValueError):
            workload_matrix(0.0)
        with pytest.raises(ValueError):
            workload_matrix(100, utilization_target=1.5)
        with pytest.raises(ValueError):
            workload_matrix(100, num_frontends=3, frontend_utc_offsets=np.zeros(2))


class TestWorkloadSeedSchemes:
    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="seed_scheme"):
            split_workload(5, seed_scheme="fancy")
        with pytest.raises(ValueError, match="seed_scheme"):
            workload_matrix(100, seed_scheme="fancy")

    def test_legacy_is_the_default_and_bit_identical(self):
        """The default scheme reproduces the historical ad-hoc offsets."""
        w = split_workload(6, seed=11)
        np.testing.assert_array_equal(w, split_workload(6, seed=11, seed_scheme="legacy"))
        # Historical derivation: default_rng(seed + 7), N(1, 0.25),
        # floored at 0.1, normalized.
        rng = np.random.default_rng(11 + 7)
        expected = np.maximum(np.abs(rng.normal(1.0, 0.25, size=6)), 0.1)
        np.testing.assert_array_equal(w, expected / expected.sum())

        m = workload_matrix(1000, num_frontends=3, hours=24, seed=11)
        w3 = split_workload(3, seed=11)
        raw = np.column_stack(
            [w3[i] * hp_workload_shape(hours=24, seed=11 + 101 * i) for i in range(3)]
        )
        scale = 0.85 * 1000 / raw.sum(axis=1).max()
        np.testing.assert_array_equal(m, raw * scale)

    def test_legacy_streams_collide_across_seeds(self):
        """Documented flaw: FE 1 of seed s == FE 0 of seed s + 101."""
        a = hp_workload_shape(hours=24, seed=11 + 101 * 1)
        b = hp_workload_shape(hours=24, seed=(11 + 101) + 101 * 0)
        np.testing.assert_array_equal(a, b)

    def test_spawn_streams_do_not_collide_across_seeds(self):
        m_a = workload_matrix(
            1000, num_frontends=4, hours=24, seed=11, seed_scheme="spawn"
        )
        m_b = workload_matrix(
            1000, num_frontends=4, hours=24, seed=11 + 101, seed_scheme="spawn"
        )
        norm = lambda m: m / m.max()  # noqa: E731
        for i in range(4):
            for j in range(4):
                assert not np.array_equal(norm(m_a)[:, i], norm(m_b)[:, j])

    def test_spawn_deterministic(self):
        a = workload_matrix(1000, num_frontends=4, hours=24, seed=3, seed_scheme="spawn")
        b = workload_matrix(1000, num_frontends=4, hours=24, seed=3, seed_scheme="spawn")
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(
            a, workload_matrix(1000, num_frontends=4, hours=24, seed=3)
        )


class TestPrices:
    def test_deterministic_across_calls(self):
        np.testing.assert_array_equal(
            lmp_series("dallas", seed=3), lmp_series("dallas", seed=3)
        )

    def test_regions_differ(self):
        assert not np.array_equal(lmp_series("dallas"), lmp_series("san_jose"))

    def test_floors_respected(self):
        for region, preset in REGION_PRICE_PRESETS.items():
            p = lmp_series(region, hours=168)
            assert p.min() >= preset.floor - 1e-12, region

    def test_unknown_region(self):
        with pytest.raises(KeyError):
            lmp_series("gotham")

    def test_invalid_hours(self):
        with pytest.raises(ValueError):
            lmp_series("dallas", hours=0)

    def test_calibration_dallas_cheap_san_jose_dear(self):
        """The Table I relationships require these orderings."""
        dallas = lmp_series("dallas", hours=168)
        san_jose = lmp_series("san_jose", hours=168)
        assert dallas.mean() < 35.0
        assert 70.0 < san_jose.mean() < 95.0
        # San Jose must straddle the $80 fuel-cell price for arbitrage.
        assert (san_jose > 80).mean() > 0.2
        assert (san_jose < 80).mean() > 0.2

    def test_dallas_rarely_exceeds_fuel_cell_price(self):
        dallas = lmp_series("dallas", hours=168)
        assert (dallas > 80).mean() < 0.1


class TestFuelMix:
    def test_mix_series_shapes(self):
        mixes = fuel_mix_series("calgary", hours=24)
        assert len(mixes) == 24
        for mix in mixes:
            assert all(v > 0 for v in mix.values())
            assert set(mix) <= set(FUEL_CARBON_RATES_G_PER_KWH)

    def test_unknown_region(self):
        with pytest.raises(KeyError):
            fuel_mix_series("gotham")

    def test_invalid_hours(self):
        with pytest.raises(ValueError):
            fuel_mix_series("dallas", hours=-1)

    def test_solar_absent_at_night(self):
        mixes = fuel_mix_series("san_jose", hours=24)
        # Local midnight (UTC-8): hour 8 UTC == 0 local.
        midnight_local = mixes[8]
        assert midnight_local.get("solar", 0.0) == 0.0

    def test_carbon_rates_ordering(self):
        """Spatial diversity: Calgary/Pittsburgh dirty, San Jose clean."""
        rates = {r: carbon_rate_series(r, hours=168).mean() for r in REGION_FUEL_MIXES}
        assert rates["san_jose"] < rates["dallas"] < rates["calgary"]
        assert rates["san_jose"] < 350
        assert rates["calgary"] > 550

    def test_rates_within_physical_bounds(self):
        for region in REGION_FUEL_MIXES:
            c = carbon_rate_series(region, hours=72)
            assert (c > 13.0).all() and (c < 968.0).all()


class TestPowerDemand:
    def test_weekly_energy_calibration(self):
        """Table I implies ~349.46 MWh (fuel-cell cost 27957 at $80)."""
        demand = facebook_power_profile()
        assert demand.sum() == pytest.approx(27957.0 / 80.0, rel=1e-9)

    def test_prorated_for_shorter_horizons(self):
        demand = facebook_power_profile(hours=84)
        assert demand.sum() == pytest.approx(349.4625 / 2, rel=1e-9)

    def test_positive(self):
        assert (facebook_power_profile() > 0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            facebook_power_profile(hours=0)
        with pytest.raises(ValueError):
            facebook_power_profile(weekly_energy_mwh=-1)


class TestDatasets:
    def test_paper_setup_capacity_range(self):
        caps, distances = paper_setup(seed=2014)
        assert caps.shape == (4,)
        assert ((caps >= 1.7e4) & (caps <= 2.3e4)).all()
        assert distances.shape == (10, 4)

    def test_default_bundle_consistency(self, small_bundle):
        assert small_bundle.hours == 24
        assert small_bundle.num_datacenters == 4
        assert small_bundle.num_frontends == 10
        assert small_bundle.arrivals.shape == (24, 10)
        assert small_bundle.prices.shape == (24, 4)
        assert small_bundle.carbon_rates.shape == (24, 4)
        assert small_bundle.latency_ms.shape == (10, 4)

    def test_workload_never_exceeds_capacity(self, small_bundle):
        assert small_bundle.arrivals.sum(axis=1).max() <= small_bundle.capacities.sum()

    def test_slot_accessor(self, small_bundle):
        slot = small_bundle.slot(3)
        np.testing.assert_array_equal(slot["arrivals"], small_bundle.arrivals[3])
        with pytest.raises(IndexError):
            small_bundle.slot(24)
        with pytest.raises(IndexError):
            small_bundle.slot(-1)

    def test_bundle_shape_validation(self):
        with pytest.raises(ValueError):
            TraceBundle(
                regions=("a", "b"),
                frontends=("x",),
                arrivals=np.zeros((5, 1)),
                prices=np.zeros((5, 3)),  # wrong N
                carbon_rates=np.zeros((5, 2)),
                latency_ms=np.zeros((1, 2)),
                capacities=np.ones(2),
            )

    def test_determinism(self):
        a = default_bundle(hours=12, seed=99)
        b = default_bundle(hours=12, seed=99)
        np.testing.assert_array_equal(a.arrivals, b.arrivals)
        np.testing.assert_array_equal(a.prices, b.prices)
        np.testing.assert_array_equal(a.carbon_rates, b.carbon_rates)
