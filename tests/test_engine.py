"""Tests for the solve-engine layer (repro.engine).

The load-bearing guarantee is *bit-identity*: the engine's compiled
structures, adapters and executors are pure plumbing, so the same
horizon must produce exactly equal arrays whichever path computes it —
serial or process pool, cold or cached, engine or legacy solver call.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.admg.solver import DistributedUFCSolver
from repro.baselines.dual_subgradient import DualSubgradientSolver
from repro.core.centralized import CentralizedSolver
from repro.core.compiled import CompiledQPStructure
from repro.core.problem import SlotInputs, UFCProblem
from repro.core.strategies import ALL_STRATEGIES, HYBRID
from repro.costs.carbon import SteppedCarbonTax
from repro.engine import (
    CentralizedSlotSolver,
    CompileCache,
    DistributedSlotSolver,
    DualSubgradientSlotSolver,
    HorizonEngine,
    SlotSolver,
    available_solvers,
    create_solver,
    parallel_map,
    register_solver,
    usable_cpu_count,
)
from repro.engine import registry as registry_module
from repro.obs import RecordingTelemetry
from repro.sim.results import SimulationResult
from repro.sim.simulator import Simulator, build_model
from repro.traces.datasets import default_bundle

WEEK_HOURS = 168


@pytest.fixture(scope="module")
def week_bundle():
    """The paper's full one-week evaluation bundle."""
    return default_bundle(hours=WEEK_HOURS, seed=2014)


@pytest.fixture(scope="module")
def week_model(week_bundle):
    return build_model(week_bundle)


def _assert_results_equal(a: SimulationResult, b: SimulationResult) -> None:
    """Exact (bitwise) equality of every array in two results."""
    assert a.strategy == b.strategy
    for field in (
        "ufc",
        "energy_cost",
        "carbon_cost",
        "carbon_kg",
        "utility",
        "avg_latency_ms",
        "utilization",
        "iterations",
        "converged",
    ):
        lhs, rhs = getattr(a, field), getattr(b, field)
        assert (lhs == rhs).all(), field


class TestRegistry:
    def test_default_is_centralized(self):
        solver = create_solver()
        assert isinstance(solver, CentralizedSlotSolver)
        assert isinstance(solver, SlotSolver)

    def test_all_registered_names_resolve(self):
        for name in available_solvers():
            solver = create_solver(name)
            assert isinstance(solver, SlotSolver)
            assert solver.name == name

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="centralized"):
            create_solver("no-such-solver")

    def test_legacy_instances_are_adapted(self):
        inner = CentralizedSolver()
        adapted = create_solver(inner)
        assert isinstance(adapted, CentralizedSlotSolver)
        assert adapted.inner is inner

        dist = DistributedUFCSolver(rho=0.7)
        adapted = create_solver(dist)
        assert isinstance(adapted, DistributedSlotSolver)
        assert adapted.inner is dist

        dual = DualSubgradientSolver()
        adapted = create_solver(dual)
        assert isinstance(adapted, DualSubgradientSlotSolver)
        assert adapted.inner is dual

    def test_slot_solver_passes_through(self):
        solver = CentralizedSlotSolver()
        assert create_solver(solver) is solver

    def test_unsupported_spec_rejected(self):
        with pytest.raises(TypeError):
            create_solver(42)

    def test_register_custom_solver(self):
        name = "custom-for-test"
        register_solver(name, lambda **kwargs: CentralizedSlotSolver(**kwargs))
        try:
            assert name in available_solvers()
            assert isinstance(create_solver(name), CentralizedSlotSolver)
        finally:
            del registry_module._FACTORIES[name]

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            register_solver("", lambda **kwargs: CentralizedSlotSolver())


class TestCompiledStructure:
    def test_qp_bit_identical_to_uncompiled(self, week_bundle, week_model):
        for strategy in ALL_STRATEGIES:
            compiled = CompiledQPStructure(week_model, strategy)
            for t in (0, 17, 93, 167):
                slot = week_bundle.slot(t)
                inputs = SlotInputs(
                    arrivals=slot["arrivals"],
                    prices=slot["prices"],
                    carbon_rates=slot["carbon_rates"],
                )
                problem = UFCProblem(week_model, inputs, strategy=strategy)
                reference = problem.to_qp()
                cached = compiled.qp_for(inputs)
                for part in ("P", "q", "A", "b", "G", "h"):
                    assert (getattr(cached, part) == getattr(reference, part)).all(), (
                        f"{strategy.name} slot {t} {part}"
                    )

    def test_epigraph_cost_falls_back_bit_identically(self, week_bundle):
        # Stepped taxes add epigraph variables whose count varies per
        # slot, so the compiled skeleton cannot apply; the fallback
        # must still match to_qp exactly.
        model = build_model(week_bundle).with_emission_costs(
            SteppedCarbonTax(thresholds_kg=(0.0, 200.0), rates_per_tonne=(10.0, 40.0))
        )
        compiled = CompiledQPStructure(model, HYBRID)
        slot = week_bundle.slot(5)
        inputs = SlotInputs(
            arrivals=slot["arrivals"],
            prices=slot["prices"],
            carbon_rates=slot["carbon_rates"],
        )
        reference = UFCProblem(model, inputs, strategy=HYBRID).to_qp()
        cached = compiled.qp_for(inputs)
        for part in ("P", "q", "A", "b", "G", "h"):
            assert (getattr(cached, part) == getattr(reference, part)).all(), part

    def test_matches_rejects_other_model_or_strategy(self, week_bundle, week_model):
        compiled = CompiledQPStructure(week_model, HYBRID)
        slot = week_bundle.slot(0)
        inputs = SlotInputs(
            arrivals=slot["arrivals"],
            prices=slot["prices"],
            carbon_rates=slot["carbon_rates"],
        )
        assert compiled.matches(UFCProblem(week_model, inputs, strategy=HYBRID))
        other_strategy = UFCProblem(week_model, inputs, strategy=ALL_STRATEGIES[0])
        assert other_strategy.strategy is not HYBRID
        assert not compiled.matches(other_strategy)
        other_model = build_model(week_bundle, fuel_cell_price=55.0)
        assert not compiled.matches(
            UFCProblem(other_model, inputs, strategy=HYBRID)
        )


class TestSerialVsProcessEquality:
    """The issue's headline test: the default week-long bundle solved

    serially and through the process pool yields *exactly* equal
    SimulationResult arrays, for all three strategies and both
    optimizing solver kinds.
    """

    def test_centralized_week(self, week_bundle, week_model):
        # oversubscribe forces a real process pool even on 1-CPU CI
        # (the guarded default would fall back to serial there).
        sim = Simulator(
            week_model, week_bundle, solver="centralized", oversubscribe=True
        )
        serial = sim.compare_strategies(workers=1)
        pooled = sim.compare_strategies(workers=3)
        for field in ("grid", "fuel_cell", "hybrid"):
            _assert_results_equal(getattr(serial, field), getattr(pooled, field))

    def test_distributed_week(self, week_bundle, week_model):
        # Executor equality is independent of convergence, so the
        # iteration cap keeps this full-week test fast; Fig. 11 tests
        # cover converged ADM-G behavior.
        solver = DistributedUFCSolver(max_iter=8)
        sim = Simulator(week_model, week_bundle, solver=solver, oversubscribe=True)
        serial = sim.compare_strategies(workers=1)
        pooled = sim.compare_strategies(workers=3)
        for field in ("grid", "fuel_cell", "hybrid"):
            _assert_results_equal(getattr(serial, field), getattr(pooled, field))

    def test_heuristic_day(self, week_bundle, week_model):
        sim = Simulator(
            week_model, week_bundle, solver="nearest", oversubscribe=True
        )
        _assert_results_equal(
            sim.run(HYBRID, hours=24, workers=1),
            sim.run(HYBRID, hours=24, workers=2),
        )

    def test_clamped_pool_equals_serial(self, week_bundle, week_model):
        # The default (guarded) policy: whatever executor it picks on
        # this machine, the results match the serial reference.
        sim = Simulator(week_model, week_bundle, solver="nearest")
        _assert_results_equal(
            sim.run(HYBRID, hours=24, workers=1),
            sim.run(HYBRID, hours=24, workers=4),
        )

    def test_cached_equals_cold(self, week_bundle, week_model):
        sim = Simulator(week_model, week_bundle)
        problems = [sim.problem_for_slot(t, HYBRID) for t in range(24)]
        cold = HorizonEngine("centralized", structure_cache=False).run(problems)
        hot = HorizonEngine("centralized", structure_cache=True).run(problems)
        for a, b in zip(cold, hot):
            assert (a.result.allocation.lam == b.result.allocation.lam).all()
            assert (a.result.allocation.mu == b.result.allocation.mu).all()
            assert (a.result.allocation.nu == b.result.allocation.nu).all()
            assert a.result.ufc == b.result.ufc
            assert a.result.iterations == b.result.iterations


class _TrippingSolver:
    """Delegates to the centralized solver, raising on marked slots.

    Slots are marked by their arrivals vector (the only slot identity
    visible to a solver), so the poison survives pickling into pool
    workers.
    """

    name = "tripping"
    supports_warm_start = False

    def __init__(self, poison_arrivals: np.ndarray) -> None:
        self.poison_arrivals = np.asarray(poison_arrivals)
        self.inner = CentralizedSlotSolver()

    def compile(self, model, strategy):
        """Delegate to the wrapped centralized solver."""
        return self.inner.compile(model, strategy)

    def solve(self, problem, compiled=None, warm=None):
        """Raise on poisoned slots, delegate otherwise."""
        if np.array_equal(problem.inputs.arrivals, self.poison_arrivals):
            raise RuntimeError("poisoned slot")
        return self.inner.solve(problem, compiled=compiled, warm=warm)


class TestPoisonedSlot:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_failure_is_captured_per_slot(self, week_bundle, week_model, workers):
        poison_index = 7
        solver = _TrippingSolver(week_bundle.slot(poison_index)["arrivals"])
        sim = Simulator(week_model, week_bundle, solver=solver)
        problems = [sim.problem_for_slot(t, HYBRID) for t in range(12)]
        outcomes = HorizonEngine(solver, workers=workers, oversubscribe=True).run(
            problems
        )
        assert [o.index for o in outcomes] == list(range(12))
        for outcome in outcomes:
            if outcome.index == poison_index:
                assert not outcome.ok
                assert outcome.result is None
                assert "poisoned slot" in outcome.error
                # Structured error info survives process-pool pickling.
                assert outcome.error_type == "RuntimeError"
                assert outcome.error_message == "poisoned slot"
                assert outcome.telemetry.error_type == "RuntimeError"
            else:
                assert outcome.ok, outcome.error
                assert outcome.error_type is None
                assert outcome.error_message is None
                assert outcome.result.converged

    def test_simulator_surfaces_failed_slot(self, week_bundle, week_model):
        poison_index = 3
        solver = _TrippingSolver(week_bundle.slot(poison_index)["arrivals"])
        sim = Simulator(week_model, week_bundle, solver=solver)
        with pytest.raises(RuntimeError, match=r"slot 3"):
            sim.run(HYBRID, hours=6)


class TestWarmStart:
    def test_centralized_rejects_warm_start(self, week_bundle, week_model):
        with pytest.raises(ValueError, match="warm"):
            Simulator(week_model, week_bundle, warm_start=True)

    def test_engine_rejects_warm_start_without_support(self, week_bundle, week_model):
        sim = Simulator(week_model, week_bundle)
        problems = [sim.problem_for_slot(t, HYBRID) for t in range(2)]
        with pytest.raises(ValueError, match="warm"):
            HorizonEngine("centralized").run(problems, warm_start=True)

    def test_warm_start_requires_serial_execution(self, week_bundle, week_model):
        sim = Simulator(week_model, week_bundle)
        problems = [sim.problem_for_slot(t, HYBRID) for t in range(2)]
        with pytest.raises(ValueError, match="workers=1"):
            HorizonEngine("distributed", workers=2).run(problems, warm_start=True)

    def test_distributed_warm_chain_runs(self, week_bundle, week_model):
        sim = Simulator(
            week_model, week_bundle, solver="distributed", warm_start=True
        )
        result = sim.run(HYBRID, hours=4)
        assert result.converged.all()
        # Consecutive slots are similar, so resuming from the previous
        # iterate must not be slower than the paper's cold starts.
        cold = Simulator(week_model, week_bundle, solver="distributed").run(
            HYBRID, hours=4
        )
        assert result.iterations[1:].sum() <= cold.iterations[1:].sum()


class TestPoolPolicy:
    """Worker clamping and the serial fallback (the 0.95x regression fix)."""

    def test_serial_requested(self):
        engine = HorizonEngine("centralized", workers=1)
        effective, decision, _ = engine.plan_workers(100)
        assert effective == 1
        assert decision == "serial:requested"

    def test_single_slot_is_serial(self):
        engine = HorizonEngine("centralized", workers=4)
        effective, decision, _ = engine.plan_workers(1)
        assert effective == 1
        assert decision == "serial:single-slot"

    def test_clamped_to_usable_cpus(self):
        usable = usable_cpu_count()
        engine = HorizonEngine("centralized", workers=usable + 7)
        effective, decision, reported = engine.plan_workers(100)
        assert reported == usable
        assert effective <= usable
        if usable <= 1:
            assert effective == 1
            assert decision == "serial:fallback-single-cpu"
        else:
            assert effective == usable
            assert decision == "pool:clamped-to-cpus"

    def test_oversubscribe_disables_clamp(self):
        engine = HorizonEngine(
            "centralized", workers=usable_cpu_count() + 7, oversubscribe=True
        )
        effective, decision, _ = engine.plan_workers(100)
        assert effective == usable_cpu_count() + 7
        assert decision == "pool:oversubscribed"

    def test_decision_is_recorded_not_silent(self, week_bundle, week_model):
        rec = RecordingTelemetry()
        sim = Simulator(week_model, week_bundle, solver="nearest")
        result = sim.run(HYBRID, hours=4, workers=64, telemetry=rec)
        (event,) = rec.by_name("engine.decision")
        assert event.tags["requested"] == 64
        assert event.tags["decision"] == result.horizon_summary.decision
        assert result.horizon_summary.workers_effective <= usable_cpu_count()


class TestCompileCacheIdentity:
    """The compiled-structure cache must never serve a stale entry.

    The old cache keyed on bare ``id(model)``: after a transient model
    was garbage-collected, CPython could hand its address to a new
    model, which then *hit* the stale compiled structure.  The cache
    now holds a strong reference to each keyed model and verifies
    identity on hit.
    """

    def test_hit_requires_same_object(self, week_bundle, week_model):
        cache = CompileCache(CentralizedSlotSolver())
        compiled, hit, elapsed = cache.lookup(week_model, HYBRID)
        assert not hit and elapsed >= 0.0
        again, hit, _ = cache.lookup(week_model, HYBRID)
        assert hit and again is compiled
        assert (cache.hits, cache.misses) == (1, 1)

    def test_recycled_id_never_hits_stale_entry(self, week_bundle, week_model):
        # Simulate the failure mode directly: plant week_model's
        # compiled structure under another model's id-key, exactly the
        # state a freed-then-reallocated address would leave behind.
        cache = CompileCache(CentralizedSlotSolver())
        stale, _, _ = cache.lookup(week_model, HYBRID)
        other_model = build_model(week_bundle, fuel_cell_price=55.0)
        cache._entries[(id(other_model), HYBRID)] = (week_model, stale)
        compiled, hit, _ = cache.lookup(other_model, HYBRID)
        assert not hit
        assert compiled is not stale
        assert compiled.matches(
            UFCProblem(
                other_model,
                SlotInputs(
                    arrivals=week_bundle.slot(0)["arrivals"],
                    prices=week_bundle.slot(0)["prices"],
                    carbon_rates=week_bundle.slot(0)["carbon_rates"],
                ),
                strategy=HYBRID,
            )
        )

    def test_cached_model_cannot_be_collected(self, week_bundle):
        # The strong reference makes id recycling impossible while the
        # cache lives: a cached model must survive its external refs.
        import gc
        import weakref

        model = build_model(week_bundle)
        ref = weakref.ref(model)
        cache = CompileCache(CentralizedSlotSolver())
        cache.lookup(model, HYBRID)
        del model
        gc.collect()
        assert ref() is not None, "cache must pin the keyed model"
        del cache
        gc.collect()
        assert ref() is None


class TestEngineValidation:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            HorizonEngine("centralized", workers=0)

    def test_chunk_size_must_be_positive(self):
        with pytest.raises(ValueError):
            HorizonEngine("centralized", chunk_size=0)

    def test_empty_horizon(self):
        assert HorizonEngine("centralized").run([]) == []


def _square(x: float) -> float:
    return x * x


def _raise_on_three(x: int) -> int:
    if x == 3:
        raise ValueError("three")
    return x


class TestParallelMap:
    def test_order_preserved(self):
        items = list(range(10))
        assert parallel_map(_square, items, workers=3) == [x * x for x in items]

    def test_serial_fallback(self):
        assert parallel_map(_square, [2.0], workers=4) == [4.0]

    def test_exceptions_propagate(self):
        with pytest.raises(ValueError, match="three"):
            parallel_map(_raise_on_three, [1, 2, 3], workers=2)
