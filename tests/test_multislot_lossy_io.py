"""Tests for the multislot optimizer, lossy network, and trace I/O."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.strategies import GRID, HYBRID
from repro.distributed import DistributedRuntime, LossyNetwork
from repro.extensions.multislot import solve_multislot
from repro.extensions.ramping import RampingSimulator
from repro.sim.simulator import Simulator
from repro.traces.io import bundle_from_arrays, load_bundle, save_bundle


class TestMultiSlot:
    HOURS = 6
    RAMP = 0.5

    def test_validation(self, small_model, small_bundle):
        with pytest.raises(ValueError):
            solve_multislot(small_model, small_bundle, 0.5, hours=0)
        with pytest.raises(ValueError):
            solve_multislot(small_model, small_bundle, 0.5, hours=999)
        with pytest.raises(ValueError):
            solve_multislot(small_model, small_bundle, -0.5, hours=2)
        with pytest.raises(ValueError):
            solve_multislot(
                small_model, small_bundle, 0.5, hours=2, strategy=GRID
            )

    def test_joint_plan_is_ramp_feasible(self, small_model, small_bundle):
        res = solve_multislot(
            small_model, small_bundle, self.RAMP, hours=self.HOURS
        )
        assert res.converged
        mus = np.array([a.mu for a in res.allocations])
        assert (np.diff(mus, axis=0) <= self.RAMP + 1e-6).all()
        assert (mus[0] <= self.RAMP + 1e-6).all()
        for t, alloc in enumerate(res.allocations):
            problem = Simulator(small_model, small_bundle).problem_for_slot(
                t, HYBRID
            )
            assert problem.check_feasibility(alloc, tol=1e-4).ok, t

    def test_dominates_greedy(self, small_model, small_bundle):
        exact = solve_multislot(
            small_model, small_bundle, self.RAMP, hours=self.HOURS
        )
        greedy = RampingSimulator(
            small_model, small_bundle, ramp_mw_per_hour=self.RAMP
        ).run(HYBRID, hours=self.HOURS)
        assert exact.total_ufc >= greedy.result.ufc.sum() - 1e-6 * abs(
            exact.total_ufc
        )

    def test_infinite_ramp_matches_independent_slots(
        self, small_model, small_bundle
    ):
        exact = solve_multislot(
            small_model, small_bundle, np.inf, hours=4
        )
        independent = Simulator(small_model, small_bundle).run(HYBRID, hours=4)
        np.testing.assert_allclose(exact.ufc, independent.ufc, rtol=1e-4)

    def test_initial_output_respected(self, small_model, small_bundle):
        warm = small_model.mu_max / 2
        res = solve_multislot(
            small_model, small_bundle, 0.1, hours=3, initial_mu_mw=warm
        )
        assert (res.allocations[0].mu <= warm + 0.1 + 1e-6).all()


class TestLossyNetwork:
    def test_validation(self):
        with pytest.raises(ValueError):
            LossyNetwork(loss_probability=1.0)
        with pytest.raises(ValueError):
            LossyNetwork(duplicate_probability=-0.1)

    def test_lossless_mode_matches_base(self, small_model, small_bundle):
        from repro.admg.solver import DistributedUFCSolver

        problem = Simulator(small_model, small_bundle).problem_for_slot(1, HYBRID)
        solver = DistributedUFCSolver(rho=0.3, tol=6e-3)
        net = LossyNetwork(loss_probability=0.0, duplicate_probability=0.0)
        run = DistributedRuntime(problem, solver, network=net).run()
        clean = DistributedRuntime(problem, solver).run()
        assert run.messages_sent == clean.messages_sent
        assert net.dropped_attempts == 0

    def test_loss_and_duplication_do_not_change_result(
        self, small_model, small_bundle
    ):
        from repro.admg.solver import DistributedUFCSolver

        problem = Simulator(small_model, small_bundle).problem_for_slot(1, HYBRID)
        solver = DistributedUFCSolver(rho=0.3, tol=6e-3)
        clean = DistributedRuntime(problem, solver).run()
        net = LossyNetwork(
            loss_probability=0.25, duplicate_probability=0.1, seed=3
        )
        lossy = DistributedRuntime(problem, solver, network=net).run()
        assert lossy.iterations == clean.iterations
        np.testing.assert_allclose(
            lossy.allocation.lam, clean.allocation.lam, atol=1e-10
        )
        # Retransmissions inflate the traffic bill, roughly by
        # p/(1-p) + dup for independent drops.
        assert net.dropped_attempts > 0
        assert net.duplicates_delivered > 0
        assert lossy.messages_sent > clean.messages_sent

    def test_expected_overhead_scale(self):
        net = LossyNetwork(loss_probability=0.5, seed=0)
        from repro.distributed.messages import RoutingAssignment

        for k in range(2000):
            net.send(RoutingAssignment(sender="a", receiver="b", a=1.0))
        # With p = 0.5 the expected attempts per message is 2.
        assert 1.7 < net.messages_sent / 2000 < 2.3

    def test_exactly_once_accounting(self):
        """A scripted RNG pins the bill: d drops + landing + duplicate."""
        from repro.distributed.messages import RoutingProposal

        class ScriptedRNG:
            def __init__(self, draws):
                self._draws = iter(draws)

            def random(self):
                return next(self._draws)

        net = LossyNetwork(loss_probability=0.5, duplicate_probability=0.5)
        # Draws: drop, drop, drop, land; then duplicate.
        net._rng = ScriptedRNG([0.4, 0.4, 0.4, 0.9, 0.1])
        msg = RoutingProposal(sender="fe0", receiver="dc0", lam=1.0, varphi=2.0)
        net.send(msg)
        # 3 dropped attempts + 1 landing + 1 duplicate = 5 billed sends.
        assert net.messages_sent == 5
        assert net.dropped_attempts == 3
        assert net.duplicates_delivered == 1
        assert net.floats_sent == 5 * msg.payload_floats()
        assert net.bytes_sent == 8 * net.floats_sent
        # Exactly one logical message (plus its duplicate) was delivered.
        assert len(net.deliver("dc0")) == 2

    def test_retransmissions_alias(self):
        net = LossyNetwork(loss_probability=0.5, seed=1)
        from repro.distributed.messages import RoutingAssignment

        for _ in range(100):
            net.send(RoutingAssignment(sender="a", receiver="b", a=1.0))
        assert net.retransmissions == net.dropped_attempts > 0


class TestTraceIO:
    def test_npz_round_trip(self, tmp_path, small_bundle):
        path = save_bundle(small_bundle, tmp_path / "bundle.npz")
        loaded = load_bundle(path)
        assert loaded.regions == small_bundle.regions
        assert loaded.frontends == small_bundle.frontends
        np.testing.assert_array_equal(loaded.arrivals, small_bundle.arrivals)
        np.testing.assert_array_equal(loaded.prices, small_bundle.prices)
        np.testing.assert_array_equal(
            loaded.carbon_rates, small_bundle.carbon_rates
        )
        np.testing.assert_array_equal(loaded.latency_ms, small_bundle.latency_ms)
        assert loaded.seed == small_bundle.seed

    def test_loaded_bundle_is_simulatable(self, tmp_path, small_bundle, small_model):
        path = save_bundle(small_bundle, tmp_path / "bundle.npz")
        loaded = load_bundle(path)
        result = Simulator(small_model, loaded).run(HYBRID, hours=2)
        reference = Simulator(small_model, small_bundle).run(HYBRID, hours=2)
        np.testing.assert_allclose(result.ufc, reference.ufc, rtol=1e-12)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_bundle(tmp_path / "nope.npz")

    def test_bundle_from_arrays_derives_latency(self):
        t, m, n = 5, 2, 2
        bundle = bundle_from_arrays(
            regions=("dallas", "san_jose"),
            frontends=("new_york", "chicago"),
            arrivals=np.full((t, m), 10.0),
            prices=np.full((t, n), 40.0),
            carbon_rates=np.full((t, n), 500.0),
            capacities=np.array([100.0, 100.0]),
        )
        assert bundle.latency_ms.shape == (m, n)
        # NY->Dallas ~ 2200 km -> ~44 ms at 0.02 ms/km.
        assert 30 < bundle.latency_ms[0, 0] < 60

    def test_bundle_from_arrays_unknown_city(self):
        with pytest.raises(KeyError):
            bundle_from_arrays(
                regions=("atlantis",),
                frontends=("new_york",),
                arrivals=np.ones((2, 1)),
                prices=np.ones((2, 1)),
                carbon_rates=np.ones((2, 1)),
                capacities=np.ones(1),
            )

    def test_bundle_from_arrays_shape_validation(self):
        with pytest.raises(ValueError):
            bundle_from_arrays(
                regions=("dallas",),
                frontends=("new_york",),
                arrivals=np.ones((2, 1)),
                prices=np.ones((3, 1)),  # wrong T
                carbon_rates=np.ones((2, 1)),
                capacities=np.ones(1),
            )
