"""Tests for the distributed observability plane: WorkerReport
propagation from execution workers, parent-side merging of metrics and
spans, trace-context injection, and the worker-side profiling hooks.
"""

from __future__ import annotations

import pytest

from repro.core.strategies import HYBRID
from repro.engine import HorizonEngine
from repro.obs import MetricsRegistry, SpanTracer
from repro.obs.ledger import load_run
from repro.obs.worker import (
    TraceContext,
    WorkerObsPlan,
    WorkerReport,
    profile_hotspots,
    slot_metrics,
)
from repro.sim.simulator import Simulator

SLOTS = 6


@pytest.fixture(scope="module")
def problems(small_model, small_bundle):
    sim = Simulator(small_model, small_bundle)
    return [sim.problem_for_slot(t, HYBRID) for t in range(SLOTS)]


@pytest.fixture(scope="module")
def baseline_ufc(problems):
    return [o.result.ufc for o in HorizonEngine("centralized").run(problems)]


def _worker_solve_sums(metrics: MetricsRegistry) -> dict[str, float]:
    """Per-worker `repro_worker_slot_solve_seconds` histogram sums."""
    sums: dict[str, float] = {}
    for name, labels, value in metrics.samples():
        if name == "repro_worker_slot_solve_seconds_sum":
            sums[dict(labels)["worker"]] = value
    return sums


class TestReportAttachment:
    def test_consumers_auto_enable_reports(self, problems):
        metrics = MetricsRegistry()
        tracer = SpanTracer()
        engine = HorizonEngine("centralized", metrics=metrics, tracer=tracer)
        outcomes = engine.run(problems)
        assert all(o.worker_report is not None for o in outcomes)
        report = outcomes[0].worker_report
        assert report.worker > 0
        assert report.host
        assert report.metrics is not None
        assert report.spans

    def test_no_consumer_means_no_reports_and_identical_output(
        self, problems, baseline_ufc
    ):
        engine = HorizonEngine("centralized")
        outcomes = engine.run(problems)
        assert all(o.worker_report is None for o in outcomes)
        assert [o.result.ufc for o in outcomes] == baseline_ufc

    def test_worker_obs_false_overrides_consumers(self, problems, baseline_ufc):
        metrics = MetricsRegistry()
        engine = HorizonEngine(
            "centralized", metrics=metrics, worker_obs=False
        )
        outcomes = engine.run(problems)
        assert all(o.worker_report is None for o in outcomes)
        assert [o.result.ufc for o in outcomes] == baseline_ufc
        # The parent-side engine series still record.
        names = {name for name, _, _ in metrics.samples()}
        assert any(n.startswith("repro_engine") for n in names)
        assert not any(n.startswith("repro_worker") for n in names)

    def test_worker_obs_true_forces_reports_without_consumers(self, problems):
        engine = HorizonEngine("centralized", worker_obs=True)
        outcomes = engine.run(problems[:2])
        assert all(o.worker_report is not None for o in outcomes)

    def test_observed_output_is_bit_identical(self, problems, baseline_ufc):
        engine = HorizonEngine(
            "centralized",
            metrics=MetricsRegistry(),
            tracer=SpanTracer(),
            worker_profile=3,
        )
        assert [o.result.ufc for o in engine.run(problems)] == baseline_ufc


class TestMerging:
    def test_merged_metrics_account_for_all_solve_wall(self, problems):
        metrics = MetricsRegistry()
        engine = HorizonEngine("centralized", metrics=metrics)
        outcomes = engine.run(problems)
        summary = engine.last_summary
        merged = sum(_worker_solve_sums(metrics).values())
        # Worker-shipped samples are built from the same telemetry the
        # summary aggregates: accounting is exact, not just >= 90%.
        assert merged == pytest.approx(summary.solve_s, rel=1e-9)
        slots_total = sum(
            value
            for name, _, value in metrics.samples()
            if name == "repro_worker_slots_total"
        )
        assert slots_total == len(outcomes)

    def test_spans_adopt_under_run_span_with_trace_context(
        self, problems, tmp_path
    ):
        tracer = SpanTracer()
        engine = HorizonEngine("centralized", tracer=tracer, ledger=tmp_path)
        outcomes = engine.run(problems)
        (run_span,) = tracer.by_name("engine.run")
        slot_spans = tracer.by_name("worker.slot")
        assert len(slot_spans) == len(problems)
        assert all(s.parent_id == run_span.span_id for s in slot_spans)
        run = load_run(engine.last_ledger_path)
        for outcome in outcomes:
            trace = outcome.worker_report.trace
            assert trace is not None
            assert trace.trace_id == run.run_id
            assert trace.parent_span_id == run_span.span_id

    def test_mp_client_ships_reports_home(self, problems, baseline_ufc):
        metrics = MetricsRegistry()
        tracer = SpanTracer()
        engine = HorizonEngine(
            "centralized",
            client="mp",
            workers=2,
            chunk_size=2,
            metrics=metrics,
            tracer=tracer,
        )
        outcomes = engine.run(problems)
        assert [o.result.ufc for o in outcomes] == baseline_ufc
        assert all(o.worker_report is not None for o in outcomes)
        merged = sum(_worker_solve_sums(metrics).values())
        assert merged == pytest.approx(engine.last_summary.solve_s, rel=1e-9)
        assert len(tracer.by_name("worker.slot")) == len(problems)

    def test_summary_latency_and_busy_fields(self, problems):
        engine = HorizonEngine("centralized", metrics=MetricsRegistry())
        engine.run(problems)
        summary = engine.last_summary
        assert summary.slot_p50_s > 0
        assert summary.slot_p99_s >= summary.slot_p50_s
        assert summary.worker_busy_s
        assert sum(summary.worker_busy_s.values()) > 0
        table = summary.format_table()
        assert "p50" in table and "p99" in table


class TestProfiling:
    def test_per_slot_profiles_ship_on_scalar_lane(self, problems):
        engine = HorizonEngine("centralized", worker_profile=5)
        outcomes = engine.run(problems[:3])
        for outcome in outcomes:
            report = outcome.worker_report
            assert report.profile_scope == "slot"
            assert 0 < len(report.profile) <= 5
            row = report.profile[0]
            assert {"func", "calls", "tottime", "cumtime"} <= set(row)
        # Rows are sorted by cumulative time, descending.
        rows = outcomes[0].worker_report.profile
        cums = [r["cumtime"] for r in rows]
        assert cums == sorted(cums, reverse=True)

    def test_batched_lane_synthesizes_spans_and_chunk_profile(self, problems):
        tracer = SpanTracer()
        engine = HorizonEngine(
            "centralized-batch", tracer=tracer, worker_profile=4
        )
        outcomes = engine.run(problems)
        slot_spans = tracer.by_name("worker.slot")
        assert len(slot_spans) == len(problems)
        assert all(s.attributes.get("synthesized") for s in slot_spans)
        # One chunk-scope profile, attached to the chunk's first outcome.
        first = outcomes[0].worker_report
        assert first.profile_scope == "chunk"
        assert first.profile
        assert all(not o.worker_report.profile for o in outcomes[1:])

    def test_profile_rejects_negative(self):
        with pytest.raises(ValueError, match="worker_profile"):
            HorizonEngine("centralized", worker_profile=-1)


class TestWorkerPrimitives:
    def test_slot_metrics_families(self, problems):
        outcome = HorizonEngine("centralized").run(problems[:1])[0]
        reg = slot_metrics(outcome.telemetry)
        names = {name for name, _, _ in reg.samples()}
        assert "repro_worker_slots_total" in names
        assert "repro_worker_slot_solve_seconds_sum" in names
        sums = _worker_solve_sums(reg)
        assert sum(sums.values()) == pytest.approx(outcome.telemetry.wall_s)

    def test_profile_hotspots_orders_and_caps(self):
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
        sum(range(10000))
        sorted(range(1000), reverse=True)
        profiler.disable()
        rows = profile_hotspots(profiler, top=2)
        assert len(rows) <= 2
        assert all("func" in r for r in rows)
        assert profile_hotspots(profiler, top=0) == ()

    def test_plain_data_pickles(self):
        import pickle

        plan = WorkerObsPlan(trace=TraceContext("run-1", 7), profile=3)
        report = WorkerReport(
            worker=1, host="h", metrics={"families": []}, spans=({"name": "x"},)
        )
        assert pickle.loads(pickle.dumps(plan)) == plan
        assert pickle.loads(pickle.dumps(report)) == report
