"""Tests for the distributed ADM-G driver (repro.admg.solver)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.admg.solver import ADMGState, DistributedUFCSolver
from repro.core.centralized import CentralizedSolver
from repro.core.problem import UFCProblem
from repro.core.strategies import ALL_STRATEGIES, HYBRID
from repro.costs.carbon import CapAndTrade, SteppedCarbonTax
from repro.sim.simulator import Simulator


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DistributedUFCSolver(rho=0.0)
        with pytest.raises(ValueError):
            DistributedUFCSolver(eps=0.5)
        with pytest.raises(ValueError):
            DistributedUFCSolver(eps=1.5)
        with pytest.raises(ValueError):
            DistributedUFCSolver(tol=0.0)

    def test_paper_defaults(self):
        s = DistributedUFCSolver()
        assert s.rho == 0.3
        assert s.eps == 1.0


class TestConvergenceToOptimum:
    def test_tiny_problem_all_strategies(self, tiny_model, tiny_inputs):
        reference = CentralizedSolver()
        solver = DistributedUFCSolver(rho=0.3, tol=1e-5, max_iter=3000)
        for strategy in ALL_STRATEGIES:
            problem = UFCProblem(tiny_model, tiny_inputs, strategy=strategy)
            cent = reference.solve(problem)
            dist = solver.solve(problem)
            assert dist.converged, strategy.name
            gap = abs(dist.ufc - cent.ufc) / abs(cent.ufc)
            assert gap < 5e-3, (strategy.name, gap)

    def test_paper_scale_slots(self, small_model, small_bundle):
        sim = Simulator(small_model, small_bundle)
        reference = CentralizedSolver()
        solver = DistributedUFCSolver(rho=0.3, tol=1e-3)
        for t in (0, 9, 18):
            for strategy in ALL_STRATEGIES:
                problem = sim.problem_for_slot(t, strategy)
                cent = reference.solve(problem)
                dist = solver.solve(problem)
                assert dist.converged
                gap = abs(dist.ufc - cent.ufc) / abs(cent.ufc)
                assert gap < 1e-2, (t, strategy.name, gap)

    def test_allocation_strictly_feasible(self, small_model, small_bundle):
        sim = Simulator(small_model, small_bundle)
        solver = DistributedUFCSolver(rho=0.3, tol=1e-3)
        problem = sim.problem_for_slot(5, HYBRID)
        res = solver.solve(problem)
        assert problem.check_feasibility(res.allocation, tol=1e-7).ok

    def test_iterations_in_paper_band(self, small_model, small_bundle):
        """Cold-started runs land in tens-to-~200 iterations."""
        sim = Simulator(small_model, small_bundle)
        solver = DistributedUFCSolver(rho=0.3, tol=6e-3, max_iter=1000)
        its = []
        for t in range(0, 24, 6):
            res = solver.solve(sim.problem_for_slot(t, HYBRID))
            assert res.converged
            its.append(res.iterations)
        assert 20 <= min(its)
        assert max(its) <= 300

    def test_warm_start_from_own_solution_is_instant(self, small_model, small_bundle):
        """Restarting from a converged state terminates almost at once
        (the fixed point is preserved by the iteration)."""
        sim = Simulator(small_model, small_bundle)
        solver = DistributedUFCSolver(rho=0.3, tol=1e-3)
        problem = sim.problem_for_slot(11, HYBRID)
        cold = solver.solve(problem)
        warm = solver.solve(problem, initial=cold.state)
        assert warm.iterations <= max(5, cold.iterations // 4)

    def test_residual_histories_recorded(self, tiny_problem):
        solver = DistributedUFCSolver(rho=0.3, tol=1e-4, max_iter=4000)
        res = solver.solve(tiny_problem)
        assert res.converged
        assert len(res.coupling_residuals) == res.iterations
        assert len(res.power_residuals) == res.iterations
        assert res.coupling_residuals[-1] < 1e-4
        assert res.power_residuals[-1] < 1e-4

    def test_raw_allocation_exposed(self, tiny_problem):
        solver = DistributedUFCSolver(rho=0.3, tol=1e-4)
        res = solver.solve(tiny_problem)
        assert res.raw_allocation is not None
        # Raw routing satisfies load balance (the lambda block is always
        # simplex-feasible) even before polishing.
        np.testing.assert_allclose(
            res.raw_allocation.lam.sum(axis=1),
            tiny_problem.inputs.arrivals,
            rtol=1e-6,
        )

    def test_unpolished_mode(self, tiny_problem):
        solver = DistributedUFCSolver(rho=0.3, tol=1e-4, polish=False)
        res = solver.solve(tiny_problem)
        assert res.allocation is res.raw_allocation


class TestNonSmoothEmissionCosts:
    """The regimes that motivate ADM-G: V_j convex but not strongly so."""

    def test_stepped_tax(self, tiny_model, tiny_inputs):
        model = tiny_model.with_emission_costs(
            SteppedCarbonTax([0.0, 30.0], [10.0, 120.0])
        )
        problem = UFCProblem(model, tiny_inputs)
        cent = CentralizedSolver().solve(problem)
        dist = DistributedUFCSolver(rho=0.3, tol=1e-5, max_iter=4000).solve(problem)
        assert dist.converged
        assert abs(dist.ufc - cent.ufc) / abs(cent.ufc) < 5e-3

    def test_cap_and_trade(self, tiny_model, tiny_inputs):
        """Near the permit kink the residual decay is sublinear, so the
        tolerance is kept moderate; the objective still matches the
        centralized epigraph solve tightly."""
        model = tiny_model.with_emission_costs(
            CapAndTrade(cap_kg=50.0, buy_price_per_tonne=40.0,
                        sell_price_per_tonne=20.0)
        )
        problem = UFCProblem(model, tiny_inputs)
        cent = CentralizedSolver().solve(problem)
        dist = DistributedUFCSolver(rho=0.3, tol=1e-3, max_iter=6000).solve(problem)
        assert dist.converged
        assert abs(dist.ufc - cent.ufc) / abs(cent.ufc) < 1e-3


class TestState:
    def test_zeros_shapes(self):
        s = ADMGState.zeros(3, 2)
        assert s.lam.shape == (3, 2)
        assert s.mu.shape == (2,)
        assert s.varphi.shape == (3, 2)

    def test_copy_is_deep(self):
        s = ADMGState.zeros(2, 2)
        c = s.copy()
        c.lam[0, 0] = 5.0
        assert s.lam[0, 0] == 0.0


class TestEpsSensitivity:
    @pytest.mark.parametrize("eps", [0.8, 0.9, 1.0])
    def test_converges_for_valid_eps(self, tiny_problem, eps):
        solver = DistributedUFCSolver(rho=0.3, eps=eps, tol=1e-4, max_iter=3000)
        res = solver.solve(tiny_problem)
        assert res.converged
