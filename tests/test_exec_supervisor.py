"""Fleet-supervision tests (repro.exec.supervisor).

A supervised socket fleet must turn worker death into transparent
resubmission (bit-identical results, zero failed slots), hedge
stragglers without changing any number, record the retry lineage in
the ledger, and stay a strict no-op when disabled.  Also covers the
fleet-health surface on :class:`~repro.exec.SocketClient` and the
``worker-churn`` chaos harness that CI runs.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.strategies import HYBRID
from repro.engine import HorizonEngine
from repro.exec import (
    RetryBudget,
    SocketClient,
    SupervisorConfig,
    TaskTimeoutError,
)
from repro.exec.store import problem_digest
from repro.faults.churn import WorkerChurnSolver, run_worker_churn
from repro.obs import MetricsRegistry
from repro.obs.ledger import load_run
from repro.sim.simulator import Simulator

SLOTS = 24


@pytest.fixture(scope="module")
def problems(small_model, small_bundle):
    sim = Simulator(small_model, small_bundle)
    return [sim.problem_for_slot(t, HYBRID) for t in range(SLOTS)]


@pytest.fixture(scope="module")
def serial_ufc(problems):
    return [o.result.ufc for o in HorizonEngine("centralized").run(problems)]


def _square(x):
    return x * x


class TestRetryPolicy:
    def test_backoff_grows_geometrically(self):
        budget = RetryBudget(backoff_s=0.1, backoff_multiplier=2.0)
        assert budget.backoff_for(1) == pytest.approx(0.1)
        assert budget.backoff_for(2) == pytest.approx(0.2)
        assert budget.backoff_for(3) == pytest.approx(0.4)

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            RetryBudget(max_attempts=0)
        with pytest.raises(ValueError):
            RetryBudget(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            SupervisorConfig(hedge_quantile=1.5)
        with pytest.raises(ValueError):
            SupervisorConfig(hedge_min_samples=0)

    def test_timeout_error_carries_lineage(self):
        exc = TaskTimeoutError(
            "slot 3 timed out",
            task_id=3,
            attempts=2,
            workers_tried=("w0", "w1"),
        )
        assert isinstance(exc, RuntimeError)
        assert exc.task_id == 3
        assert exc.attempts == 2
        assert exc.workers_tried == ("w0", "w1")


class TestResubmission:
    def test_worker_death_resubmits_and_run_is_bit_identical(
        self, problems, serial_ufc, tmp_path
    ):
        # One worker hard-dies on slot 8; under supervision the slot
        # must be resubmitted to the survivor, the fleet respawned,
        # and the run finish with zero failures and the exact UFC
        # values of a fault-free serial run.
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        solver = WorkerChurnSolver(
            frozenset({problem_digest(problems[8], WorkerChurnSolver.name)}),
            str(marker_dir),
        )
        metrics = MetricsRegistry()
        client = SocketClient(workers=2)
        try:
            engine = HorizonEngine(
                solver,
                client=client,
                chunk_size=1,
                metrics=metrics,
                ledger=tmp_path,
                supervision=SupervisorConfig(respawn=True),
            )
            outcomes = engine.run(problems)
        finally:
            client.close()

        assert [o.result.ufc for o in outcomes] == serial_ufc
        summary = engine.last_summary
        assert summary.failed_slots == 0
        fleet = summary.fleet
        assert fleet is not None
        assert fleet["resubmissions"] >= 1
        assert fleet["workers_lost"] == 1
        assert fleet["workers_revived"] == 1

        # The slot that died carries its retry lineage; clean slots
        # carry none.
        lineage = outcomes[8].lineage
        assert lineage is not None
        assert lineage["attempts"] == 2
        assert lineage["faults"] == ["WorkerLostError"]
        assert lineage["outcome"] == "ok"
        assert len(lineage["workers"]) == 2
        assert outcomes[0].lineage is None

        # The ledger recorded the lineage and the fleet summary.
        run = load_run(engine.last_ledger_path)
        assert run.finalized
        flagged = [s for s in run.slots if "lineage" in s]
        assert [s["index"] for s in flagged] == [8]
        assert flagged[0]["lineage"]["attempts"] == 2
        assert run.summary["fleet"]["resubmissions"] >= 1

        # Supervisor metrics were published.
        resubmits = sum(
            value
            for name, _, value in metrics.samples()
            if name == "repro_exec_resubmits_total"
        )
        assert resubmits >= 1

    def test_supervision_defaults_off_and_serial_path_unaffected(
        self, problems, serial_ufc, tmp_path
    ):
        # Unsupervised run: no fleet summary, no lineage in the ledger.
        engine = HorizonEngine("centralized", ledger=tmp_path)
        outcomes = engine.run(problems[:6])
        assert engine.last_summary.fleet is None
        assert all(o.lineage is None for o in outcomes)
        run = load_run(engine.last_ledger_path)
        assert all("lineage" not in s for s in run.slots)

        # supervision=True on a sync path is a harmless no-op: the
        # supervisor only wraps asynchronous clients.
        engine = HorizonEngine("centralized", supervision=True)
        outcomes = engine.run(problems[:6])
        assert [o.result.ufc for o in outcomes] == serial_ufc[:6]
        assert engine.last_summary.fleet is None


class _StragglerSolver:
    """Centralized solver that stalls once on one poisoned slot.

    The stall marker is claimed *before* sleeping, so the hedge attempt
    (on the other worker, same filesystem) solves at full speed — the
    hedge deterministically wins the race.
    """

    supports_warm_start = False
    name = "straggler"

    def __init__(self, stall_digest: str, marker_dir: str, stall_s: float) -> None:
        self.stall_digest = stall_digest
        self.marker_dir = marker_dir
        self.stall_s = stall_s

    def compile(self, model, strategy):
        return None

    def solve(self, problem, compiled=None, warm=None):
        if problem_digest(problem, self.name) == self.stall_digest:
            marker = os.path.join(self.marker_dir, "stalled")
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                pass
            else:
                os.close(fd)
                time.sleep(self.stall_s)
        from repro.engine.registry import create_solver

        return create_solver("centralized").solve(problem)


class TestHedging:
    def test_straggler_is_hedged_and_results_are_bit_identical(
        self, problems, serial_ufc, tmp_path
    ):
        # Slot 20 stalls for 20x a typical solve; by then 19 attempt
        # latencies have been sampled, so the p99-derived straggler
        # deadline is armed and a hedge fires on the other worker.
        # First result wins — and with a deterministic solver the
        # numbers are identical either way.
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        solver = _StragglerSolver(
            problem_digest(problems[20], "straggler"), str(marker_dir), 20.0
        )
        client = SocketClient(workers=2)
        try:
            engine = HorizonEngine(
                solver,
                client=client,
                chunk_size=1,
                ledger=tmp_path,
                supervision=SupervisorConfig(
                    hedge_min_samples=8, hedge_multiplier=3.0
                ),
            )
            outcomes = engine.run(problems)
        finally:
            client.close()

        assert [o.result.ufc for o in outcomes] == serial_ufc
        summary = engine.last_summary
        assert summary.failed_slots == 0
        assert summary.fleet["hedges_launched"] >= 1
        assert summary.fleet["hedges_won"] >= 1
        lineage = outcomes[20].lineage
        assert lineage is not None
        assert lineage["hedged"] is True
        assert lineage["outcome"] == "ok"


class TestFleetHealth:
    def test_quarantine_and_respawn(self):
        client = SocketClient(workers=2)
        try:
            assert client.alive_workers() == ("w0", "w1")
            assert client.quarantine_worker("w1") is True
            assert client.alive_workers() == ("w0",)
            # The last worker cannot be quarantined.
            assert client.quarantine_worker("w0") is False
            # The survivor still serves.
            client.submit(_square, 6)
            assert client.wait_next(timeout_s=10.0)[1] == 36
            # The fleet can grow back: respawned workers get new ids.
            assert client.respawn_workers(1) == 1
            assert len(client.alive_workers()) == 2
            client.submit(_square, 7)
            assert client.wait_next(timeout_s=10.0)[1] == 49
        finally:
            client.close()

    def test_check_liveness_keeps_healthy_workers(self):
        client = SocketClient(workers=2)
        try:
            assert client.check_liveness(timeout_s=5.0) == []
            assert len(client.alive_workers()) == 2
        finally:
            client.close()


class TestWorkerChurnHarness:
    def test_churn_scenario_passes_and_is_bit_identical(self, tmp_path):
        report = run_worker_churn(
            {"workers": 2, "kills": 1, "seed": 0, "respawn": True},
            hours=12,
            ledger=tmp_path,
        )
        assert report.passed
        assert report.failed_slots == 0
        assert report.feasible_slots == 12
        assert report.resubmissions >= 1
        assert report.workers_lost == 1
        assert report.ufc_identical
        assert report.lineages and report.lineages[0]["attempts"] >= 2
        rendered = report.render()
        assert "verdict         : PASS" in rendered
        assert "bit-identical" in rendered
        run = load_run(report.ledger_path)
        assert run.finalized
        assert run.summary["fleet"]["resubmissions"] >= 1

    def test_week_under_churn_completes_certified_and_bit_identical(self):
        # The PR's acceptance run: a 168-slot week over a 2-worker
        # socket fleet with one worker hard-killed mid-run.  Zero
        # failed slots, every allocation certified feasible, total UFC
        # bit-identical to the fault-free baseline.
        report = run_worker_churn(
            {"workers": 2, "kills": 1, "seed": 0, "respawn": True},
            hours=168,
        )
        assert report.passed
        assert report.failed_slots == 0
        assert report.feasible_slots == 168
        assert report.resubmissions >= 1
        assert report.ufc_identical

    def test_churn_spec_validation(self):
        with pytest.raises(ValueError, match="at least 2 workers"):
            run_worker_churn({"workers": 1}, hours=6)
        with pytest.raises(ValueError, match="kills"):
            run_worker_churn({"kills": 99}, hours=6)
