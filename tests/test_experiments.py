"""Tests for the experiment drivers (repro.experiments).

Short horizons keep these fast; the full-length regenerations live in
``benchmarks/``.  Shape assertions mirror the paper's qualitative
claims, which must already hold on shorter windows.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.common import cached_comparison, evaluation_setup
from repro.experiments.fig4_utility import render_fig4, run_fig4
from repro.experiments.fig5_latency import render_fig5, run_fig5
from repro.experiments.fig6_energy import render_fig6, run_fig6
from repro.experiments.fig7_carbon import render_fig7, run_fig7
from repro.experiments.fig8_utilization import render_fig8, run_fig8
from repro.experiments.fig9_price_sweep import render_fig9, run_fig9
from repro.experiments.fig10_tax_sweep import render_fig10, run_fig10
from repro.experiments.fig11_convergence import render_fig11, run_fig11
from repro.experiments.table1 import PAPER_TABLE1, render_table1, run_table1
from repro.experiments.traces_fig3 import render_fig3, run_fig3

HOURS = 48


class TestTable1:
    def test_paper_relationships_hold(self):
        """The qualitative Table I statements (on the full week)."""
        result = run_table1()
        dallas = result.costs["dallas"]
        san_jose = result.costs["san_jose"]
        # Fuel cell is site-independent and equals demand * p0.
        assert dallas["fuel_cell"] == pytest.approx(san_jose["fuel_cell"])
        assert dallas["fuel_cell"] == pytest.approx(27957.0, rel=1e-6)
        # Dallas grid is far below fuel cell; San Jose is comparable.
        assert dallas["grid"] < 0.45 * dallas["fuel_cell"]
        assert 0.8 < san_jose["grid"] / san_jose["fuel_cell"] < 1.2
        # Hybrid never loses and wins decisively at San Jose.
        assert dallas["hybrid"] <= dallas["grid"] + 1e-9
        assert san_jose["hybrid"] < 0.85 * san_jose["grid"]

    def test_measured_close_to_paper(self):
        """Within 20% of every published cell (calibrated substitution)."""
        result = run_table1()
        for site, row in PAPER_TABLE1.items():
            for key, published in row.items():
                measured = result.costs[site][key]
                assert abs(measured - published) / published < 0.20, (site, key)

    def test_hybrid_is_pointwise_min(self):
        result = run_table1()
        for site in result.costs:
            p = result.prices[site]
            expected = float(result.demand_mwh @ np.minimum(p, 80.0))
            assert result.costs[site]["hybrid"] == pytest.approx(expected)

    def test_render_contains_all_cells(self):
        text = render_table1(run_table1())
        assert "Table I" in text
        assert "dallas" in text and "san_jose" in text
        assert "27,957" in text


class TestFig3:
    def test_summary_statistics(self):
        result = run_fig3(hours=HOURS)
        assert result.workload_total.shape == (HOURS,)
        assert set(result.price_stats) == {
            "calgary", "san_jose", "dallas", "pittsburgh",
        }
        # Spatial carbon diversity (the paper's Fig. 3 bottom panel).
        assert result.carbon_stats["san_jose"][0] < result.carbon_stats["calgary"][0]

    def test_render(self):
        text = render_fig3(run_fig3(hours=HOURS))
        assert "workload total" in text
        assert "calgary" in text


class TestFig4:
    def test_hybrid_dominates(self):
        result = run_fig4(hours=HOURS)
        assert (result.i_hg > -1e-4).all()
        assert (result.i_hf > 0).all()

    def test_fuel_cell_mostly_hurts_at_current_prices(self):
        result = run_fig4(hours=HOURS)
        assert (result.i_fg < 0).mean() > 0.5

    def test_series_lengths(self):
        result = run_fig4(hours=HOURS)
        assert len(result.i_hg) == HOURS
        assert len(result.i_hf) == HOURS
        assert len(result.i_fg) == HOURS

    def test_render(self):
        text = render_fig4(run_fig4(hours=HOURS))
        assert "I_hg" in text and "I_hf" in text and "I_fg" in text


class TestFig5:
    def test_load_following_shape(self):
        """Fuel cell best latency; hybrid close; grid worst on average."""
        result = run_fig5(hours=HOURS)
        assert result.fuel_cell.mean() <= result.hybrid.mean() + 0.05
        assert result.hybrid.mean() <= result.grid.mean() + 0.05
        # All within the realistic 10-30 ms band of the paper.
        for series in (result.grid, result.fuel_cell, result.hybrid):
            assert 10.0 < series.mean() < 30.0

    def test_render(self):
        assert "latency" in render_fig5(run_fig5(hours=HOURS))


class TestFig6:
    def test_cost_ordering(self):
        result = run_fig6(hours=HOURS)
        assert result.fuel_cell.sum() > result.grid.sum()
        assert result.hybrid.sum() <= result.grid.sum() + 1e-6
        # Meaningful arbitrage: >25% saving vs fuel-cell-only.
        assert result.hybrid.sum() < 0.75 * result.fuel_cell.sum()

    def test_render(self):
        assert "energy cost" in render_fig6(run_fig6(hours=HOURS))


class TestFig7:
    def test_fuel_cell_is_carbon_free(self):
        result = run_fig7(hours=HOURS)
        np.testing.assert_allclose(result.fuel_cell_cost, 0.0, atol=1e-8)

    def test_hybrid_emits_close_to_grid(self):
        """The paper's headline: at $25/t, hybrid still emits most of
        grid's carbon."""
        result = run_fig7(hours=HOURS)
        ratio = result.hybrid_kg.sum() / result.grid_kg.sum()
        assert 0.6 < ratio <= 1.0 + 1e-9

    def test_render(self):
        assert "carbon" in render_fig7(run_fig7(hours=HOURS))


class TestFig8:
    def test_poor_utilization_at_current_prices(self):
        result = run_fig8(hours=HOURS)
        assert 0.05 < result.mean < 0.35   # paper: 16.2%
        assert result.peak < 0.85          # paper: never reaches 70%
        assert (result.utilization >= 0).all()
        assert (result.utilization <= 1.0 + 1e-9).all()

    def test_render_mentions_paper_number(self):
        assert "16.2%" in render_fig8(run_fig8(hours=HOURS))


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig9(prices=(20.0, 45.0, 80.0, 110.0), hours=HOURS)

    def test_improvement_decreases_with_price(self, result):
        assert (np.diff(result.improvement) <= 1e-6).all()

    def test_utilization_decreases_with_price(self, result):
        assert (np.diff(result.utilization) <= 1e-6).all()

    def test_cheap_fuel_saturates_utilization(self, result):
        assert result.utilization[0] > 0.95  # p0 = $20/MWh

    def test_current_price_point_matches_paper_band(self, result):
        # p0 = 80: utilization ~11-20%.
        idx = list(result.prices).index(80.0)
        assert 0.05 < result.utilization[idx] < 0.30

    def test_render(self, result):
        text = render_fig9(result)
        assert "p0" in text and "utilization" in text


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig10(rates=(0.0, 25.0, 80.0, 140.0), hours=HOURS)

    def test_both_curves_increase_with_tax(self, result):
        assert (np.diff(result.improvement) >= -1e-6).all()
        assert (np.diff(result.utilization) >= -1e-6).all()

    def test_high_tax_drives_full_utilization(self, result):
        assert result.utilization[-1] > 0.80  # $140/tonne

    def test_current_band_fails_to_promote(self, result):
        idx = list(result.rates).index(25.0)
        assert result.utilization[idx] < 0.30
        assert result.improvement[idx] < 0.20

    def test_render(self, result):
        assert "carbon-tax" in render_fig10(result)


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig11(hours=24)

    def test_all_runs_converge(self, result):
        assert result.converged.all()

    def test_iteration_band(self, result):
        assert result.iterations.min() >= 20
        assert result.iterations.max() <= 400

    def test_cdf_monotone_to_one(self, result):
        assert (np.diff(result.cdf_fractions) > 0).all()
        assert result.cdf_fractions[-1] == pytest.approx(1.0)

    def test_fraction_within_helper(self, result):
        assert result.fraction_within(int(result.iterations.max())) == 1.0
        assert result.fraction_within(0) == 0.0

    def test_render(self, result):
        text = render_fig11(result)
        assert "CDF" in text and "paper: 37" in text


class TestCommon:
    def test_evaluation_setup_overrides(self):
        bundle, model = evaluation_setup(hours=12, fuel_cell_price=55.0,
                                         carbon_tax=90.0)
        assert bundle.hours == 12
        assert model.fuel_cell_price == 55.0
        assert model.emission_costs[0].rate_per_tonne == 90.0

    def test_cached_comparison_identity(self):
        a = cached_comparison(hours=HOURS)
        b = cached_comparison(hours=HOURS)
        assert a is b
