"""Tests for span tracing (repro.obs.spans) and its distributed hooks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.admg.solver import DistributedUFCSolver
from repro.core.strategies import HYBRID
from repro.distributed.coordinator import DistributedRuntime
from repro.distributed.staleness import StalenessRuntime
from repro.obs import (
    NULL_TRACER,
    RecordingTelemetry,
    SpanTracer,
    as_tracer,
)
from repro.sim.simulator import Simulator


@pytest.fixture()
def slot_problem(small_model, small_bundle):
    sim = Simulator(small_model, small_bundle)
    return sim.problem_for_slot(0, HYBRID)


class TestSpanTracer:
    def test_nesting_links_parents(self):
        tracer = SpanTracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner", step=1) as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # Finished in leaf-first order.
        assert [s.name for s in tracer.spans] == ["inner", "outer"]
        assert tracer.spans[0].attributes["step"] == 1

    def test_timings_are_recorded(self):
        tracer = SpanTracer()
        with tracer.span("work"):
            sum(range(1000))
        (span,) = tracer.spans
        assert span.wall_s >= 0.0
        assert span.cpu_s >= 0.0

    def test_span_survives_exceptions(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert [s.name for s in tracer.spans] == ["doomed"]
        # The stack unwound: a new root has no parent.
        with tracer.span("after") as after:
            pass
        assert after.parent_id is None

    def test_telemetry_export(self):
        sink = RecordingTelemetry()
        tracer = SpanTracer(telemetry=sink)
        with tracer.span("exported", foo="bar"):
            pass
        (event,) = sink.events
        assert event.kind == "span"
        assert event.name == "exported"
        assert event.tags["foo"] == "bar"
        assert "span_id" in event.tags

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("nothing", x=1) as span:
            span.set(y=2)
        assert not NULL_TRACER.enabled
        assert as_tracer(None) is NULL_TRACER
        real = SpanTracer()
        assert as_tracer(real) is real


class TestAdopt:
    def _remote_dicts(self):
        # A worker's tracer: a root span with one child, exported as
        # plain dicts with worker-local ids.
        remote = SpanTracer()
        with remote.span("worker.slot", index=7):
            with remote.span("worker.solve"):
                pass
        return remote.to_dicts()

    def test_adopt_reparents_roots_and_remaps_ids(self):
        parent = SpanTracer()
        with parent.span("engine.run") as run_span:
            adopted = parent.adopt(self._remote_dicts(), parent_id=run_span.span_id)
        by_name = {s.name: s for s in adopted}
        root = by_name["worker.slot"]
        child = by_name["worker.solve"]
        # Remote roots graft under the given parent; internal links are
        # rewritten to the fresh local ids.
        assert root.parent_id == run_span.span_id
        assert child.parent_id == root.span_id
        assert root.attributes["index"] == 7

    def test_adopted_ids_never_collide_with_local_spans(self):
        parent = SpanTracer()
        with parent.span("local.a"):
            pass
        adopted = parent.adopt(self._remote_dicts())
        local_ids = {s.span_id for s in parent.spans if s not in adopted}
        assert not local_ids & {s.span_id for s in adopted}
        # Without a parent_id, remote roots stay roots.
        root = next(s for s in adopted if s.name == "worker.slot")
        assert root.parent_id is None

    def test_adopted_spans_flow_to_telemetry(self):
        sink = RecordingTelemetry()
        parent = SpanTracer(telemetry=sink)
        parent.adopt(self._remote_dicts())
        assert {e.name for e in sink.events} == {"worker.slot", "worker.solve"}
        assert all(e.kind == "span" for e in sink.events)


class TestDistributedSpans:
    def test_round_spans_match_iterations_and_bytes(self, slot_problem):
        tracer = SpanTracer()
        solver = DistributedUFCSolver(tol=1e-3, max_iter=400)
        run = DistributedRuntime(slot_problem, solver, tracer=tracer).run()
        rounds = tracer.by_name("distributed.round")
        assert len(rounds) == run.iterations
        m = slot_problem.model.num_frontends
        n = slot_problem.model.num_datacenters
        first = rounds[0].attributes
        # 2 MN messages, 3 MN floats = 24 MN bytes per round.
        assert first["messages"] == 2 * m * n
        assert first["bytes"] == 24 * m * n
        assert first["frontend_subproblem_s"] >= 0.0
        assert first["datacenter_subproblem_s"] >= 0.0
        (root,) = tracer.by_name("distributed.solve")
        assert root.attributes["iterations"] == run.iterations
        assert root.attributes["messages"] == run.messages_sent
        # Every round span is a child of the root solve span.
        assert {s.parent_id for s in rounds} == {root.span_id}

    def test_round_residuals_match_run_history(self, slot_problem):
        tracer = SpanTracer()
        solver = DistributedUFCSolver(tol=1e-3, max_iter=400)
        run = DistributedRuntime(slot_problem, solver, tracer=tracer).run()
        traced = [
            s.attributes["coupling_residual"]
            for s in tracer.by_name("distributed.round")
        ]
        np.testing.assert_allclose(traced, run.coupling_residuals)

    def test_tracing_is_bit_identical(self, slot_problem):
        solver = DistributedUFCSolver(tol=1e-3, max_iter=400)
        plain = DistributedRuntime(slot_problem, solver).run()
        solver2 = DistributedUFCSolver(tol=1e-3, max_iter=400)
        traced = DistributedRuntime(
            slot_problem, solver2, tracer=SpanTracer()
        ).run()
        assert (plain.allocation.lam == traced.allocation.lam).all()
        assert plain.iterations == traced.iterations
        assert plain.ufc == traced.ufc


class TestStalenessSpans:
    def test_stale_round_spans_carry_staleness(self, slot_problem):
        tracer = SpanTracer()
        rt = StalenessRuntime(
            slot_problem, delay_probability=0.2, seed=7, tracer=tracer
        )
        run = rt.run()
        rounds = tracer.by_name("distributed.stale_round")
        assert len(rounds) == run.iterations
        assert sum(s.attributes["delayed"] for s in rounds) == run.delayed_messages
        assert sum(s.attributes["messages"] for s in rounds) == run.total_messages
        # Stragglers applied at round k are the messages delayed at k-1.
        for prev, cur in zip(rounds, rounds[1:]):
            assert cur.attributes["stragglers_applied"] == prev.attributes["delayed"]
        (root,) = tracer.by_name("distributed.stale_solve")
        assert root.attributes["delayed_messages"] == run.delayed_messages

    def test_tracing_never_consumes_the_delay_rng(self, slot_problem):
        plain = StalenessRuntime(slot_problem, delay_probability=0.3, seed=11).run()
        traced = StalenessRuntime(
            slot_problem, delay_probability=0.3, seed=11, tracer=SpanTracer()
        ).run()
        assert plain.delayed_messages == traced.delayed_messages
        assert plain.iterations == traced.iterations
        assert (plain.allocation.lam == traced.allocation.lam).all()
