"""Tests for repro.optim.rank_one: the capacitated diag+rank-1 QP."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.optim.rank_one import solve_capped_rank_one_qp


def objective(a, c, rho, beta):
    return 0.5 * rho * (a @ a) + 0.5 * rho * beta**2 * a.sum() ** 2 - c @ a


def reference_solution(c, rho, beta, cap, iters=300_000):
    """Projected gradient reference (slow but dependable)."""
    n = len(c)
    a = np.zeros(n)
    lip = rho * (1 + n * beta**2)
    step = 1.0 / lip
    for _ in range(iters):
        grad = rho * a + rho * beta**2 * a.sum() - c
        a = np.maximum(a - step * grad, 0.0)
        if a.sum() > cap:
            # project onto {sum <= cap, a >= 0}: scale-down is not exact,
            # use the simplex projection on the violated face.
            from repro.optim.simplex import project_simplex

            a = project_simplex(a, cap)
    return a


class TestCappedRankOneQP:
    def test_all_negative_rewards_give_zero(self):
        a = solve_capped_rank_one_qp(np.array([-1.0, -2.0]), rho=1.0, beta=0.5, cap=10.0)
        np.testing.assert_allclose(a, [0.0, 0.0])

    def test_zero_cap_gives_zero(self):
        a = solve_capped_rank_one_qp(np.array([5.0, 3.0]), rho=1.0, beta=0.0, cap=0.0)
        np.testing.assert_allclose(a, [0.0, 0.0])

    def test_empty_input(self):
        a = solve_capped_rank_one_qp(np.array([]), rho=1.0, beta=1.0, cap=1.0)
        assert a.shape == (0,)

    def test_separable_case_beta_zero(self):
        """With beta = 0 and a loose cap, a_i = max(0, c_i / rho)."""
        c = np.array([2.0, -1.0, 0.5])
        a = solve_capped_rank_one_qp(c, rho=2.0, beta=0.0, cap=100.0)
        np.testing.assert_allclose(a, [1.0, 0.0, 0.25])

    def test_uncapped_fixed_point_identity(self):
        """The uncapped solution satisfies a_i = (c_i - rho b^2 T)+/rho."""
        c = np.array([3.0, 1.0, 0.2, -0.5])
        rho, beta = 0.7, 0.6
        a = solve_capped_rank_one_qp(c, rho=rho, beta=beta, cap=1e9)
        t = a.sum()
        expected = np.maximum((c - rho * beta**2 * t) / rho, 0.0)
        np.testing.assert_allclose(a, expected, atol=1e-10)

    def test_cap_binds_when_rewards_large(self):
        c = np.array([10.0, 12.0, 8.0])
        a = solve_capped_rank_one_qp(c, rho=0.3, beta=0.1, cap=2.0)
        assert a.sum() == pytest.approx(2.0, abs=1e-10)
        assert (a >= 0).all()

    def test_invalid_rho(self):
        with pytest.raises(ValueError):
            solve_capped_rank_one_qp(np.array([1.0]), rho=0.0, beta=1.0, cap=1.0)

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            solve_capped_rank_one_qp(np.array([1.0]), rho=1.0, beta=1.0, cap=-1.0)

    def test_2d_input_rejected(self):
        with pytest.raises(ValueError):
            solve_capped_rank_one_qp(np.zeros((2, 2)), rho=1.0, beta=1.0, cap=1.0)

    def test_matches_reference_uncapped(self):
        rng = np.random.default_rng(7)
        c = rng.normal(size=6) * 3
        a = solve_capped_rank_one_qp(c, rho=0.5, beta=0.3, cap=1e6)
        ref = reference_solution(c, 0.5, 0.3, 1e6, iters=20_000)
        assert objective(a, c, 0.5, 0.3) <= objective(ref, c, 0.5, 0.3) + 1e-8

    def test_matches_reference_capped(self):
        rng = np.random.default_rng(11)
        c = np.abs(rng.normal(size=5)) * 5
        a = solve_capped_rank_one_qp(c, rho=0.4, beta=0.2, cap=3.0)
        ref = reference_solution(c, 0.4, 0.2, 3.0, iters=20_000)
        assert objective(a, c, 0.4, 0.2) <= objective(ref, c, 0.4, 0.2) + 1e-7

    @given(
        c=hnp.arrays(
            dtype=float, shape=st.integers(1, 10),
            elements=st.floats(min_value=-20, max_value=20, allow_nan=False),
        ),
        rho=st.floats(min_value=0.05, max_value=5.0),
        beta=st.floats(min_value=0.0, max_value=2.0),
        cap=st.one_of(
            st.just(0.0), st.floats(min_value=1e-3, max_value=50.0)
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_feasibility_and_kkt(self, c, rho, beta, cap):
        a = solve_capped_rank_one_qp(c, rho=rho, beta=beta, cap=cap)
        assert (a >= -1e-12).all()
        assert a.sum() <= cap * (1 + 1e-9) + 1e-9
        if cap == 0.0:
            np.testing.assert_allclose(a, 0.0)
            return
        # KKT: grad_i + sigma >= 0 with equality on the support.
        t = a.sum()
        grad = rho * a + rho * beta**2 * t - c
        sigma = 0.0
        if t >= cap * (1 - 1e-9):
            support = a > 1e-12
            if support.any():
                sigma = float(np.max(-grad[support]))
                sigma = max(sigma, 0.0)
            else:
                sigma = float(max(0.0, np.max(-grad)))
        scale = max(1.0, np.abs(c).max(initial=0.0))
        support = a > 1e-10 * max(1.0, cap)
        if support.any():
            assert np.abs(grad[support] + sigma).max() < 1e-6 * scale
        if (~support).any():
            assert (grad[~support] + sigma >= -1e-6 * scale).all()

    @given(seed=st.integers(0, 300))
    @settings(max_examples=60, deadline=None)
    def test_beats_random_feasible_points(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 8))
        c = rng.normal(size=n) * 4
        rho = float(rng.uniform(0.1, 2.0))
        beta = float(rng.uniform(0.0, 1.0))
        cap = float(rng.uniform(0.5, 10.0))
        a = solve_capped_rank_one_qp(c, rho=rho, beta=beta, cap=cap)
        val = objective(a, c, rho, beta)
        for _ in range(30):
            y = rng.random(n)
            y = y / y.sum() * rng.uniform(0, cap)
            assert val <= objective(y, c, rho, beta) + 1e-7
