"""Tests for the process-local metrics registry (repro.obs.metrics)."""

from __future__ import annotations

import json
import math
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    DEFAULT_ITERATION_BUCKETS,
    DEFAULT_RESIDUAL_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    MetricsRegistry,
    parse_prometheus,
)
from repro.obs.metrics import _escape_label, _unescape_label


class TestCounterGauge:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_test_total", help="a test counter")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_test_total")
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_gauge_moves_both_ways(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_depth")
        g.set(5.0)
        g.inc(2.0)
        g.dec(3.0)
        assert g.value == 4.0

    def test_labeled_children_are_distinct(self):
        reg = MetricsRegistry()
        reg.counter("repro_runs_total", solver="centralized").inc()
        reg.counter("repro_runs_total", solver="distributed").inc(2)
        # Same labels → same child, regardless of keyword order.
        assert reg.counter("repro_runs_total", solver="centralized").value == 1
        values = {
            dict(labels).get("solver"): value
            for name, labels, value in reg.samples()
            if name == "repro_runs_total"
        }
        assert values == {"centralized": 1.0, "distributed": 2.0}

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_thing")
        with pytest.raises(ValueError):
            reg.gauge("repro_thing")


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_lat_seconds", buckets=(0.1, 1.0))
        h.observe(0.1)   # le=0.1 (inclusive)
        h.observe(0.5)   # le=1.0
        h.observe(2.0)   # +Inf overflow
        assert h.count == 3
        assert h.sum == pytest.approx(2.6)
        # Cumulative counts: le=0.1 → 1, le=1.0 → 2, +Inf → 3.
        assert h.cumulative() == [1, 2, 3]

    def test_edges_must_increase(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("repro_bad", buckets=(1.0, 1.0))

    def test_default_bucket_families_are_sane(self):
        for edges in (
            DEFAULT_TIME_BUCKETS,
            DEFAULT_ITERATION_BUCKETS,
            DEFAULT_RESIDUAL_BUCKETS,
        ):
            assert list(edges) == sorted(edges)
            assert len(edges) == len(set(edges))

    def test_bucket_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.histogram("repro_h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            reg.histogram("repro_h", buckets=(1.0, 3.0))


class TestExposition:
    def _populated(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("repro_solves_total", help="solves", solver="ipqp").inc(7)
        reg.gauge("repro_last_run_seconds").set(1.25)
        h = reg.histogram(
            "repro_solve_seconds", help="per-slot", buckets=(0.01, 0.1, 1.0)
        )
        for v in (0.005, 0.02, 0.5, 3.0):
            h.observe(v)
        return reg

    def test_json_roundtrip_preserves_samples(self):
        reg = self._populated()
        clone = MetricsRegistry.from_dict(json.loads(reg.to_json()))
        assert clone.samples() == reg.samples()

    def test_prometheus_roundtrip_preserves_samples(self):
        reg = self._populated()
        parsed = parse_prometheus(reg.to_prometheus())
        expected = {
            (name, tuple(sorted(labels))): value
            for name, labels, value in reg.samples()
        }
        got = {
            (name, tuple(sorted(labels))): value
            for (name, labels), value in parsed.items()
        }
        assert got == expected

    def test_prometheus_text_shape(self):
        text = self._populated().to_prometheus()
        assert "# TYPE repro_solves_total counter" in text
        assert 'repro_solves_total{solver="ipqp"} 7' in text
        assert "# TYPE repro_solve_seconds histogram" in text
        assert 'repro_solve_seconds_bucket{le="+Inf"} 4' in text
        assert "repro_solve_seconds_count 4" in text

    def test_label_value_escaping_roundtrips(self):
        reg = MetricsRegistry()
        tricky = 'a"b\\c\nd'
        reg.counter("repro_esc_total", path=tricky).inc()
        parsed = parse_prometheus(reg.to_prometheus())
        ((name, labels),) = parsed.keys()
        assert name == "repro_esc_total"
        assert dict(labels)["path"] == tricky

    @given(st.text())
    @settings(max_examples=200, deadline=None)
    def test_escape_unescape_roundtrips_any_text(self, value):
        assert _unescape_label(_escape_label(value)) == value

    @given(st.text())
    @settings(max_examples=200, deadline=None)
    def test_exposition_roundtrips_any_label_value(self, value):
        # The full pipeline: registry → exposition text → parser.  Any
        # label value must survive, including chained backslashes
        # followed by literal n/quote characters — the inputs that a
        # replace-chain unescaper corrupts — and characters like form
        # feed that str.splitlines would treat as line breaks.
        reg = MetricsRegistry()
        reg.counter("repro_prop_total", path=value).inc()
        parsed = parse_prometheus(reg.to_prometheus())
        ((name, labels),) = parsed.keys()
        assert name == "repro_prop_total"
        assert dict(labels)["path"] == value

    def test_infinite_values_survive_both_formats(self):
        reg = MetricsRegistry()
        reg.gauge("repro_inf").set(math.inf)
        clone = MetricsRegistry.from_dict(reg.to_dict())
        assert clone.samples() == reg.samples()
        parsed = parse_prometheus(reg.to_prometheus())
        assert list(parsed.values()) == [math.inf]


class TestMerge:
    def test_counters_and_histograms_accumulate(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        for reg, n in ((a, 2), (b, 3)):
            reg.counter("repro_m_total", worker="7").inc(n)
            h = reg.histogram("repro_m_seconds", buckets=(0.1, 1.0))
            h.observe(0.05 * n)
            h.observe(2.0)
        a.merge_samples(b.to_dict())
        assert a.counter("repro_m_total", worker="7").value == 5
        merged = a.histogram("repro_m_seconds", buckets=(0.1, 1.0))
        assert merged.count == 4
        assert merged.sum == pytest.approx(0.1 + 0.15 + 4.0)
        assert merged.cumulative() == [1, 2, 4]

    def test_gauges_are_last_write_wins(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.gauge("repro_depth").set(5.0)
        b.gauge("repro_depth").set(2.0)
        a.merge_samples(b.to_dict())
        assert a.gauge("repro_depth").value == 2.0

    def test_merge_into_empty_reproduces_samples(self):
        src = MetricsRegistry()
        src.counter("repro_x_total", solver="ipqp").inc(3)
        src.histogram("repro_x_seconds", buckets=(0.1,)).observe(0.04)
        dst = MetricsRegistry()
        dst.merge_samples(src.to_dict())
        assert dst.samples() == src.samples()

    def test_merge_convenience_equals_merge_samples(self):
        a, b, c = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
        src = MetricsRegistry()
        src.counter("repro_y_total").inc(4)
        for reg in (a, b, c):
            reg.counter("repro_y_total").inc()
        a.merge(src)
        b.merge_samples(src.to_dict())
        assert a.samples() == b.samples()

    def test_bucket_mismatch_raises_instead_of_splitting(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.histogram("repro_h_seconds", buckets=(0.1, 1.0)).observe(0.5)
        b.histogram("repro_h_seconds", buckets=(0.1, 1.0, 10.0)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge_samples(b.to_dict())

    def test_kind_mismatch_raises(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("repro_k").inc()
        b.gauge("repro_k").set(1.0)
        with pytest.raises(ValueError):
            a.merge_samples(b.to_dict())


class TestConcurrency:
    def test_parallel_increments_are_not_lost(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_race_total")

        def work():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000
