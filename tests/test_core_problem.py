"""Tests for repro.core.problem: metrics, QP compilation, strategies.

The tiny fixture has exact hand-computable numbers:
alpha = [0.12, 0.24] MW, beta = 1.2e-4 MW/server,
arrivals = [400, 600, 500], prices = [60, 30] $/MWh,
carbon rates = [300, 600] kg/MWh, $25/tonne tax.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.centralized import CentralizedSolver
from repro.core.problem import SlotInputs, UFCProblem
from repro.core.solution import Allocation
from repro.core.strategies import FUEL_CELL, GRID, HYBRID


@pytest.fixture()
def hand_allocation():
    """Loads [1000, 500] -> demand [0.24, 0.30] MW, split by hand."""
    lam = np.array([[400.0, 0.0], [600.0, 0.0], [0.0, 500.0]])
    mu = np.array([0.1, 0.0])
    nu = np.array([0.14, 0.30])
    return Allocation(lam=lam, mu=mu, nu=nu)


class TestMetrics:
    def test_demand(self, tiny_problem, hand_allocation):
        np.testing.assert_allclose(
            tiny_problem.demand_mw(hand_allocation),
            [0.12 + 1.2e-4 * 1000, 0.24 + 1.2e-4 * 500],
        )

    def test_energy_cost(self, tiny_problem, hand_allocation):
        # 60*0.14 + 30*0.30 + 80*0.1 = 8.4 + 9 + 8 = 25.4.
        assert tiny_problem.energy_cost(hand_allocation) == pytest.approx(25.4)

    def test_carbon_kg(self, tiny_problem, hand_allocation):
        # 300*0.14 + 600*0.30 = 42 + 180 = 222 kg.
        assert tiny_problem.carbon_kg(hand_allocation) == pytest.approx(222.0)

    def test_carbon_cost(self, tiny_problem, hand_allocation):
        # $25/tonne -> 0.025 $/kg * 222 kg = 5.55.
        assert tiny_problem.carbon_cost(hand_allocation) == pytest.approx(5.55)

    def test_average_latency(self, tiny_problem, hand_allocation):
        # Latencies (5, 10, 5) weighted by (400, 600, 500).
        expected = (400 * 5 + 600 * 10 + 500 * 5) / 1500
        assert tiny_problem.average_latency_ms(hand_allocation) == pytest.approx(
            expected
        )

    def test_utility_quadratic(self, tiny_problem, hand_allocation):
        # U_i = -A_i * (L in s)^2 with each FE on a single DC.
        expected = -(400 * 0.005**2 + 600 * 0.010**2 + 500 * 0.005**2)
        assert tiny_problem.utility(hand_allocation) == pytest.approx(expected)

    def test_ufc_composition(self, tiny_problem, hand_allocation):
        p = tiny_problem
        a = hand_allocation
        assert p.ufc(a) == pytest.approx(
            10.0 * p.utility(a) - p.carbon_cost(a) - p.energy_cost(a)
        )
        assert p.objective_min(a) == pytest.approx(-p.ufc(a))

    def test_fuel_cell_utilization(self, tiny_problem, hand_allocation):
        demand = tiny_problem.demand_mw(hand_allocation).sum()
        assert tiny_problem.fuel_cell_utilization(hand_allocation) == pytest.approx(
            0.1 / demand
        )

    def test_feasibility_of_hand_point(self, tiny_problem, hand_allocation):
        report = tiny_problem.check_feasibility(hand_allocation, tol=1e-9)
        assert report.ok


class TestProblemValidation:
    def test_dimension_mismatches(self, tiny_model):
        with pytest.raises(ValueError):
            UFCProblem(
                tiny_model,
                SlotInputs(np.ones(2), np.ones(2), np.ones(2)),
            )
        with pytest.raises(ValueError):
            UFCProblem(
                tiny_model,
                SlotInputs(np.ones(3), np.ones(3), np.ones(2)),
            )

    def test_overload_rejected(self, tiny_model):
        """Arrivals above total capacity make (4)+(5) infeasible."""
        with pytest.raises(ValueError):
            UFCProblem(
                tiny_model,
                SlotInputs(
                    arrivals=np.array([2000.0, 2000.0, 2000.0]),
                    prices=np.ones(2),
                    carbon_rates=np.ones(2),
                ),
            )

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            SlotInputs(np.array([-1.0]), np.ones(1), np.ones(1))
        with pytest.raises(ValueError):
            SlotInputs(np.ones(1), np.array([-2.0]), np.ones(1))
        with pytest.raises(ValueError):
            SlotInputs(np.ones(1), np.ones(1), np.array([-3.0]))


class TestQPCompilation:
    def test_qp_objective_matches_problem(self, tiny_problem):
        """The compiled QP value tracks objective_min up to a constant,
        checked at two feasible points."""
        qp = tiny_problem.to_qp()

        def qp_value_at(alloc):
            x = np.concatenate(
                [alloc.lam.ravel() / qp.lam_scale, alloc.mu, alloc.nu]
            )
            return 0.5 * x @ qp.P @ x + qp.q @ x

        a1 = Allocation(
            lam=np.array([[400.0, 0.0], [600.0, 0.0], [500.0, 0.0]]),
            mu=np.array([0.1, 0.0]),
            nu=np.array([0.2, 0.24]),
        )
        a2 = Allocation(
            lam=np.array([[0.0, 400.0], [0.0, 600.0], [0.0, 500.0]]),
            mu=np.array([0.0, 0.1]),
            nu=np.array([0.12, 0.32]),
        )
        gap1 = tiny_problem.objective_min(a1) - qp_value_at(a1)
        gap2 = tiny_problem.objective_min(a2) - qp_value_at(a2)
        assert gap1 == pytest.approx(gap2, abs=1e-8)

    def test_equality_rows(self, tiny_problem):
        qp = tiny_problem.to_qp()
        m, n = 3, 2
        assert qp.A.shape[0] == m + n
        assert qp.b[:m] == pytest.approx(
            tiny_problem.inputs.arrivals / qp.lam_scale
        )
        assert qp.b[m:] == pytest.approx(-tiny_problem.model.alphas)

    def test_grid_strategy_drops_mu(self, tiny_model, tiny_inputs):
        problem = UFCProblem(tiny_model, tiny_inputs, strategy=GRID)
        qp = problem.to_qp()
        assert qp.mu_offset is None
        assert qp.nu_offset is not None
        alloc = qp.extract(np.ones(qp.P.shape[0]))
        np.testing.assert_allclose(alloc.mu, 0.0)

    def test_fuel_cell_strategy_drops_nu(self, tiny_model, tiny_inputs):
        problem = UFCProblem(tiny_model, tiny_inputs, strategy=FUEL_CELL)
        qp = problem.to_qp()
        assert qp.nu_offset is None
        assert qp.mu_offset is not None
        alloc = qp.extract(np.ones(qp.P.shape[0]))
        np.testing.assert_allclose(alloc.nu, 0.0)

    def test_workload_scaling_roundtrip(self, tiny_problem):
        qp = tiny_problem.to_qp(workload_scale=250.0)
        assert qp.lam_scale == 250.0
        x = np.zeros(qp.P.shape[0])
        x[:6] = 2.0
        alloc = qp.extract(x)
        np.testing.assert_allclose(alloc.lam, 500.0)

    def test_invalid_scale_rejected(self, tiny_problem):
        with pytest.raises(ValueError):
            tiny_problem.to_qp(workload_scale=0.0)

    def test_scaling_does_not_change_optimum(self, tiny_problem):
        sol_a = CentralizedSolver().solve(tiny_problem)
        qp = tiny_problem.to_qp(workload_scale=100.0)
        from repro.optim.ipqp import solve_qp

        res = solve_qp(qp.P, qp.q, A=qp.A, b=qp.b, G=qp.G, h=qp.h)
        alloc = qp.extract(res.x)
        assert tiny_problem.ufc(alloc) == pytest.approx(sol_a.ufc, rel=1e-5)


class TestStrategySemantics:
    def test_grid_solution_has_zero_mu(self, tiny_model, tiny_inputs):
        res = CentralizedSolver().solve(
            UFCProblem(tiny_model, tiny_inputs, strategy=GRID)
        )
        np.testing.assert_allclose(res.allocation.mu, 0.0)
        assert res.converged

    def test_fuel_cell_solution_has_zero_nu(self, tiny_model, tiny_inputs):
        res = CentralizedSolver().solve(
            UFCProblem(tiny_model, tiny_inputs, strategy=FUEL_CELL)
        )
        np.testing.assert_allclose(res.allocation.nu, 0.0)
        assert res.converged

    def test_hybrid_dominates_both(self, tiny_model, tiny_inputs):
        """Hybrid's feasible set contains both others' — its UFC wins."""
        solver = CentralizedSolver()
        hybrid = solver.solve(UFCProblem(tiny_model, tiny_inputs, strategy=HYBRID))
        grid = solver.solve(UFCProblem(tiny_model, tiny_inputs, strategy=GRID))
        fc = solver.solve(UFCProblem(tiny_model, tiny_inputs, strategy=FUEL_CELL))
        assert hybrid.ufc >= grid.ufc - 1e-6 * abs(grid.ufc)
        assert hybrid.ufc >= fc.ufc - 1e-6 * abs(fc.ufc)

    def test_cheap_grid_price_shuts_fuel_cells(self, tiny_model):
        """With grid far below p0 everywhere, hybrid burns no fuel."""
        inputs = SlotInputs(
            arrivals=np.array([400.0, 600.0, 500.0]),
            prices=np.array([10.0, 10.0]),
            carbon_rates=np.array([100.0, 100.0]),
        )
        res = CentralizedSolver().solve(UFCProblem(tiny_model, inputs))
        np.testing.assert_allclose(res.allocation.mu, 0.0, atol=1e-6)

    def test_dear_grid_price_maxes_fuel_cells(self, tiny_model):
        """With grid far above p0 everywhere, hybrid covers all demand
        with fuel cells (capacity allows full coverage)."""
        inputs = SlotInputs(
            arrivals=np.array([400.0, 600.0, 500.0]),
            prices=np.array([300.0, 300.0]),
            carbon_rates=np.array([100.0, 100.0]),
        )
        problem = UFCProblem(tiny_model, inputs)
        res = CentralizedSolver().solve(problem)
        np.testing.assert_allclose(res.allocation.nu, 0.0, atol=1e-5)
