"""Tests for the message-passing deployment (repro.distributed)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.admg.solver import DistributedUFCSolver
from repro.core.strategies import ALL_STRATEGIES, HYBRID
from repro.distributed.agents import FrontEndAgent
from repro.distributed.coordinator import DistributedRuntime
from repro.distributed.messages import (
    RoutingAssignment,
    RoutingProposal,
    SimulatedNetwork,
)
from repro.sim.simulator import Simulator


class TestMessages:
    def test_payload_float_counting(self):
        p = RoutingProposal(sender="fe0", receiver="dc1", lam=1.0, varphi=2.0)
        assert p.payload_floats() == 2
        a = RoutingAssignment(sender="dc1", receiver="fe0", a=3.0)
        assert a.payload_floats() == 1

    def test_network_accounting(self):
        net = SimulatedNetwork()
        net.send(RoutingProposal(sender="fe0", receiver="dc0", lam=1.0, varphi=0.0))
        net.send(RoutingAssignment(sender="dc0", receiver="fe0", a=1.0))
        assert net.messages_sent == 2
        assert net.floats_sent == 3
        assert net.bytes_sent == 24

    def test_delivery_drains_queue(self):
        net = SimulatedNetwork()
        net.send(RoutingProposal(sender="fe0", receiver="dc0", lam=1.0, varphi=0.0))
        inbox = net.deliver("dc0")
        assert len(inbox) == 1
        assert net.deliver("dc0") == []
        assert net.deliver("nobody") == []

    def test_in_order_delivery(self):
        net = SimulatedNetwork()
        for k in range(5):
            net.send(
                RoutingAssignment(sender=f"dc{k}", receiver="fe0", a=float(k))
            )
        inbox = net.deliver("fe0")
        assert [m.a for m in inbox] == [0.0, 1.0, 2.0, 3.0, 4.0]


class TestRuntimeEquivalence:
    """The message-passing deployment must replicate the matrix solver."""

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.name)
    def test_identical_iterates_and_counts(self, small_model, small_bundle, strategy):
        sim = Simulator(small_model, small_bundle)
        problem = sim.problem_for_slot(2, strategy)
        solver = DistributedUFCSolver(rho=0.3, tol=1e-3, max_iter=600)
        matrix = solver.solve(problem)
        runtime = DistributedRuntime(problem, solver)
        run = runtime.run()
        assert run.iterations == matrix.iterations
        assert run.converged == matrix.converged
        np.testing.assert_allclose(
            run.allocation.lam, matrix.allocation.lam, atol=1e-8
        )
        np.testing.assert_allclose(run.allocation.mu, matrix.allocation.mu, atol=1e-9)
        np.testing.assert_allclose(run.allocation.nu, matrix.allocation.nu, atol=1e-9)
        assert run.ufc == pytest.approx(matrix.ufc, rel=1e-9)

    def test_message_complexity_is_2mn_per_round(self, small_model, small_bundle):
        sim = Simulator(small_model, small_bundle)
        problem = sim.problem_for_slot(0, HYBRID)
        runtime = DistributedRuntime(problem, DistributedUFCSolver(tol=1e-3))
        run = runtime.run()
        m = small_model.num_frontends
        n = small_model.num_datacenters
        assert run.messages_sent == 2 * m * n * run.iterations
        # Proposal carries 2 floats, assignment 1: 3 MN per round.
        assert run.floats_sent == 3 * m * n * run.iterations

    def test_residuals_match_matrix_solver(self, small_model, small_bundle):
        sim = Simulator(small_model, small_bundle)
        problem = sim.problem_for_slot(4, HYBRID)
        solver = DistributedUFCSolver(rho=0.3, tol=1e-3)
        matrix = solver.solve(problem)
        run = DistributedRuntime(problem, solver).run()
        np.testing.assert_allclose(
            run.coupling_residuals, matrix.coupling_residuals, atol=1e-10
        )
        np.testing.assert_allclose(
            run.power_residuals, matrix.power_residuals, atol=1e-10
        )


class TestAgents:
    def test_frontend_proposal_is_simplex_feasible(self, small_model, small_bundle):
        sim = Simulator(small_model, small_bundle)
        problem = sim.problem_for_slot(0, HYBRID)
        runtime = DistributedRuntime(problem, DistributedUFCSolver())
        fe = runtime.frontends[0]
        lam, varphi = fe.propose()
        assert lam.sum() == pytest.approx(fe.arrival, rel=1e-8)
        assert (lam >= -1e-12).all()
        assert varphi.shape == lam.shape

    def test_datacenter_respects_capacity(self, small_model, small_bundle):
        sim = Simulator(small_model, small_bundle)
        problem = sim.problem_for_slot(0, HYBRID)
        runtime = DistributedRuntime(problem, DistributedUFCSolver())
        proposals = [fe.propose() for fe in runtime.frontends]
        lam_cols = np.vstack([p[0] for p in proposals])
        varphi_cols = np.vstack([p[1] for p in proposals])
        dc = runtime.datacenters[0]
        a_pred = dc.process(lam_cols[:, 0], varphi_cols[:, 0])
        assert a_pred.sum() <= dc.capacity * (1 + 1e-9)
        assert (a_pred >= -1e-12).all()

    def test_frontend_integrate_updates_state(self):
        fe = FrontEndAgent(
            index=0,
            arrival=1.0,
            latency_row=np.array([10.0, 20.0]),
            utility=__import__(
                "repro.costs.latency", fromlist=["QuadraticLatencyUtility"]
            ).QuadraticLatencyUtility(),
            weight=10.0,
            rho=0.5,
            eps=1.0,
            num_datacenters=2,
        )
        lam, _ = fe.propose()
        residual = fe.integrate(lam + 0.1)
        assert residual == pytest.approx(0.1, abs=1e-9)
        np.testing.assert_allclose(fe.a, lam + 0.1)  # eps = 1 full step
        np.testing.assert_allclose(fe.lam, lam)
        # Dual moved against the coupling residual.
        np.testing.assert_allclose(fe.varphi, -0.5 * 0.1 * np.ones(2))


class TestByteAccounting:
    """Hand-checked message/float/byte volumes on the tiny instance."""

    def test_tiny_instance_counts_per_round(self, tiny_problem):
        # 3 front-ends x 2 datacenters: one round is 12 messages
        # (6 proposals + 6 assignments), 18 floats, 144 bytes.
        runtime = DistributedRuntime(
            tiny_problem, DistributedUFCSolver(tol=1e-3, max_iter=300)
        )
        run = runtime.run()
        assert run.messages_sent == 12 * run.iterations
        assert run.floats_sent == 18 * run.iterations
        assert runtime.network.bytes_sent == 144 * run.iterations

    def test_staleness_counts_match_sync_totals(self, tiny_problem):
        from repro.distributed.staleness import StalenessRuntime

        rt = StalenessRuntime(
            tiny_problem,
            DistributedUFCSolver(tol=1e-3, max_iter=300),
            delay_probability=0.2,
            seed=3,
        )
        run = rt.run()
        # Every round still *sends* 2 MN messages; delay only defers
        # application, it never drops or duplicates.
        assert run.total_messages == 12 * run.iterations
        assert 0 < run.delayed_messages < run.total_messages

    def test_staleness_delays_are_seed_deterministic(self, tiny_problem):
        from repro.distributed.staleness import StalenessRuntime

        runs = [
            StalenessRuntime(
                tiny_problem,
                DistributedUFCSolver(tol=1e-3, max_iter=300),
                delay_probability=0.25,
                seed=42,
            ).run()
            for _ in range(2)
        ]
        assert runs[0].delayed_messages == runs[1].delayed_messages
        assert runs[0].iterations == runs[1].iterations
        assert runs[0].ufc == runs[1].ufc
