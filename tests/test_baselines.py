"""Tests for the baseline algorithms (repro.baselines)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.dual_subgradient import DualSubgradientSolver
from repro.baselines.heuristics import (
    cheapest_power_routing,
    nearest_datacenter_routing,
    proportional_routing,
    solve_heuristic,
)
from repro.core.centralized import CentralizedSolver
from repro.core.strategies import GRID, HYBRID
from repro.sim.simulator import Simulator


@pytest.fixture(scope="module")
def slot_problem(request):
    from repro.sim.simulator import build_model
    from repro.traces.datasets import default_bundle

    bundle = default_bundle(hours=8)
    model = build_model(bundle)
    return Simulator(model, bundle).problem_for_slot(5, HYBRID)


class TestHeuristicRouting:
    @pytest.mark.parametrize(
        "policy",
        [nearest_datacenter_routing, cheapest_power_routing, proportional_routing],
        ids=lambda p: p.__name__,
    )
    def test_routing_is_feasible(self, slot_problem, policy):
        lam = policy(slot_problem)
        np.testing.assert_allclose(
            lam.sum(axis=1), slot_problem.inputs.arrivals, rtol=1e-9
        )
        assert (lam >= -1e-12).all()
        assert (
            lam.sum(axis=0) <= slot_problem.model.capacities * (1 + 1e-9)
        ).all()

    def test_nearest_prefers_low_latency(self, slot_problem):
        lam = nearest_datacenter_routing(slot_problem)
        latency = slot_problem.model.latency_ms
        # Weighted latency of nearest routing beats proportional routing.
        prop = proportional_routing(slot_problem)
        assert (lam * latency).sum() < (prop * latency).sum()

    def test_cheapest_prefers_low_cost_site(self, slot_problem):
        lam = cheapest_power_routing(slot_problem)
        model, inputs = slot_problem.model, slot_problem.inputs
        marginal = np.minimum(
            inputs.prices
            + np.array(
                [
                    v.cost(float(c))
                    for v, c in zip(model.emission_costs, inputs.carbon_rates)
                ]
            ),
            model.fuel_cell_price,
        )
        cheapest = int(np.argmin(marginal * model.betas))
        load = lam.sum(axis=0)
        # The cheapest site is filled to capacity (total demand exceeds
        # any single site's capacity on this bundle).
        assert load[cheapest] == pytest.approx(
            model.capacities[cheapest], rel=1e-9
        )

    def test_solve_heuristic_produces_feasible_ufc(self, slot_problem):
        res = solve_heuristic(slot_problem, nearest_datacenter_routing, "nearest")
        assert res.name == "nearest"
        assert slot_problem.check_feasibility(res.allocation, tol=1e-6).ok
        assert np.isfinite(res.ufc)

    def test_optimum_dominates_all_heuristics(self, slot_problem):
        optimal = CentralizedSolver().solve(slot_problem).ufc
        for policy in (
            nearest_datacenter_routing,
            cheapest_power_routing,
            proportional_routing,
        ):
            res = solve_heuristic(slot_problem, policy)
            assert optimal >= res.ufc - 1e-6 * abs(optimal)


class TestDualSubgradient:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DualSubgradientSolver(step0=0.0)
        with pytest.raises(ValueError):
            DualSubgradientSolver(tol=-1.0)

    def test_reaches_optimal_objective(self, slot_problem):
        cent = CentralizedSolver().solve(slot_problem)
        res = DualSubgradientSolver(tol=6e-3, max_iter=6000).solve(slot_problem)
        gap = abs(res.ufc - cent.ufc) / abs(cent.ufc)
        assert gap < 2e-2
        assert slot_problem.check_feasibility(res.allocation, tol=1e-6).ok

    def test_needs_many_more_iterations_than_admg(self, slot_problem):
        """The paper's Fig. 11 comparison: gradient/projection methods
        take 'hundreds of iterations' — ours takes thousands while
        ADM-G takes tens."""
        from repro.admg.solver import DistributedUFCSolver

        admg = DistributedUFCSolver(rho=0.3, tol=6e-3).solve(slot_problem)
        subgrad = DualSubgradientSolver(tol=6e-3, max_iter=6000).solve(slot_problem)
        assert subgrad.converged
        assert subgrad.iterations > 5 * admg.iterations

    def test_residual_histories(self, slot_problem):
        res = DualSubgradientSolver(tol=6e-3, max_iter=1500).solve(slot_problem)
        assert len(res.capacity_residuals) == res.iterations
        assert len(res.power_residuals) == res.iterations

    def test_grid_strategy_supported(self, small_model, small_bundle):
        problem = Simulator(small_model, small_bundle).problem_for_slot(1, GRID)
        res = DualSubgradientSolver(tol=1e-2, max_iter=4000).solve(problem)
        np.testing.assert_allclose(res.allocation.mu, 0.0)
