"""Tests for repro.admg.subproblems: each procedure against references.

The key structural test verifies the closed-form Gaussian back
substitution against the generic upper-triangular ``G`` of the paper's
Eq. (10), built from the explicit relation matrices ``K_i``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.admg import subproblems as sp
from repro.admg.solver import ADMGState, DistributedUFCSolver, ScaledView
from repro.core.problem import SlotInputs, UFCProblem
from repro.core.strategies import FUEL_CELL, GRID, HYBRID
from repro.optim.scalar import minimize_convex_on_interval


@pytest.fixture()
def scaled(tiny_model, tiny_inputs):
    solver = DistributedUFCSolver(rho=0.3)
    problem = UFCProblem(tiny_model, tiny_inputs)
    view, inputs = solver.scaled_context(problem)
    return view, inputs


def random_state(view, inputs, seed=0):
    rng = np.random.default_rng(seed)
    m, n = view.num_frontends, view.num_datacenters
    return ADMGState(
        lam=rng.uniform(0, 1, size=(m, n)),
        mu=rng.uniform(0, 0.3, size=n),
        nu=rng.uniform(0, 0.3, size=n),
        a=rng.uniform(0, 1, size=(m, n)),
        phi=rng.normal(0, 5, size=n),
        varphi=rng.normal(0, 1, size=(m, n)),
    )


class TestLambdaMinimization:
    def test_feasibility(self, scaled):
        view, inputs = scaled
        state = random_state(view, inputs, 1)
        lam = sp.lambda_minimization(view, inputs, state.a, state.varphi, 0.3)
        np.testing.assert_allclose(lam.sum(axis=1), inputs.arrivals, rtol=1e-7)
        assert (lam >= -1e-10).all()

    def test_optimality_against_grid(self, scaled):
        """Each row beats a dense sweep of feasible alternatives."""
        view, inputs = scaled
        state = random_state(view, inputs, 2)
        rho = 0.3
        lam = sp.lambda_minimization(view, inputs, state.a, state.varphi, rho)

        def row_obj(i, row):
            h, g = view.utility.neg_quad_form(
                view.latency_ms[i], inputs.arrivals[i], view.latency_weight
            )
            quad = 0.5 * row @ (rho * np.eye(2) + h) @ row
            lin = (state.varphi[i] - rho * state.a[i] + g) @ row
            return quad + lin

        for i in range(view.num_frontends):
            val = row_obj(i, lam[i])
            for t in np.linspace(0, inputs.arrivals[i], 400):
                alt = np.array([t, inputs.arrivals[i] - t])
                assert val <= row_obj(i, alt) + 1e-8

    def test_zero_arrival_gives_zero_row(self, scaled):
        view, _ = scaled
        inputs = SlotInputs(
            arrivals=np.array([0.0, 1.0, 2.0]),
            prices=np.array([60.0, 30.0]),
            carbon_rates=np.array([300.0, 600.0]),
        )
        state = random_state(view, inputs, 3)
        lam = sp.lambda_minimization(view, inputs, state.a, state.varphi, 0.3)
        np.testing.assert_allclose(lam[0], 0.0)


class TestMuMinimization:
    def test_closed_form_formula(self, scaled):
        view, inputs = scaled
        state = random_state(view, inputs, 4)
        rho = 0.3
        mu = sp.mu_minimization(view, HYBRID, state.a, state.nu, state.phi, rho)
        load = state.a.sum(axis=0)
        expected = np.clip(
            view.alphas + view.betas * load - state.nu
            - (state.phi + view.fuel_cell_price) / rho,
            0.0,
            view.mu_max,
        )
        np.testing.assert_allclose(mu, expected)

    def test_grid_strategy_pins_zero(self, scaled):
        view, inputs = scaled
        state = random_state(view, inputs, 5)
        mu = sp.mu_minimization(view, GRID, state.a, state.nu, state.phi, 0.3)
        np.testing.assert_allclose(mu, 0.0)

    def test_minimizes_subproblem_objective(self, scaled):
        """Brute-force check of (18)."""
        view, inputs = scaled
        state = random_state(view, inputs, 6)
        rho = 0.3
        mu = sp.mu_minimization(view, HYBRID, state.a, state.nu, state.phi, rho)
        load = state.a.sum(axis=0)
        for j in range(view.num_datacenters):
            def obj(m, j=j):
                return (state.phi[j] + view.fuel_cell_price) * m + 0.5 * rho * (
                    view.alphas[j] + view.betas[j] * load[j] - m - state.nu[j]
                ) ** 2

            grid_vals = [obj(m) for m in np.linspace(0, view.mu_max[j], 2000)]
            assert obj(mu[j]) <= min(grid_vals) + 1e-9


class TestNuMinimization:
    def test_minimizes_subproblem_objective(self, scaled):
        view, inputs = scaled
        state = random_state(view, inputs, 7)
        rho = 0.3
        mu_pred = sp.mu_minimization(view, HYBRID, state.a, state.nu, state.phi, rho)
        nu = sp.nu_minimization(view, inputs, HYBRID, state.a, mu_pred, state.phi, rho)
        load = state.a.sum(axis=0)
        for j in range(view.num_datacenters):
            d = view.alphas[j] + view.betas[j] * load[j] - mu_pred[j]

            def obj(x, j=j, d=d):
                v = view.emission_costs[j]
                return (
                    v.cost(inputs.carbon_rates[j] * x)
                    + (inputs.prices[j] + state.phi[j]) * x
                    + 0.5 * rho * (d - x) ** 2
                )

            ref = minimize_convex_on_interval(obj, 0.0, abs(d) * 3 + 500, tol=1e-12)
            assert obj(nu[j]) <= obj(ref) + 1e-9

    def test_fuel_cell_strategy_pins_zero(self, scaled):
        view, inputs = scaled
        state = random_state(view, inputs, 8)
        mu_pred = np.zeros(view.num_datacenters)
        nu = sp.nu_minimization(
            view, inputs, FUEL_CELL, state.a, mu_pred, state.phi, 0.3
        )
        np.testing.assert_allclose(nu, 0.0)


class TestAMinimization:
    def test_feasibility(self, scaled):
        view, inputs = scaled
        state = random_state(view, inputs, 9)
        rho = 0.3
        a = sp.a_minimization(
            view, state.lam, state.mu, state.nu, state.phi, state.varphi, rho
        )
        assert (a >= -1e-12).all()
        assert (a.sum(axis=0) <= view.capacities * (1 + 1e-9)).all()

    def test_matches_paper_objective_by_sampling(self, scaled):
        """The exact solver beats random feasible columns on (20)."""
        view, inputs = scaled
        state = random_state(view, inputs, 10)
        rho = 0.3
        a = sp.a_minimization(
            view, state.lam, state.mu, state.nu, state.phi, state.varphi, rho
        )
        rng = np.random.default_rng(0)
        m = view.num_frontends
        for j in range(view.num_datacenters):
            beta = view.betas[j]

            def obj(col, j=j, beta=beta):
                lin = -(beta * state.phi[j] + state.varphi[:, j]) @ col
                quad = 0.5 * rho * (beta * col.sum()) ** 2
                rest = rho * col @ (
                    0.5 * col
                    - state.lam[:, j]
                    + beta * (view.alphas[j] - state.mu[j] - state.nu[j])
                )
                return lin + quad + rest

            best = obj(a[:, j])
            for _ in range(60):
                col = rng.uniform(0, 1, size=m)
                col *= min(1.0, view.capacities[j] / col.sum())
                assert best <= obj(col) + 1e-8


class TestDualUpdates:
    def test_formulas(self, scaled):
        view, inputs = scaled
        state = random_state(view, inputs, 11)
        rho = 0.3
        phi_pred, varphi_pred = sp.dual_updates(
            view, state.lam, state.mu, state.nu, state.a, state.phi, state.varphi, rho
        )
        balance = (
            view.alphas + view.betas * state.a.sum(axis=0) - state.mu - state.nu
        )
        np.testing.assert_allclose(phi_pred, state.phi - rho * balance)
        np.testing.assert_allclose(
            varphi_pred, state.varphi - rho * (state.a - state.lam)
        )


class TestCorrectionStep:
    def test_matches_generic_gaussian_back_substitution(self, scaled):
        """Build the K matrices of Sec. III-C explicitly and apply the
        generic G correction of Eq. (10); the closed form must agree."""
        view, inputs = scaled
        m, n = view.num_frontends, view.num_datacenters
        rho, eps = 0.3, 0.9
        state = random_state(view, inputs, 12)
        pred = random_state(view, inputs, 13)

        # Constraint rows: MN coupling rows (a - lambda = 0) then N
        # power-balance rows (beta_j sum_i a_ij - mu_j - nu_j = -alpha_j).
        mn = m * n
        k2 = np.zeros((mn + n, n))  # mu
        k3 = np.zeros((mn + n, n))  # nu
        k4 = np.zeros((mn + n, mn))  # a (row-major (i, j) flattening)
        for j in range(n):
            k2[mn + j, j] = -1.0
            k3[mn + j, j] = -1.0
        for i in range(m):
            for j in range(n):
                k4[i * n + j, i * n + j] = 1.0
                k4[mn + j, i * n + j] = view.betas[j]

        def correct_generic():
            mats = {2: k2, 3: k3, 4: k4}
            xs = {
                2: state.mu.copy(),
                3: state.nu.copy(),
                4: state.a.ravel().copy(),
            }
            preds = {2: pred.mu, 3: pred.nu, 4: pred.a.ravel()}
            deltas = {}
            for i in (4, 3, 2):
                downstream = np.zeros(mn + n)
                for jj in range(i + 1, 5):
                    downstream += mats[jj] @ deltas[jj]
                gram = mats[i].T @ mats[i]
                deltas[i] = eps * (preds[i] - xs[i]) - np.linalg.solve(
                    gram, mats[i].T @ downstream
                )
            return (
                xs[2] + deltas[2],
                xs[3] + deltas[3],
                (xs[4] + deltas[4]).reshape(m, n),
            )

        mu_ref, nu_ref, a_ref = correct_generic()
        lam_new, mu_new, nu_new, a_new, phi_new, varphi_new = sp.correction_step(
            view, eps, pred.lam,
            state.mu, pred.mu, state.nu, pred.nu, state.a, pred.a,
            state.phi, pred.phi, state.varphi, pred.varphi,
        )
        np.testing.assert_allclose(a_new, a_ref, atol=1e-10)
        np.testing.assert_allclose(nu_new, nu_ref, atol=1e-10)
        np.testing.assert_allclose(mu_new, mu_ref, atol=1e-10)
        np.testing.assert_allclose(lam_new, pred.lam)
        np.testing.assert_allclose(
            phi_new, state.phi + eps * (pred.phi - state.phi)
        )
        np.testing.assert_allclose(
            varphi_new, state.varphi + eps * (pred.varphi - state.varphi)
        )

    def test_eps_one_moves_duals_fully(self, scaled):
        view, inputs = scaled
        state = random_state(view, inputs, 14)
        pred = random_state(view, inputs, 15)
        _, _, _, _, phi_new, varphi_new = sp.correction_step(
            view, 1.0, pred.lam,
            state.mu, pred.mu, state.nu, pred.nu, state.a, pred.a,
            state.phi, pred.phi, state.varphi, pred.varphi,
        )
        np.testing.assert_allclose(phi_new, pred.phi)
        np.testing.assert_allclose(varphi_new, pred.varphi)


class TestScaledView:
    def test_problem_invariance(self, tiny_model, tiny_inputs):
        """Scaled and unscaled views describe the same physical problem:
        power at matching points is identical."""
        view = ScaledView(tiny_model, 100.0)
        load_servers = np.array([300.0, 900.0])
        raw_power = tiny_model.alphas + tiny_model.betas * load_servers
        scaled_power = view.alphas + view.betas * (load_servers / 100.0)
        np.testing.assert_allclose(raw_power, scaled_power)

    def test_capacity_scaling(self, tiny_model):
        view = ScaledView(tiny_model, 100.0)
        np.testing.assert_allclose(view.capacities, [10.0, 20.0])

    def test_invalid_scale(self, tiny_model):
        with pytest.raises(ValueError):
            ScaledView(tiny_model, 0.0)

    def test_natural_scale_positive_and_finite(self, tiny_model, small_model):
        for m in (tiny_model, small_model):
            s = ScaledView.natural_scale(m, rho=0.3)
            assert np.isfinite(s) and s >= 1.0

    def test_natural_scale_linear_utility_fallback(self, tiny_model):
        from repro.costs.latency import LinearLatencyUtility
        from repro.core.model import CloudModel

        model = CloudModel(
            tiny_model.datacenters,
            tiny_model.frontends,
            tiny_model.latency_ms,
            utility=LinearLatencyUtility(),
        )
        s = ScaledView.natural_scale(model, rho=0.3)
        assert s == pytest.approx(model.capacities.sum() / model.num_frontends)
