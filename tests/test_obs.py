"""Tests for the observability layer (repro.obs).

Two invariants anchor everything here: telemetry must be *free* when
off (no events, no allocations on the hot path, bit-identical solver
output) and *faithful* when on (pool workers report exactly what the
serial path does, traces match the solvers' reported iteration
counts).
"""

from __future__ import annotations

import json

import pytest

from repro.admg.solver import DistributedUFCSolver
from repro.core.centralized import CentralizedSolver
from repro.core.strategies import HYBRID
from repro.engine import HorizonEngine
from repro.obs import (
    HorizonSummary,
    JsonlTelemetry,
    NullTelemetry,
    RecordingTelemetry,
    ResidualTrace,
    Telemetry,
    TelemetryEvent,
)
from repro.obs.telemetry import NULL_TELEMETRY, as_telemetry
from repro.sim.simulator import Simulator, build_model
from repro.traces.datasets import default_bundle

HOURS = 12


@pytest.fixture(scope="module")
def bundle():
    return default_bundle(hours=HOURS, seed=2014)


@pytest.fixture(scope="module")
def model(bundle):
    return build_model(bundle)


@pytest.fixture(scope="module")
def slot_problem(bundle, model):
    return Simulator(model, bundle).problem_for_slot(0, HYBRID)


class TestSinks:
    def test_null_sink_emits_nothing(self):
        # The no-op sink must not even *build* events: a subclass that
        # records every emit sees zero calls, because the convenience
        # methods are overridden to return first.
        emitted = []

        class Spy(NullTelemetry):
            def emit(self, event):
                emitted.append(event)

        spy = Spy()
        assert spy.enabled is False
        spy.counter("x", 3, tag=1)
        spy.timer("y", 0.5)
        with spy.span("z"):
            pass
        spy.emit(TelemetryEvent("direct", "counter", 1.0))
        # Only the direct emit landed -- and NullTelemetry's own emit
        # discards even that.
        assert emitted == [TelemetryEvent("direct", "counter", 1.0)]
        assert NULL_TELEMETRY.enabled is False

    def test_as_telemetry(self):
        rec = RecordingTelemetry()
        assert as_telemetry(None) is NULL_TELEMETRY
        assert as_telemetry(rec) is rec

    def test_sinks_satisfy_protocol(self):
        assert isinstance(NullTelemetry(), Telemetry)
        assert isinstance(RecordingTelemetry(), Telemetry)

    def test_recording_sink(self):
        rec = RecordingTelemetry()
        assert rec.enabled
        rec.counter("a.count", 2, where="here")
        rec.timer("a.time", 0.25)
        with rec.span("a.span", slot=3):
            pass
        assert rec.names() == ["a.count", "a.time", "a.span"]
        (count,) = rec.by_name("a.count")
        assert count.kind == "counter"
        assert count.value == 2.0
        assert count.tags == {"where": "here"}
        (span,) = rec.by_name("a.span")
        assert span.kind == "span"
        assert span.value >= 0.0
        assert span.tags == {"slot": 3}
        rec.clear()
        assert rec.events == []

    def test_event_to_dict(self):
        event = TelemetryEvent("e", "timer", 1.5, {"k": "v"})
        assert event.to_dict() == {
            "name": "e", "kind": "timer", "value": 1.5, "tags": {"k": "v"}
        }

    def test_jsonl_sink_writes_parseable_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlTelemetry(str(path)) as sink:
            assert sink.enabled
            sink.counter("a", 1, idx=0)
            sink.timer("b", 0.125, odd_tag=object())  # stringified, not fatal
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first == {"name": "a", "kind": "counter", "value": 1.0,
                         "tags": {"idx": 0}}
        assert second["name"] == "b"
        assert isinstance(second["tags"]["odd_tag"], str)
        sink.close()  # idempotent

    def test_jsonl_sink_is_crash_safe_by_default(self, tmp_path):
        # flush_every=1: every event is on disk before close() runs, so
        # a crashed process loses nothing.
        path = tmp_path / "crash.jsonl"
        sink = JsonlTelemetry(str(path))
        sink.counter("a", 1)
        sink.counter("b", 2)
        assert len(path.read_text().splitlines()) == 2  # never closed
        sink.close()

    def test_jsonl_flush_every_batches(self, tmp_path):
        path = tmp_path / "batched.jsonl"
        sink = JsonlTelemetry(str(path), flush_every=3)
        sink.counter("a", 1)
        sink.counter("b", 2)
        assert path.read_text() == ""  # below the batch threshold
        sink.counter("c", 3)
        assert len(path.read_text().splitlines()) == 3  # batch flushed
        sink.close()

    def test_jsonl_flush_every_validates(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlTelemetry(str(tmp_path / "x.jsonl"), flush_every=0)


def _slot_essentials(events):
    """The machine-independent view of an engine.slot event stream."""
    return [
        (
            e.tags["index"],
            e.tags["solver"],
            e.tags["iterations"],
            e.tags["converged"],
            e.tags["ok"],
            e.tags["error_type"],
        )
        for e in events
    ]


class TestEngineTelemetry:
    def test_serial_and_pool_streams_match(self, bundle, model):
        # Pool workers report through pickled SlotTelemetry, so the
        # per-slot event stream is identical to serial modulo worker
        # pids, timings and cache stats (each worker compiles once).
        sim = Simulator(model, bundle)
        problems = [sim.problem_for_slot(t, HYBRID) for t in range(HOURS)]

        serial_rec = RecordingTelemetry()
        HorizonEngine("centralized", telemetry=serial_rec).run(problems)
        pool_rec = RecordingTelemetry()
        HorizonEngine(
            "centralized", workers=2, oversubscribe=True, telemetry=pool_rec
        ).run(problems)

        # The exec.submit/exec.harvest stream is the one legitimate
        # difference: serial solves in one batch, the pool pipelines
        # several — both lanes must emit the events, but the engine's
        # own stream stays identical.
        def engine_names(rec):
            return [n for n in rec.names() if not n.startswith("exec.")]

        assert engine_names(serial_rec) == engine_names(pool_rec)
        for rec in (serial_rec, pool_rec):
            assert rec.by_name("exec.submit") and rec.by_name("exec.harvest")
        serial_slots = serial_rec.by_name("engine.slot")
        pool_slots = pool_rec.by_name("engine.slot")
        assert _slot_essentials(serial_slots) == _slot_essentials(pool_slots)
        # Pool workers are real distinct processes under oversubscribe.
        assert {e.tags["worker"] for e in serial_slots} != set() and all(
            isinstance(e.tags["worker"], int) for e in pool_slots
        )

    def test_run_and_decision_events(self, bundle, model):
        rec = RecordingTelemetry()
        sim = Simulator(model, bundle, telemetry=rec)
        result = sim.run(HYBRID, hours=6)
        (decision,) = rec.by_name("engine.decision")
        assert decision.tags["decision"] == "serial:requested"
        (run_event,) = rec.by_name("engine.run")
        assert run_event.tags["slots"] == 6
        assert run_event.tags["failed"] == 0
        assert run_event.value == pytest.approx(result.horizon_summary.wall_s)
        (compile_event,) = rec.by_name("engine.compile")
        assert compile_event.tags["misses"] == 1
        assert compile_event.tags["hits"] == 5

    def test_telemetry_off_is_bit_identical(self, bundle, model):
        sim = Simulator(model, bundle)
        plain = sim.run(HYBRID)
        observed = sim.run(HYBRID, telemetry=RecordingTelemetry())
        for field in ("ufc", "energy_cost", "utility", "iterations"):
            assert (getattr(plain, field) == getattr(observed, field)).all()

    def test_slot_telemetry_attached_everywhere(self, bundle, model):
        sim = Simulator(model, bundle)
        problems = [sim.problem_for_slot(t, HYBRID) for t in range(4)]
        outcomes = HorizonEngine("centralized").run(problems)
        for outcome in outcomes:
            tele = outcome.telemetry
            assert tele is not None and tele.ok
            assert tele.solver == "centralized"
            assert tele.wall_s > 0.0
            assert tele.iterations == outcome.result.iterations
        assert outcomes[0].telemetry.cache_hit is False
        assert all(o.telemetry.cache_hit for o in outcomes[1:])
        # With caching disabled the cache is never consulted.
        cold = HorizonEngine("centralized", structure_cache=False).run(problems)
        assert all(o.telemetry.cache_hit is None for o in cold)


class TestResidualTraces:
    def test_record_and_len(self):
        trace = ResidualTrace()
        assert len(trace) == 0
        trace.record(1.0, 0.5, -2.0)
        trace.record(0.1, 0.05, -2.5)
        assert len(trace) == 2
        assert trace.primal == [1.0, 0.1]
        assert trace.dual == [0.5, 0.05]
        assert trace.objective == [-2.0, -2.5]

    def test_admg_trace_matches_iterations(self, slot_problem):
        res = DistributedUFCSolver(max_iter=40, trace=True).solve(slot_problem)
        trace = res.trace
        assert trace is not None
        assert len(trace) == res.iterations
        assert len(trace.dual) == len(trace.objective) == res.iterations
        assert all(p >= 0.0 for p in trace.primal)
        assert all(d >= 0.0 for d in trace.dual)
        # The primal series is the residual pair driving the stop test.
        assert trace.primal == [
            max(c, p)
            for c, p in zip(res.coupling_residuals, res.power_residuals)
        ]

    def test_admg_trace_off_by_default_and_per_call_override(self, slot_problem):
        solver = DistributedUFCSolver(max_iter=10)
        assert solver.solve(slot_problem).trace is None
        assert solver.solve(slot_problem, trace=True).trace is not None
        tracing = DistributedUFCSolver(max_iter=10, trace=True)
        assert tracing.solve(slot_problem, trace=False).trace is None

    def test_admg_iterates_identical_with_tracing(self, slot_problem):
        solver = DistributedUFCSolver(max_iter=40)
        plain = solver.solve(slot_problem)
        traced = solver.solve(slot_problem, trace=True)
        assert (plain.allocation.lam == traced.allocation.lam).all()
        assert (plain.allocation.mu == traced.allocation.mu).all()
        assert plain.ufc == traced.ufc
        assert plain.iterations == traced.iterations

    def test_ipqp_trace_matches_iterations(self, slot_problem):
        res = CentralizedSolver(trace=True).solve(slot_problem)
        trace = res.trace
        assert trace is not None
        assert res.iterations > 0
        # Gap/residual are recorded at the top of every iteration; the
        # step sizes only on iterations that took a step.
        assert len(trace) == len(trace.residual) == res.iterations
        assert len(trace.alpha) == len(trace.alpha_affine)
        assert len(trace.alpha) in (res.iterations, res.iterations - 1)
        assert trace.gap[-1] <= trace.gap[0]
        assert all(0.0 < a <= 1.0 for a in trace.alpha)

    def test_ipqp_solution_identical_with_tracing(self, slot_problem):
        plain = CentralizedSolver().solve(slot_problem)
        traced = CentralizedSolver(trace=True).solve(slot_problem)
        assert (plain.allocation.lam == traced.allocation.lam).all()
        assert plain.ufc == traced.ufc
        assert plain.iterations == traced.iterations
        assert CentralizedSolver().solve(slot_problem).trace is None

    def test_traces_surface_through_engine_extras(self, bundle, model):
        sim = Simulator(model, bundle)
        problems = [sim.problem_for_slot(t, HYBRID) for t in range(2)]
        dist = HorizonEngine(
            DistributedUFCSolver(max_iter=10, trace=True)
        ).run(problems)
        for outcome in dist:
            trace = outcome.result.extras["residual_trace"]
            assert len(trace) == outcome.result.iterations
        cent = HorizonEngine(CentralizedSolver(trace=True)).run(problems)
        for outcome in cent:
            assert len(outcome.result.extras["ip_trace"]) == outcome.result.iterations
        # No trace flag, no extras entry -- the default stays lean.
        plain = HorizonEngine("distributed").run(problems[:1])
        assert "residual_trace" not in plain[0].result.extras


class TestHorizonSummary:
    def test_simulator_attaches_summary(self, bundle, model):
        result = Simulator(model, bundle).run(HYBRID, hours=6)
        summary = result.horizon_summary
        assert isinstance(summary, HorizonSummary)
        assert summary.slots == summary.ok_slots == 6
        assert summary.failed_slots == 0
        assert summary.executor == "serial"
        assert summary.wall_s > 0.0
        assert summary.solve_s > 0.0
        assert (summary.cache_misses, summary.cache_hits) == (1, 5)
        assert summary.converged_slots == 6
        assert summary.error_types == {}
        assert 0.0 < summary.accounted_fraction <= 1.0

    def test_compare_strategies_share_one_summary(self, bundle, model):
        comp = Simulator(model, bundle).compare_strategies()
        summary = comp.hybrid.horizon_summary
        assert comp.grid.horizon_summary is summary
        assert comp.fuel_cell.horizon_summary is summary
        # One engine pass over 3 strategies x HOURS slots.
        assert summary.slots == 3 * HOURS
        assert summary.cache_misses == 3  # one compile per strategy

    def test_phase_and_dict_roundtrip(self, bundle, model):
        summary = Simulator(model, bundle).run(HYBRID, hours=4).horizon_summary
        phase = summary.phase_dict()
        assert phase["wall_s"] >= phase["overhead_s"]
        assert json.dumps(summary.to_dict())  # JSON-ready
        assert set(phase) <= set(summary.to_dict())

    def test_format_table_accounts_for_wall_time(self, bundle, model):
        summary = Simulator(model, bundle).run(HYBRID).horizon_summary
        table = summary.format_table()
        assert "horizon profile" in table
        assert "serial:requested" in table
        assert f"{summary.ok_slots} ok" in table
        # The issue's acceptance bar: the profile explains >= 90% of
        # the wall clock on a serial run.
        assert summary.accounted_fraction >= 0.9

    def test_failed_slots_aggregate(self):
        class Outcome:
            def __init__(self, ok, error_type=None):
                self.ok = ok
                self.error_type = error_type
                self.telemetry = None

        summary = HorizonSummary.from_outcomes(
            [Outcome(True), Outcome(False, "ValueError"), Outcome(False)],
            solver="s",
            wall_s=1.0,
            executor="serial",
            decision="serial:requested",
            workers_requested=1,
            workers_effective=1,
            usable_cpus=1,
        )
        assert summary.failed_slots == 2
        assert summary.error_types == {"ValueError": 1, "Exception": 1}
        assert "failures" in summary.format_table()

    def _summary(self, **kw):
        class Outcome:
            ok = True
            error_type = None
            telemetry = None

        return HorizonSummary.from_outcomes(
            [Outcome()],
            solver="s",
            wall_s=1.0,
            executor="serial",
            decision="serial:requested",
            workers_requested=1,
            workers_effective=1,
            usable_cpus=1,
            **kw,
        )

    def test_store_hit_rate_none_when_store_disabled(self):
        # Regression: a run without a result store must report a null
        # hit rate, not 0.0 — 0.0 means "store attached, every probe
        # missed" and used to be emitted for store-less runs too.
        summary = self._summary()
        assert summary.store_hit_rate is None
        assert summary.to_dict()["store_hit_rate"] is None
        assert "store" not in summary.format_table()

    def test_store_hit_rate_zero_when_all_misses(self):
        summary = self._summary(store_hits=0, store_misses=4)
        assert summary.store_hit_rate == 0.0
        assert summary.to_dict()["store_hit_rate"] == 0.0
        assert "store" in summary.format_table()

    def test_store_hit_rate_counts(self):
        summary = self._summary(store_hits=3, store_misses=1)
        assert summary.store_hit_rate == pytest.approx(0.75)
        d = summary.to_dict()
        assert d["store_hit_rate"] == pytest.approx(0.75)
        assert d["store_hits"] == 3
        assert d["store_misses"] == 1


class TestTraceDownsampling:
    """``trace_every=`` records every k-th iteration only."""

    def test_admg_trace_every(self, slot_problem):
        full = DistributedUFCSolver(max_iter=40, trace=True).solve(slot_problem)
        sampled = DistributedUFCSolver(
            max_iter=40, trace=True, trace_every=5
        ).solve(slot_problem)
        assert sampled.iterations == full.iterations
        expected = -(-full.iterations // 5)  # ceil: iterations 1, 6, 11, ...
        assert len(sampled.trace) == expected
        # Downsampling keeps the rows it does record identical.
        assert sampled.trace.primal == full.trace.primal[::5]
        # And never perturbs the iterates.
        assert (sampled.allocation.lam == full.allocation.lam).all()

    def test_ipqp_trace_every(self, slot_problem):
        full = CentralizedSolver(trace=True).solve(slot_problem)
        sampled = CentralizedSolver(trace=True, trace_every=3).solve(slot_problem)
        assert sampled.iterations == full.iterations
        assert len(sampled.trace) == -(-full.iterations // 3)
        assert sampled.trace.gap == full.trace.gap[::3]
        assert (sampled.allocation.lam == full.allocation.lam).all()

    def test_trace_every_validates(self, slot_problem):
        with pytest.raises(ValueError):
            DistributedUFCSolver(trace_every=0)
        with pytest.raises(ValueError):
            CentralizedSolver(trace_every=-1).solve(slot_problem)
