"""Tests for the analysis tools (repro.analysis)."""

from __future__ import annotations

import pytest

from repro.analysis.decomposition import decompose_hybrid_gain
from repro.analysis.sensitivity import latency_cost_frontier, ufc_sensitivity
from repro.core.strategies import HYBRID
from repro.costs.carbon import CapAndTrade
from repro.sim.simulator import Simulator


class TestDecomposition:
    def test_terms_sum_to_total(self, small_model, small_bundle):
        sim = Simulator(small_model, small_bundle)
        d = decompose_hybrid_gain(sim.problem_for_slot(2, HYBRID))
        assert d.sourcing_gain + d.routing_gain == pytest.approx(d.total_gain)

    def test_both_terms_nonnegative(self, small_model, small_bundle):
        """Sourcing re-optimizes within a superset; routing re-optimizes
        jointly — each step can only help (up to solver tolerance)."""
        sim = Simulator(small_model, small_bundle)
        for t in (0, 6, 12, 18):
            d = decompose_hybrid_gain(sim.problem_for_slot(t, HYBRID))
            scale = max(1.0, abs(d.ufc_grid))
            assert d.sourcing_gain >= -1e-4 * scale, t
            assert d.routing_gain >= -1e-4 * scale, t

    def test_tiny_problem_values(self, tiny_problem):
        d = decompose_hybrid_gain(tiny_problem)
        # Grid at 60/30 with light carbon: fuel cells never pay here, so
        # both effects vanish.
        assert d.total_gain == pytest.approx(0.0, abs=1e-3)

    def test_sourcing_dominates_when_routing_fixed_is_enough(
        self, small_model, small_bundle
    ):
        """Across a day, sourcing explains the majority of the total
        gain (routing refinements are second-order at these traces)."""
        sim = Simulator(small_model, small_bundle)
        sourcing = routing = 0.0
        for t in range(0, 24, 3):
            d = decompose_hybrid_gain(sim.problem_for_slot(t, HYBRID))
            sourcing += d.sourcing_gain
            routing += d.routing_gain
        assert sourcing >= routing


class TestSensitivity:
    @pytest.fixture(scope="class")
    def sensitivities(self):
        from repro.sim.simulator import build_model
        from repro.traces.datasets import default_bundle

        bundle = default_bundle(hours=12)
        model = build_model(bundle)
        return ufc_sensitivity(model, bundle, hours=8)

    def test_all_parameters_reported(self, sensitivities):
        assert set(sensitivities) == {
            "fuel_cell_price", "carbon_tax", "latency_weight",
        }

    def test_signs(self, sensitivities):
        """Raising any price/weight can only lower the optimal UFC
        (envelope theorem: costs enter negatively)."""
        assert sensitivities["fuel_cell_price"] <= 1e-6
        assert sensitivities["carbon_tax"] <= 1e-6
        assert sensitivities["latency_weight"] <= 1e-6

    def test_non_flat_tax_rejected(self, small_model, small_bundle):
        model = small_model.with_emission_costs(CapAndTrade(cap_kg=100.0))
        with pytest.raises(ValueError):
            ufc_sensitivity(model, small_bundle, hours=2)


class TestParetoFrontier:
    @pytest.fixture(scope="class")
    def frontier(self):
        from repro.sim.simulator import build_model
        from repro.traces.datasets import default_bundle

        bundle = default_bundle(hours=12)
        model = build_model(bundle)
        return latency_cost_frontier(
            model, bundle, weights=(0.0, 3.0, 30.0), hours=8
        )

    def test_latency_decreases_with_weight(self, frontier):
        lat = [p.mean_latency_ms for p in frontier]
        assert all(a >= b - 1e-6 for a, b in zip(lat, lat[1:]))

    def test_cost_increases_with_weight(self, frontier):
        cost = [p.total_cost for p in frontier]
        assert all(a <= b + 1e-3 for a, b in zip(cost, cost[1:]))

    def test_weight_zero_ignores_latency(self, frontier):
        # With w = 0 the router chases cost only; latency is far above
        # the latency-optimal level.
        assert frontier[0].mean_latency_ms > frontier[-1].mean_latency_ms + 5.0

    def test_negative_weight_rejected(self, small_model, small_bundle):
        with pytest.raises(ValueError):
            latency_cost_frontier(
                small_model, small_bundle, weights=(-1.0,), hours=2
            )
