"""Tests for repro.admg.batch: stacked kernels vs the scalar wrappers.

Every batched block update promises *exact* equality with mapping the
matrix-level wrapper in :mod:`repro.admg.subproblems` over the T slots,
so a batched horizon iteration reproduces the scalar iterates slot for
slot.  All assertions here are ``np.array_equal``, not allclose.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.admg import batch as bk
from repro.admg import subproblems as sp
from repro.admg.solver import DistributedUFCSolver
from repro.core.problem import SlotInputs, UFCProblem
from repro.core.strategies import FUEL_CELL, GRID, HYBRID

T = 7
RHO = 0.3


@pytest.fixture()
def view(tiny_model, tiny_inputs):
    solver = DistributedUFCSolver(rho=RHO)
    scaled, _ = solver.scaled_context(UFCProblem(tiny_model, tiny_inputs))
    return scaled


def stacked_state(view, seed=0):
    """Random (T, ...) iterates plus per-slot price/carbon inputs."""
    rng = np.random.default_rng(seed)
    m, n = view.num_frontends, view.num_datacenters
    return {
        "lam": rng.uniform(0, 1, size=(T, m, n)),
        "mu": rng.uniform(0, 0.3, size=(T, n)),
        "nu": rng.uniform(0, 0.3, size=(T, n)),
        "a": rng.uniform(0, 1, size=(T, m, n)),
        "phi": rng.normal(0, 5, size=(T, n)),
        "varphi": rng.normal(0, 1, size=(T, m, n)),
        "prices": rng.uniform(20, 80, size=(T, n)),
        "carbon_rates": rng.uniform(100, 800, size=(T, n)),
        "arrivals": rng.uniform(100, 600, size=(T, m)),
    }


def slot_inputs(state, t):
    return SlotInputs(
        arrivals=state["arrivals"][t],
        prices=state["prices"][t],
        carbon_rates=state["carbon_rates"][t],
    )


class TestMuMinimizationBatch:
    @pytest.mark.parametrize("strategy", [HYBRID, GRID, FUEL_CELL], ids=lambda s: s.name)
    def test_exact_match_per_slot(self, view, strategy):
        state = stacked_state(view, seed=1)
        out = bk.mu_minimization_batch(
            view, strategy, state["a"], state["nu"], state["phi"], RHO
        )
        for t in range(T):
            ref = sp.mu_minimization(
                view, strategy, state["a"][t], state["nu"][t], state["phi"][t], RHO
            )
            assert np.array_equal(out[t], ref), t

    def test_grid_strategy_pins_zero(self, view):
        state = stacked_state(view, seed=2)
        out = bk.mu_minimization_batch(
            view, GRID, state["a"], state["nu"], state["phi"], RHO
        )
        np.testing.assert_allclose(out, 0.0)


class TestNuMinimizationBatch:
    @pytest.mark.parametrize("strategy", [HYBRID, GRID], ids=lambda s: s.name)
    def test_exact_match_per_slot(self, view, strategy):
        state = stacked_state(view, seed=3)
        mu_pred = bk.mu_minimization_batch(
            view, strategy, state["a"], state["nu"], state["phi"], RHO
        )
        out = bk.nu_minimization_batch(
            view, strategy, state["prices"], state["carbon_rates"],
            state["a"], mu_pred, state["phi"], RHO,
        )
        for t in range(T):
            ref = sp.nu_minimization(
                view, slot_inputs(state, t), strategy,
                state["a"][t], mu_pred[t], state["phi"][t], RHO,
            )
            assert np.array_equal(out[t], ref), t

    def test_fuel_cell_disables_grid_draw(self, view):
        state = stacked_state(view, seed=4)
        out = bk.nu_minimization_batch(
            view, FUEL_CELL, state["prices"], state["carbon_rates"],
            state["a"], state["mu"], state["phi"], RHO,
        )
        np.testing.assert_allclose(out, 0.0)


class TestAMinimizationBatch:
    def test_exact_match_per_slot(self, view):
        state = stacked_state(view, seed=5)
        out = bk.a_minimization_batch(
            view, state["lam"], state["mu"], state["nu"],
            state["phi"], state["varphi"], RHO,
        )
        for t in range(T):
            ref = sp.a_minimization(
                view, state["lam"][t], state["mu"][t], state["nu"][t],
                state["phi"][t], state["varphi"][t], RHO,
            )
            assert np.array_equal(out[t], ref), t

    def test_respects_capacities(self, view):
        state = stacked_state(view, seed=6)
        out = bk.a_minimization_batch(
            view, state["lam"] * 10, state["mu"], state["nu"],
            state["phi"], state["varphi"], RHO,
        )
        totals = out.sum(axis=1)
        assert (totals <= view.capacities[None, :] + 1e-9).all()
        assert (out >= 0).all()


class TestDualAndCorrectionBatch:
    def test_dual_updates_exact_match(self, view):
        state = stacked_state(view, seed=7)
        phi_b, varphi_b = bk.dual_updates_batch(
            view, state["lam"], state["mu"], state["nu"], state["a"],
            state["phi"], state["varphi"], RHO,
        )
        for t in range(T):
            phi_s, varphi_s = sp.dual_updates(
                view, state["lam"][t], state["mu"][t], state["nu"][t],
                state["a"][t], state["phi"][t], state["varphi"][t], RHO,
            )
            assert np.array_equal(phi_b[t], phi_s), t
            assert np.array_equal(varphi_b[t], varphi_s), t

    def test_correction_step_exact_match(self, view):
        state = stacked_state(view, seed=8)
        pred = stacked_state(view, seed=9)
        eps = 0.8
        batched = bk.correction_step_batch(
            view, eps, pred["lam"],
            state["mu"], pred["mu"], state["nu"], pred["nu"],
            state["a"], pred["a"], state["phi"], pred["phi"],
            state["varphi"], pred["varphi"],
        )
        for t in range(T):
            scalar = sp.correction_step(
                view, eps, pred["lam"][t],
                state["mu"][t], pred["mu"][t], state["nu"][t], pred["nu"][t],
                state["a"][t], pred["a"][t], state["phi"][t], pred["phi"][t],
                state["varphi"][t], pred["varphi"][t],
            )
            for b_arr, s_arr in zip(batched, scalar):
                assert np.array_equal(b_arr[t], s_arr), t

    def test_correction_returns_copy_of_lam_pred(self, view):
        state = stacked_state(view, seed=10)
        pred = stacked_state(view, seed=11)
        out = bk.correction_step_batch(
            view, 0.5, pred["lam"],
            state["mu"], pred["mu"], state["nu"], pred["nu"],
            state["a"], pred["a"], state["phi"], pred["phi"],
            state["varphi"], pred["varphi"],
        )
        lam_new = out[0]
        assert np.array_equal(lam_new, pred["lam"])
        assert lam_new is not pred["lam"]
        lam_new[0, 0, 0] += 1.0
        assert lam_new[0, 0, 0] != pred["lam"][0, 0, 0]
