"""Tests for repro.optim.scalar: PL convex functions and scalar prox."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optim.scalar import (
    PiecewiseLinearConvex,
    QuadraticScalar,
    minimize_convex_on_interval,
    prox_nonneg,
)


class TestQuadraticScalar:
    def test_value_and_derivative(self):
        f = QuadraticScalar(a=2.0, b=-4.0, c=1.0)
        assert f(0.0) == 1.0
        assert f(1.0) == -1.0
        assert f.derivative(1.0) == 0.0

    def test_negative_curvature_rejected(self):
        with pytest.raises(ValueError):
            QuadraticScalar(a=-1.0, b=0.0)


class TestPiecewiseLinearConvex:
    def test_single_segment_is_linear(self):
        f = PiecewiseLinearConvex([0.0], [2.0], offset=1.0)
        assert f(0.0) == 1.0
        assert f(3.0) == 7.0

    def test_two_segments_value(self):
        f = PiecewiseLinearConvex([0.0, 10.0], [1.0, 3.0])
        assert f(5.0) == 5.0
        assert f(10.0) == 10.0
        assert f(12.0) == 16.0

    def test_subgradient_interval_at_kink(self):
        f = PiecewiseLinearConvex([0.0, 10.0], [1.0, 3.0])
        lo, hi = f.subgradient_interval(10.0)
        assert (lo, hi) == (1.0, 3.0)
        lo, hi = f.subgradient_interval(4.0)
        assert (lo, hi) == (1.0, 1.0)

    def test_negative_domain_rejected(self):
        f = PiecewiseLinearConvex([0.0], [1.0])
        with pytest.raises(ValueError):
            f(-0.1)
        with pytest.raises(ValueError):
            f.subgradient_interval(-0.1)

    def test_scaled_composition(self):
        f = PiecewiseLinearConvex([0.0, 6.0], [1.0, 2.0])
        g = f.scaled(3.0)  # g(x) = f(3x)
        for x in (0.0, 1.0, 2.0, 5.0):
            assert g(x) == pytest.approx(f(3.0 * x))

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            PiecewiseLinearConvex([], [])
        with pytest.raises(ValueError):
            PiecewiseLinearConvex([1.0], [1.0])  # first breakpoint not 0
        with pytest.raises(ValueError):
            PiecewiseLinearConvex([0.0, 0.0], [1.0, 2.0])  # not increasing
        with pytest.raises(ValueError):
            PiecewiseLinearConvex([0.0, 1.0], [2.0, 1.0])  # slopes decrease
        with pytest.raises(ValueError):
            PiecewiseLinearConvex([0.0], [1.0, 2.0])  # length mismatch

    def test_prox_interior_segment(self):
        """Smooth region: prox is the quadratic shift d - s/rho."""
        f = PiecewiseLinearConvex([0.0, 10.0], [1.0, 3.0])
        x = f.prox(d=5.0, rho=1.0)
        assert x == pytest.approx(4.0)

    def test_prox_sticks_at_kink(self):
        f = PiecewiseLinearConvex([0.0, 10.0], [0.0, 100.0])
        # Pull toward 12, but the slope jump at 10 holds the prox there.
        x = f.prox(d=12.0, rho=1.0)
        assert x == pytest.approx(10.0)

    def test_prox_at_zero_boundary(self):
        f = PiecewiseLinearConvex([0.0], [5.0])
        assert f.prox(d=2.0, rho=1.0) == pytest.approx(0.0)

    def test_prox_with_linear_term(self):
        f = PiecewiseLinearConvex([0.0], [1.0])
        # min x + linear*x + 0.5(x-d)^2 -> x = d - (1+linear).
        assert f.prox(d=5.0, rho=1.0, linear=2.0) == pytest.approx(2.0)

    def test_prox_invalid_rho(self):
        f = PiecewiseLinearConvex([0.0], [1.0])
        with pytest.raises(ValueError):
            f.prox(d=1.0, rho=0.0)

    @given(
        n_seg=st.integers(1, 4),
        seed=st.integers(0, 2000),
        d=st.floats(min_value=-5.0, max_value=30.0),
        rho=st.floats(min_value=0.1, max_value=5.0),
        linear=st.floats(min_value=-3.0, max_value=3.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_prox_matches_grid_search(self, n_seg, seed, d, rho, linear):
        rng = np.random.default_rng(seed)
        bps = np.concatenate([[0.0], np.cumsum(rng.uniform(0.5, 5.0, n_seg - 1))])
        slopes = np.cumsum(rng.uniform(0.0, 2.0, n_seg))
        f = PiecewiseLinearConvex(bps, slopes)
        x = f.prox(d=d, rho=rho, linear=linear)

        def obj(t):
            return f(t) + linear * t + 0.5 * rho * (t - d) ** 2

        assert x >= 0.0
        grid = np.linspace(0.0, max(abs(d) * 2 + 5, bps[-1] + 5), 4001)
        best = min(obj(t) for t in grid)
        assert obj(x) <= best + 1e-6 * max(1.0, abs(best))


class TestMinimizeConvexOnInterval:
    def test_quadratic_minimum(self):
        x = minimize_convex_on_interval(lambda t: (t - 2.5) ** 2, 0.0, 10.0)
        assert x == pytest.approx(2.5, abs=1e-6)

    def test_boundary_minimum(self):
        x = minimize_convex_on_interval(lambda t: t, 1.0, 5.0)
        assert x == pytest.approx(1.0, abs=1e-5)

    def test_nonsmooth_objective(self):
        x = minimize_convex_on_interval(lambda t: abs(t - 3.0), 0.0, 10.0)
        assert x == pytest.approx(3.0, abs=1e-5)

    def test_degenerate_interval(self):
        assert minimize_convex_on_interval(lambda t: t * t, 2.0, 2.0) == 2.0

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            minimize_convex_on_interval(lambda t: t, 2.0, 1.0)


class TestProxNonneg:
    def test_matches_closed_form_quadratic(self):
        # min 2x^2 + 0.5*rho*(x-d)^2, rho=2, d=4 -> x = rho d /(4+rho)=8/6.
        x = prox_nonneg(lambda t: 2 * t * t, d=4.0, rho=2.0)
        assert x == pytest.approx(8.0 / 6.0, abs=1e-6)

    def test_clamps_to_zero(self):
        x = prox_nonneg(lambda t: 10 * t, d=1.0, rho=1.0)
        assert x == pytest.approx(0.0, abs=1e-6)

    def test_matches_pl_prox(self):
        f = PiecewiseLinearConvex([0.0, 2.0], [0.5, 4.0])
        exact = f.prox(d=3.0, rho=1.0)
        approx = prox_nonneg(f, d=3.0, rho=1.0)
        assert approx == pytest.approx(exact, abs=1e-5)

    def test_invalid_rho(self):
        with pytest.raises(ValueError):
            prox_nonneg(lambda t: t, d=1.0, rho=0.0)
