"""Tests for the simulator and metric modules (repro.sim)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.admg.solver import DistributedUFCSolver
from repro.core.centralized import CentralizedSolver
from repro.core.strategies import FUEL_CELL, GRID, HYBRID
from repro.sim.metrics import (
    average_improvement,
    improvement_series,
    iteration_cdf,
)
from repro.sim.results import SimulationResult
from repro.sim.simulator import Simulator, build_model
from repro.traces.datasets import default_bundle


class TestImprovementSeries:
    def test_basic_relative_gain(self):
        a = np.array([-50.0, -100.0])
        b = np.array([-100.0, -100.0])
        np.testing.assert_allclose(improvement_series(a, b), [0.5, 0.0])

    def test_negative_improvement(self):
        a = np.array([-150.0])
        b = np.array([-100.0])
        np.testing.assert_allclose(improvement_series(a, b), [-0.5])

    def test_zero_baseline_handled(self):
        out = improvement_series(np.array([1.0]), np.array([0.0]))
        np.testing.assert_allclose(out, [0.0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            improvement_series(np.ones(2), np.ones(3))

    def test_average(self):
        a = np.array([-50.0, -100.0])
        b = np.array([-100.0, -200.0])
        assert average_improvement(a, b) == pytest.approx(0.5)


class TestIterationCDF:
    def test_simple_cdf(self):
        counts, fractions = iteration_cdf(np.array([10, 20, 20, 40]))
        np.testing.assert_array_equal(counts, [10, 20, 40])
        np.testing.assert_allclose(fractions, [0.25, 0.75, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            iteration_cdf(np.array([]))


class TestBuildModel:
    def test_matches_bundle_geometry(self, small_bundle, small_model):
        assert small_model.num_datacenters == small_bundle.num_datacenters
        assert small_model.num_frontends == small_bundle.num_frontends
        np.testing.assert_allclose(small_model.capacities, small_bundle.capacities)
        assert small_model.fuel_cell_price == 80.0

    def test_fuel_cells_sized_to_peak(self, small_model):
        for dc in small_model.datacenters:
            assert dc.mu_max_mw == pytest.approx(dc.power.peak_demand_mw(dc.servers))


class TestSimulator:
    def test_dimension_validation(self, small_bundle):
        other = default_bundle(hours=6, seed=1)
        model = build_model(other)
        sim = Simulator(model, other)  # fine
        assert sim is not None

    def test_run_produces_full_series(self, small_model, small_bundle):
        result = Simulator(small_model, small_bundle).run(HYBRID, hours=6)
        assert isinstance(result, SimulationResult)
        assert result.hours == 6
        for arr in (
            result.ufc, result.energy_cost, result.carbon_cost,
            result.carbon_kg, result.avg_latency_ms, result.utilization,
        ):
            assert arr.shape == (6,)
            assert np.isfinite(arr).all()
        assert result.converged.all()

    def test_metrics_internally_consistent(self, small_model, small_bundle):
        result = Simulator(small_model, small_bundle).run(HYBRID, hours=6)
        np.testing.assert_allclose(
            result.ufc,
            result.utility - result.carbon_cost - result.energy_cost,
            rtol=1e-9,
        )

    def test_grid_strategy_never_uses_fuel_cells(self, small_model, small_bundle):
        result = Simulator(small_model, small_bundle).run(GRID, hours=6)
        np.testing.assert_allclose(result.utilization, 0.0, atol=1e-9)

    def test_fuel_cell_strategy_has_zero_carbon(self, small_model, small_bundle):
        result = Simulator(small_model, small_bundle).run(FUEL_CELL, hours=6)
        np.testing.assert_allclose(result.carbon_kg, 0.0, atol=1e-6)
        np.testing.assert_allclose(result.carbon_cost, 0.0, atol=1e-8)

    def test_compare_strategies(self, small_model, small_bundle):
        comp = Simulator(small_model, small_bundle).compare_strategies(hours=4)
        assert comp.grid.strategy == "Grid"
        assert comp.fuel_cell.strategy == "Fuel cell"
        assert comp.hybrid.strategy == "Hybrid"
        names = comp.by_name()
        assert set(names) == {"Grid", "Fuel cell", "Hybrid"}

    def test_distributed_solver_records_iterations(self, small_model, small_bundle):
        sim = Simulator(
            small_model,
            small_bundle,
            solver=DistributedUFCSolver(rho=0.3, tol=6e-3),
        )
        result = sim.run(HYBRID, hours=3)
        assert (result.iterations > 10).all()
        assert result.converged.all()

    def test_solver_objects_accepted(self, small_model, small_bundle):
        sim = Simulator(small_model, small_bundle, solver=CentralizedSolver())
        result = sim.run(GRID, hours=2)
        assert result.hours == 2

    def test_summary_text(self, small_model, small_bundle):
        result = Simulator(small_model, small_bundle).run(HYBRID, hours=3)
        text = result.summary()
        assert "Hybrid" in text
        assert "energy cost" in text
        assert "utilization" in text

    def test_warm_start_mode_runs(self, small_model, small_bundle):
        sim = Simulator(
            small_model,
            small_bundle,
            solver=DistributedUFCSolver(rho=0.3, tol=6e-3),
            warm_start=True,
        )
        result = sim.run(HYBRID, hours=3)
        assert result.converged.all()
        # Warm-started later slots converge faster than the cold first.
        assert result.iterations[1:].mean() <= result.iterations[0]

    def test_mismatched_model_bundle_rejected(self, small_bundle, tiny_model):
        with pytest.raises(ValueError):
            Simulator(tiny_model, small_bundle)
