"""Tests for the fault-injection plane and self-healing solve paths."""

from __future__ import annotations

import hashlib
import subprocess
import sys

import numpy as np
import pytest

from repro.core.strategies import HYBRID
from repro.distributed import DistributedRuntime
from repro.faults import (
    CrashSpec,
    FaultPlan,
    PartitionSpec,
    RecoveryPolicy,
    RetransmitPolicy,
)
from repro.faults.network import FaultyNetwork
from repro.faults.scenarios import available_scenarios, scenario_spec
from repro.faults.solver import ChaosDistributedSolver, DegradedRunError
from repro.obs.certify import certify_solution
from repro.sim.simulator import Simulator

SHIPPED = ("flaky-net", "dc-crash", "partition", "bit-rot", "chaos-monkey")


@pytest.fixture(scope="module")
def slot_problem(small_model, small_bundle):
    return Simulator(small_model, small_bundle).problem_for_slot(0, HYBRID)


@pytest.fixture(scope="module")
def fault_free_run(slot_problem):
    return DistributedRuntime(slot_problem).run()


class TestFaultPlan:
    def test_shipped_scenarios_listed(self):
        assert set(SHIPPED) <= set(available_scenarios())

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            scenario_spec("not-a-scenario")

    @pytest.mark.parametrize("name", SHIPPED)
    def test_spec_round_trip(self, name):
        plan = FaultPlan.from_spec(name)
        assert plan.name == name
        assert FaultPlan.from_spec(plan.to_dict()) == plan
        assert FaultPlan.from_spec(plan) is plan

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown fault plan keys"):
            FaultPlan.from_spec({"drop_probabillity": 0.1})

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            FaultPlan.from_spec({"drop_probability": 1.0})
        with pytest.raises(ValueError):
            FaultPlan.from_spec({"delay_probability": -0.1})

    def test_crash_spec_validation(self):
        with pytest.raises(ValueError):
            CrashSpec(agent="dc0", round=0)
        with pytest.raises(ValueError):
            CrashSpec(agent="dc0", round=5, revive_round=5)

    def test_crash_spec_down_window(self):
        crash = CrashSpec(agent="dc0", round=3, revive_round=6)
        assert [crash.down(r) for r in range(1, 8)] == [
            False, False, True, True, True, False, False,
        ]
        forever = CrashSpec(agent="dc0", round=3)
        assert forever.down(500)

    def test_partition_spec_cuts_only_across(self):
        part = PartitionSpec(start=2, stop=4, isolate=("fe0",))
        assert part.cuts("fe0", "dc1", 2)
        assert part.cuts("dc1", "fe0", 3)
        assert not part.cuts("dc1", "dc2", 3)  # both outside the cut
        assert not part.cuts("fe0", "fe0", 3)  # both inside
        assert not part.cuts("fe0", "dc1", 4)  # half-open interval
        with pytest.raises(ValueError):
            PartitionSpec(start=3, stop=3, isolate=("fe0",))
        with pytest.raises(ValueError):
            PartitionSpec(start=1, stop=2, isolate=())

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetransmitPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RecoveryPolicy(damping=0.0)
        with pytest.raises(ValueError):
            RecoveryPolicy(growth_factor=0.9)


class TestFaultInjector:
    PLAN = FaultPlan.from_spec(
        {
            "seed": 7,
            "drop_probability": 0.2,
            "delay_probability": 0.1,
            "duplicate_probability": 0.05,
            "corrupt_probability": 0.05,
        }
    )

    def _draws(self, injector, n=300):
        return [
            (injector.attempt(), injector.corrupts(), injector.duplicates())
            for _ in range(n)
        ]

    def test_same_slot_replays_identically(self):
        assert self._draws(self.PLAN.injector(3)) == self._draws(
            self.PLAN.injector(3)
        )

    def test_slots_draw_independent_streams(self):
        assert self._draws(self.PLAN.injector(0)) != self._draws(
            self.PLAN.injector(1)
        )

    def test_event_log_bounded(self):
        injector = self.PLAN.injector(0)
        injector.max_events = 4
        for r in range(10):
            injector.record("watchdog_trip", r, "fleet")
        assert len(injector.events) == 4
        assert injector.events_dropped == 6
        assert injector.counts["watchdog_trip"] == 10

    def test_faults_injected_excludes_recovery(self):
        injector = self.PLAN.injector(0)
        injector.count("drop", 5)
        injector.count("crash", 1)
        injector.record("checkpoint_restore", 3, "fleet")
        injector.record("watchdog_trip", 3, "fleet")
        assert injector.faults_injected == 6


class TestFaultyNetwork:
    def _message(self):
        from repro.distributed.messages import RoutingProposal

        return RoutingProposal(sender="fe0", receiver="dc0", lam=1.0, varphi=2.0)

    def test_fault_free_plan_always_delivers(self):
        net = FaultyNetwork(FaultPlan(seed=0).injector(0))
        assert net.send(self._message())
        assert net.messages_sent == 1
        assert net.deliver("dc0")
        assert net.sends_failed == 0

    def test_budget_exhaustion_fails_sends(self):
        plan = FaultPlan.from_spec({"seed": 1, "drop_probability": 0.9})
        policy = RetransmitPolicy(max_attempts=3)
        net = FaultyNetwork(plan.injector(0), policy)
        results = [net.send(self._message()) for _ in range(200)]
        assert not all(results)
        assert net.sends_failed == results.count(False)
        assert net.retransmits > 0
        assert net.simulated_backoff_s > 0
        # Every attempt — dropped or landed — bills exactly once.
        drops = net.injector.counts["drop"]
        delivered = results.count(True) + net.duplicates_delivered
        assert net.messages_sent == drops + delivered

    def test_partition_gives_up_immediately(self):
        plan = FaultPlan.from_spec(
            {"partitions": [{"start": 1, "stop": 5, "isolate": ["fe0"]}]}
        )
        net = FaultyNetwork(plan.injector(0))
        net.advance_round(1)
        assert not net.send(self._message())
        assert net.sends_failed == 1
        assert net.messages_sent == 1  # one billed attempt, no retries
        assert net.injector.counts["partition"] == 1
        net.advance_round(5)  # the cut has healed
        assert net.send(self._message())

    def test_delayed_messages_land_next_round(self):
        plan = FaultPlan.from_spec({"seed": 3, "delay_probability": 0.5})
        net = FaultyNetwork(plan.injector(0))
        net.advance_round(1)
        for _ in range(50):
            net.send(self._message())
        delivered_now = len(net.deliver("dc0"))
        delayed = net.injector.counts.get("delay", 0)
        assert 0 < delayed < 50
        assert delivered_now == 50 - delayed
        assert net.advance_round(2) == delayed
        assert len(net.deliver("dc0")) == delayed
        assert net.delayed_delivered == delayed

    def test_reset_in_flight_drops_queued_traffic(self):
        plan = FaultPlan.from_spec({"seed": 3, "delay_probability": 0.5})
        net = FaultyNetwork(plan.injector(0))
        for _ in range(50):
            net.send(self._message())
        assert net.reset_in_flight() == 50
        assert not net.deliver("dc0")
        assert net.advance_round(2) == 0


class TestSelfHealingRuntime:
    def _run(self, problem, scenario, slot=0):
        plan = FaultPlan.from_spec(scenario)
        return DistributedRuntime(problem, faults=plan.injector(slot)).run()

    def test_fault_free_path_untouched(self, slot_problem, fault_free_run):
        again = DistributedRuntime(slot_problem).run()
        np.testing.assert_array_equal(
            again.allocation.lam, fault_free_run.allocation.lam
        )
        assert not again.degraded
        assert again.fault_counts == {}
        assert again.fault_events == ()

    def test_deterministic_replay_in_process(self, slot_problem):
        first = self._run(slot_problem, "flaky-net")
        second = self._run(slot_problem, "flaky-net")
        np.testing.assert_array_equal(
            first.allocation.lam, second.allocation.lam
        )
        assert first.coupling_residuals == second.coupling_residuals
        assert first.fault_events == second.fault_events
        assert first.fault_counts == second.fault_counts
        assert first.retransmits == second.retransmits

    def test_deterministic_replay_across_processes(self, slot_problem):
        """Same plan seed + scenario ⇒ bit-identical run in a fresh process."""
        script = (
            "import hashlib, json\n"
            "from repro.core.strategies import HYBRID\n"
            "from repro.distributed import DistributedRuntime\n"
            "from repro.faults import FaultPlan\n"
            "from repro.sim.simulator import Simulator, build_model\n"
            "from repro.traces.datasets import default_bundle\n"
            "bundle = default_bundle(hours=24, seed=2014)\n"
            "problem = Simulator(build_model(bundle), bundle)"
            ".problem_for_slot(0, HYBRID)\n"
            "run = DistributedRuntime(\n"
            "    problem, faults=FaultPlan.from_spec('dc-crash').injector(0)\n"
            ").run()\n"
            "digest = hashlib.sha256(run.allocation.lam.tobytes())\n"
            "digest.update(json.dumps(run.coupling_residuals).encode())\n"
            "digest.update(repr(run.fault_events).encode())\n"
            "digest.update(repr(sorted(run.fault_counts.items())).encode())\n"
            "print(digest.hexdigest())\n"
        )
        digests = {
            subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
            for _ in range(2)
        }
        assert len(digests) == 1
        run = self._run(slot_problem, "dc-crash")
        digest = hashlib.sha256(run.allocation.lam.tobytes())
        digest.update(repr(run.fault_events).encode())
        # The in-process run replays the same fault sequence.
        assert run.fault_counts.get("crash", 0) >= 1

    def test_dc_crash_recovers_to_fault_free_ufc(
        self, slot_problem, fault_free_run
    ):
        run = self._run(slot_problem, "dc-crash")
        assert run.converged and not run.degraded
        assert run.fault_counts.get("crash", 0) >= 1
        assert run.fault_counts.get("revive", 0) >= 1
        assert run.checkpoint_restores >= 1
        kinds = {e.kind for e in run.fault_events}
        assert {"crash", "revive", "checkpoint_restore"} <= kinds
        np.testing.assert_allclose(run.ufc, fault_free_run.ufc, rtol=1e-6)

    def test_bit_rot_trips_watchdog_but_stays_finite(self, slot_problem):
        run = self._run(slot_problem, "bit-rot")
        assert run.fault_counts.get("corrupt", 0) > 0
        assert run.watchdog_trips >= 1
        assert np.isfinite(run.allocation.lam).all()
        assert np.isfinite(run.ufc)

    @pytest.mark.parametrize("scenario", SHIPPED)
    def test_graceful_degradation_stays_certified(
        self, slot_problem, fault_free_run, scenario
    ):
        """Every shipped scenario yields a feasible, bounded allocation."""
        run = self._run(slot_problem, scenario)
        cert = certify_solution(
            slot_problem, run.allocation, solver="chaos-distributed"
        )
        assert cert.feasible, (scenario, cert.worst_violation)
        # Degradation is bounded and reported, not silently absorbed.
        assert run.ufc >= fault_free_run.ufc - 0.25 * abs(fault_free_run.ufc)
        if run.ufc < fault_free_run.ufc - 1e-6 * abs(fault_free_run.ufc):
            assert run.degraded or run.converged

    def test_escalation_raises_degraded_run_error(self, slot_problem):
        solver = ChaosDistributedSolver("bit-rot", escalate_degraded=True)
        with pytest.raises(DegradedRunError) as excinfo:
            solver.solve(slot_problem)
        run = excinfo.value.run
        assert run.degraded
        assert solver.runs == [run]  # the recovery path survives escalation


class TestChaosAcceptance:
    def test_dc_crash_horizon_24(self):
        """The PR's acceptance scenario: dc crash + 20% drop, 24 slots."""
        from repro.faults.chaos import run_chaos

        report = run_chaos("dc-crash", hours=24)
        assert report.passed
        assert report.failed_slots == 0
        assert report.feasible_slots == report.horizon == 24
        # The recovery path is visible: each slot replays the crash.
        assert report.fault_counts["crash"] >= 24
        assert report.fault_counts["revive"] >= 24
        assert report.checkpoint_restores >= 24
        assert report.retransmits > 0
        kinds = {e["kind"] for e in report.events}
        assert {"crash", "revive", "checkpoint_restore"} <= kinds
        # Report counters and the metrics registry agree by construction.
        for kind, count in report.fault_counts.items():
            counter = report.metrics.counter(
                "repro_faults_total", kind=kind, scenario="dc-crash"
            )
            assert counter.value == count, kind
        # Degradation is reported and small for a recoverable scenario.
        assert abs(report.ufc_degradation_pct) < 5.0
        text = report.render()
        assert "verdict         : PASS" in text
        assert "checkpoint" in text
