"""Additional edge-case coverage for the generic optimization engines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.optim.admg import ADMGEngine
from repro.optim.admm import ADMMBlock, ADMMEngine
from repro.optim.ipqp import solve_qp


def _target_block(target, K=None, x0=None, name=""):
    """Block with f(x) = 0.5||x - target||^2."""
    target = np.asarray(target, dtype=float)
    K = np.eye(len(target)) if K is None else np.atleast_2d(K)

    def prox(v, rho):
        return np.linalg.solve(np.eye(len(target)) + rho * K.T @ K,
                               target + rho * K.T @ v)

    return ADMMBlock(
        K=K,
        prox=prox,
        objective=lambda x: float(0.5 * np.sum((x - target) ** 2)),
        name=name,
        x0=x0,
    )


class TestADMMWarmStart:
    def test_x0_respected(self):
        """Starting at the solution converges immediately."""
        t1, t2 = np.array([1.0]), np.array([3.0])
        # min sum ||x_i - t_i||^2 s.t. x1 + x2 = 4: optimum (1, 3).
        cold = ADMMEngine(
            [_target_block(t1), _target_block(t2)], b=np.array([4.0]), rho=1.0
        ).run(max_iter=300, tol=1e-10)
        warm = ADMMEngine(
            [
                _target_block(t1, x0=np.array([1.0])),
                _target_block(t2, x0=np.array([3.0])),
            ],
            b=np.array([4.0]),
            rho=1.0,
        ).run(max_iter=300, tol=1e-10)
        assert warm.converged
        assert warm.iterations <= cold.iterations

    def test_objective_history_absent_without_objectives(self):
        block = ADMMBlock(
            K=np.eye(1),
            prox=lambda v, rho: rho * v / (1.0 + rho),
            objective=None,
        )
        res = ADMMEngine([block], b=np.array([0.5]), rho=1.0).run(max_iter=50)
        assert res.objectives == []
        assert len(res.primal_residuals) == res.iterations


class TestADMGBlockNames:
    def test_error_message_names_block(self):
        good = _target_block(np.zeros(2), name="fine")
        bad = _target_block(
            np.zeros(2), K=np.array([[1.0, 0.0], [1.0, 0.0]]), name="rank-deficient"
        )
        with pytest.raises(ValueError, match="rank-deficient"):
            ADMGEngine([good, bad], b=np.zeros(2), rho=1.0)


class TestIPQPEdgeCases:
    def test_iteration_cap_reported(self):
        """An artificially tight cap returns converged=False rather than
        raising, with the best iterate so far."""
        rng = np.random.default_rng(0)
        n = 5
        half = rng.normal(size=(n, n))
        P = half @ half.T + np.eye(n)
        q = rng.normal(size=n)
        res = solve_qp(P, q, G=-np.eye(n), h=np.zeros(n), max_iter=2)
        assert not res.converged
        assert res.iterations == 2
        assert np.isfinite(res.x).all()

    def test_equality_only_duals_satisfy_stationarity(self):
        P = np.diag([2.0, 6.0])
        q = np.array([1.0, -2.0])
        A = np.array([[1.0, -1.0]])
        b = np.array([0.5])
        res = solve_qp(P, q, A=A, b=b)
        stationarity = P @ res.x + q + A.T @ res.eq_dual
        np.testing.assert_allclose(stationarity, 0.0, atol=1e-8)
        np.testing.assert_allclose(A @ res.x, b, atol=1e-10)

    def test_redundant_inequalities_harmless(self):
        """Duplicated rows (rank-deficient G) still solve."""
        res = solve_qp(
            np.array([[2.0]]),
            np.array([-4.0]),
            G=np.array([[1.0], [1.0], [1.0]]),
            h=np.array([1.0, 1.0, 1.0]),
        )
        assert res.converged
        assert res.x[0] == pytest.approx(1.0, abs=1e-6)

    def test_zero_objective_pure_feasibility(self):
        res = solve_qp(
            np.zeros((2, 2)),
            np.zeros(2),
            A=np.array([[1.0, 1.0]]),
            b=np.array([2.0]),
            G=-np.eye(2),
            h=np.zeros(2),
        )
        assert res.converged
        assert res.x.sum() == pytest.approx(2.0, abs=1e-6)
        assert (res.x >= -1e-8).all()
