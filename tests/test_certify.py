"""Tests for a-posteriori solution certification (repro.obs.certify)."""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.admg.solver import DistributedUFCSolver
from repro.cli import main
from repro.core.centralized import CentralizedSolver
from repro.core.strategies import ALL_STRATEGIES, GRID, HYBRID
from repro.costs.carbon import SteppedCarbonTax
from repro.obs import MetricsRegistry
from repro.obs.certify import (
    DEFAULT_FEAS_TOL,
    DEFAULT_KKT_TOL,
    Certificate,
    CertificationContext,
    certify_solution,
)
from repro.sim.simulator import Simulator, build_model


@pytest.fixture()
def slot_problem(small_model, small_bundle):
    sim = Simulator(small_model, small_bundle)
    return sim.problem_for_slot(0, HYBRID)


class TestCertifySolution:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.name)
    def test_centralized_optimum_passes(self, small_model, small_bundle, strategy):
        sim = Simulator(small_model, small_bundle)
        problem = sim.problem_for_slot(3, strategy)
        res = CentralizedSolver().solve(problem)
        cert = certify_solution(
            problem, res.allocation, duals=(res.eq_dual, res.ineq_dual),
            solver="centralized", slot=3,
        )
        assert cert.feasible and cert.stationary and cert.ok
        assert cert.worst_violation <= DEFAULT_FEAS_TOL
        assert cert.kkt_residual <= DEFAULT_KKT_TOL
        assert cert.worst_constraint  # names the binding family

    def test_infeasible_allocation_fails_feasibility(self, slot_problem):
        res = CentralizedSolver().solve(slot_problem)
        broken = dataclasses.replace(
            res.allocation, lam=res.allocation.lam * 1.5
        )
        cert = certify_solution(slot_problem, broken)
        assert not cert.feasible
        assert not cert.ok
        assert cert.feasibility["load_balance"] > cert.feas_tol
        assert "[" in cert.worst_constraint  # names the worst index

    def test_suboptimal_allocation_fails_kkt(self, slot_problem):
        # Feasible but far from optimal: route everything proportionally
        # to capacity, then keep the polished power split.
        from repro.baselines.heuristics import (
            proportional_routing,
            solve_heuristic,
        )

        res = solve_heuristic(slot_problem, proportional_routing, name="prop")
        cert = certify_solution(slot_problem, res.allocation)
        assert cert.feasible
        assert not cert.stationary
        assert not cert.ok

    def test_admg_default_tolerance_fails_but_tight_passes(self, slot_problem):
        loose = DistributedUFCSolver(tol=1e-3, max_iter=600).solve(slot_problem)
        cert_loose = certify_solution(slot_problem, loose.allocation)
        assert not cert_loose.stationary  # honest: 1e-3 stops early
        tight = DistributedUFCSolver(tol=1e-6, max_iter=5000).solve(slot_problem)
        cert_tight = certify_solution(slot_problem, tight.allocation)
        assert cert_tight.ok

    def test_epigraph_slots_certify(self, small_bundle):
        # A stepped carbon tax needs epigraph variables in the QP.
        model = build_model(
            small_bundle,
            emission_costs=SteppedCarbonTax(
                thresholds_kg=[0.0, 500.0], rates_per_tonne=[25.0, 60.0]
            ),
        )
        sim = Simulator(model, small_bundle)
        problem = sim.problem_for_slot(0, HYBRID)
        qp = problem.to_qp()
        n = qp.num_datacenters
        assert qp.P.shape[0] > qp.nu_offset + n  # u columns present
        res = CentralizedSolver().solve(problem)
        cert = certify_solution(problem, res.allocation)
        assert cert.ok

    def test_certificate_to_dict_is_json_ready(self, slot_problem):
        res = CentralizedSolver().solve(slot_problem)
        cert = certify_solution(slot_problem, res.allocation, slot=5)
        payload = json.loads(json.dumps(cert.to_dict()))
        assert payload["slot"] == 5
        assert payload["ok"] is True
        assert set(payload["feasibility"]) >= {"load_balance", "capacity"}

    def test_context_caches_structures(self, small_model, small_bundle):
        sim = Simulator(small_model, small_bundle)
        ctx = CertificationContext()
        certs = []
        for t in range(3):
            problem = sim.problem_for_slot(t, HYBRID)
            res = CentralizedSolver().solve(problem)
            certs.append(ctx.certify(problem, res.allocation, slot=t))
        assert all(isinstance(c, Certificate) and c.ok for c in certs)
        assert len(ctx._structures) == 1  # one strategy → one compiled QP


class TestEngineCertification:
    def test_certificates_attach_and_solutions_unchanged(
        self, small_model, small_bundle
    ):
        sim_plain = Simulator(small_model, small_bundle)
        sim_cert = Simulator(small_model, small_bundle, certify=True)
        plain = sim_plain.run(HYBRID, hours=6)
        certified = sim_cert.run(HYBRID, hours=6)
        assert plain.certificates is None
        assert len(certified.certificates) == 6
        assert all(c.ok for c in certified.certificates)
        np.testing.assert_array_equal(plain.ufc, certified.ufc)
        summary = certified.horizon_summary
        assert summary.certified_slots == 6
        assert summary.suspect_slots == ()
        assert summary.worst_kkt <= DEFAULT_KKT_TOL
        assert "certification" in summary.format_table()

    def test_serial_and_pool_certificates_agree(self, small_model, small_bundle):
        sim = Simulator(small_model, small_bundle, certify=True)
        serial = sim.run(GRID, hours=6, workers=1)
        sim_pool = Simulator(
            small_model, small_bundle, certify=True, oversubscribe=True
        )
        pooled = sim_pool.run(GRID, hours=6, workers=2)
        for a, b in zip(serial.certificates, pooled.certificates):
            assert a.kkt_residual == b.kkt_residual
            assert a.worst_violation == b.worst_violation
            assert a.ok and b.ok

    def test_suspect_slots_are_flagged(self, small_model, small_bundle):
        # An impossible KKT gate marks every slot suspect.
        certifier = CertificationContext(kkt_tol=1e-18)
        sim = Simulator(small_model, small_bundle, certify=certifier)
        result = sim.run(HYBRID, hours=4)
        assert all(not c.ok for c in result.certificates)
        summary = result.horizon_summary
        assert summary.suspect_slots == (0, 1, 2, 3)
        assert "suspect" in summary.format_table()

    def test_engine_records_metrics(self, small_model, small_bundle):
        metrics = MetricsRegistry()
        sim = Simulator(small_model, small_bundle, certify=True, metrics=metrics)
        sim.run(HYBRID, hours=4)
        by_name = {}
        for name, labels, value in metrics.samples():
            by_name[name] = by_name.get(name, 0.0) + value
        assert by_name["repro_engine_runs_total"] == 1
        assert by_name["repro_engine_slots_total"] == 4
        assert by_name["repro_cert_kkt_residual_count"] == 4
        assert "repro_engine_slot_solve_seconds_sum" in by_name

    def test_warm_path_certifies(self, small_model, small_bundle):
        sim = Simulator(
            small_model, small_bundle, solver="distributed",
            warm_start=True, certify=True,
        )
        result = sim.run(HYBRID, hours=3)
        assert len(result.certificates) == 3
        assert all(c.solver == "distributed" for c in result.certificates)


class TestDoctorCli:
    def test_doctor_passes_and_writes_json(self, tmp_path, capsys):
        out = tmp_path / "doctor.json"
        code = main(
            ["--seed", "2014", "doctor", "--horizon", "3", "--json", str(out)]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "horizon health      : HEALTHY" in captured
        assert "PASS" in captured
        payload = json.loads(out.read_text())
        assert payload["slots"] == 3
        assert payload["failing_slots"] == []
        assert len(payload["certificates"]) == 3
        assert payload["metrics"]["families"]

    def test_doctor_fails_nonzero_on_bad_gate(self, capsys):
        code = main(["doctor", "--horizon", "2", "--kkt-tol", "1e-18"])
        captured = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in captured
        assert "SUSPECT" in captured

    def test_doctor_horizon_aliases_hours(self, capsys):
        assert main(["--hours", "2", "doctor"]) == 0
        assert "certifying 2 slots" in capsys.readouterr().out
