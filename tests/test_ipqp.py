"""Tests for repro.optim.ipqp: the dense interior-point QP solver."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import optimize

from repro.optim.ipqp import solve_qp


def scipy_reference(P, q, A=None, b=None, G=None, h=None):
    """Solve the same QP with scipy's trust-constr as an oracle."""
    n = len(q)
    constraints = []
    if A is not None and len(A):
        constraints.append(optimize.LinearConstraint(A, b, b))
    if G is not None and len(G):
        constraints.append(optimize.LinearConstraint(G, -np.inf, h))
    res = optimize.minimize(
        lambda x: 0.5 * x @ P @ x + q @ x,
        np.zeros(n),
        jac=lambda x: P @ x + q,
        method="trust-constr",
        constraints=constraints,
        options={"gtol": 1e-10, "xtol": 1e-12, "maxiter": 3000},
    )
    return res.x, res.fun


class TestUnconstrained:
    def test_simple_quadratic(self):
        res = solve_qp(np.diag([2.0, 4.0]), np.array([-2.0, -8.0]))
        np.testing.assert_allclose(res.x, [1.0, 2.0], atol=1e-8)
        assert res.converged


class TestEqualityOnly:
    def test_projection_onto_hyperplane(self):
        # min ||x||^2 s.t. x1 + x2 = 2 -> x = (1, 1).
        res = solve_qp(
            2 * np.eye(2), np.zeros(2), A=np.array([[1.0, 1.0]]), b=np.array([2.0])
        )
        np.testing.assert_allclose(res.x, [1.0, 1.0], atol=1e-9)
        assert res.converged
        # Dual satisfies stationarity: 2x + A^T y = 0 -> y = -2.
        assert res.eq_dual[0] == pytest.approx(-2.0, abs=1e-8)


class TestInequality:
    def test_active_box_constraint(self):
        # min (x-3)^2 s.t. x <= 1 -> x = 1.
        res = solve_qp(
            np.array([[2.0]]),
            np.array([-6.0]),
            G=np.array([[1.0]]),
            h=np.array([1.0]),
        )
        assert res.converged
        assert res.x[0] == pytest.approx(1.0, abs=1e-7)
        assert res.ineq_dual[0] == pytest.approx(4.0, abs=1e-5)

    def test_inactive_constraint(self):
        res = solve_qp(
            np.array([[2.0]]),
            np.array([-2.0]),
            G=np.array([[1.0]]),
            h=np.array([10.0]),
        )
        assert res.x[0] == pytest.approx(1.0, abs=1e-7)
        assert res.ineq_dual[0] == pytest.approx(0.0, abs=1e-6)

    def test_simplex_lp(self):
        """Pure LP (P = 0) over a simplex picks the cheapest vertex."""
        n = 4
        res = solve_qp(
            np.zeros((n, n)),
            np.array([3.0, 1.0, 2.0, 5.0]),
            A=np.ones((1, n)),
            b=np.array([1.0]),
            G=-np.eye(n),
            h=np.zeros(n),
        )
        assert res.converged
        np.testing.assert_allclose(res.x, [0, 1, 0, 0], atol=1e-6)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            solve_qp(np.eye(2), np.zeros(3))
        with pytest.raises(ValueError):
            solve_qp(np.eye(2), np.zeros(2), A=np.eye(3), b=np.zeros(3))
        with pytest.raises(ValueError):
            solve_qp(np.eye(2), np.zeros(2), G=np.eye(2), h=np.zeros(3))


class TestAgainstScipy:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_strictly_convex_qps(self, seed):
        rng = np.random.default_rng(seed)
        n, p, m = 6, 2, 8
        a_half = rng.normal(size=(n, n))
        P = a_half @ a_half.T + 0.5 * np.eye(n)
        q = rng.normal(size=n)
        A = rng.normal(size=(p, n))
        x_feas = rng.uniform(0.5, 1.0, size=n)
        b = A @ x_feas
        G = rng.normal(size=(m, n))
        h = G @ x_feas + rng.uniform(0.2, 2.0, size=m)
        res = solve_qp(P, q, A=A, b=b, G=G, h=h)
        assert res.converged
        _, ref_val = scipy_reference(P, q, A, b, G, h)
        assert res.value == pytest.approx(ref_val, abs=1e-5 * max(1.0, abs(ref_val)))

    @pytest.mark.parametrize("seed", range(4))
    def test_badly_scaled_problems(self, seed):
        """Mixed 1e4 / 1e-4 variable scales (the UFC regime)."""
        rng = np.random.default_rng(100 + seed)
        scales = np.array([1e4, 1e4, 1.0, 1e-2])
        n = 4
        P = np.diag(1.0 / scales**2)
        q = -1.0 / scales
        G = np.vstack([-np.eye(n), np.eye(n)])
        h = np.concatenate([np.zeros(n), 3 * scales])
        res = solve_qp(P, q, G=G, h=h)
        assert res.converged
        np.testing.assert_allclose(res.x, scales, rtol=1e-5)


class TestUFCInstances:
    def test_hybrid_slot_feasible_and_stable(self, small_model, small_bundle):
        """Every strategy/slot compiles and solves to feasibility."""
        from repro.core.problem import SlotInputs, UFCProblem
        from repro.core.strategies import ALL_STRATEGIES

        for t in (0, 7, 15):
            slot = small_bundle.slot(t)
            for strategy in ALL_STRATEGIES:
                problem = UFCProblem(
                    small_model,
                    SlotInputs(
                        arrivals=slot["arrivals"],
                        prices=slot["prices"],
                        carbon_rates=slot["carbon_rates"],
                    ),
                    strategy=strategy,
                )
                qp = problem.to_qp()
                res = solve_qp(qp.P, qp.q, A=qp.A, b=qp.b, G=qp.G, h=qp.h)
                assert res.converged, f"slot {t} {strategy.name}"
                alloc = qp.extract(res.x)
                report = problem.check_feasibility(alloc, tol=1e-4)
                assert report.ok, (t, strategy.name, report)


class TestEquilibration:
    @given(seed=st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_equilibration_does_not_change_solution(self, seed):
        rng = np.random.default_rng(seed)
        n = 5
        a_half = rng.normal(size=(n, n))
        P = a_half @ a_half.T + np.eye(n)
        q = rng.normal(size=n)
        G = -np.eye(n)
        h = np.zeros(n) + 2.0
        plain = solve_qp(P, q, G=G, h=h, equilibrate=False)
        scaled = solve_qp(P, q, G=G, h=h, equilibrate=True)
        np.testing.assert_allclose(plain.x, scaled.x, atol=1e-6)


class TestEquilibrationCycleFallback:
    def test_limit_cycle_instance_converges(self):
        # Regression: on this instance (hypothesis seed=57 of the
        # simplex cross-check) the equilibrated Mehrotra iteration
        # enters a period-3 limit cycle and stalls at value 72.4; the
        # raw data converges in ~10 iterations to the true optimum
        # 19.6.  A non-converged equilibrated solve must fall back to
        # the raw data.
        rng = np.random.default_rng(57)
        n = int(rng.integers(2, 7))
        half = rng.normal(size=(n, n))
        P = half @ half.T + 0.05 * np.eye(n)
        q = rng.normal(size=n) * 3
        A = np.ones((1, n))
        b = np.array([7.0])
        res = solve_qp(P, q, A=A, b=b, G=-np.eye(n), h=np.zeros(n))
        assert res.converged
        raw = solve_qp(
            P, q, A=A, b=b, G=-np.eye(n), h=np.zeros(n), equilibrate=False
        )
        assert res.value == raw.value
        assert (res.x == raw.x).all()

    def test_fallback_reports_trace_of_returned_solve(self):
        rng = np.random.default_rng(57)
        n = int(rng.integers(2, 7))
        half = rng.normal(size=(n, n))
        P = half @ half.T + 0.05 * np.eye(n)
        q = rng.normal(size=n) * 3
        res = solve_qp(
            P, q, A=np.ones((1, n)), b=np.array([7.0]),
            G=-np.eye(n), h=np.zeros(n), trace=True,
        )
        assert res.converged
        assert res.trace is not None
        assert len(res.trace) == res.iterations


class TestWorkspaceReuse:
    """The preallocated-workspace micro-optimizations must be invisible:
    repeated solves are bit-identical and inputs are never mutated."""

    def _instance(self, seed=3):
        rng = np.random.default_rng(seed)
        n = 6
        half = rng.normal(size=(n, n))
        P = half @ half.T + np.eye(n)
        q = rng.normal(size=n)
        A = np.ones((1, n))
        b = np.array([2.0])
        G = np.vstack([-np.eye(n), rng.normal(size=(2, n))])
        h = np.concatenate([np.zeros(n), rng.uniform(3.0, 5.0, size=2)])
        return P, q, A, b, G, h

    def test_repeated_solves_bit_identical(self):
        P, q, A, b, G, h = self._instance()
        first = solve_qp(P, q, A=A, b=b, G=G, h=h)
        second = solve_qp(P, q, A=A, b=b, G=G, h=h)
        assert first.converged and second.converged
        assert (first.x == second.x).all()
        assert (first.eq_dual == second.eq_dual).all()
        assert (first.ineq_dual == second.ineq_dual).all()
        assert first.iterations == second.iterations
        assert first.value == second.value

    def test_inputs_not_mutated(self):
        P, q, A, b, G, h = self._instance(seed=4)
        copies = tuple(arr.copy() for arr in (P, q, A, b, G, h))
        res = solve_qp(P, q, A=A, b=b, G=G, h=h)
        assert res.converged
        for original, copy in zip((P, q, A, b, G, h), copies):
            assert (original == copy).all()

    def test_trace_does_not_change_iterates(self):
        P, q, A, b, G, h = self._instance(seed=5)
        plain = solve_qp(P, q, A=A, b=b, G=G, h=h)
        traced = solve_qp(P, q, A=A, b=b, G=G, h=h, trace=True)
        assert (plain.x == traced.x).all()
        assert plain.iterations == traced.iterations


class TestKKTResidualSafeguard:
    """_solve_kkt retries on bad residuals, not only on LinAlgError."""

    def test_healthy_solve_bit_identical(self):
        from repro.optim.ipqp import _solve_kkt

        rng = np.random.default_rng(0)
        a = rng.normal(size=(8, 8))
        kkt = a @ a.T + np.eye(8)
        rhs = rng.normal(size=8)
        np.testing.assert_array_equal(
            _solve_kkt(kkt, rhs), np.linalg.solve(kkt, rhs)
        )

    def test_bad_residual_triggers_regularized_retry(self):
        from repro.optim.ipqp import _solve_kkt

        # Condition ~1e22: np.linalg.solve does NOT raise (no exactly
        # zero pivot) but returns a direction whose residual is ~40.
        # The safeguard must catch that via the residual check — the
        # old LinAlgError-only fallback silently accepted it.
        r = np.random.default_rng(1)
        n = 6
        q1, _ = np.linalg.qr(r.normal(size=(n, n)))
        q2, _ = np.linalg.qr(r.normal(size=(n, n)))
        kkt = (q1 * np.array([1e3, 1.0, 1.0, 1e-2, 1e-8, 1e-19])) @ q2.T
        rhs = r.normal(size=n)
        raw = np.linalg.solve(kkt, rhs)
        raw_resid = np.abs(kkt @ raw - rhs).max()
        assert raw_resid > 1.0  # the unguarded direction really is bad
        sol = _solve_kkt(kkt, rhs)
        assert np.isfinite(sol).all()
        assert np.abs(kkt @ sol - rhs).max() < raw_resid / 10

    def test_exactly_singular_consistent_rhs_recovers(self):
        from repro.optim.ipqp import _solve_kkt

        # Exactly singular (LinAlgError path) with a consistent rhs:
        # the regularized retry produces an accurate direction.
        kkt = np.ones((2, 2))
        sol = _solve_kkt(kkt, rhs=np.array([1.0, 1.0]))
        assert np.abs(kkt @ sol - np.array([1.0, 1.0])).max() < 1e-6

    def test_exactly_singular_after_regularization_raises(self):
        from repro.optim.ipqp import _solve_kkt

        kkt = np.full((2, 2), np.nan)
        with pytest.raises(np.linalg.LinAlgError):
            _solve_kkt(kkt, rhs=np.ones(2))


class TestZeroRowEquilibration:
    """Ruiz equilibration must not inflate exactly-zero rows.

    A vacuous inequality row (all-zero G row with positive h — e.g. a
    capacity constraint for a datacenter outside every front-end's
    reach) used to be upscaled by 1e6 per sweep, producing data so
    badly scaled the relative convergence test passed on garbage
    iterates.
    """

    def _instance_with_zero_row(self, seed=0):
        rng = np.random.default_rng(seed)
        n = 6
        a = rng.normal(size=(n, n))
        P = a @ a.T + np.eye(n)
        q = rng.normal(size=n)
        A = np.ones((1, n))
        b = np.array([3.0])
        G = np.vstack([-np.eye(n), np.zeros((1, n))])
        h = np.concatenate([np.zeros(n), [5.0]])
        return P, q, A, b, G, h

    def test_zero_row_stays_zero_after_equilibration(self):
        from repro.optim.ipqp import _ruiz_equilibrate

        P, q, A, b, G, h = self._instance_with_zero_row()
        _P, _q, _A, _b, G_s, h_s, _d, _ra, _rg, _g = _ruiz_equilibrate(
            P, q, A, b, G, h
        )
        assert (G_s[-1] == 0).all()
        assert h_s[-1] == 5.0

    def test_solve_with_vacuous_row_matches_without(self):
        P, q, A, b, G, h = self._instance_with_zero_row()
        with_row = solve_qp(P, q, A=A, b=b, G=G, h=h)
        without = solve_qp(P, q, A=A, b=b, G=G[:-1], h=h[:-1])
        assert with_row.converged and without.converged
        np.testing.assert_allclose(with_row.x, without.x, atol=1e-7)
        # The genuinely converged solve satisfies its constraints.
        assert np.abs(A @ with_row.x - b).max() < 1e-7
