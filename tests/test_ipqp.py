"""Tests for repro.optim.ipqp: the dense interior-point QP solver."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import optimize

from repro.optim.ipqp import solve_qp


def scipy_reference(P, q, A=None, b=None, G=None, h=None):
    """Solve the same QP with scipy's trust-constr as an oracle."""
    n = len(q)
    constraints = []
    if A is not None and len(A):
        constraints.append(optimize.LinearConstraint(A, b, b))
    if G is not None and len(G):
        constraints.append(optimize.LinearConstraint(G, -np.inf, h))
    res = optimize.minimize(
        lambda x: 0.5 * x @ P @ x + q @ x,
        np.zeros(n),
        jac=lambda x: P @ x + q,
        method="trust-constr",
        constraints=constraints,
        options={"gtol": 1e-10, "xtol": 1e-12, "maxiter": 3000},
    )
    return res.x, res.fun


class TestUnconstrained:
    def test_simple_quadratic(self):
        res = solve_qp(np.diag([2.0, 4.0]), np.array([-2.0, -8.0]))
        np.testing.assert_allclose(res.x, [1.0, 2.0], atol=1e-8)
        assert res.converged


class TestEqualityOnly:
    def test_projection_onto_hyperplane(self):
        # min ||x||^2 s.t. x1 + x2 = 2 -> x = (1, 1).
        res = solve_qp(
            2 * np.eye(2), np.zeros(2), A=np.array([[1.0, 1.0]]), b=np.array([2.0])
        )
        np.testing.assert_allclose(res.x, [1.0, 1.0], atol=1e-9)
        assert res.converged
        # Dual satisfies stationarity: 2x + A^T y = 0 -> y = -2.
        assert res.eq_dual[0] == pytest.approx(-2.0, abs=1e-8)


class TestInequality:
    def test_active_box_constraint(self):
        # min (x-3)^2 s.t. x <= 1 -> x = 1.
        res = solve_qp(
            np.array([[2.0]]),
            np.array([-6.0]),
            G=np.array([[1.0]]),
            h=np.array([1.0]),
        )
        assert res.converged
        assert res.x[0] == pytest.approx(1.0, abs=1e-7)
        assert res.ineq_dual[0] == pytest.approx(4.0, abs=1e-5)

    def test_inactive_constraint(self):
        res = solve_qp(
            np.array([[2.0]]),
            np.array([-2.0]),
            G=np.array([[1.0]]),
            h=np.array([10.0]),
        )
        assert res.x[0] == pytest.approx(1.0, abs=1e-7)
        assert res.ineq_dual[0] == pytest.approx(0.0, abs=1e-6)

    def test_simplex_lp(self):
        """Pure LP (P = 0) over a simplex picks the cheapest vertex."""
        n = 4
        res = solve_qp(
            np.zeros((n, n)),
            np.array([3.0, 1.0, 2.0, 5.0]),
            A=np.ones((1, n)),
            b=np.array([1.0]),
            G=-np.eye(n),
            h=np.zeros(n),
        )
        assert res.converged
        np.testing.assert_allclose(res.x, [0, 1, 0, 0], atol=1e-6)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            solve_qp(np.eye(2), np.zeros(3))
        with pytest.raises(ValueError):
            solve_qp(np.eye(2), np.zeros(2), A=np.eye(3), b=np.zeros(3))
        with pytest.raises(ValueError):
            solve_qp(np.eye(2), np.zeros(2), G=np.eye(2), h=np.zeros(3))


class TestAgainstScipy:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_strictly_convex_qps(self, seed):
        rng = np.random.default_rng(seed)
        n, p, m = 6, 2, 8
        a_half = rng.normal(size=(n, n))
        P = a_half @ a_half.T + 0.5 * np.eye(n)
        q = rng.normal(size=n)
        A = rng.normal(size=(p, n))
        x_feas = rng.uniform(0.5, 1.0, size=n)
        b = A @ x_feas
        G = rng.normal(size=(m, n))
        h = G @ x_feas + rng.uniform(0.2, 2.0, size=m)
        res = solve_qp(P, q, A=A, b=b, G=G, h=h)
        assert res.converged
        _, ref_val = scipy_reference(P, q, A, b, G, h)
        assert res.value == pytest.approx(ref_val, abs=1e-5 * max(1.0, abs(ref_val)))

    @pytest.mark.parametrize("seed", range(4))
    def test_badly_scaled_problems(self, seed):
        """Mixed 1e4 / 1e-4 variable scales (the UFC regime)."""
        rng = np.random.default_rng(100 + seed)
        scales = np.array([1e4, 1e4, 1.0, 1e-2])
        n = 4
        P = np.diag(1.0 / scales**2)
        q = -1.0 / scales
        G = np.vstack([-np.eye(n), np.eye(n)])
        h = np.concatenate([np.zeros(n), 3 * scales])
        res = solve_qp(P, q, G=G, h=h)
        assert res.converged
        np.testing.assert_allclose(res.x, scales, rtol=1e-5)


class TestUFCInstances:
    def test_hybrid_slot_feasible_and_stable(self, small_model, small_bundle):
        """Every strategy/slot compiles and solves to feasibility."""
        from repro.core.problem import SlotInputs, UFCProblem
        from repro.core.strategies import ALL_STRATEGIES

        for t in (0, 7, 15):
            slot = small_bundle.slot(t)
            for strategy in ALL_STRATEGIES:
                problem = UFCProblem(
                    small_model,
                    SlotInputs(
                        arrivals=slot["arrivals"],
                        prices=slot["prices"],
                        carbon_rates=slot["carbon_rates"],
                    ),
                    strategy=strategy,
                )
                qp = problem.to_qp()
                res = solve_qp(qp.P, qp.q, A=qp.A, b=qp.b, G=qp.G, h=qp.h)
                assert res.converged, f"slot {t} {strategy.name}"
                alloc = qp.extract(res.x)
                report = problem.check_feasibility(alloc, tol=1e-4)
                assert report.ok, (t, strategy.name, report)


class TestEquilibration:
    @given(seed=st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_equilibration_does_not_change_solution(self, seed):
        rng = np.random.default_rng(seed)
        n = 5
        a_half = rng.normal(size=(n, n))
        P = a_half @ a_half.T + np.eye(n)
        q = rng.normal(size=n)
        G = -np.eye(n)
        h = np.zeros(n) + 2.0
        plain = solve_qp(P, q, G=G, h=h, equilibrate=False)
        scaled = solve_qp(P, q, G=G, h=h, equilibrate=True)
        np.testing.assert_allclose(plain.x, scaled.x, atol=1e-6)


class TestEquilibrationCycleFallback:
    def test_limit_cycle_instance_converges(self):
        # Regression: on this instance (hypothesis seed=57 of the
        # simplex cross-check) the equilibrated Mehrotra iteration
        # enters a period-3 limit cycle and stalls at value 72.4; the
        # raw data converges in ~10 iterations to the true optimum
        # 19.6.  A non-converged equilibrated solve must fall back to
        # the raw data.
        rng = np.random.default_rng(57)
        n = int(rng.integers(2, 7))
        half = rng.normal(size=(n, n))
        P = half @ half.T + 0.05 * np.eye(n)
        q = rng.normal(size=n) * 3
        A = np.ones((1, n))
        b = np.array([7.0])
        res = solve_qp(P, q, A=A, b=b, G=-np.eye(n), h=np.zeros(n))
        assert res.converged
        raw = solve_qp(
            P, q, A=A, b=b, G=-np.eye(n), h=np.zeros(n), equilibrate=False
        )
        assert res.value == raw.value
        assert (res.x == raw.x).all()

    def test_fallback_reports_trace_of_returned_solve(self):
        rng = np.random.default_rng(57)
        n = int(rng.integers(2, 7))
        half = rng.normal(size=(n, n))
        P = half @ half.T + 0.05 * np.eye(n)
        q = rng.normal(size=n) * 3
        res = solve_qp(
            P, q, A=np.ones((1, n)), b=np.array([7.0]),
            G=-np.eye(n), h=np.zeros(n), trace=True,
        )
        assert res.converged
        assert res.trace is not None
        assert len(res.trace) == res.iterations


class TestWorkspaceReuse:
    """The preallocated-workspace micro-optimizations must be invisible:
    repeated solves are bit-identical and inputs are never mutated."""

    def _instance(self, seed=3):
        rng = np.random.default_rng(seed)
        n = 6
        half = rng.normal(size=(n, n))
        P = half @ half.T + np.eye(n)
        q = rng.normal(size=n)
        A = np.ones((1, n))
        b = np.array([2.0])
        G = np.vstack([-np.eye(n), rng.normal(size=(2, n))])
        h = np.concatenate([np.zeros(n), rng.uniform(3.0, 5.0, size=2)])
        return P, q, A, b, G, h

    def test_repeated_solves_bit_identical(self):
        P, q, A, b, G, h = self._instance()
        first = solve_qp(P, q, A=A, b=b, G=G, h=h)
        second = solve_qp(P, q, A=A, b=b, G=G, h=h)
        assert first.converged and second.converged
        assert (first.x == second.x).all()
        assert (first.eq_dual == second.eq_dual).all()
        assert (first.ineq_dual == second.ineq_dual).all()
        assert first.iterations == second.iterations
        assert first.value == second.value

    def test_inputs_not_mutated(self):
        P, q, A, b, G, h = self._instance(seed=4)
        copies = tuple(arr.copy() for arr in (P, q, A, b, G, h))
        res = solve_qp(P, q, A=A, b=b, G=G, h=h)
        assert res.converged
        for original, copy in zip((P, q, A, b, G, h), copies):
            assert (original == copy).all()

    def test_trace_does_not_change_iterates(self):
        P, q, A, b, G, h = self._instance(seed=5)
        plain = solve_qp(P, q, A=A, b=b, G=G, h=h)
        traced = solve_qp(P, q, A=A, b=b, G=G, h=h, trace=True)
        assert (plain.x == traced.x).all()
        assert plain.iterations == traced.iterations
