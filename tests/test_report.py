"""Tests for the report generator and its chart section."""

from __future__ import annotations

import pytest

from repro.experiments.report import _chart_section, generate_report, main

HOURS = 24


class TestGenerateReport:
    @pytest.fixture(scope="class")
    def fast_report(self):
        return generate_report(hours=HOURS, fast=True, charts=True)

    def test_sections_in_paper_order(self, fast_report):
        order = ["Table I", "Fig. 3", "Fig. 4", "Fig. 5", "Fig. 6",
                 "Fig. 7", "Fig. 8"]
        positions = [fast_report.index(f"\n{name}\n") for name in order]
        assert positions == sorted(positions)

    def test_fast_skips_sweeps(self, fast_report):
        assert "Fig. 9" not in fast_report
        assert "Fig. 10" not in fast_report
        assert "Fig. 11" not in fast_report

    def test_charts_included_by_default(self, fast_report):
        assert "Series charts" in fast_report
        assert "total workload" in fast_report
        # Sparkline block characters present.
        assert any(ch in fast_report for ch in "▁▂▃▄▅▆▇█")

    def test_charts_can_be_disabled(self):
        report = generate_report(hours=HOURS, fast=True, charts=False)
        assert "Series charts" not in report

    def test_timings_recorded(self, fast_report):
        assert "[0." in fast_report or "s]" in fast_report


class TestChartSection:
    def test_all_series_rendered(self):
        section = _chart_section(HOURS, 2014)
        for label in ("total workload", "san jose price", "I_hg",
                      "FC utilization", "hybrid latency"):
            assert label in section

    def test_lines_aligned(self):
        section = _chart_section(HOURS, 2014)
        lines = section.splitlines()
        # Every line ends with a block-character chart of equal length.
        chart_lengths = {
            sum(1 for ch in line if ch in "▁▂▃▄▅▆▇█") for line in lines
        }
        assert len(chart_lengths) == 1


class TestMain:
    def test_cli_entry(self, capsys):
        assert main(["--hours", str(HOURS), "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
