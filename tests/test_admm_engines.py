"""Tests for the generic ADMM and ADM-G engines (repro.optim)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.optim.admg import ADMGEngine
from repro.optim.admm import ADMMBlock, ADMMEngine
from repro.optim.ipqp import solve_qp


def quadratic_block(P, q, K, name=""):
    """Block with f(x) = 0.5 x'Px + q'x (unconstrained prox)."""
    P = np.atleast_2d(P)
    q = np.atleast_1d(q)
    K = np.atleast_2d(K)

    def prox(v, rho):
        return np.linalg.solve(P + rho * K.T @ K, rho * K.T @ v - q)

    return ADMMBlock(
        K=K,
        prox=prox,
        objective=lambda x: float(0.5 * x @ P @ x + q @ x),
        name=name,
    )


def nonneg_quadratic_block(diag, q, K, name=""):
    """Block with f(x) = 0.5 x'diag(d)x + q'x + indicator(x >= 0).

    Solved by projected coordinate analysis when K = I (diagonal system).
    """
    diag = np.asarray(diag, dtype=float)
    q = np.asarray(q, dtype=float)
    K = np.atleast_2d(K)
    if not np.allclose(K, np.eye(K.shape[0]) if K.shape[0] == K.shape[1] else K):
        pass

    def prox(v, rho):
        # Requires K = c*I so the prox separates per coordinate.
        c = K[0, 0]
        return np.maximum((rho * c * v - q) / (diag + rho * c * c), 0.0)

    return ADMMBlock(
        K=K,
        prox=prox,
        objective=lambda x: float(0.5 * x @ (diag * x) + q @ x),
        name=name,
    )


class TestADMMEngineValidation:
    def test_requires_blocks(self):
        with pytest.raises(ValueError):
            ADMMEngine([], b=np.zeros(1), rho=1.0)

    def test_requires_positive_rho(self):
        blk = quadratic_block(np.eye(1), np.zeros(1), np.eye(1))
        with pytest.raises(ValueError):
            ADMMEngine([blk], b=np.zeros(1), rho=0.0)

    def test_row_mismatch_rejected(self):
        blk = quadratic_block(np.eye(1), np.zeros(1), np.eye(1))
        with pytest.raises(ValueError):
            ADMMEngine([blk], b=np.zeros(2), rho=1.0)


class TestSingleBlockADMM:
    def test_augmented_lagrangian_solves_equality_qp(self):
        """m=1 reduces to the method of multipliers."""
        P = np.diag([2.0, 4.0])
        q = np.array([-2.0, -4.0])
        K = np.array([[1.0, 1.0]])
        b = np.array([3.0])
        engine = ADMMEngine([quadratic_block(P, q, K)], b=b, rho=2.0)
        res = engine.run(max_iter=300, tol=1e-10)
        assert res.converged
        ref = solve_qp(P, q, A=K, b=b)
        np.testing.assert_allclose(res.x[0], ref.x, atol=1e-6)


class TestTwoBlockADMM:
    def test_consensus_average(self):
        """min (x-1)^2 + (z-3)^2 s.t. x - z = 0 -> both 2."""
        bx = quadratic_block(np.array([[2.0]]), np.array([-2.0]), np.array([[1.0]]))
        bz = quadratic_block(np.array([[2.0]]), np.array([-6.0]), np.array([[-1.0]]))
        engine = ADMMEngine([bx, bz], b=np.zeros(1), rho=1.0)
        res = engine.run(max_iter=500, tol=1e-10)
        assert res.converged
        assert res.x[0][0] == pytest.approx(2.0, abs=1e-6)
        assert res.x[1][0] == pytest.approx(2.0, abs=1e-6)

    def test_objective_history_monotone_tail(self):
        bx = quadratic_block(np.array([[2.0]]), np.array([-2.0]), np.array([[1.0]]))
        bz = quadratic_block(np.array([[2.0]]), np.array([-6.0]), np.array([[-1.0]]))
        engine = ADMMEngine([bx, bz], b=np.zeros(1), rho=1.0)
        res = engine.run(max_iter=200, tol=1e-12)
        assert len(res.objectives) == res.iterations
        # Primal residuals decay overall.
        assert res.primal_residuals[-1] < res.primal_residuals[0]


class TestADMGEngine:
    def _three_block_problem(self, seed=3):
        """min sum_i 0.5||x_i - t_i||^2 s.t. x_1 + x_2 + x_3 = b."""
        rng = np.random.default_rng(seed)
        n = 3
        targets = [rng.normal(size=n) for _ in range(3)]
        blocks = [
            quadratic_block(np.eye(n), -targets[i], np.eye(n), name=f"x{i}")
            for i in range(3)
        ]
        b = rng.normal(size=n)
        return blocks, b, targets

    def test_three_block_reaches_optimum(self):
        blocks, b, targets = self._three_block_problem()
        engine = ADMGEngine(blocks, b=b, rho=1.0, eps=1.0)
        res = engine.run(max_iter=500, tol=1e-10)
        assert res.converged
        # Analytic optimum: x_i = t_i + (b - sum t)/3.
        shift = (b - sum(targets)) / 3.0
        for x, t in zip(res.x, targets):
            np.testing.assert_allclose(x, t + shift, atol=1e-6)

    def test_eps_out_of_range_rejected(self):
        blocks, b, _ = self._three_block_problem()
        with pytest.raises(ValueError):
            ADMGEngine(blocks, b=b, rho=1.0, eps=0.5)
        with pytest.raises(ValueError):
            ADMGEngine(blocks, b=b, rho=1.0, eps=1.01)

    def test_singular_gram_rejected(self):
        """Blocks 2..m need nonsingular K^T K."""
        k_sing = np.array([[1.0, 0.0], [0.0, 0.0]])
        blocks = [
            quadratic_block(np.eye(2), np.zeros(2), np.eye(2)),
            quadratic_block(np.eye(2), np.zeros(2), k_sing),
        ]
        with pytest.raises(ValueError):
            ADMGEngine(blocks, b=np.zeros(2), rho=1.0)

    def test_four_block_with_nonneg_constraints(self):
        """A 4-block problem with local constraints converges to the QP
        optimum computed independently by the interior-point solver."""
        rng = np.random.default_rng(5)
        n = 2
        targets = [rng.uniform(-1, 2, size=n) for _ in range(4)]
        blocks = [
            nonneg_quadratic_block(np.ones(n), -targets[i], np.eye(n), name=f"x{i}")
            for i in range(4)
        ]
        b = np.array([1.5, 0.5])
        engine = ADMGEngine(blocks, b=b, rho=1.0, eps=0.9)
        res = engine.run(max_iter=3000, tol=1e-10)
        assert res.converged

        # Reference: stack into one QP with x >= 0 and the coupling rows.
        dim = 4 * n
        P = np.eye(dim)
        q = -np.concatenate(targets)
        A = np.hstack([np.eye(n)] * 4)
        G = -np.eye(dim)
        h = np.zeros(dim)
        ref = solve_qp(P, q, A=A, b=b, G=G, h=h)
        x_stack = np.concatenate(res.x)
        assert 0.5 * x_stack @ P @ x_stack + q @ x_stack == pytest.approx(
            ref.value, abs=1e-4
        )

    def test_admg_on_merely_convex_objective(self):
        """A 3-block problem where one block's objective is *linear*
        (convex but not strongly convex — the regime that motivates the
        Gaussian back substitution).  Analytic optimum:
        x1 = t1 - t3, x2 = t2 - t3, x3 = b - x1 - x2."""
        rng = np.random.default_rng(11)
        n = 4
        t1, t2, t3 = (rng.normal(size=n) for _ in range(3))
        blocks = [
            quadratic_block(np.eye(n), -t1, np.eye(n), name="x1"),
            quadratic_block(np.eye(n), -t2, np.eye(n), name="x2"),
            quadratic_block(np.zeros((n, n)), -t3, np.eye(n), name="x3"),
        ]
        b = rng.normal(size=n)
        admg = ADMGEngine(blocks, b=b, rho=1.0, eps=1.0)
        res = admg.run(max_iter=2000, tol=1e-11)
        assert res.converged
        np.testing.assert_allclose(res.x[0], t1 - t3, atol=1e-6)
        np.testing.assert_allclose(res.x[1], t2 - t3, atol=1e-6)
        np.testing.assert_allclose(res.x[2], b - res.x[0] - res.x[1], atol=1e-6)
