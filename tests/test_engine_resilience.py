"""Tests for the engine's retry / fallback-chain / quarantine layer."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.strategies import HYBRID
from repro.engine.horizon import HorizonEngine, SlotTimeoutError
from repro.engine.protocol import SlotResult
from repro.engine.resilience import ResilienceConfig, RetryPolicy
from repro.obs.metrics import MetricsRegistry
from repro.sim.simulator import Simulator


@pytest.fixture(scope="module")
def problems(small_model, small_bundle):
    sim = Simulator(small_model, small_bundle)
    return [sim.problem_for_slot(t, HYBRID) for t in range(4)]


class _StubSolver:
    """Base stub satisfying the SlotSolver protocol."""

    supports_warm_start = False

    def compile(self, model, strategy):
        return None

    def _result(self, problem):
        from repro.engine.registry import create_solver

        result = create_solver("proportional").solve(problem)
        return SlotResult(
            allocation=result.allocation,
            ufc=result.ufc,
            iterations=1,
            converged=True,
        )


class FlakySolver(_StubSolver):
    """Fails the first attempt on every slot, succeeds on the retry."""

    name = "flaky"

    def __init__(self):
        self.calls: dict[int, int] = {}

    def solve(self, problem, compiled=None, warm=None):
        key = id(problem)
        self.calls[key] = self.calls.get(key, 0) + 1
        if self.calls[key] == 1:
            raise RuntimeError("transient solver hiccup")
        return self._result(problem)


class BrokenSolver(_StubSolver):
    """Never succeeds."""

    name = "broken"

    def solve(self, problem, compiled=None, warm=None):
        raise RuntimeError("hard failure")


class SlowSolver(_StubSolver):
    """Succeeds, but blows any sub-50ms slot budget."""

    name = "slow"

    def solve(self, problem, compiled=None, warm=None):
        time.sleep(0.05)
        return self._result(problem)


class TestResilienceConfig:
    def test_retry_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_timeout_validation(self):
        with pytest.raises(ValueError):
            ResilienceConfig(retry=RetryPolicy(), slot_timeout_s=0.0)

    def test_quarantine_requires_fallback(self):
        with pytest.raises(ValueError, match="fallback"):
            ResilienceConfig(retry=RetryPolicy(), quarantine_after=2)

    def test_warm_start_rejected(self, problems):
        engine = HorizonEngine(
            "distributed",
            resilience=ResilienceConfig(retry=RetryPolicy(max_attempts=2)),
        )
        with pytest.raises(ValueError, match="warm-start"):
            engine.run(problems, warm_start=True)


class TestArmedButIdle:
    def test_results_bit_identical_to_plain_engine(self, problems):
        """An armed resilience config must not perturb healthy runs."""
        plain = HorizonEngine("centralized", workers=1).run(problems)
        armed = HorizonEngine(
            "centralized",
            workers=1,
            resilience=ResilienceConfig(
                retry=RetryPolicy(max_attempts=2),
                fallback=("proportional",),
            ),
        ).run(problems)
        for a, b in zip(plain, armed):
            assert b.ok
            assert b.attempts == 1
            assert not b.degraded
            assert b.fallback_solver is None
            assert b.chain_errors == ()
            np.testing.assert_array_equal(
                a.result.allocation.lam, b.result.allocation.lam
            )
            assert a.result.ufc == b.result.ufc


class TestRetry:
    def test_transient_failures_absorbed(self, problems):
        solver = FlakySolver()
        engine = HorizonEngine(
            solver,
            workers=1,
            resilience=ResilienceConfig(retry=RetryPolicy(max_attempts=2)),
        )
        outcomes = engine.run(problems)
        for outcome in outcomes:
            assert outcome.ok
            assert outcome.attempts == 2
            assert outcome.fallback_solver is None
            assert not outcome.degraded  # the primary recovered
            assert len(outcome.chain_errors) == 1
            assert "transient solver hiccup" in outcome.chain_errors[0]
        assert engine.last_summary.retries_total == len(problems)
        assert engine.last_summary.fallbacks_total == 0

    def test_budget_exhaustion_without_fallback_fails(self, problems):
        engine = HorizonEngine(
            BrokenSolver(),
            workers=1,
            resilience=ResilienceConfig(retry=RetryPolicy(max_attempts=3)),
        )
        outcomes = engine.run(problems[:2])
        for outcome in outcomes:
            assert not outcome.ok
            assert outcome.attempts == 3
            assert outcome.error_type == "RuntimeError"
            assert len(outcome.chain_errors) == 3


class TestFallbackChain:
    def test_broken_primary_rescued(self, problems):
        engine = HorizonEngine(
            BrokenSolver(),
            workers=1,
            certify=True,
            resilience=ResilienceConfig(
                retry=RetryPolicy(max_attempts=1),
                fallback=("centralized", "proportional"),
            ),
        )
        outcomes = engine.run(problems[:2])
        for outcome in outcomes:
            assert outcome.ok
            assert outcome.degraded
            assert outcome.fallback_solver == "centralized"
            assert outcome.attempts == 2  # primary + first fallback
            assert outcome.chain_errors and "broken" in outcome.chain_errors[0]
            assert outcome.certificate is not None
            assert outcome.certificate.feasible
        summary = engine.last_summary
        assert summary.fallbacks_total == 2
        assert summary.degraded_slots == (0, 1)
        assert "resilience" in summary.format_table()

    def test_quarantine_skips_doomed_primary(self, problems):
        engine = HorizonEngine(
            BrokenSolver(),
            workers=1,
            resilience=ResilienceConfig(
                retry=RetryPolicy(max_attempts=2),
                fallback=("proportional",),
                quarantine_after=2,
            ),
        )
        outcomes = engine.run(problems)
        # First two slots burn the primary's full budget before the
        # fallback rescue; from the third on the primary is quarantined.
        assert [o.attempts for o in outcomes] == [3, 3, 1, 1]
        for outcome in outcomes:
            assert outcome.ok
            assert outcome.fallback_solver == "proportional"
        assert any("quarantined" in e for e in outcomes[2].chain_errors)

    def test_timeout_escalates_to_fallback(self, problems):
        engine = HorizonEngine(
            SlowSolver(),
            workers=1,
            resilience=ResilienceConfig(
                retry=RetryPolicy(max_attempts=1),
                fallback=("proportional",),
                slot_timeout_s=0.005,
            ),
        )
        outcomes = engine.run(problems[:1])
        outcome = outcomes[0]
        assert outcome.ok
        assert outcome.fallback_solver == "proportional"
        assert "SlotTimeoutError" in outcome.chain_errors[0]

    def test_slot_timeout_error_is_a_runtime_error(self):
        assert issubclass(SlotTimeoutError, RuntimeError)


class TestResilienceMetrics:
    def test_counters_recorded(self, problems):
        registry = MetricsRegistry()
        engine = HorizonEngine(
            BrokenSolver(),
            workers=1,
            metrics=registry,
            resilience=ResilienceConfig(
                retry=RetryPolicy(max_attempts=2),
                fallback=("proportional",),
            ),
        )
        engine.run(problems[:3])
        retries = registry.counter(
            "repro_engine_slot_retries_total", solver="broken"
        )
        fallbacks = registry.counter(
            "repro_engine_slot_fallbacks_total",
            solver="broken",
            fallback="proportional",
        )
        degraded = registry.counter(
            "repro_engine_degraded_slots_total", solver="broken"
        )
        # 3 slots x (2 failed primary attempts + 1 fallback) = 2 retries each.
        assert retries.value == 6
        assert fallbacks.value == 3
        assert degraded.value == 3


class TestParallelResilience:
    def test_pool_path_carries_resilience(self, problems):
        """Fallback rescue works through the process-pool path too."""
        engine = HorizonEngine(
            "distributed",
            workers=2,
            oversubscribe=True,
            resilience=ResilienceConfig(
                retry=RetryPolicy(max_attempts=1),
                fallback=("proportional",),
            ),
        )
        outcomes = engine.run(problems)
        assert all(o.ok for o in outcomes)
        # Healthy primary: nothing escalates, ordering preserved.
        assert [o.index for o in outcomes] == [0, 1, 2, 3]
        assert all(o.fallback_solver is None for o in outcomes)
