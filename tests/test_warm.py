"""Tests for the temporal warm-start plane.

Covers the optimizer-level warm ladder (:mod:`repro.optim.warm`), the
``centralized-warm`` engine lane with its incumbent early-exit
(:mod:`repro.engine.warm`), warm chaining through the pipelined
execution clients (warm hints must survive the RPC boundary), the
structured-KKT warm path with its per-iteration factor cache, and the
warm observability surface (summary fields, counters, ledger keys).

The load-bearing invariants:

- warm results match cold results within certificate tolerance across
  randomized perturbation magnitudes, and an adversarial perturbation
  degrades gracefully to the cold rung (never to a wrong answer);
- with ``warm_start`` off, the ``centralized-warm`` lane is
  bit-identical to ``centralized`` (the cold rung *is* ``solve_qp``);
- a warm payload pickled through a process or socket boundary chains
  exactly like the in-process sequential loop.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.compiled import CompiledQPStructure
from repro.core.problem import SlotInputs, UFCProblem
from repro.core.solution import Allocation
from repro.core.strategies import HYBRID
from repro.engine import HorizonEngine, create_solver
from repro.engine.warm import CentralizedWarmSlotSolver
from repro.obs import MetricsRegistry, load_run
from repro.obs.certify import certify_structured_solution
from repro.optim.ipqp import solve_qp
from repro.optim.kkt import (
    StructuredQPCompiler,
    StructuredWarmState,
    solve_structured_qp,
)
from repro.optim.warm import solve_qp_warm
from repro.instances import ScaleSpec, generate_instance


def _problems(bundle, model, hours, strategy=HYBRID):
    out = []
    for t in range(hours):
        slot = bundle.slot(t)
        inputs = SlotInputs(
            arrivals=slot["arrivals"],
            prices=slot["prices"],
            carbon_rates=slot["carbon_rates"],
        )
        out.append(UFCProblem(model, inputs, strategy=strategy))
    return out


def _perturbed(problem, scale, rng):
    """The same slot with arrivals nudged by a relative ``scale``."""
    inputs = problem.inputs
    arrivals = inputs.arrivals * (
        1.0 + scale * rng.standard_normal(inputs.arrivals.shape)
    )
    return UFCProblem(
        problem.model,
        dataclasses.replace(inputs, arrivals=np.abs(arrivals)),
        strategy=problem.strategy,
    )


@pytest.fixture(scope="module")
def chain_problems(small_bundle, small_model):
    return _problems(small_bundle, small_model, hours=6)


class TestWarmLadder:
    """solve_qp_warm: the three-rung ladder at the optimizer level."""

    def _qp(self, problem):
        return CompiledQPStructure(problem.model, problem.strategy).qp_for(
            problem.inputs
        )

    def test_cold_first_slot_is_solve_qp(self, chain_problems):
        # state=None must be arithmetic-identical to the plain cold
        # solver — this is what makes warm=off a pure rename.
        qp = self._qp(chain_problems[0])
        cold = solve_qp(qp.P, qp.q, A=qp.A, b=qp.b, G=qp.G, h=qp.h, tol=1e-9)
        ws = solve_qp_warm(qp.P, qp.q, A=qp.A, b=qp.b, G=qp.G, h=qp.h, state=None)
        assert not ws.info.warm_used
        assert ws.info.mechanism == "cold"
        assert ws.state is not None  # scaling harvest for the next slot
        assert (ws.result.x == cold.x).all()
        assert ws.result.iterations == cold.iterations

    def test_active_set_rung_on_identical_resolve(self, chain_problems):
        # Zero drift: the previous active set verifies in one KKT
        # solve, far under a full interior-point iteration count.
        qp = self._qp(chain_problems[0])
        seed = solve_qp_warm(qp.P, qp.q, A=qp.A, b=qp.b, G=qp.G, h=qp.h)
        ws = solve_qp_warm(
            qp.P, qp.q, A=qp.A, b=qp.b, G=qp.G, h=qp.h, state=seed.state
        )
        assert ws.info.warm_used
        assert ws.info.mechanism == "active-set"
        assert ws.result.converged
        assert ws.result.iterations <= 2
        assert ws.result.iterations < seed.result.iterations
        rel = abs(ws.result.value - seed.result.value) / max(
            1.0, abs(seed.result.value)
        )
        assert rel <= 1e-7

    @pytest.mark.parametrize("scale", [1e-6, 1e-4, 1e-3, 1e-2])
    def test_warm_matches_cold_across_perturbations(self, chain_problems, scale):
        rng = np.random.default_rng(int(scale * 1e8) + 7)
        base = chain_problems[1]
        seed_qp = self._qp(base)
        seed = solve_qp_warm(
            seed_qp.P, seed_qp.q, A=seed_qp.A, b=seed_qp.b, G=seed_qp.G, h=seed_qp.h
        )
        perturbed = _perturbed(base, scale, rng)
        qp = self._qp(perturbed)
        cold = solve_qp(qp.P, qp.q, A=qp.A, b=qp.b, G=qp.G, h=qp.h, tol=1e-9)
        ws = solve_qp_warm(
            qp.P, qp.q, A=qp.A, b=qp.b, G=qp.G, h=qp.h, state=seed.state
        )
        assert ws.result.converged
        # Whatever rung answered, the solution must be certifiable
        # against the cold reference.
        rel = abs(ws.result.value - cold.value) / max(1.0, abs(cold.value))
        assert rel <= 1e-6
        ufc_cold = perturbed.ufc(qp.extract(cold.x))
        ufc_warm = perturbed.ufc(qp.extract(ws.result.x))
        assert abs(ufc_warm - ufc_cold) / max(1.0, abs(ufc_cold)) <= 1e-6

    def test_adversarial_perturbation_falls_back_cold(self, chain_problems):
        # A perturbation large enough to invalidate the warm point must
        # land on the cold rung, not a degraded warm answer.
        rng = np.random.default_rng(99)
        base = chain_problems[2]
        seed_qp = self._qp(base)
        seed = solve_qp_warm(
            seed_qp.P, seed_qp.q, A=seed_qp.A, b=seed_qp.b, G=seed_qp.G, h=seed_qp.h
        )
        # Redistribute the load drastically (keep the total fixed so
        # the problem stays feasible): the active set and iterates
        # from the seed are useless here.
        inputs = base.inputs
        weights = rng.uniform(0.05, 1.0, size=inputs.arrivals.shape)
        arrivals = weights * inputs.arrivals
        arrivals *= inputs.arrivals.sum() / arrivals.sum()
        prices = inputs.prices[::-1].copy()
        adversarial = UFCProblem(
            base.model,
            dataclasses.replace(inputs, arrivals=arrivals, prices=prices),
            strategy=base.strategy,
        )
        qp = self._qp(adversarial)
        ws = solve_qp_warm(
            qp.P, qp.q, A=qp.A, b=qp.b, G=qp.G, h=qp.h, state=seed.state
        )
        assert ws.result.converged
        if not ws.info.warm_used:
            assert ws.info.mechanism == "cold"
            assert ws.info.fallback_reason is not None
        cold = solve_qp(qp.P, qp.q, A=qp.A, b=qp.b, G=qp.G, h=qp.h, tol=1e-9)
        rel = abs(ws.result.value - cold.value) / max(1.0, abs(cold.value))
        assert rel <= 1e-6

    def test_mismatched_state_shapes_fall_back_cold(self, chain_problems):
        qp = self._qp(chain_problems[0])
        seed = solve_qp_warm(qp.P, qp.q, A=qp.A, b=qp.b, G=qp.G, h=qp.h)
        bad = dataclasses.replace(seed.state, x=np.zeros(3))
        ws = solve_qp_warm(qp.P, qp.q, A=qp.A, b=qp.b, G=qp.G, h=qp.h, state=bad)
        assert not ws.info.warm_used
        assert ws.info.mechanism == "cold"
        assert ws.info.fallback_reason is not None
        assert ws.result.converged


class TestEngineWarmLane:
    """The centralized-warm lane through the horizon engine."""

    def test_warm_off_is_bit_identical_to_centralized(self, chain_problems):
        cold = HorizonEngine("centralized").run(chain_problems)
        warm_off = HorizonEngine("centralized-warm").run(chain_problems)
        for a, b in zip(cold, warm_off):
            assert (a.result.allocation.lam == b.result.allocation.lam).all()
            assert (a.result.allocation.mu == b.result.allocation.mu).all()
            assert (a.result.allocation.nu == b.result.allocation.nu).all()
            assert a.result.ufc == b.result.ufc
            assert a.result.iterations == b.result.iterations

    def test_warm_chain_certified_and_matches_cold(self, chain_problems):
        cold = HorizonEngine("centralized").run(chain_problems)
        engine = HorizonEngine("centralized-warm", certify=True)
        warm = engine.run(chain_problems, warm_start=True)
        assert all(o.ok for o in warm)
        for o in warm:
            cert = o.result.extras.get("certificate")
            if cert is not None:
                assert cert.ok
        for a, b in zip(cold, warm):
            denom = max(1.0, abs(a.result.ufc))
            assert abs(a.result.ufc - b.result.ufc) / denom <= 1e-6
        summary = engine.last_summary
        assert summary.executor == "serial-warm"
        assert summary.warm_started_slots == len(chain_problems) - 1
        # The ladder fired: the chain saved iterations over re-solving
        # every slot cold.
        assert summary.warm_iterations_saved > 0
        iters_cold = sum(o.result.iterations for o in cold)
        iters_warm = sum(o.result.iterations for o in warm)
        assert iters_warm < iters_cold

    def test_warm_metrics_and_ledger(self, chain_problems, tmp_path):
        reg = MetricsRegistry()
        engine = HorizonEngine(
            "centralized-warm", metrics=reg, ledger=tmp_path
        )
        engine.run(chain_problems, warm_start=True)
        counted = {
            name: value
            for name, labels, value in reg.samples()
            if name == "repro_warm_starts_total"
        }
        assert counted and sum(counted.values()) == len(chain_problems) - 1
        run = load_run(engine.last_ledger_path)
        warm_slots = [s for s in run.slots if s.get("warm_start")]
        assert len(warm_slots) == len(chain_problems) - 1
        assert all("warm_mechanism" in s for s in warm_slots)


class TestIncumbentEarlyExit:
    """Tiny perturbations re-certify the incumbent instead of solving."""

    def _creep_problems(self, base, scales):
        rng = np.random.default_rng(41)
        out = [base]
        for scale in scales:
            out.append(_perturbed(base, scale, rng))
        return out

    def test_incumbent_reuse_on_tiny_drift(self, chain_problems):
        base = chain_problems[0]
        problems = self._creep_problems(base, [1e-9, 1e-9, 1e-9])
        solver = create_solver("centralized-warm", incumbent_tol=1e-6)
        engine = HorizonEngine(solver, certify=True)
        outcomes = engine.run(problems, warm_start=True)
        assert all(o.ok for o in outcomes)
        reused = [o for o in outcomes if o.result.extras.get("incumbent_reuse")]
        assert len(reused) == len(problems) - 1
        for o in reused:
            assert o.result.iterations == 0
            assert o.result.extras["certificate"].ok
        assert engine.last_summary.incumbent_reuse_slots == len(problems) - 1

    def test_drift_creep_forces_resolve(self, chain_problems):
        # The drift reference is pinned to the incumbent's own inputs,
        # so consecutive nudges accumulate: a final slot past the
        # threshold must re-solve even though each step is small.
        base = chain_problems[0]
        problems = self._creep_problems(base, [1e-9, 1e-3])
        solver = create_solver("centralized-warm", incumbent_tol=1e-6)
        outcomes = HorizonEngine(solver).run(problems, warm_start=True)
        assert outcomes[1].result.extras.get("incumbent_reuse")
        assert not outcomes[2].result.extras.get("incumbent_reuse")
        assert outcomes[2].result.iterations > 0

    def test_failed_certificate_falls_through_to_solve(self, chain_problems):
        base = chain_problems[0]
        solver = CentralizedWarmSlotSolver(incumbent_tol=1e-6)
        first = solver.solve(base)
        payload = first.warm
        good = payload.allocation
        corrupted = dataclasses.replace(
            payload,
            allocation=Allocation(
                lam=good.lam * 1.5, mu=good.mu * 1.5, nu=good.nu * 1.5
            ),
        )
        res = solver.solve(base, warm=corrupted)
        assert not res.extras.get("incumbent_reuse")
        assert res.converged
        denom = max(1.0, abs(first.ufc))
        assert abs(res.ufc - first.ufc) / denom <= 1e-6

    def test_incumbent_disabled_by_default(self, chain_problems):
        base = chain_problems[0]
        outcomes = HorizonEngine("centralized-warm").run(
            [base, base], warm_start=True
        )
        assert not outcomes[1].result.extras.get("incumbent_reuse")
        assert outcomes[1].result.extras.get("warm_mechanism") == "active-set"


class TestWarmThroughClients:
    """Warm hints must survive the RPC boundary of the exec clients."""

    @pytest.mark.parametrize("spec", ["mp", "socket"])
    def test_warm_chain_through_client(self, chain_problems, spec):
        problems = chain_problems[:4]
        serial_engine = HorizonEngine("centralized-warm")
        serial = serial_engine.run(problems, warm_start=True)

        engine = HorizonEngine("centralized-warm", client=spec)
        outcomes = engine.run(problems, warm_start=True)
        assert all(o.ok for o in outcomes)
        summary = engine.last_summary
        assert summary.executor == f"{spec}-warm"
        assert summary.decision == f"client:{spec}:warm-chain"
        assert summary.warm_started_slots == len(problems) - 1
        # The chained payloads crossed the boundary intact: every slot
        # after the chain start solved warm, with the same mechanisms
        # and arithmetic as the in-process chain.
        for a, b in zip(serial, outcomes):
            assert b.telemetry.warm_start == a.telemetry.warm_start
            assert (
                b.result.extras.get("warm_mechanism")
                == a.result.extras.get("warm_mechanism")
            )
            assert b.result.iterations == a.result.iterations
            assert (a.result.allocation.lam == b.result.allocation.lam).all()
            assert a.result.ufc == b.result.ufc

    def test_store_rejects_warm_chain(self, chain_problems, tmp_path):
        engine = HorizonEngine(
            "centralized-warm", store=tmp_path / "results.jsonl"
        )
        with pytest.raises(ValueError, match="store"):
            engine.run(chain_problems[:2], warm_start=True)


class TestStructuredWarm:
    """Warm iterates + factor cache on the structured-KKT path."""

    @pytest.fixture(scope="class")
    def inst(self):
        return generate_instance(
            ScaleSpec(
                num_datacenters=6, num_frontends=20, hours=2, fan_in=3, seed=11
            )
        )

    def _sqp_pair(self, inst, scale=1e-4):
        sc = StructuredQPCompiler(inst.model, HYBRID, reach=inst.reach)
        inputs = inst.inputs(0)
        rng = np.random.default_rng(5)
        perturbed = dataclasses.replace(
            inputs,
            arrivals=np.abs(
                inputs.arrivals
                * (1.0 + scale * rng.standard_normal(inputs.arrivals.shape))
            ),
        )
        return sc.structured_qp_for(inputs), sc.structured_qp_for(perturbed), perturbed

    def test_structured_warm_matches_cold_and_saves_iterations(self, inst):
        sqp, sqp_p, perturbed = self._sqp_pair(inst)
        seed_cache: dict = {}
        seed = solve_structured_qp(sqp, tol=1e-8, factor_cache=seed_cache)
        cold = solve_structured_qp(sqp_p, tol=1e-8)
        seed_cache["built"] = 0
        seed_cache["reused"] = 0
        warm = solve_structured_qp(
            sqp_p,
            tol=1e-8,
            initial=StructuredWarmState(
                x=seed.x,
                y=seed.eq_dual,
                s=sqp.ineq_slack(seed.x),
                z=seed.ineq_dual,
            ),
            factor_cache=seed_cache,
        )
        assert warm.converged
        assert warm.warm_used
        assert warm.iterations < cold.iterations
        problem = UFCProblem(inst.model, perturbed, strategy=HYBRID)
        ufc_c = problem.ufc(sqp_p.extract(cold.x))
        ufc_w = problem.ufc(sqp_p.extract(warm.x))
        assert abs(ufc_w - ufc_c) / max(1.0, abs(ufc_c)) <= 1e-6
        cert = certify_structured_solution(
            sqp_p,
            problem,
            sqp_p.extract(warm.x),
            x=warm.x,
            duals=(warm.eq_dual, warm.ineq_dual),
            solver="structured-warm",
        )
        assert cert.ok

    def test_fresh_factor_cache_is_bit_identical(self, inst):
        # A fresh cache on a cold solve only records factors; it can
        # never be hit, so the trajectory must not move at all.
        sqp, _, _ = self._sqp_pair(inst)
        plain = solve_structured_qp(sqp, tol=1e-8)
        cache: dict = {}
        cached = solve_structured_qp(sqp, tol=1e-8, factor_cache=cache)
        assert cached.iterations == plain.iterations
        assert (cached.x == plain.x).all()
        assert cache.get("built", 0) > 0
        assert cache.get("reused", 0) == 0

    def test_adversarial_structured_warm_falls_back(self, inst):
        sqp, sqp_p, _ = self._sqp_pair(inst)
        seed = solve_structured_qp(sqp, tol=1e-8)
        n = len(seed.x)
        garbage = StructuredWarmState(
            x=seed.x + 1e6,
            y=seed.eq_dual,
            s=np.full_like(sqp.ineq_slack(seed.x), 1e6),
            z=seed.ineq_dual + 1e6,
        )
        cold = solve_structured_qp(sqp_p, tol=1e-8)
        warm = solve_structured_qp(sqp_p, tol=1e-8, initial=garbage)
        assert not warm.warm_used
        assert warm.converged
        assert warm.iterations == cold.iterations
        assert (warm.x == cold.x).all()
        assert n == len(warm.x)


class TestDistributedWarm:
    """ADM-G multiplier/allocation warm starts across the chain."""

    def test_admg_warm_reduces_outer_iterations(self, small_bundle, small_model):
        problems = _problems(small_bundle, small_model, hours=4)
        cold = HorizonEngine("distributed").run(problems)
        warm = HorizonEngine("distributed").run(problems, warm_start=True)
        assert all(o.ok for o in warm)
        iters_cold = sum(o.result.iterations for o in cold)
        iters_warm = sum(o.result.iterations for o in warm)
        assert iters_warm < iters_cold
        for a, b in zip(cold, warm):
            denom = max(1.0, abs(a.result.ufc))
            assert abs(a.result.ufc - b.result.ufc) / denom <= 1e-4
