"""Tests for the execution-client layer (repro.exec).

Covers the client registry, the in-process and multiprocessing
backends, the pipelined :class:`BatchScheduler` (including
harvest-time batch timeouts), the engine running bit-identically
through every client, and the ``parallel_map`` migration.
"""

from __future__ import annotations

import time

import pytest

from repro.core.strategies import HYBRID
from repro.engine import HorizonEngine
from repro.engine.horizon import parallel_map as legacy_parallel_map
from repro.engine.protocol import SlotResult
from repro.engine.resilience import ResilienceConfig, RetryPolicy
from repro.exec import (
    BatchScheduler,
    InProcessClient,
    MultiprocessingClient,
    available_clients,
    create_client,
    parallel_map,
    usable_cpu_count,
)
from repro.obs import RecordingTelemetry
from repro.obs.metrics import MetricsRegistry
from repro.sim.simulator import Simulator


@pytest.fixture(scope="module")
def problems(small_model, small_bundle):
    sim = Simulator(small_model, small_bundle)
    return [sim.problem_for_slot(t, HYBRID) for t in range(8)]


@pytest.fixture(scope="module")
def serial_ufc(problems):
    return [o.result.ufc for o in HorizonEngine("centralized").run(problems)]


def _square(x):
    return x * x


def _sleepy(seconds):
    time.sleep(seconds)
    return seconds


def _boom():
    raise ValueError("task exploded")


def _maybe_boom(x):
    if x == 1:
        raise ValueError("poisoned")
    return x


class _LossyClient:
    """Synchronous fake whose failed tasks raise *at harvest*, with the
    exception attributed to its task id — the shape worker loss takes
    on the socket client."""

    name = "lossy"
    asynchronous = False
    workers = 1

    def __init__(self):
        self._next_id = 0
        self._done = []

    def submit(self, fn, /, *args):
        task_id = self._next_id
        self._next_id += 1
        try:
            self._done.append((task_id, fn(*args), None))
        except Exception as exc:
            self._done.append((task_id, None, exc))
        return task_id

    def wait_next(self, timeout_s=None):
        if not self._done:
            return None
        task_id, value, exc = self._done.pop(0)
        if exc is not None:
            exc.task_id = task_id
            raise exc
        return task_id, value

    def discard(self, task_id):
        self._done = [item for item in self._done if item[0] != task_id]

    def num_pending(self):
        return len(self._done)

    def close(self):
        self._done.clear()


class TestRegistry:
    def test_builtins_registered(self):
        names = available_clients()
        assert {"in-process", "mp", "socket"} <= set(names)
        assert names == tuple(sorted(names))

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown execution client"):
            create_client("does-not-exist")

    def test_instance_passthrough(self):
        client = InProcessClient()
        assert create_client(client) is client

    def test_bad_spec_type(self):
        with pytest.raises(TypeError):
            create_client(42)


class TestInProcessClient:
    def test_runs_at_submit_and_delivers_in_order(self):
        client = InProcessClient()
        ids = [client.submit(_square, x) for x in (2, 3, 4)]
        assert client.num_pending() == 3
        got = [client.wait_next() for _ in range(3)]
        assert got == [(ids[0], 4), (ids[1], 9), (ids[2], 16)]
        assert client.wait_next() is None

    def test_exceptions_propagate_from_submit(self):
        client = InProcessClient()
        with pytest.raises(ValueError, match="task exploded"):
            client.submit(_boom)

    def test_discard_and_close(self):
        client = InProcessClient()
        first = client.submit(_square, 1)
        client.submit(_square, 2)
        client.discard(first)
        assert client.num_pending() == 1
        client.close()
        assert client.num_pending() == 0


class TestMultiprocessingClient:
    def test_parity_and_completion_harvest(self):
        client = MultiprocessingClient(workers=2, oversubscribe=True)
        try:
            ids = [client.submit(_square, x) for x in range(6)]
            results = {}
            while client.num_pending():
                task_id, value = client.wait_next()
                results[task_id] = value
            assert [results[i] for i in ids] == [x * x for x in range(6)]
        finally:
            client.close()

    def test_clamps_to_usable_cpus(self):
        client = MultiprocessingClient(workers=usable_cpu_count() + 7)
        try:
            assert client.workers <= usable_cpu_count()
        finally:
            client.close()

    def test_wait_timeout_returns_none(self):
        client = MultiprocessingClient(workers=1, oversubscribe=True)
        try:
            task_id = client.submit(_sleepy, 0.5)
            assert client.wait_next(timeout_s=0.01) is None
            client.discard(task_id)
        finally:
            client.close()


class TestBatchScheduler:
    def test_max_pending_validation(self):
        with pytest.raises(ValueError):
            BatchScheduler(InProcessClient(), max_pending=0)

    def test_budget_requires_on_timeout(self):
        scheduler = BatchScheduler(InProcessClient())
        with pytest.raises(ValueError, match="on_timeout"):
            scheduler.map(_square, [(1,)], budget_s=lambda task: 1.0)

    def test_pipelined_order_and_depth(self):
        client = MultiprocessingClient(workers=2, oversubscribe=True)
        try:
            scheduler = BatchScheduler(client, max_pending=2)
            results = scheduler.map(_square, [(x,) for x in range(9)])
            assert results == [x * x for x in range(9)]
            assert 1 <= scheduler.pending_max_observed <= 2
        finally:
            client.close()

    def test_harvest_budget_abandons_slow_batches(self):
        client = MultiprocessingClient(workers=1, oversubscribe=True)
        try:
            scheduler = BatchScheduler(client)
            results = scheduler.map(
                _sleepy,
                [(0.0,), (0.8,)],
                budget_s=lambda task: 0.05 if task[0] else None,
                on_timeout=lambda task: "timed-out",
            )
            assert results == [0.0, "timed-out"]
            assert scheduler.timed_out_batches == 1
        finally:
            client.close()

    def test_emits_telemetry_and_metrics(self):
        rec = RecordingTelemetry()
        metrics = MetricsRegistry()
        scheduler = BatchScheduler(
            InProcessClient(), telemetry=rec, metrics=metrics
        )
        scheduler.map(_square, [(1,), (2,)])
        assert len(rec.by_name("exec.submit")) == 2
        assert len(rec.by_name("exec.harvest")) == 2
        counter = metrics.counter(
            "repro_exec_batches_total", client="in-process"
        )
        assert counter.value == 2

    def test_pending_gauge_walks_back_to_zero_on_harvest(self):
        # The live depth gauge must be updated on the harvest path too,
        # not just at submit: after map() returns, every batch has been
        # harvested and the gauge reads 0 while the peak gauge keeps the
        # high-water mark.
        metrics = MetricsRegistry()
        client = MultiprocessingClient(workers=2, oversubscribe=True)
        try:
            scheduler = BatchScheduler(client, max_pending=2, metrics=metrics)
            scheduler.map(_square, [(x,) for x in range(6)])
        finally:
            client.close()
        live = metrics.gauge("repro_exec_pending_batches", client=client.name)
        peak = metrics.gauge(
            "repro_exec_pending_batches_peak", client=client.name
        )
        assert live.value == 0
        assert 1 <= peak.value <= 2
        assert peak.value == scheduler.pending_max_observed

    def test_metrics_attribute_accepts_none(self):
        # BatchScheduler.metrics is typed MetricsRegistry | None; the
        # None default must keep the whole metrics path inert.
        scheduler = BatchScheduler(InProcessClient())
        assert scheduler.metrics is None
        assert scheduler.map(_square, [(3,)]) == [9]

    def test_on_result_sees_every_harvest_in_harvest_order(self):
        seen = []
        scheduler = BatchScheduler(InProcessClient())
        results = scheduler.map(
            _square,
            [(x,) for x in range(4)],
            on_result=lambda task, result, depth: seen.append(
                (task[0], result, depth)
            ),
        )
        assert results == [0, 1, 4, 9]
        assert [(t, r) for t, r, _ in seen] == [(x, x * x) for x in range(4)]
        assert all(depth >= 0 for _, _, depth in seen)

    def test_on_error_absorbs_attributed_failures(self):
        # A harvest exception that carries a task_id can be absorbed
        # into a stand-in result instead of killing the run.
        metrics = MetricsRegistry()
        seen = []
        scheduler = BatchScheduler(_LossyClient(), metrics=metrics)
        results = scheduler.map(
            _maybe_boom,
            [(0,), (1,), (2,)],
            on_result=lambda task, result, depth: seen.append(result),
            on_error=lambda task, exc: f"lost:{task[0]}",
        )
        assert results == [0, "lost:1", 2]
        assert scheduler.errored_batches == 1
        # The stand-in rode the on_result hook like any other harvest.
        assert "lost:1" in seen
        assert (
            metrics.counter(
                "repro_exec_batch_errors_total", client="lossy"
            ).value
            == 1
        )

    def test_on_error_absent_reraises(self):
        scheduler = BatchScheduler(_LossyClient())
        with pytest.raises(ValueError, match="poisoned"):
            scheduler.map(_maybe_boom, [(1,)])


class _StubSolver:
    """Minimal picklable SlotSolver stub over the proportional heuristic."""

    supports_warm_start = False
    name = "stub"

    def compile(self, model, strategy):
        return None

    def solve(self, problem, compiled=None, warm=None):
        from repro.engine.registry import create_solver

        result = create_solver("proportional").solve(problem)
        return SlotResult(
            allocation=result.allocation,
            ufc=result.ufc,
            iterations=1,
            converged=True,
        )


class _SlowSolver(_StubSolver):
    """Succeeds, but far slower than any millisecond harvest budget."""

    name = "slow"

    def solve(self, problem, compiled=None, warm=None):
        time.sleep(0.2)
        return super().solve(problem, compiled=compiled, warm=warm)


class TestEngineThroughClients:
    def test_bit_identical_across_clients(self, problems, serial_ufc):
        for spec in ("in-process", "mp"):
            engine = HorizonEngine("centralized", workers=2, client=spec)
            outcomes = engine.run(problems)
            assert [o.result.ufc for o in outcomes] == serial_ufc
            summary = engine.last_summary
            assert summary.client == spec
            assert summary.executor == spec
            assert summary.decision == f"client:{spec}"

    def test_instance_client_stays_open(self, problems, serial_ufc):
        client = MultiprocessingClient(workers=2, oversubscribe=True)
        try:
            engine = HorizonEngine("centralized", client=client, max_pending=2)
            assert [
                o.result.ufc for o in engine.run(problems)
            ] == serial_ufc
            # The engine must not close a caller-owned client.
            assert client.submit(_square, 3) is not None
            assert client.wait_next()[1] == 9
            assert engine.last_summary.max_pending_observed <= 2
        finally:
            client.close()

    def test_default_lanes_keep_legacy_names(self, problems):
        serial = HorizonEngine("centralized")
        serial.run(problems)
        assert serial.last_summary.executor == "serial"
        assert serial.last_summary.client == "in-process"
        pool = HorizonEngine("centralized", workers=2, oversubscribe=True)
        pool.run(problems)
        assert pool.last_summary.executor == "pool"
        assert pool.last_summary.client == "mp"

    def test_max_pending_validation(self):
        with pytest.raises(ValueError):
            HorizonEngine("centralized", max_pending=0)

    def test_warm_start_chains_through_client_but_rejects_store(
        self, problems, tmp_path
    ):
        # Warm chaining routes through execution clients at pipeline
        # depth one (the payload rides each next submission); only the
        # result store remains incompatible with a sequential chain.
        engine = HorizonEngine("distributed", client="in-process")
        outcomes = engine.run(problems[:2], warm_start=True)
        assert all(o.ok for o in outcomes)
        assert engine.last_summary.executor == "in-process-warm"
        assert engine.last_summary.decision == "client:in-process:warm-chain"
        engine = HorizonEngine("distributed", store=tmp_path)
        with pytest.raises(ValueError, match="store"):
            engine.run(problems[:2], warm_start=True)

    def test_harvest_timeout_surfaces_slot_timeout_error(self, problems):
        engine = HorizonEngine(
            _SlowSolver(),
            workers=2,
            client="mp",
            resilience=ResilienceConfig(
                retry=RetryPolicy(max_attempts=1), slot_timeout_s=0.01
            ),
        )
        outcomes = engine.run(problems[:2])
        assert [o.error_type for o in outcomes] == ["SlotTimeoutError"] * 2
        assert all("harvest budget" in o.error_message for o in outcomes)
        assert all(
            o.telemetry.error_type == "SlotTimeoutError" for o in outcomes
        )
        assert engine.last_summary.error_types == {"SlotTimeoutError": 2}

    def test_synchronous_client_skips_harvest_budget(self, problems):
        # An in-process client has already finished at submit time, so
        # the wall-clock budget cannot (and must not) be enforced.
        engine = HorizonEngine(
            _SlowSolver(),
            client="in-process",
            resilience=ResilienceConfig(
                retry=RetryPolicy(max_attempts=1), slot_timeout_s=0.01
            ),
        )
        outcomes = engine.run(problems[:1])
        # The per-slot post-hoc check still applies on the sync path.
        assert outcomes[0].error_type == "SlotTimeoutError"
        assert "harvest budget" not in (outcomes[0].error_message or "")


def _identity(x):
    return x


class _WedgeableClient:
    """Asynchronous fake where one task wedges forever and the rest
    complete at the next harvest pass.  Tracks the maximum number of
    *live* (non-wedged) tasks in flight — the survivor concurrency."""

    name = "wedgeable"
    asynchronous = True
    workers = 2

    def __init__(self):
        self._next_id = 0
        self._ready: dict[int, object] = {}
        self._wedged: set[int] = set()
        self.discards: list[int] = []
        self.max_live = 0

    def submit(self, fn, /, *args):
        task_id = self._next_id
        self._next_id += 1
        if args[0] == "wedge":
            self._wedged.add(task_id)
        else:
            self._ready[task_id] = fn(*args)
            self.max_live = max(self.max_live, len(self._ready))
        return task_id

    def wait_next(self, timeout_s=None):
        # Results take a beat to come back — long enough that the
        # wedged task's budget has expired by the first harvest.
        time.sleep(0.05)
        if self._ready:
            task_id = next(iter(self._ready))
            return task_id, self._ready.pop(task_id)
        return None

    def discard(self, task_id):
        self.discards.append(task_id)
        self._wedged.discard(task_id)
        self._ready.pop(task_id, None)

    def num_pending(self):
        return len(self._ready) + len(self._wedged)

    def close(self):
        self._ready.clear()
        self._wedged.clear()


class TestPoisonedWindowRegression:
    def test_wedged_task_releases_its_window_slot_mid_stream(self):
        # Regression: a wedged task past its harvest budget used to
        # keep its in-flight window slot for as long as other tasks
        # kept delivering results (expiry only ran when the wait
        # itself timed out), silently halving survivor concurrency
        # with max_pending=2.  It must be expired on *every* harvest
        # pass, so the window refills with live work.
        client = _WedgeableClient()
        scheduler = BatchScheduler(client, max_pending=2)
        tasks = [("wedge",), ("a",), ("b",), ("c",), ("d",)]
        results = scheduler.map(
            _identity,
            tasks,
            budget_s=lambda task: 0.02 if task[0] == "wedge" else None,
            on_timeout=lambda task: "timed-out",
        )
        assert results == ["timed-out", "a", "b", "c", "d"]
        assert scheduler.timed_out_batches == 1
        # The wedged task was discarded on the client, exactly once.
        assert client.discards == [0]
        # Survivor throughput: once the wedge expired, the window held
        # two live tasks at once — the whole point of the fix.
        assert client.max_live == 2


class TestParallelMapMigration:
    def test_exec_parallel_map_parity(self):
        items = list(range(7))
        assert parallel_map(_square, items, workers=2) == [
            x * x for x in items
        ]
        assert parallel_map(
            _square, items, workers=2, client="mp", max_pending=2
        ) == [x * x for x in items]

    def test_named_client_is_closed_instance_stays_open(self):
        client = InProcessClient()
        assert parallel_map(_square, [1, 2], client=client) == [1, 4]
        assert client.submit(_square, 5) is not None  # still usable
        client.close()

    def test_decision_event_carries_client(self):
        rec = RecordingTelemetry()
        parallel_map(_square, [1, 2], telemetry=rec, client="in-process")
        (event,) = rec.by_name("parallel_map.decision")
        assert event.tags["client"] == "in-process"

    def test_legacy_horizon_shim_is_a_hard_error(self):
        # The DeprecationWarning shim expired: stale imports must fail
        # loudly, with the pointer to the exec-layer map.
        with pytest.raises(RuntimeError, match="repro.exec.parallel_map"):
            legacy_parallel_map(_square, [3])

    def test_engine_reexport_is_the_exec_map(self):
        from repro.engine import parallel_map as engine_map

        assert engine_map is parallel_map
