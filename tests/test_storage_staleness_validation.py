"""Tests for battery storage, stale-message execution, and the scorecard."""

from __future__ import annotations

import numpy as np
import pytest

from repro.admg.solver import DistributedUFCSolver
from repro.core.centralized import CentralizedSolver
from repro.core.strategies import HYBRID
from repro.distributed.staleness import StalenessRuntime
from repro.experiments.validation import Check, render_scorecard
from repro.extensions.multislot import solve_multislot
from repro.extensions.storage import BatterySpec, solve_multislot_with_storage
from repro.sim.simulator import Simulator

HOURS = 8


class TestBatterySpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            BatterySpec(energy_mwh=-1, charge_mw=1, discharge_mw=1)
        with pytest.raises(ValueError):
            BatterySpec(energy_mwh=1, charge_mw=1, discharge_mw=1, initial_soc=1.5)
        with pytest.raises(ValueError):
            BatterySpec(energy_mwh=1, charge_mw=1, discharge_mw=1, wear_cost=-1)


class TestStorageCoOptimization:
    @pytest.fixture(scope="class")
    def results(self, request):
        from repro.sim.simulator import build_model
        from repro.traces.datasets import default_bundle

        bundle = default_bundle(hours=HOURS)
        model = build_model(bundle)
        battery = BatterySpec(energy_mwh=6.0, charge_mw=2.0, discharge_mw=2.0)
        with_batt = solve_multislot_with_storage(
            model, bundle, battery, hours=HOURS
        )
        without = solve_multislot(model, bundle, np.inf, hours=HOURS)
        return model, bundle, battery, with_batt, without

    def test_converges(self, results):
        *_, with_batt, without = results
        assert with_batt.base.converged and without.converged

    def test_battery_never_hurts(self, results):
        *_, with_batt, without = results
        net = with_batt.base.total_ufc - with_batt.wear_cost_total
        assert net >= without.total_ufc - 1e-6 * abs(without.total_ufc)

    def test_power_limits_respected(self, results):
        _, _, battery, with_batt, _ = results
        w = with_batt.battery_power
        assert (w <= battery.charge_mw + 1e-6).all()
        assert (w >= -battery.discharge_mw - 1e-6).all()

    def test_soc_within_bounds(self, results):
        _, _, battery, with_batt, _ = results
        soc = with_batt.state_of_charge
        assert (soc >= -1e-6).all()
        assert (soc <= battery.energy_mwh + 1e-6).all()

    def test_sustainability_constraint(self, results):
        _, _, battery, with_batt, _ = results
        start = with_batt.state_of_charge[0]
        end = with_batt.state_of_charge[-1]
        assert (end >= start - 1e-6).all()

    def test_slot_allocations_feasible(self, results):
        """Each slot's (lambda, mu, nu) satisfies everything except the
        power balance, which the battery intentionally shifts."""
        model, bundle, battery, with_batt, _ = results
        for t, alloc in enumerate(with_batt.base.allocations):
            problem = Simulator(model, bundle).problem_for_slot(t, HYBRID)
            report = problem.check_feasibility(alloc, tol=1e-4)
            assert report.load_balance < 1.0
            assert report.capacity < 1.0
            # Balance shifted by exactly the battery power.
            balance = (
                model.alphas
                + model.betas * alloc.datacenter_load()
                - alloc.mu
                - alloc.nu
            )
            np.testing.assert_allclose(
                balance, -with_batt.battery_power[t], atol=1e-4
            )

    def test_zero_battery_matches_plain(self, results):
        model, bundle, *_ = results
        none = BatterySpec(energy_mwh=0.0, charge_mw=0.0, discharge_mw=0.0)
        with_none = solve_multislot_with_storage(model, bundle, none, hours=4)
        plain = solve_multislot(model, bundle, np.inf, hours=4)
        np.testing.assert_allclose(with_none.base.ufc, plain.ufc, rtol=1e-4)
        np.testing.assert_allclose(with_none.battery_power, 0.0, atol=1e-6)


class TestStalenessRuntime:
    @pytest.fixture(scope="class")
    def problem(self):
        from repro.sim.simulator import build_model
        from repro.traces.datasets import default_bundle

        bundle = default_bundle(hours=4)
        model = build_model(bundle)
        return Simulator(model, bundle).problem_for_slot(2, HYBRID)

    def test_validation(self, problem):
        with pytest.raises(ValueError):
            StalenessRuntime(problem, delay_probability=1.0)

    def test_zero_delay_matches_sync_iterations(self, problem):
        solver = DistributedUFCSolver(rho=0.3, tol=6e-3, max_iter=2000)
        sync = solver.solve(problem)
        stale = StalenessRuntime(
            problem, solver, delay_probability=0.0, stable_rounds=1
        ).run()
        assert stale.converged
        assert stale.iterations == sync.iterations
        assert stale.delayed_messages == 0

    def test_converges_under_moderate_delay(self, problem):
        cent = CentralizedSolver().solve(problem)
        solver = DistributedUFCSolver(rho=0.3, tol=6e-3, max_iter=3000)
        run = StalenessRuntime(
            problem, solver, delay_probability=0.3, seed=2
        ).run()
        assert run.converged
        assert run.delayed_messages > 0
        gap = abs(run.ufc - cent.ufc) / abs(cent.ufc)
        assert gap < 1e-2

    def test_delay_increases_rounds(self, problem):
        solver = DistributedUFCSolver(rho=0.3, tol=6e-3, max_iter=4000)
        fast = StalenessRuntime(problem, solver, delay_probability=0.0).run()
        slow = StalenessRuntime(
            problem, solver, delay_probability=0.5, seed=7
        ).run()
        assert slow.converged
        assert slow.iterations > fast.iterations

    def test_allocation_always_feasible(self, problem):
        solver = DistributedUFCSolver(rho=0.3, tol=6e-3, max_iter=3000)
        run = StalenessRuntime(problem, solver, delay_probability=0.4, seed=3).run()
        assert problem.check_feasibility(run.allocation, tol=1e-6).ok


class TestScorecard:
    def test_render_marks_pass_and_fail(self):
        checks = [
            Check("Fig. X", "claim A", "1", "1", True),
            Check("Fig. Y", "claim B", "2", "3", False),
        ]
        text = render_scorecard(checks)
        assert "1/2 shape targets hold" in text
        assert "[PASS] Fig. X" in text
        assert "[FAIL] Fig. Y" in text

    def test_validation_on_short_horizon(self):
        """The full scorecard runs (and mostly passes) on 48 hours."""
        from repro.experiments.validation import run_validation

        checks = run_validation(hours=48)
        assert len(checks) >= 10
        passed = sum(c.passed for c in checks)
        assert passed >= len(checks) - 2  # short horizons may miss 1-2
