"""Tests for repro.instances: hyperscale instance generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.centralized import CentralizedSolver
from repro.core.compiled import CompiledQPStructure
from repro.core.strategies import GRID, HYBRID
from repro.instances import ScaleSpec, generate_instance
from repro.optim.kkt import StructuredQPCompiler, solve_structured_qp


@pytest.fixture(scope="module")
def small_instance():
    return generate_instance(
        ScaleSpec(num_datacenters=6, num_frontends=25, hours=24, fan_in=3, seed=7)
    )


class TestSpecValidation:
    def test_rejects_nonpositive_counts(self):
        with pytest.raises(ValueError):
            ScaleSpec(num_datacenters=0, num_frontends=5)
        with pytest.raises(ValueError):
            ScaleSpec(num_datacenters=5, num_frontends=-1)

    def test_rejects_bad_fan_in(self):
        with pytest.raises(ValueError):
            ScaleSpec(num_datacenters=5, num_frontends=5, fan_in=0)

    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            ScaleSpec(num_datacenters=5, num_frontends=5, utilization_target=1.5)
        with pytest.raises(ValueError):
            ScaleSpec(num_datacenters=5, num_frontends=5, home_load_fraction=0.0)


class TestGenerator:
    def test_deterministic_in_spec(self, small_instance):
        again = generate_instance(small_instance.spec)
        np.testing.assert_array_equal(again.reach, small_instance.reach)
        np.testing.assert_array_equal(again.arrivals, small_instance.arrivals)
        np.testing.assert_array_equal(again.prices, small_instance.prices)
        np.testing.assert_array_equal(
            again.carbon_rates, small_instance.carbon_rates
        )

    def test_seed_changes_everything(self, small_instance):
        spec = ScaleSpec(
            num_datacenters=6, num_frontends=25, hours=24, fan_in=3, seed=8
        )
        other = generate_instance(spec)
        assert not np.array_equal(other.arrivals, small_instance.arrivals)
        assert not np.array_equal(other.prices, small_instance.prices)

    def test_shapes(self, small_instance):
        inst = small_instance
        assert inst.model.num_datacenters == 6
        assert inst.model.num_frontends == 25
        assert inst.reach.shape == (25, 3)
        assert inst.arrivals.shape == (24, 25)
        assert inst.prices.shape == (24, 6)
        assert inst.carbon_rates.shape == (24, 6)

    def test_reach_rows_valid(self, small_instance):
        reach = small_instance.reach
        assert reach.dtype.kind == "i"
        assert (reach >= 0).all() and (reach < 6).all()
        # Sorted, duplicate-free rows.
        assert (np.diff(reach, axis=1) > 0).all()

    def test_home_inside_reach(self, small_instance):
        inst = small_instance
        assert (inst.reach == inst.home[:, None]).any(axis=1).all()

    def test_home_routing_is_feasibility_witness(self, small_instance):
        """Routing everything home never exceeds the home budget."""
        inst = small_instance
        budget = inst.spec.home_load_fraction * inst.model.capacities
        for t in range(inst.spec.hours):
            load = np.bincount(
                inst.home, weights=inst.arrivals[t], minlength=6
            )
            assert (load <= budget * (1 + 1e-9)).all()

    def test_full_reach_when_fan_in_none(self):
        inst = generate_instance(
            ScaleSpec(num_datacenters=4, num_frontends=7, hours=6, fan_in=None)
        )
        assert inst.fan_in == 4
        np.testing.assert_array_equal(
            inst.reach, np.tile(np.arange(4), (7, 1))
        )

    def test_fan_in_clamped_to_n(self):
        inst = generate_instance(
            ScaleSpec(num_datacenters=3, num_frontends=5, hours=6, fan_in=10)
        )
        assert inst.fan_in == 3

    def test_traces_physical(self, small_instance):
        inst = small_instance
        assert (inst.arrivals >= 0).all()
        assert (inst.prices > 0).all()
        assert (inst.carbon_rates > 0).all()
        assert 0 < inst.utilization <= inst.spec.utilization_target

    def test_problem_accessors(self, small_instance):
        p = small_instance.problem(3)
        assert p.inputs.arrivals.shape == (25,)
        probs = small_instance.problems(GRID)
        assert len(probs) == 24
        np.testing.assert_array_equal(
            probs[3].inputs.arrivals, p.inputs.arrivals
        )


class TestScaleSolves:
    """Generated slots solve and the structured compiler accepts them."""

    def test_structured_solver_certifies_a_slot(self, small_instance):
        from repro.obs.certify import certify_structured_solution

        inst = small_instance
        sc = StructuredQPCompiler(inst.model, HYBRID, reach=inst.reach)
        sqp = sc.structured_qp_for(inst.inputs(0))
        res = solve_structured_qp(sqp, tol=1e-8, max_iter=120)
        assert res.converged
        alloc = sqp.extract(res.x)
        report = certify_structured_solution(
            sqp,
            inst.problem(0),
            alloc,
            x=res.x,
            duals=(res.eq_dual, res.ineq_dual),
            solver="test",
            slot=0,
        )
        assert report.ok

    def test_dense_and_structured_agree_on_objective(self, small_instance):
        inst = small_instance
        problem = inst.problem(5)
        compiled = CompiledQPStructure(inst.model, HYBRID)
        dense = CentralizedSolver(tol=1e-8, kkt_mode="dense").solve(
            problem, compiled
        )
        structured = CentralizedSolver(tol=1e-8, kkt_mode="structured").solve(
            problem, compiled
        )
        assert dense.converged and structured.converged
        scale = 1.0 + abs(dense.ufc)
        assert abs(structured.ufc - dense.ufc) <= 1e-4 * scale

    def test_admg_decomposition_solves_generated_instances(self, small_instance):
        """ADM-G is the decomposition alternative on the same instances.

        A generated slot is an ordinary ``UFCProblem``, so the distributed
        ADM-G solver must converge on it and land on the same objective as
        the centralized reference (to decomposition tolerance).
        """
        from repro.admg.solver import DistributedUFCSolver

        inst = small_instance
        problem = inst.problem(0)
        distributed = DistributedUFCSolver().solve(problem)
        centralized = CentralizedSolver(tol=1e-8).solve(problem)
        assert distributed.converged
        scale = 1.0 + abs(centralized.ufc)
        assert abs(distributed.ufc - centralized.ufc) <= 1e-4 * scale
