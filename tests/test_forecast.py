"""Tests for the forecasting substrate (repro.forecast)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.forecast.metrics import mae, mape, rmse
from repro.forecast.predictors import (
    ARPredictor,
    HoltWintersPredictor,
    SeasonalNaive,
    forecast_matrix,
)
from repro.traces.workload import hp_workload_shape


@pytest.fixture(scope="module")
def diurnal_series():
    """A clean two-week diurnal series (known structure, mild noise)."""
    return 1000.0 * hp_workload_shape(hours=336, seed=3, noise_sigma=0.01)


class TestSeasonalNaive:
    def test_repeats_last_season(self):
        series = np.arange(48, dtype=float)
        pred = SeasonalNaive(period=24)
        assert pred.predict(series) == series[-24]

    def test_short_history_persistence(self):
        pred = SeasonalNaive(period=24)
        assert pred.predict(np.array([5.0, 7.0])) == 7.0
        assert pred.predict(np.array([])) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SeasonalNaive(period=0)

    def test_accuracy_on_diurnal_series(self, diurnal_series):
        pred = SeasonalNaive(period=24)
        forecasts = forecast_matrix(diurnal_series, pred, start=168)
        error = mape(diurnal_series[168:], forecasts)
        assert error < 0.15


class TestHoltWinters:
    def test_validation(self):
        with pytest.raises(ValueError):
            HoltWintersPredictor(period=0)
        with pytest.raises(ValueError):
            HoltWintersPredictor(alpha=0.0)
        with pytest.raises(ValueError):
            HoltWintersPredictor(gamma=1.0)

    def test_short_history_persistence(self):
        pred = HoltWintersPredictor(period=24)
        assert pred.predict(np.array([3.0, 4.0])) == 4.0

    def test_tracks_linear_trend(self):
        """On a pure trend (no seasonality) HW extrapolates forward."""
        series = np.arange(120, dtype=float)
        pred = HoltWintersPredictor(period=24, alpha=0.5, beta=0.3, gamma=0.1)
        forecast = pred.predict(series)
        assert forecast == pytest.approx(120.0, abs=3.0)

    def test_accuracy_beats_persistence(self, diurnal_series):
        hw = HoltWintersPredictor(period=24)
        forecasts = forecast_matrix(diurnal_series, hw, start=168)
        persistence = diurnal_series[167:-1]
        assert mape(diurnal_series[168:], forecasts) < mape(
            diurnal_series[168:], persistence
        )

    def test_non_negative(self):
        series = np.maximum(0.0, np.sin(np.arange(100)) * 2 - 1.5)
        pred = HoltWintersPredictor(period=24)
        assert pred.predict(series) >= 0.0


class TestARPredictor:
    def test_validation(self):
        with pytest.raises(ValueError):
            ARPredictor(order=0)

    def test_short_history_persistence(self):
        pred = ARPredictor(order=24)
        assert pred.predict(np.array([9.0])) == 9.0

    def test_exact_on_ar1_process(self):
        """An AR(1) series is predicted (near-)exactly by AR(p >= 1)."""
        rng = np.random.default_rng(0)
        series = np.empty(300)
        series[0] = 1.0
        for t in range(1, 300):
            series[t] = 5.0 + 0.8 * series[t - 1]
        pred = ARPredictor(order=2, min_history=20)
        forecast = pred.predict(series)
        assert forecast == pytest.approx(5.0 + 0.8 * series[-1], rel=1e-6)

    def test_accuracy_on_diurnal_series(self, diurnal_series):
        pred = ARPredictor(order=24)
        forecasts = forecast_matrix(diurnal_series, pred, start=168)
        assert mape(diurnal_series[168:], forecasts) < 0.10


class TestForecastMatrix:
    def test_matrix_forecast_shape(self):
        series = np.random.default_rng(0).random((60, 3)) + 1
        out = forecast_matrix(series, SeasonalNaive(period=24), start=30)
        assert out.shape == (30, 3)

    def test_3d_rejected(self):
        with pytest.raises(ValueError):
            forecast_matrix(np.zeros((2, 2, 2)), SeasonalNaive())


class TestMetrics:
    def test_mape_basic(self):
        assert mape(np.array([100.0, 200.0]), np.array([110.0, 180.0])) == pytest.approx(
            (0.1 + 0.1) / 2
        )

    def test_mape_ignores_zero_actuals(self):
        assert mape(np.array([0.0, 100.0]), np.array([5.0, 150.0])) == pytest.approx(0.5)

    def test_mape_all_zero_rejected(self):
        with pytest.raises(ValueError):
            mape(np.zeros(3), np.ones(3))

    def test_rmse_and_mae(self):
        actual = np.array([1.0, 2.0, 3.0])
        predicted = np.array([1.0, 4.0, 3.0])
        assert rmse(actual, predicted) == pytest.approx(np.sqrt(4 / 3))
        assert mae(actual, predicted) == pytest.approx(2 / 3)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rmse(np.ones(2), np.ones(3))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mae(np.array([]), np.array([]))

    @given(
        seed=st.integers(0, 100),
        scale=st.floats(min_value=0.1, max_value=100.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_perfect_forecast_scores_zero(self, seed, scale):
        series = np.random.default_rng(seed).random(20) * scale + 0.1
        assert mape(series, series) == 0.0
        assert rmse(series, series) == 0.0
        assert mae(series, series) == 0.0
