"""Tests for repro.costs.energy and repro.costs.latency."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costs.energy import ServerPowerModel
from repro.costs.latency import (
    LinearLatencyUtility,
    QuadraticLatencyUtility,
    latency_matrix_from_distances,
)


class TestServerPowerModel:
    def test_paper_defaults(self):
        m = ServerPowerModel()
        assert m.idle_watts == 100.0
        assert m.peak_watts == 200.0
        assert m.pue == 1.2

    def test_alpha_formula(self):
        # alpha = S * P_idle * PUE: 20000 * 100 * 1.2 W = 2.4 MW.
        m = ServerPowerModel()
        assert m.alpha_mw(20_000) == pytest.approx(2.4)

    def test_beta_formula(self):
        # beta = (P_peak - P_idle) * PUE = 120 W/server = 1.2e-4 MW.
        m = ServerPowerModel()
        assert m.beta_mw_per_server == pytest.approx(1.2e-4)

    def test_demand_linear_in_workload(self):
        m = ServerPowerModel()
        base = m.demand_mw(1000, 0)
        full = m.demand_mw(1000, 1000)
        assert base == pytest.approx(m.alpha_mw(1000))
        assert full == pytest.approx(m.peak_demand_mw(1000))

    def test_peak_demand_is_paper_mu_max(self):
        m = ServerPowerModel()
        # mu_max = P_peak * S * PUE.
        assert m.peak_demand_mw(20_000) == pytest.approx(4.8)

    def test_workload_beyond_capacity_rejected(self):
        m = ServerPowerModel()
        with pytest.raises(ValueError):
            m.demand_mw(100, 101)

    def test_negative_inputs_rejected(self):
        m = ServerPowerModel()
        with pytest.raises(ValueError):
            m.alpha_mw(-1)
        with pytest.raises(ValueError):
            m.demand_mw(10, -1)
        with pytest.raises(ValueError):
            m.peak_demand_mw(-5)

    def test_invalid_model_parameters(self):
        with pytest.raises(ValueError):
            ServerPowerModel(idle_watts=-1)
        with pytest.raises(ValueError):
            ServerPowerModel(idle_watts=300, peak_watts=200)
        with pytest.raises(ValueError):
            ServerPowerModel(pue=0.9)

    @given(
        servers=st.floats(min_value=1, max_value=1e5),
        frac=st.floats(min_value=0, max_value=1),
        pue=st.floats(min_value=1.0, max_value=3.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_demand_monotone_and_bounded(self, servers, frac, pue):
        m = ServerPowerModel(pue=pue)
        d = m.demand_mw(servers, frac * servers)
        assert m.alpha_mw(servers) <= d <= m.peak_demand_mw(servers) + 1e-12


class TestLatencyMatrix:
    def test_paper_constant(self):
        # 0.02 ms/km: 1000 km -> 20 ms.
        out = latency_matrix_from_distances(np.array([[1000.0]]))
        assert out[0, 0] == pytest.approx(20.0)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            latency_matrix_from_distances(np.array([-1.0]))


class TestQuadraticLatencyUtility:
    def test_paper_equation_2(self):
        """U = -A * (sum lambda L / A)^2 with latency in seconds."""
        u = QuadraticLatencyUtility()
        lam = np.array([100.0, 300.0])
        lat = np.array([10.0, 20.0])  # ms
        avg_s = (100 * 10 + 300 * 20) * 1e-3 / 400.0
        assert u.value(lam, lat, 400.0) == pytest.approx(-400.0 * avg_s**2)

    def test_zero_arrival(self):
        u = QuadraticLatencyUtility()
        assert u.value(np.zeros(2), np.ones(2), 0.0) == 0.0

    def test_quad_form_consistency(self):
        """0.5 x'Hx + g'x must equal -w*U(x) for any x."""
        u = QuadraticLatencyUtility()
        lat = np.array([5.0, 15.0, 30.0])
        arrival, w = 250.0, 10.0
        h, g = u.neg_quad_form(lat, arrival, w)
        rng = np.random.default_rng(1)
        for _ in range(10):
            x = rng.uniform(0, arrival, size=3)
            direct = -w * u.value(x, lat, arrival)
            quad = 0.5 * x @ h @ x + g @ x
            assert quad == pytest.approx(direct, rel=1e-10)

    def test_average_latency_helper(self):
        u = QuadraticLatencyUtility()
        lam = np.array([1.0, 3.0])
        lat = np.array([10.0, 20.0])
        assert u.average_latency_ms(lam, lat, 4.0) == pytest.approx(17.5)

    def test_utility_decreases_with_latency(self):
        u = QuadraticLatencyUtility()
        lam = np.array([200.0, 200.0])
        near = u.value(lam, np.array([5.0, 5.0]), 400.0)
        far = u.value(lam, np.array([50.0, 50.0]), 400.0)
        assert near > far


class TestLinearLatencyUtility:
    def test_value_is_negative_weighted_latency(self):
        u = LinearLatencyUtility()
        lam = np.array([100.0, 200.0])
        lat = np.array([10.0, 5.0])
        assert u.value(lam, lat, 300.0) == pytest.approx(-(1000 + 1000) * 1e-3)

    def test_quad_form_consistency(self):
        u = LinearLatencyUtility()
        lat = np.array([8.0, 12.0])
        h, g = u.neg_quad_form(lat, 100.0, 7.0)
        assert (h == 0).all()
        x = np.array([30.0, 70.0])
        assert g @ x == pytest.approx(-7.0 * u.value(x, lat, 100.0), rel=1e-12)
