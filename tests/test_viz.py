"""Tests for the ASCII visualization primitives (repro.viz)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.viz.ascii import bar_chart, line_chart, sparkline


class TestSparkline:
    def test_monotone_series_monotone_blocks(self):
        out = sparkline([1.0, 2.0, 3.0, 4.0])
        assert out == "▁▃▆█"

    def test_constant_series(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_resampling_to_width(self):
        out = sparkline(np.arange(100), width=10)
        assert len(out) == 10

    def test_short_series_not_padded(self):
        assert len(sparkline([1.0, 2.0], width=10)) == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            sparkline([1.0, float("nan")])

    @given(
        values=hnp.arrays(
            dtype=float,
            shape=st.integers(1, 200),
            elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_always_renders_blocks(self, values):
        out = sparkline(values, width=40)
        assert 1 <= len(out) <= 40
        assert set(out) <= set("▁▂▃▄▅▆▇█")


class TestBarChart:
    def test_scales_to_largest(self):
        out = bar_chart({"a": 10.0, "b": 5.0}, width=10)
        lines = out.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_negative_values_distinct_fill(self):
        out = bar_chart({"up": 4.0, "down": -4.0}, width=8)
        assert "░" in out and "█" in out

    def test_all_zero(self):
        out = bar_chart({"a": 0.0}, width=10)
        assert "█" not in out

    def test_labels_aligned(self):
        out = bar_chart({"long-label": 1.0, "x": 2.0})
        lines = out.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart({})
        with pytest.raises(ValueError):
            bar_chart({"a": 1.0}, width=0)


class TestLineChart:
    def test_dimensions(self):
        out = line_chart(np.sin(np.linspace(0, 6, 100)), height=6, width=40)
        lines = out.splitlines()
        assert len(lines) == 6
        assert all("┤" in line for line in lines)

    def test_extremes_labelled(self):
        out = line_chart([0.0, 100.0], height=4)
        assert "100" in out.splitlines()[0]
        assert out.splitlines()[-1].lstrip().startswith("0")

    def test_every_column_has_a_dot(self):
        out = line_chart(np.arange(10, dtype=float), height=5, width=10)
        total_dots = out.count("•")
        assert total_dots == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart([])
        with pytest.raises(ValueError):
            line_chart([1.0], height=1)
        with pytest.raises(ValueError):
            line_chart([1.0, float("nan")])
