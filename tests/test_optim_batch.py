"""Tests for repro.optim.batch: batched kernels against the scalar solvers.

Two kinds of guarantee are exercised here.  The closed-form kernels
(``project_simplex_batch``, ``solve_capped_rank_one_qp_batch``) promise
*bit-identical* rows versus the scalar calls — those tests use
``np.array_equal``.  The batched interior-point solver promises scalar
*semantics* (same convergence test, same tolerances) but iterates all
instances jointly, so its tests compare solutions to the scalar solver
within solver tolerance and check the masking/fallback machinery
exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.optim.batch import (
    BatchIPQPResult,
    project_simplex_batch,
    solve_capped_rank_one_qp_batch,
    solve_qp_batch,
)
from repro.optim.ipqp import solve_qp
from repro.optim.rank_one import solve_capped_rank_one_qp
from repro.optim.simplex import project_simplex


def _random_qp(rng, n, p, m, scale=1.0):
    """A feasible strictly convex QP with interior point x0."""
    M = rng.normal(size=(n, n))
    P = M @ M.T + 0.5 * np.eye(n)
    q = rng.normal(size=n) * scale
    x0 = rng.normal(size=n)
    A = rng.normal(size=(p, n)) if p else None
    b = A @ x0 if p else None
    G = rng.normal(size=(m, n)) if m else None
    h = G @ x0 + rng.uniform(0.5, 2.0, size=m) if m else None
    return P, q, A, b, G, h


class TestProjectSimplexBatch:
    def test_rows_bit_identical_to_scalar(self):
        rng = np.random.default_rng(0)
        v = rng.normal(size=(16, 7)) * 10
        totals = rng.uniform(0.0, 5.0, size=16)
        out = project_simplex_batch(v, totals)
        for r in range(16):
            assert np.array_equal(out[r], project_simplex(v[r], totals[r]))

    def test_scalar_total_broadcasts(self):
        rng = np.random.default_rng(1)
        v = rng.normal(size=(5, 4))
        out = project_simplex_batch(v, 2.0)
        for r in range(5):
            assert np.array_equal(out[r], project_simplex(v[r], 2.0))

    def test_1d_input_rejected(self):
        with pytest.raises(ValueError):
            project_simplex_batch(np.zeros(3), 1.0)


class TestCappedRankOneBatch:
    def test_rows_bit_identical_to_scalar(self):
        rng = np.random.default_rng(2)
        c = rng.normal(size=(24, 6)) * 3
        rho, beta = 0.7, 0.02
        caps = rng.uniform(0.0, 4.0, size=24)
        out = solve_capped_rank_one_qp_batch(c, rho=rho, beta=beta, cap=caps)
        for t in range(24):
            ref = solve_capped_rank_one_qp(c[t], rho=rho, beta=beta, cap=float(caps[t]))
            assert np.array_equal(out[t], ref), t

    def test_binding_cap_rows_match_scalar(self):
        # Large rewards force the capacity to bind on every row.
        rng = np.random.default_rng(3)
        c = rng.uniform(5.0, 10.0, size=(8, 5))
        out = solve_capped_rank_one_qp_batch(c, rho=0.3, beta=0.01, cap=1.0)
        np.testing.assert_allclose(out.sum(axis=1), 1.0, atol=1e-9)
        for t in range(8):
            ref = solve_capped_rank_one_qp(c[t], rho=0.3, beta=0.01, cap=1.0)
            assert np.array_equal(out[t], ref), t

    def test_all_negative_rewards_give_zero(self):
        c = -np.ones((3, 4))
        out = solve_capped_rank_one_qp_batch(c, rho=1.0, beta=0.1, cap=2.0)
        np.testing.assert_allclose(out, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            solve_capped_rank_one_qp_batch(np.zeros(3), rho=1.0, beta=0.1, cap=1.0)
        with pytest.raises(ValueError):
            solve_capped_rank_one_qp_batch(np.zeros((2, 3)), rho=0.0, beta=0.1, cap=1.0)
        with pytest.raises(ValueError):
            solve_capped_rank_one_qp_batch(np.zeros((2, 3)), rho=1.0, beta=0.1, cap=-1.0)


class TestSolveQPBatchStacked:
    """The general dense path: per-instance 3-D constraint stacks."""

    @pytest.mark.parametrize("seed", range(6))
    def test_fuzz_matches_scalar(self, seed):
        rng = np.random.default_rng(seed)
        n, p, m, T = 6, 2, 8, 5
        qps = [_random_qp(rng, n, p, m) for _ in range(T)]
        res = solve_qp_batch(
            np.stack([qp[0] for qp in qps]),
            np.stack([qp[1] for qp in qps]),
            A=np.stack([qp[2] for qp in qps]),
            b=np.stack([qp[3] for qp in qps]),
            G=np.stack([qp[4] for qp in qps]),
            h=np.stack([qp[5] for qp in qps]),
        )
        assert res.converged.all()
        assert not res.fallback.any()
        for t, (P, q, A, b, G, h) in enumerate(qps):
            ref = solve_qp(P, q, A=A, b=b, G=G, h=h)
            assert ref.converged
            np.testing.assert_allclose(res.x[t], ref.x, atol=1e-6, rtol=1e-6)
            assert res.value[t] == pytest.approx(ref.value, rel=1e-8, abs=1e-8)

    def test_single_instance_batch_matches_scalar(self):
        rng = np.random.default_rng(11)
        P, q, A, b, G, h = _random_qp(rng, 5, 1, 6)
        res = solve_qp_batch(P[None], q[None], A=A[None], b=b[None], G=G[None], h=h[None])
        ref = solve_qp(P, q, A=A, b=b, G=G, h=h)
        assert len(res) == 1
        assert bool(res.converged[0]) == ref.converged
        np.testing.assert_allclose(res.x[0], ref.x, atol=1e-7, rtol=1e-7)

    def test_mixed_difficulty_iteration_masking(self):
        """Joint iteration is per-instance: each instance converges in
        exactly the iterations it would take alone (convergence masking
        freezes finished instances without perturbing stragglers)."""
        rng = np.random.default_rng(12)
        easy = _random_qp(rng, 6, 0, 6)
        hard = _random_qp(rng, 6, 0, 6, scale=1e4)  # badly scaled linear term
        P = np.stack([easy[0], hard[0] * 1e3])
        q = np.stack([easy[1], hard[1]])
        G = np.stack([easy[4], hard[4]])
        h = np.stack([easy[5], hard[5]])
        res = solve_qp_batch(P, q, G=G, h=h)
        assert res.converged.all()
        for t in range(2):
            solo = solve_qp_batch(
                P[t : t + 1], q[t : t + 1], G=G[t : t + 1], h=h[t : t + 1]
            )
            assert int(solo.iterations[0]) == int(res.iterations[t])
            assert np.array_equal(solo.x[0], res.x[t])

    def test_fallback_instances_carry_scalar_solution(self):
        """Instances the batch cannot converge within max_iter are
        re-solved scalar (same budget) and flagged in the mask."""
        rng = np.random.default_rng(13)
        qps = [_random_qp(rng, 5, 0, 6) for _ in range(3)]
        P = np.stack([qp[0] for qp in qps])
        q = np.stack([qp[1] for qp in qps])
        G = np.stack([qp[4] for qp in qps])
        h = np.stack([qp[5] for qp in qps])
        res = solve_qp_batch(P, q, G=G, h=h, max_iter=2)
        # Two iterations are never enough: every instance falls back.
        assert res.fallback.all()
        for t in np.nonzero(res.fallback)[0]:
            ref = solve_qp(P[t], q[t], G=G[t], h=h[t], max_iter=2)
            assert np.array_equal(res.x[t], ref.x)
            assert bool(res.converged[t]) == ref.converged
            assert int(res.iterations[t]) == ref.iterations

    def test_fallback_disabled_reports_raw_mask(self):
        rng = np.random.default_rng(14)
        P, q, _, _, G, h = _random_qp(rng, 5, 0, 6)
        res = solve_qp_batch(P[None], q[None], G=G[None], h=h[None],
                             max_iter=2, fallback_scalar=False)
        assert not res.converged[0]
        assert not res.fallback[0]


class TestSolveQPBatchShared:
    """The shared-structure fast path: one 2-D A/G for the whole batch."""

    @pytest.mark.parametrize("seed", range(4))
    def test_fuzz_matches_scalar(self, seed):
        rng = np.random.default_rng(100 + seed)
        n, p, m, T = 7, 2, 10, 6
        _, _, A, _, G, _ = _random_qp(rng, n, p, m)
        x0 = rng.normal(size=n)
        b0 = A @ x0
        qs, Ps, hs = [], [], []
        for _ in range(T):
            M = rng.normal(size=(n, n))
            Ps.append(M @ M.T + 0.5 * np.eye(n))
            qs.append(rng.normal(size=n))
            hs.append(G @ x0 + rng.uniform(0.5, 2.0, size=m))
        res = solve_qp_batch(
            np.stack(Ps), np.stack(qs),
            A=A, b=np.tile(b0, (T, 1)), G=G, h=np.stack(hs),
        )
        assert res.converged.all()
        for t in range(T):
            ref = solve_qp(Ps[t], qs[t], A=A, b=b0, G=G, h=hs[t])
            assert ref.converged
            np.testing.assert_allclose(res.x[t], ref.x, atol=1e-6, rtol=1e-6)
            assert res.value[t] == pytest.approx(ref.value, rel=1e-8, abs=1e-8)

    def test_bound_rows_plus_dense_rows(self):
        """Simple-bound G rows (one nonzero) split from dense rows must
        not change solutions: box-constrained batch vs scalar."""
        rng = np.random.default_rng(42)
        n, T = 5, 4
        G = np.vstack([-np.eye(n), np.eye(n), rng.normal(size=(2, n))])
        x0 = rng.uniform(0.2, 0.8, size=n)
        Ps, qs, hs = [], [], []
        for _ in range(T):
            M = rng.normal(size=(n, n))
            Ps.append(M @ M.T + np.eye(n))
            qs.append(rng.normal(size=n))
            hs.append(G @ x0 + rng.uniform(0.5, 1.5, size=2 * n + 2))
        res = solve_qp_batch(np.stack(Ps), np.stack(qs), G=G, h=np.stack(hs))
        assert res.converged.all()
        for t in range(T):
            ref = solve_qp(Ps[t], qs[t], G=G, h=hs[t])
            # Structural check (split correctness), not a precision
            # race: both solvers stop at tol, so allow solver-tolerance
            # slack along weakly determined directions.
            np.testing.assert_allclose(res.x[t], ref.x, atol=1e-4, rtol=1e-4)
            assert res.value[t] == pytest.approx(ref.value, rel=1e-7, abs=1e-7)


class TestSolveQPBatchEdges:
    def test_empty_batch(self):
        res = solve_qp_batch(np.zeros((0, 3, 3)), np.zeros((0, 3)))
        assert isinstance(res, BatchIPQPResult)
        assert len(res) == 0
        assert res.x.shape == (0, 3)

    def test_unconstrained_closed_form(self):
        rng = np.random.default_rng(21)
        Ps, qs = [], []
        for _ in range(4):
            M = rng.normal(size=(4, 4))
            Ps.append(M @ M.T + np.eye(4))
            qs.append(rng.normal(size=4))
        res = solve_qp_batch(np.stack(Ps), np.stack(qs))
        assert res.converged.all()
        for t in range(4):
            np.testing.assert_allclose(res.x[t], np.linalg.solve(Ps[t], -qs[t]), atol=1e-8)

    def test_equality_only_closed_form(self):
        rng = np.random.default_rng(22)
        n, p = 5, 2
        M = rng.normal(size=(n, n))
        P = M @ M.T + np.eye(n)
        A = rng.normal(size=(p, n))
        qs = rng.normal(size=(3, n))
        bs = rng.normal(size=(3, p))
        res = solve_qp_batch(np.broadcast_to(P, (3, n, n)), qs,
                             A=np.broadcast_to(A, (3, p, n)), b=bs)
        assert res.converged.all()
        for t in range(3):
            ref = solve_qp(P, qs[t], A=A, b=bs[t])
            np.testing.assert_allclose(res.x[t], ref.x, atol=1e-7)
            np.testing.assert_allclose(res.eq_dual[t], ref.eq_dual, atol=1e-6)

    def test_shared_2d_hessian_broadcasts(self):
        rng = np.random.default_rng(23)
        M = rng.normal(size=(3, 3))
        P = M @ M.T + np.eye(3)
        qs = rng.normal(size=(5, 3))
        res = solve_qp_batch(P, qs)
        for t in range(5):
            np.testing.assert_allclose(res.x[t], np.linalg.solve(P, -qs[t]), atol=1e-8)

    def test_instance_view(self):
        rng = np.random.default_rng(24)
        P, q, _, _, G, h = _random_qp(rng, 4, 0, 5)
        res = solve_qp_batch(P[None], q[None], G=G[None], h=h[None])
        inst = res.instance(0)
        assert np.array_equal(inst.x, res.x[0])
        assert inst.value == float(res.value[0])
        assert inst.iterations == int(res.iterations[0])
        assert inst.converged == bool(res.converged[0])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            solve_qp_batch(np.zeros((2, 3, 3)), np.zeros(3))  # 1-D q
        with pytest.raises(ValueError):
            solve_qp_batch(np.zeros((2, 4, 4)), np.zeros((2, 3)))  # P/q mismatch
        with pytest.raises(ValueError):
            solve_qp_batch(
                np.zeros((2, 3, 3)), np.zeros((2, 3)),
                G=np.zeros((3, 2, 3)), h=np.zeros((3, 2)),  # wrong batch dim
            )
