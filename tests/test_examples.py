"""Smoke tests: every example script runs end to end.

Each example is executed in-process with a tiny horizon so the whole
suite stays fast; the assertion is simply clean completion plus a few
sanity greps on the printed output.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(monkeypatch, capsys, script: str, argv: list[str]) -> str:
    monkeypatch.setattr(sys, "argv", [script] + argv)
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "quickstart.py", ["--hours", "6"])
    assert "hybrid vs grid" in out
    assert "Fuel cell" in out
    assert "energy saving" in out


def test_carbon_policy_study(monkeypatch, capsys):
    out = run_example(
        monkeypatch, capsys, "carbon_policy_study.py", ["--hours", "6"]
    )
    assert "flat tax $25/t" in out
    assert "cap-and-trade" in out
    # Every policy row prints a carbon figure.
    assert out.count("%") >= 4


def test_distributed_deployment(monkeypatch, capsys):
    out = run_example(
        monkeypatch, capsys, "distributed_deployment.py", ["--slot", "3"]
    )
    assert "front-end agents" in out
    assert "relative gap" in out
    assert "messages" in out


def test_capacity_planning(monkeypatch, capsys):
    out = run_example(
        monkeypatch, capsys, "capacity_planning.py", ["--hours", "6"]
    )
    assert "price-greedy" in out
    assert "full deployment" in out


def test_ramp_constrained_operations(monkeypatch, capsys):
    out = run_example(
        monkeypatch, capsys, "ramp_constrained_operations.py", ["--hours", "6"]
    )
    assert "ramp (MW/h)" in out
    assert "binding slots" in out


def test_forecast_study(monkeypatch, capsys):
    out = run_example(
        monkeypatch, capsys, "forecast_study.py", ["--hours", "56"]
    )
    assert "MAPE" in out
    assert "UFC loss" in out
    assert "noise dial" in out


def test_gain_attribution(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "gain_attribution.py", ["--hours", "6"])
    assert "sourcing (arbitrage)" in out
    assert "Pareto" in out or "frontier" in out
    assert "d(UFC)/d(fuel_cell_price)" in out


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "carbon_policy_study.py", "distributed_deployment.py",
     "capacity_planning.py", "ramp_constrained_operations.py",
     "forecast_study.py", "gain_attribution.py"],
)
def test_examples_exist_and_are_documented(script):
    path = EXAMPLES / script
    assert path.exists()
    text = path.read_text()
    assert text.startswith('"""')
    assert "Run:" in text
