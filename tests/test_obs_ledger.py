"""Tests for the run ledger (repro.obs.ledger), the `repro top`
dashboard renderer (repro.viz.top), and the ledger-driven CLI commands.
"""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest

from repro.cli import main
from repro.core.strategies import HYBRID
from repro.engine import HorizonEngine
from repro.obs.ledger import (
    LedgerRun,
    RunLedger,
    diff_runs,
    ledger_path,
    list_runs,
    load_run,
    new_run_id,
    resolve_run,
)
from repro.obs.records import SlotTelemetry
from repro.sim.simulator import Simulator
from repro.viz.top import render_top, replay_frames

SLOTS = 6


@pytest.fixture(scope="module")
def problems(small_model, small_bundle):
    sim = Simulator(small_model, small_bundle)
    return [sim.problem_for_slot(t, HYBRID) for t in range(SLOTS)]


def _fake_outcome(index, wall_s=0.004, worker=1234, error=None):
    return SimpleNamespace(
        index=index,
        error=error,
        error_type=None if error is None else "RuntimeError",
        attempts=1,
        degraded=False,
        fallback_solver=None,
        worker_report=None,
        telemetry=SlotTelemetry(
            solver="centralized",
            wall_s=wall_s,
            compile_s=0.001,
            iterations=9,
            converged=error is None,
            cache_hit=True,
            worker=worker,
            warm_start=False,
            error_type=None if error is None else "RuntimeError",
        ),
    )


class TestRunLedgerWriter:
    def test_write_finalize_roundtrip(self, tmp_path):
        ledger = RunLedger(tmp_path, run_id="testrun-000001")
        ledger.write_header(
            solver="centralized",
            config={"workers": 2},
            digests={"inputs_sha256": "ab" * 32, "slots": "6"},
            environment={"python": "3.11"},
            slots_expected=3,
        )
        for i in range(3):
            ledger.record_slot(_fake_outcome(i), pending=2 - i)
        path = ledger.finalize({"solver": "centralized", "failed_slots": 0})
        assert path == ledger_path(tmp_path, "testrun-000001")
        assert path.is_file()
        assert not ledger.part_path.exists()

        run = load_run(path)
        assert run.finalized
        assert run.run_id == "testrun-000001"
        assert run.header["solver"] == "centralized"
        assert run.header["config"] == {"workers": 2}
        assert run.header["slots_expected"] == 3
        assert [s["index"] for s in run.slots] == [0, 1, 2]
        assert run.pending_series() == [2, 1, 0]
        assert run.summary["slots"] == 3
        assert run.summary["failed_slots"] == 0

    def test_finalize_is_idempotent(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.write_header(solver="centralized")
        assert ledger.finalize() == ledger.finalize()

    def test_abandon_leaves_part_file(self, tmp_path):
        ledger = RunLedger(tmp_path, run_id="crashed-000001")
        ledger.write_header(solver="centralized")
        ledger.record_slot(_fake_outcome(0))
        ledger.abandon()
        assert ledger.part_path.is_file()
        assert not ledger.path.exists()
        run = load_run(ledger.part_path)
        assert not run.finalized
        assert len(run.slots) == 1
        with pytest.raises(RuntimeError, match="closed"):
            ledger.record_slot(_fake_outcome(1))

    def test_error_slots_and_flags_are_recorded(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.write_header(solver="centralized")
        bad = _fake_outcome(0, error="RuntimeError: boom")
        bad.attempts = 3
        bad.degraded = True
        bad.fallback_solver = "proportional"
        ledger.record_slot(bad)
        run = load_run(ledger.finalize())
        (slot,) = run.slots
        assert slot["ok"] is False
        assert slot["error_type"] == "RuntimeError"
        assert slot["attempts"] == 3
        assert slot["degraded"] is True
        assert slot["fallback_solver"] == "proportional"
        assert run.failed == [slot]

    def test_load_run_tolerates_torn_trailing_line(self, tmp_path):
        ledger = RunLedger(tmp_path, run_id="torn-000001")
        ledger.write_header(solver="centralized")
        ledger.record_slot(_fake_outcome(0))
        ledger.record_slot(_fake_outcome(1))
        ledger.abandon()
        # Simulate a writer caught mid-append.
        with open(ledger.part_path, "a", encoding="utf-8") as fh:
            fh.write('{"kind":"slot","index":2,"ok":tr')
        run = load_run(ledger.part_path)
        assert len(run.slots) == 2
        assert not run.finalized


class TestLedgerQueries:
    def _two_runs(self, tmp_path):
        specs = (("a-000001", 0.004, False), ("b-000002", 0.008, True))
        for run_id, wall, fail in specs:
            ledger = RunLedger(tmp_path, run_id=run_id)
            ledger.write_header(
                solver="centralized",
                config={"workers": 1 if run_id.startswith("a") else 2},
                digests={"inputs_sha256": "cafe"},
            )
            ledger.record_slot(_fake_outcome(0, wall_s=wall))
            ledger.record_slot(
                _fake_outcome(1, wall_s=wall, error="boom" if fail else None)
            )
            ledger.finalize({"failed_slots": int(fail)})
        return tmp_path

    def test_list_runs_newest_first_includes_live(self, tmp_path):
        self._two_runs(tmp_path)
        live = RunLedger(tmp_path, run_id="c-000003")
        live.write_header(solver="centralized")
        live.abandon()
        runs = list_runs(tmp_path)
        assert [r.run_id for r in runs] == ["c-000003", "b-000002", "a-000001"]
        assert [r.finalized for r in runs] == [False, True, True]

    def test_resolve_run_prefix_and_ambiguity(self, tmp_path):
        self._two_runs(tmp_path)
        assert resolve_run("a-", tmp_path).name == "a-000001.jsonl"
        assert resolve_run("b-000002", tmp_path).name == "b-000002.jsonl"
        # A direct path wins without touching the root.
        path = ledger_path(tmp_path, "a-000001")
        assert resolve_run(str(path)) == path
        with pytest.raises(FileNotFoundError, match="ambiguous"):
            resolve_run("", tmp_path)
        with pytest.raises(FileNotFoundError, match="no run ledger"):
            resolve_run("zzz", tmp_path)

    def test_diff_runs_reports_deltas_and_drift(self, tmp_path):
        self._two_runs(tmp_path)
        a = load_run(resolve_run("a-", tmp_path))
        b = load_run(resolve_run("b-", tmp_path))
        diff = diff_runs(a, b)
        assert diff["same_inputs"] is True
        assert diff["changed_config"] == ["workers"]
        assert diff["failed_delta"] == 1
        assert diff["solve_s_delta"] == pytest.approx(1.0)

    def test_new_run_id_is_sortable_and_unique(self):
        ids = {new_run_id() for _ in range(16)}
        assert len(ids) == 16


class TestEngineLedgerIntegration:
    def test_run_produces_finalized_ledger(self, tmp_path, problems):
        engine = HorizonEngine("centralized", ledger=tmp_path)
        outcomes = engine.run(problems)
        path = engine.last_ledger_path
        assert path is not None and path.is_file()
        run = load_run(path)
        assert run.finalized
        assert len(run.slots) == len(problems) == len(outcomes)
        assert run.header["solver"] == "centralized"
        assert run.header["slots_expected"] == len(problems)
        config = run.header["config"]
        assert config["solver"] == "centralized"
        assert config["workers"] == 1
        digests = run.header["digests"]
        assert digests["slots"] == len(problems)
        assert len(digests["inputs_sha256"]) == 64
        env = run.header["environment"]
        assert "python" in env and "host" in env
        assert run.summary["failed_slots"] == 0
        # Slot records carry the solve stream the dashboard needs.
        assert all(s["ok"] for s in run.slots)
        assert all(s["wall_s"] > 0 for s in run.slots)
        assert all(s["t_rel_s"] >= 0 for s in run.slots)

    def test_same_inputs_give_same_digest(self, tmp_path, problems):
        paths = []
        for sub in ("one", "two"):
            engine = HorizonEngine("centralized", ledger=tmp_path / sub)
            engine.run(problems)
            paths.append(engine.last_ledger_path)
        a, b = (load_run(p) for p in paths)
        assert (
            a.header["digests"]["inputs_sha256"]
            == b.header["digests"]["inputs_sha256"]
        )
        assert diff_runs(a, b)["same_inputs"]

    def test_bad_config_leaves_no_ledger_files(self, tmp_path, problems):
        engine = HorizonEngine("centralized", workers=2, ledger=tmp_path / "sub")
        with pytest.raises(ValueError, match="warm_start"):
            engine.run(problems, warm_start=True)
        # Validation fired before the ledger opened: nothing on disk.
        assert not (tmp_path / "sub").exists()

    def test_explicit_ledger_instance_is_single_use(self, tmp_path, problems):
        ledger = RunLedger(tmp_path, run_id="explicit-000001")
        engine = HorizonEngine("centralized", ledger=ledger)
        engine.run(problems[:2])
        assert engine.last_ledger_path == ledger.path
        assert load_run(ledger.path).run_id == "explicit-000001"

    def test_no_ledger_means_no_files(self, tmp_path, problems):
        engine = HorizonEngine("centralized")
        engine.run(problems[:2])
        assert engine.last_ledger_path is None


class TestRenderTop:
    @pytest.fixture()
    def run(self, tmp_path, problems):
        engine = HorizonEngine("centralized", ledger=tmp_path)
        engine.run(problems)
        return load_run(engine.last_ledger_path)

    def test_final_frame_mentions_everything(self, run):
        frame = render_top(run)
        assert run.run_id in frame
        assert "[final]" in frame
        assert f"slots {SLOTS}/{SLOTS}" in frame
        assert "latency" in frame
        assert "p50" in frame and "p99" in frame
        assert "outcomes" in frame

    def test_live_prefix_renders_without_summary(self, run):
        live = LedgerRun(
            path=run.path,
            run_id=run.run_id,
            header=run.header,
            slots=run.slots[:3],
            summary=None,
        )
        frame = render_top(live)
        assert "[live]" in frame
        assert f"slots 3/{SLOTS}" in frame

    def test_replay_frames_grow_to_full_coverage(self, run):
        frames = list(replay_frames(run, frames=4))
        counts = [n for n, _ in frames]
        assert counts == sorted(counts)
        assert counts[-1] == SLOTS
        assert all(isinstance(f, str) and f for _, f in frames)

    def test_empty_run_renders(self, tmp_path):
        ledger = RunLedger(tmp_path, run_id="empty-000001")
        ledger.write_header(solver="centralized", slots_expected=0)
        run = load_run(ledger.finalize())
        assert run.run_id in render_top(run)


class TestLedgerCli:
    @pytest.fixture()
    def ledger_dir(self, tmp_path):
        root = tmp_path / "runs"
        for _ in range(2):
            assert (
                main(["--hours", "6", "simulate", "--ledger", str(root)]) == 0
            )
        return root

    def test_runs_list_and_json(self, ledger_dir, capsys):
        assert main(["runs", "list", "--ledger-dir", str(ledger_dir)]) == 0
        out = capsys.readouterr().out
        assert "[final]" in out
        assert main(["runs", "list", "--ledger-dir", str(ledger_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 2
        assert all(entry["finalized"] for entry in payload)

    def test_runs_show_and_diff(self, ledger_dir, capsys):
        runs = list_runs(ledger_dir)
        assert (
            main(
                ["runs", "show", runs[0].run_id, "--ledger-dir", str(ledger_dir)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert runs[0].run_id in out
        assert "inputs_sha256" in out
        assert (
            main(
                [
                    "runs",
                    "diff",
                    runs[1].run_id,
                    runs[0].run_id,
                    "--ledger-dir",
                    str(ledger_dir),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "same inputs" in out or "inputs" in out

    def test_top_single_frame_and_replay(self, ledger_dir, capsys):
        run_id = list_runs(ledger_dir)[0].run_id
        assert main(["top", run_id, "--ledger-dir", str(ledger_dir)]) == 0
        assert run_id in capsys.readouterr().out
        assert (
            main(
                [
                    "top",
                    run_id,
                    "--ledger-dir",
                    str(ledger_dir),
                    "--replay",
                    "--frames",
                    "3",
                ]
            )
            == 0
        )
        assert run_id in capsys.readouterr().out

    def test_top_follow_returns_once_finalized(self, ledger_dir, capsys):
        run_id = list_runs(ledger_dir)[0].run_id
        # On an already-finalized run, --follow renders once and exits.
        assert (
            main(["top", run_id, "--ledger-dir", str(ledger_dir), "--follow"])
            == 0
        )
        assert "[final]" in capsys.readouterr().out

    def test_top_unknown_run_exits_2(self, tmp_path, capsys):
        assert main(["top", "nope", "--ledger-dir", str(tmp_path)]) == 2
        assert "no run ledger" in capsys.readouterr().err


class TestInterruptGuard:
    def test_guard_restores_handlers_and_chains(self, tmp_path):
        import signal

        from repro.obs import interrupt_guard

        chained = []
        previous = signal.signal(
            signal.SIGTERM, lambda signum, frame: chained.append(signum)
        )
        try:
            ledger = RunLedger(tmp_path, run_id="guarded-000001")
            ledger.write_header(solver="centralized")
            with interrupt_guard(ledger):
                installed = signal.getsignal(signal.SIGTERM)
                assert installed is not previous
                # A signal mid-run abandons the ledger (flushed .part
                # left behind) and chains to the previous handler.
                installed(signal.SIGTERM, None)
            assert chained == [signal.SIGTERM]
            # The handler was restored on exit.
            assert signal.getsignal(signal.SIGTERM) is not installed
            # The abandoned .part is a loadable, resumable prefix.
            run = load_run(ledger.part_path)
            assert not run.finalized
            assert run.run_id == "guarded-000001"
        finally:
            signal.signal(signal.SIGTERM, previous)

    def test_guard_is_transparent_on_clean_exit(self, tmp_path):
        from repro.obs import interrupt_guard

        ledger = RunLedger(tmp_path, run_id="clean-000001")
        ledger.write_header(solver="centralized")
        with interrupt_guard(ledger):
            ledger.record_slot(_fake_outcome(0))
        path = ledger.finalize({"slots": 1})
        assert load_run(path).finalized


class TestLedgerLineage:
    def test_context_and_lineage_round_trip(self, tmp_path):
        ledger = RunLedger(
            tmp_path,
            run_id="lineage-000001",
            context={"hours": 6, "seed": 2014},
        )
        ledger.write_header(solver="centralized")
        clean = _fake_outcome(0)
        retried = _fake_outcome(1)
        retried.lineage = {
            "attempts": 2,
            "workers": ["w1", "w0"],
            "faults": ["WorkerLostError"],
            "hedged": False,
            "hedge_won": None,
            "outcome": "ok",
        }
        ledger.record_slot(clean)
        ledger.record_slot(retried)
        run = load_run(ledger.finalize({"slots": 2}))
        assert run.header["context"] == {"hours": 6, "seed": 2014}
        assert "lineage" not in run.slots[0]
        assert run.slots[1]["lineage"]["attempts"] == 2

    def test_runs_show_renders_retry_lineage(self, tmp_path, capsys):
        ledger = RunLedger(tmp_path, run_id="lineage-000002")
        ledger.write_header(solver="centralized")
        retried = _fake_outcome(3)
        retried.lineage = {
            "attempts": 2,
            "workers": ["w1", "w0"],
            "faults": ["WorkerLostError"],
            "hedged": True,
            "hedge_won": True,
            "outcome": "ok",
        }
        ledger.record_slot(_fake_outcome(0))
        ledger.record_slot(retried)
        ledger.finalize({"slots": 2})
        assert (
            main(["runs", "show", "lineage-000002", "--ledger-dir", str(tmp_path)])
            == 0
        )
        out = capsys.readouterr().out
        assert "retry lineage" in out
        assert "w1->w0" in out
        assert "hedge won" in out
        assert "WorkerLostError" in out
