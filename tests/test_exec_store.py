"""Tests for the persistent result store (repro.exec.store).

Round-trip persistence, content-digest invalidation when the model or
trace changes, concurrent-writer safety, and the engine-level warm
re-run resolving (at least) 90% of slots from disk, bit-identically.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.strategies import FUEL_CELL, HYBRID
from repro.engine import HorizonEngine
from repro.exec import ResultStore, problem_digest
from repro.sim.simulator import Simulator, build_model
from repro.traces.datasets import default_bundle


@pytest.fixture(scope="module")
def problems(small_model, small_bundle):
    sim = Simulator(small_model, small_bundle)
    return [sim.problem_for_slot(t, HYBRID) for t in range(12)]


class TestResultStoreBasics:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "ab" + "0" * 62
        store.put(key, {"ufc": -1.25})
        assert key in store
        assert store.get(key) == {"ufc": -1.25}
        assert store.hits == 1 and store.misses == 0

    def test_missing_key_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get("cd" + "0" * 62) is None
        assert store.misses == 1

    def test_corrupt_entry_is_a_miss_not_an_error(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "ef" + "0" * 62
        store.put(key, [1, 2, 3])
        store.path_for(key).write_bytes(b"\x80truncated garbage")
        assert store.get(key) is None

    def test_wrong_key_payload_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "12" + "0" * 62
        other = "34" + "0" * 62
        store.put(key, "value")
        # Simulate a mis-filed entry: bytes for one key under another.
        store.path_for(other).parent.mkdir(parents=True, exist_ok=True)
        store.path_for(other).write_bytes(store.path_for(key).read_bytes())
        assert store.get(other) is None

    def test_keys_len_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = [f"{i:02x}" + "0" * 62 for i in range(5)]
        for i, key in enumerate(keys):
            store.put(key, i)
        assert sorted(store.keys()) == sorted(keys)
        assert len(store) == 5
        assert store.clear() == 5
        assert len(store) == 0

    def test_concurrent_writers_same_key(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "aa" + "0" * 62
        payload = list(range(200))

        def hammer(_):
            for _ in range(20):
                store.put(key, payload)
            return store.get(key)

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(hammer, range(8)))
        assert all(r == payload for r in results)
        # The final entry is complete and readable.
        with open(store.path_for(key), "rb") as fh:
            assert pickle.load(fh)["result"] == payload


class TestProblemDigest:
    def test_deterministic_across_rebuilds(self):
        def build():
            bundle = default_bundle(hours=4, seed=11)
            model = build_model(bundle)
            sim = Simulator(model, bundle)
            return sim.problem_for_slot(2, HYBRID)

        assert problem_digest(build(), "centralized") == problem_digest(
            build(), "centralized"
        )

    def test_solver_and_strategy_fold_in(self, problems):
        problem = problems[0]
        assert problem_digest(problem, "centralized") != problem_digest(
            problem, "distributed"
        )
        sim_problem = problems[0]
        other = type(sim_problem)(
            sim_problem.model, sim_problem.inputs, strategy=FUEL_CELL
        )
        assert problem_digest(sim_problem, "centralized") != problem_digest(
            other, "centralized"
        )

    def test_model_change_invalidates(self):
        bundle = default_bundle(hours=4, seed=11)
        sim_a = Simulator(build_model(bundle), bundle)
        sim_b = Simulator(build_model(bundle, fuel_cell_price=90.0), bundle)
        assert problem_digest(
            sim_a.problem_for_slot(0, HYBRID), "centralized"
        ) != problem_digest(sim_b.problem_for_slot(0, HYBRID), "centralized")

    def test_trace_change_invalidates(self):
        a = default_bundle(hours=4, seed=11)
        b = default_bundle(hours=4, seed=12)
        pa = Simulator(build_model(a), a).problem_for_slot(0, HYBRID)
        pb = Simulator(build_model(b), b).problem_for_slot(0, HYBRID)
        assert problem_digest(pa, "centralized") != problem_digest(
            pb, "centralized"
        )

    def test_slot_change_invalidates(self, problems):
        assert problem_digest(problems[0], "centralized") != problem_digest(
            problems[1], "centralized"
        )


class TestEngineWarmRuns:
    def test_warm_run_resolves_from_disk_bit_identically(
        self, problems, tmp_path
    ):
        cold = HorizonEngine("centralized", store=tmp_path)
        cold_outcomes = cold.run(problems)
        assert cold.last_summary.store_hits == 0
        assert cold.last_summary.store_misses == len(problems)

        warm = HorizonEngine("centralized", store=tmp_path)
        warm_outcomes = warm.run(problems)
        summary = warm.last_summary
        hit_rate = summary.store_hits / len(problems)
        assert hit_rate >= 0.9  # in practice 100%: nothing changed
        assert summary.store_hit_rate == pytest.approx(hit_rate)
        assert [o.result.ufc for o in warm_outcomes] == [
            o.result.ufc for o in cold_outcomes
        ]
        assert (
            warm_outcomes[0].result.allocation.lam
            == cold_outcomes[0].result.allocation.lam
        ).all()
        assert all(o.telemetry.store_hit for o in warm_outcomes)

    def test_partial_warm_run_solves_only_new_slots(
        self, small_model, small_bundle, problems, tmp_path
    ):
        HorizonEngine("centralized", store=tmp_path).run(problems[:8])
        sim = Simulator(small_model, small_bundle)
        extended = problems[:8] + [
            sim.problem_for_slot(t, FUEL_CELL) for t in range(4)
        ]
        engine = HorizonEngine("centralized", store=tmp_path)
        outcomes = engine.run(extended)
        assert engine.last_summary.store_hits == 8
        assert engine.last_summary.store_misses == 4
        assert [o.index for o in outcomes] == list(range(12))
        assert all(o.ok for o in outcomes)

    def test_store_path_accepted_as_string(self, problems, tmp_path):
        engine = HorizonEngine("centralized", store=str(tmp_path / "s"))
        engine.run(problems[:2])
        assert engine.store is not None and len(engine.store) == 2

    def test_solver_change_misses(self, problems, tmp_path):
        HorizonEngine("centralized", store=tmp_path).run(problems[:4])
        engine = HorizonEngine("proportional", store=tmp_path)
        engine.run(problems[:4])
        assert engine.last_summary.store_hits == 0
        assert engine.last_summary.store_misses == 4

    def test_certified_warm_run_recertifies(self, problems, tmp_path):
        HorizonEngine("centralized", store=tmp_path).run(problems[:4])
        engine = HorizonEngine("centralized", store=tmp_path, certify=True)
        outcomes = engine.run(problems[:4])
        assert engine.last_summary.store_hits == 4
        assert all(
            o.certificate is not None and o.certificate.ok for o in outcomes
        )


class TestQuarantineAndVerify:
    def test_corrupt_entry_is_quarantined_on_first_read(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "ab" + "1" * 62
        store.put(key, {"ufc": -2.0})
        store.path_for(key).write_bytes(b"\x80rotten")
        assert store.get(key) is None
        assert store.corrupt == 1
        # Moved aside, so the next probe is a plain (cheap) miss...
        assert not store.path_for(key).exists()
        assert (tmp_path / "corrupt" / f"{key}.pkl").exists()
        assert store.get(key) is None
        assert store.corrupt == 1  # not re-counted
        # ...and the key is writable again.
        store.put(key, {"ufc": -2.0})
        assert store.get(key) == {"ufc": -2.0}

    def test_verify_tallies_and_quarantines(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = [f"{i:02d}" + "0" * 62 for i in range(4)]
        for key in keys:
            store.put(key, key)
        store.path_for(keys[0]).write_bytes(b"\x80rotten")
        hits_before, misses_before = store.hits, store.misses
        tally = store.verify()
        assert tally == {"entries": 4, "ok": 3, "corrupt": 1}
        # An audit is not a lookup: the lifetime counters are untouched.
        assert (store.hits, store.misses) == (hits_before, misses_before)
        # The corrupt entry is gone from the rotation...
        assert (tmp_path / "corrupt" / f"{keys[0]}.pkl").exists()
        # ...so a re-audit is clean.
        assert store.verify() == {"entries": 3, "ok": 3, "corrupt": 0}

    def test_cli_store_verify(self, tmp_path, capsys):
        from repro.cli import main

        store = ResultStore(tmp_path)
        keys = [f"{i:02d}" + "0" * 62 for i in range(3)]
        for key in keys:
            store.put(key, key)
        assert main(["store", "verify", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "corrupt" in out

        store.path_for(keys[1]).write_bytes(b"\x80rotten")
        assert main(["store", "verify", str(tmp_path)]) == 1

    def test_cli_store_verify_json(self, tmp_path, capsys):
        import json

        from repro.cli import main

        ResultStore(tmp_path).put("cd" + "2" * 62, 1)
        assert main(["store", "verify", str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 1
        assert payload["corrupt"] == 0
