"""Regenerate tests/data/golden_values.json after an *intentional*
behavior change.

Run from the repository root::

    python tests/data/make_golden.py

and commit the refreshed file together with the change that motivated
it.  The regression test (tests/test_golden.py) compares against these
anchors with tight tolerances, so unintentional drift in the trace
generators, solvers or metrics fails loudly.
"""

from __future__ import annotations

import json
from pathlib import Path

HOURS = 48
SEED = 2014


def build_golden() -> dict:
    """Compute the anchor values on the fixed 48-hour window."""
    from repro.experiments.common import cached_comparison
    from repro.experiments.table1 import run_table1
    from repro.traces.datasets import default_bundle

    t1 = run_table1()
    comp = cached_comparison(hours=HOURS, seed=SEED)
    bundle = default_bundle(hours=HOURS, seed=SEED)
    return {
        "meta": {
            "hours": HOURS,
            "seed": SEED,
            "description": "Deterministic regression anchors; regenerate "
            "with tests/data/make_golden.py",
        },
        "table1": {
            site: {k: round(v, 4) for k, v in row.items()}
            for site, row in t1.costs.items()
        },
        "price_means": {
            r: round(float(bundle.prices[:, k].mean()), 6)
            for k, r in enumerate(bundle.regions)
        },
        "carbon_means": {
            r: round(float(bundle.carbon_rates[:, k].mean()), 6)
            for k, r in enumerate(bundle.regions)
        },
        "workload_total_mean": round(
            float(bundle.arrivals.sum(axis=1).mean()), 4
        ),
        "hybrid": {
            "mean_ufc": round(float(comp.hybrid.ufc.mean()), 4),
            "total_energy_cost": round(comp.hybrid.total_energy_cost(), 4),
            "total_carbon_tonnes": round(comp.hybrid.total_carbon_tonnes(), 6),
            "mean_latency_ms": round(
                float(comp.hybrid.avg_latency_ms.mean()), 6
            ),
            "mean_utilization": round(comp.hybrid.mean_utilization(), 8),
        },
        "grid": {
            "mean_ufc": round(float(comp.grid.ufc.mean()), 4),
            "total_energy_cost": round(comp.grid.total_energy_cost(), 4),
        },
        "fuel_cell": {
            "mean_ufc": round(float(comp.fuel_cell.ufc.mean()), 4),
            "total_energy_cost": round(comp.fuel_cell.total_energy_cost(), 4),
        },
    }


if __name__ == "__main__":
    path = Path(__file__).parent / "golden_values.json"
    path.write_text(json.dumps(build_golden(), indent=2) + "\n")
    print(f"wrote {path}")
