"""Tests for the centralized solver, power split and feasibility repair."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.centralized import CentralizedSolver, optimal_power_split
from repro.core.problem import SlotInputs, UFCProblem
from repro.core.repair import polish_allocation, repair_routing
from repro.core.strategies import FUEL_CELL, GRID, HYBRID
from repro.costs.carbon import QuadraticEmissionCost, SteppedCarbonTax


class TestOptimalPowerSplit:
    def test_bang_bang_cheap_grid(self, tiny_model, tiny_inputs):
        """Grid at 60/30 + carbon < p0=80 everywhere: no fuel cells."""
        loads = np.array([500.0, 1000.0])
        mu, nu = optimal_power_split(tiny_model, tiny_inputs, loads)
        np.testing.assert_allclose(mu, 0.0)
        demand = tiny_model.alphas + tiny_model.betas * loads
        np.testing.assert_allclose(nu, demand)

    def test_bang_bang_dear_grid(self, tiny_model):
        inputs = SlotInputs(
            arrivals=np.array([400.0, 600.0, 500.0]),
            prices=np.array([300.0, 300.0]),
            carbon_rates=np.array([0.0, 0.0]),
        )
        loads = np.array([500.0, 1000.0])
        mu, nu = optimal_power_split(tiny_model, inputs, loads)
        demand = tiny_model.alphas + tiny_model.betas * loads
        np.testing.assert_allclose(mu, demand)
        np.testing.assert_allclose(nu, 0.0)

    def test_carbon_tax_tips_the_balance(self, tiny_model):
        """Grid at 75 < p0=80, but 300 kg/MWh taxed at $25/t adds 7.5."""
        inputs = SlotInputs(
            arrivals=np.array([400.0, 600.0, 500.0]),
            prices=np.array([75.0, 75.0]),
            carbon_rates=np.array([300.0, 0.0]),
        )
        loads = np.array([500.0, 1000.0])
        mu, nu = optimal_power_split(tiny_model, inputs, loads)
        demand = tiny_model.alphas + tiny_model.betas * loads
        np.testing.assert_allclose(mu[0], demand[0])  # 75+7.5 > 80: burn
        np.testing.assert_allclose(mu[1], 0.0)        # 75 < 80: buy

    def test_grid_strategy_forces_nu(self, tiny_model, tiny_inputs):
        loads = np.array([500.0, 1000.0])
        mu, nu = optimal_power_split(tiny_model, tiny_inputs, loads, strategy=GRID)
        np.testing.assert_allclose(mu, 0.0)

    def test_fuel_cell_strategy_forces_mu(self, tiny_model, tiny_inputs):
        loads = np.array([500.0, 1000.0])
        mu, nu = optimal_power_split(
            tiny_model, tiny_inputs, loads, strategy=FUEL_CELL
        )
        np.testing.assert_allclose(nu, 0.0)
        demand = tiny_model.alphas + tiny_model.betas * loads
        np.testing.assert_allclose(mu, demand)

    def test_fuel_cell_strategy_infeasible_demand(self, tiny_model, tiny_inputs):
        small_fc = tiny_model.with_fuel_cell_price(80.0)
        # Shrink fuel-cell capacity below idle demand.
        from repro.core.model import CloudModel, Datacenter

        dcs = [
            Datacenter(name=d.name, servers=d.servers, power=d.power,
                       fuel_cell_capacity_mw=0.01)
            for d in small_fc.datacenters
        ]
        model = CloudModel(
            dcs, small_fc.frontends, small_fc.latency_ms,
            emission_costs=small_fc.emission_costs,
        )
        with pytest.raises(ValueError):
            optimal_power_split(
                model, tiny_inputs, np.array([500.0, 500.0]), strategy=FUEL_CELL
            )

    def test_quadratic_emission_cost_interior_split(self, tiny_model, tiny_inputs):
        """Strongly convex V makes the optimal split interior, matching
        a grid search."""
        model = tiny_model.with_emission_costs(
            QuadraticEmissionCost(rate_per_tonne=0.0, quad_per_kg2=5e-3)
        )
        inputs = SlotInputs(
            arrivals=tiny_inputs.arrivals,
            prices=np.array([60.0, 30.0]),
            carbon_rates=np.array([300.0, 600.0]),
        )
        loads = np.array([500.0, 800.0])
        mu, nu = optimal_power_split(model, inputs, loads)
        demand = model.alphas + model.betas * loads
        np.testing.assert_allclose(mu + nu, demand, atol=1e-9)
        for j in range(2):
            v = model.emission_costs[j]
            c, p = inputs.carbon_rates[j], inputs.prices[j]

            def cost(m, j=j, d=demand[j], v=v, c=c, p=p):
                return 80.0 * m + p * (d - m) + v.cost(c * (d - m))

            grid_best = min(cost(m) for m in np.linspace(0, demand[j], 2000))
            assert cost(mu[j]) <= grid_best + 1e-6

    def test_loads_shape_validated(self, tiny_model, tiny_inputs):
        with pytest.raises(ValueError):
            optimal_power_split(tiny_model, tiny_inputs, np.array([1.0]))


class TestRepairRouting:
    def test_noop_on_feasible_routing(self):
        lam = np.array([[1.0, 2.0], [0.5, 0.5]])
        out = repair_routing(lam, np.array([3.0, 1.0]), np.array([5.0, 5.0]))
        np.testing.assert_allclose(out, lam)

    def test_restores_row_sums(self):
        lam = np.array([[1.0, 1.0]])  # row sum 2, arrival 4
        out = repair_routing(lam, np.array([4.0]), np.array([10.0, 10.0]))
        assert out.sum() == pytest.approx(4.0)

    def test_moves_overflow_to_slack(self):
        lam = np.array([[6.0, 0.0], [6.0, 0.0]])
        out = repair_routing(lam, np.array([6.0, 6.0]), np.array([8.0, 10.0]))
        load = out.sum(axis=0)
        assert load[0] <= 8.0 + 1e-9
        np.testing.assert_allclose(out.sum(axis=1), [6.0, 6.0])

    def test_infeasible_total_rejected(self):
        with pytest.raises(ValueError):
            repair_routing(np.ones((1, 1)), np.array([10.0]), np.array([5.0]))

    @given(
        seed=st.integers(0, 500),
        m=st.integers(1, 6),
        n=st.integers(1, 4),
    )
    @settings(max_examples=100, deadline=None)
    def test_repair_always_feasible(self, seed, m, n):
        rng = np.random.default_rng(seed)
        capacities = rng.uniform(5, 20, size=n)
        arrivals = rng.uniform(0, capacities.sum() / m, size=m)
        lam = rng.uniform(0, 5, size=(m, n))
        out = repair_routing(lam, arrivals, capacities)
        assert (out >= -1e-12).all()
        np.testing.assert_allclose(out.sum(axis=1), arrivals, rtol=1e-8, atol=1e-8)
        assert (out.sum(axis=0) <= capacities * (1 + 1e-6) + 1e-9).all()


class TestPolishAllocation:
    def test_polish_produces_feasible_optimal_split(self, tiny_problem):
        lam = np.array([[500.0, -20.0], [580.0, 30.0], [100.0, 390.0]])
        alloc = polish_allocation(
            tiny_problem.model, tiny_problem.inputs, lam, strategy=HYBRID
        )
        report = tiny_problem.check_feasibility(alloc, tol=1e-7)
        assert report.ok

    def test_polish_never_hurts_relative_to_split(self, tiny_problem):
        """Polished (mu, nu) is the optimal split for the fixed routing:
        any other feasible split costs at least as much."""
        lam = np.tile(tiny_problem.inputs.arrivals[:, None] / 2.0, (1, 2))
        alloc = polish_allocation(tiny_problem.model, tiny_problem.inputs, lam)
        demand = tiny_problem.demand_mw(alloc)
        rng = np.random.default_rng(0)
        base_cost = tiny_problem.energy_cost(alloc) + tiny_problem.carbon_cost(alloc)
        for _ in range(25):
            frac = rng.random(2)
            mu = np.minimum(frac * demand, tiny_problem.model.mu_max)
            from repro.core.solution import Allocation

            other = Allocation(lam=alloc.lam, mu=mu, nu=demand - mu)
            other_cost = tiny_problem.energy_cost(other) + tiny_problem.carbon_cost(
                other
            )
            assert base_cost <= other_cost + 1e-8


class TestCentralizedSolver:
    def test_tiny_problem_optimum_beats_heuristics(self, tiny_problem):
        res = CentralizedSolver().solve(tiny_problem)
        assert res.converged
        # Compare against proportional routing + optimal split.
        weights = tiny_problem.model.capacities / tiny_problem.model.capacities.sum()
        lam = np.outer(tiny_problem.inputs.arrivals, weights)
        heuristic = polish_allocation(tiny_problem.model, tiny_problem.inputs, lam)
        assert res.ufc >= tiny_problem.ufc(heuristic) - 1e-6

    def test_stepped_tax_solved_via_epigraph(self, tiny_model, tiny_inputs):
        model = tiny_model.with_emission_costs(
            SteppedCarbonTax([0.0, 50.0], [10.0, 200.0])
        )
        problem = UFCProblem(model, tiny_inputs)
        res = CentralizedSolver().solve(problem)
        assert res.converged
        assert problem.check_feasibility(res.allocation, tol=1e-5).ok

    def test_non_qp_cost_raises(self, tiny_model, tiny_inputs):
        from repro.costs.carbon import EmissionCostFunction

        class WeirdCost(EmissionCostFunction):
            def cost(self, e):
                return float(np.expm1(max(e, 0.0) * 1e-4))

            def prox_nu(self, c_rate, linear, d, rho):
                from repro.optim.scalar import prox_nonneg

                return prox_nonneg(
                    lambda x: self.cost(c_rate * x) + linear * x, d, rho
                )

        model = tiny_model.with_emission_costs(WeirdCost())
        problem = UFCProblem(model, tiny_inputs)
        with pytest.raises(NotImplementedError):
            CentralizedSolver().solve(problem)
