"""Tests for the paper's optional extensions (repro.extensions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.strategies import HYBRID
from repro.extensions.forecast_robustness import evaluate_forecast_robustness
from repro.extensions.ramping import RampingSimulator
from repro.extensions.rightsizing import right_sized_model
from repro.forecast.predictors import NoisyOracle, SeasonalNaive
from repro.sim.simulator import Simulator


class TestRightSizing:
    def test_transformation_zeroes_idle_power(self, small_model):
        sized = right_sized_model(small_model)
        np.testing.assert_allclose(sized.alphas, 0.0)
        # Marginal power becomes P_peak * PUE.
        for dc in sized.datacenters:
            assert dc.beta_mw == pytest.approx(
                dc.power.peak_watts * dc.power.pue / 1e6
            )

    def test_capacity_and_fuel_cells_preserved(self, small_model):
        sized = right_sized_model(small_model)
        np.testing.assert_allclose(sized.capacities, small_model.capacities)
        np.testing.assert_allclose(sized.mu_max, small_model.mu_max)

    def test_max_servers_becomes_capacity(self, tiny_model):
        from repro.core.model import CloudModel, Datacenter

        dcs = [
            Datacenter(name="a", servers=100, max_servers=400),
            Datacenter(name="b", servers=200, max_servers=200),
        ]
        model = CloudModel(dcs, tiny_model.frontends, tiny_model.latency_ms)
        sized = right_sized_model(model)
        np.testing.assert_allclose(sized.capacities, [400, 200])

    def test_right_sizing_never_hurts(self, small_model, small_bundle):
        """Shutting idle servers can only reduce cost at equal load."""
        sized = right_sized_model(small_model)
        full = Simulator(small_model, small_bundle).run(HYBRID, hours=6)
        slim = Simulator(sized, small_bundle).run(HYBRID, hours=6)
        assert (slim.ufc >= full.ufc - 1e-6).all()
        assert slim.total_energy_cost() < full.total_energy_cost()

    def test_demand_equivalence_at_full_load(self, small_model, small_bundle):
        """At 100% per-server load the two models draw identical power."""
        sized = right_sized_model(small_model)
        for dc_full, dc_sized in zip(small_model.datacenters, sized.datacenters):
            full_power = dc_full.power.demand_mw(dc_full.servers, dc_full.servers)
            sized_power = dc_sized.power.demand_mw(dc_sized.servers, dc_sized.servers)
            assert full_power == pytest.approx(sized_power)


class TestRamping:
    def test_validation(self, small_model, small_bundle):
        with pytest.raises(ValueError):
            RampingSimulator(small_model, small_bundle, ramp_mw_per_hour=-1.0)

    def test_infinite_ramp_matches_unconstrained(self, small_model, small_bundle):
        ramped = RampingSimulator(
            small_model, small_bundle, ramp_mw_per_hour=np.inf,
            initial_mu_mw=small_model.mu_max,
        ).run(HYBRID, hours=8)
        plain = Simulator(small_model, small_bundle).run(HYBRID, hours=8)
        np.testing.assert_allclose(ramped.result.ufc, plain.ufc, rtol=1e-6)
        assert ramped.ramp_binding_slots == 0

    def test_trajectory_respects_ramp(self, small_model, small_bundle):
        ramp = 0.5
        res = RampingSimulator(
            small_model, small_bundle, ramp_mw_per_hour=ramp
        ).run(HYBRID, hours=12)
        mu = res.mu_trajectory
        diffs = np.diff(mu, axis=0)
        assert (diffs <= ramp + 1e-9).all()
        # First slot bounded by the cold start.
        assert (mu[0] <= ramp + 1e-9).all()

    def test_tighter_ramp_cannot_help(self, small_model, small_bundle):
        loose = RampingSimulator(
            small_model, small_bundle, ramp_mw_per_hour=2.0
        ).run(HYBRID, hours=10)
        tight = RampingSimulator(
            small_model, small_bundle, ramp_mw_per_hour=0.1
        ).run(HYBRID, hours=10)
        assert tight.result.ufc.sum() <= loose.result.ufc.sum() + 1e-6
        assert (
            tight.result.mean_utilization() <= loose.result.mean_utilization() + 1e-9
        )

    def test_per_site_ramp_vector(self, small_model, small_bundle):
        ramps = np.array([0.1, 0.2, 0.3, 0.4])
        res = RampingSimulator(
            small_model, small_bundle, ramp_mw_per_hour=ramps
        ).run(HYBRID, hours=6)
        diffs = np.diff(res.mu_trajectory, axis=0)
        assert (diffs <= ramps + 1e-9).all()


class TestForecastRobustness:
    def test_perfect_forecast_no_degradation(self, small_model, small_bundle):
        class PerColumnOracle:
            """Zero-noise oracle valid for any column (uses the truth
            matrix directly via the history length)."""

            def __init__(self, arrivals):
                self.arrivals = arrivals

            def predict(self, history):
                t = len(history)
                # Identify the column by matching the history prefix.
                for j in range(self.arrivals.shape[1]):
                    if np.array_equal(self.arrivals[:t, j], history):
                        return float(self.arrivals[t, j])
                raise AssertionError("unknown history")

        result = evaluate_forecast_robustness(
            small_model,
            small_bundle,
            PerColumnOracle(small_bundle.arrivals),
            start=4,
            hours=10,
        )
        assert result.forecast_mape == pytest.approx(0.0, abs=1e-12)
        np.testing.assert_allclose(
            result.ufc_forecast, result.ufc_perfect, rtol=1e-6
        )
        assert abs(result.mean_degradation) < 1e-6

    def test_seasonal_naive_small_degradation(self, small_model, small_bundle):
        result = evaluate_forecast_robustness(
            small_model, small_bundle, SeasonalNaive(), start=12, hours=20
        )
        assert result.forecast_mape < 0.5
        # Forecast-driven operation can only lose UFC, and not much.
        assert -1e-9 <= result.mean_degradation < 0.10

    def test_degradation_grows_with_noise(self, small_model, small_bundle):
        degradations = []
        for sigma in (0.0, 0.4):
            # One oracle per run; noise applied per prediction call.
            class MatrixNoisyOracle:
                def __init__(self, arrivals, sigma, seed=1):
                    self.arrivals = arrivals
                    self.rng = np.random.default_rng(seed)
                    self.sigma = sigma

                def predict(self, history):
                    t = len(history)
                    for j in range(self.arrivals.shape[1]):
                        if np.array_equal(self.arrivals[:t, j], history):
                            truth = float(self.arrivals[t, j])
                            return max(
                                0.0,
                                truth * (1 + self.rng.normal(0, self.sigma)),
                            )
                    raise AssertionError("unknown history")

            result = evaluate_forecast_robustness(
                small_model,
                small_bundle,
                MatrixNoisyOracle(small_bundle.arrivals, sigma),
                start=4,
                hours=14,
            )
            degradations.append(result.mean_degradation)
        assert degradations[1] > degradations[0]

    def test_start_validation(self, small_model, small_bundle):
        with pytest.raises(ValueError):
            evaluate_forecast_robustness(
                small_model, small_bundle, SeasonalNaive(), start=50, hours=24
            )

    def test_noisy_oracle_basics(self):
        truth = np.array([1.0, 2.0, 3.0])
        oracle = NoisyOracle(truth, relative_sigma=0.0)
        assert oracle.predict(truth[:1]) == pytest.approx(2.0)
        with pytest.raises(IndexError):
            oracle.predict(truth)
        with pytest.raises(ValueError):
            NoisyOracle(truth, relative_sigma=-0.1)
