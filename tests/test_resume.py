"""Crash-safe resume tests (repro.sim.resume).

A killed run leaves a torn ``.part`` ledger plus a result store with
every completed slot's answer.  ``resume_run`` must finish the run
without re-solving the completed slots (they resolve from the store),
tolerate torn trailing lines and missing summary footers, degrade a
vanished or corrupt store entry to a re-solve (never a crash), and
refuse runs that cannot be resumed faithfully.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.strategies import HYBRID
from repro.obs.ledger import load_run
from repro.sim import resume_run
from repro.sim.simulator import Simulator

SLOTS = 24
COMPLETED = 10  # slot records the fabricated torn ledger keeps


@pytest.fixture(scope="module")
def finished(small_model, small_bundle, tmp_path_factory):
    """One finished, store-backed, ledger-recorded 24-slot run."""
    base = tmp_path_factory.mktemp("resume-src")
    store = base / "store"
    ledgers = base / "ledgers"
    sim = Simulator(
        small_model,
        small_bundle,
        solver="centralized",
        store=str(store),
        ledger=str(ledgers),
    )
    sim.run(HYBRID)
    (path,) = ledgers.glob("*.jsonl")
    return {"store": store, "run": load_run(path), "lines": path.read_text()}


def _fabricate_torn_part(finished, target_dir):
    """An interrupted-run ledger: header, 10 slot records, torn line.

    Exactly what ``kill -9`` leaves behind — every flushed record is
    intact, the in-flight write is torn mid-line, and there is no
    summary footer.
    """
    lines = finished["lines"].splitlines()
    header, slots = lines[0], [
        line for line in lines[1:] if json.loads(line).get("kind") == "slot"
    ]
    target_dir.mkdir(parents=True, exist_ok=True)
    part = target_dir / f"{finished['run'].run_id}.jsonl.part"
    torn = '{"kind": "slot", "index": 10, "ok": tr'
    part.write_text("\n".join([header, *slots[:COMPLETED], torn]) + "\n")
    return part


class TestResume:
    def test_torn_part_resumes_from_store_without_resolving(
        self, finished, tmp_path
    ):
        _fabricate_torn_part(finished, tmp_path)
        report = resume_run(
            finished["run"].run_id, tmp_path, store=finished["store"]
        )
        assert report.ok
        assert report.resumed_from == finished["run"].run_id
        assert report.run_id == f"{finished['run'].run_id}-r1"
        assert report.completed_before == COMPLETED
        assert report.slots_total == SLOTS
        assert report.failed_slots == 0
        # Every slot — completed-before *and* remainder — was already
        # in the store, so nothing re-solves: the per-slot outcomes are
        # the interrupted run's own persisted results, bit-identical.
        assert report.store_hits == SLOTS
        assert report.store_misses == 0

        run = load_run(report.ledger_path)
        assert run.finalized
        assert len(run.slots) == SLOTS
        assert all(s["ok"] for s in run.slots)
        assert all(s.get("store_hit") for s in run.slots)
        assert run.header["context"]["resumed_from"] == finished["run"].run_id

    def test_resume_ids_increment(self, finished, tmp_path):
        _fabricate_torn_part(finished, tmp_path)
        first = resume_run(
            finished["run"].run_id, tmp_path, store=finished["store"]
        )
        _fabricate_torn_part(finished, tmp_path)
        second = resume_run(
            finished["run"].run_id, tmp_path, store=finished["store"]
        )
        assert first.run_id.endswith("-r1")
        assert second.run_id.endswith("-r2")

    def test_vanished_store_entry_re_solves_not_crashes(
        self, finished, tmp_path
    ):
        _fabricate_torn_part(finished, tmp_path)
        store_copy = tmp_path / "store"
        store_copy.mkdir()
        entries = []
        for path in finished["store"].glob("??/*.pkl"):
            dest = store_copy / path.parent.name / path.name
            dest.parent.mkdir(exist_ok=True)
            dest.write_bytes(path.read_bytes())
            entries.append(dest)
        assert len(entries) == SLOTS
        entries[0].unlink()  # one completed slot's result vanished

        report = resume_run(
            finished["run"].run_id, tmp_path, store=store_copy
        )
        assert report.ok
        assert report.failed_slots == 0
        assert report.store_hits == SLOTS - 1
        assert report.store_misses == 1  # degraded to one re-solve

    def test_corrupt_store_entry_is_quarantined_and_re_solved(
        self, finished, tmp_path
    ):
        _fabricate_torn_part(finished, tmp_path)
        store_copy = tmp_path / "store"
        store_copy.mkdir()
        for path in finished["store"].glob("??/*.pkl"):
            dest = store_copy / path.parent.name / path.name
            dest.parent.mkdir(exist_ok=True)
            dest.write_bytes(path.read_bytes())
        victim = next(iter(store_copy.glob("??/*.pkl")))
        victim.write_bytes(b"\x80corrupt")

        report = resume_run(
            finished["run"].run_id, tmp_path, store=store_copy
        )
        assert report.ok
        assert report.store_hits == SLOTS - 1
        # The bad bytes were moved aside for the post-mortem, and the
        # re-solve wrote a fresh valid entry under the same key.
        assert (store_copy / "corrupt" / victim.name).exists()
        assert victim.exists()
        assert victim.read_bytes() != b"\x80corrupt"

    def test_finalized_run_is_refused(self, finished):
        with pytest.raises(ValueError, match="already finalized"):
            resume_run(
                finished["run"].run_id, finished["run"].path.parent
            )

    def test_missing_recipe_is_refused(self, tmp_path):
        part = tmp_path / "bare-run.jsonl.part"
        part.write_text(
            json.dumps(
                {"kind": "header", "version": 1, "run_id": "bare-run"}
            )
            + "\n"
        )
        with pytest.raises(ValueError, match="no resume recipe"):
            resume_run("bare-run", tmp_path)

    def test_unknown_strategy_is_refused(self, finished, tmp_path):
        lines = finished["lines"].splitlines()
        header = json.loads(lines[0])
        header["context"]["strategies"] = ["Antigravity"]
        part = tmp_path / f"{header['run_id']}.jsonl.part"
        part.write_text(json.dumps(header) + "\n")
        with pytest.raises(ValueError, match="unknown strategy"):
            resume_run(header["run_id"], tmp_path)


class TestResumeCli:
    def test_cli_round_trip(self, finished, tmp_path, capsys):
        _fabricate_torn_part(finished, tmp_path)
        rc = main(
            [
                "resume",
                finished["run"].run_id,
                "--ledger-dir",
                str(tmp_path),
                "--store",
                str(finished["store"]),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "completed before crash : 10/24 slots" in out
        assert "failed slots" in out

    def test_cli_unknown_run_is_a_clean_error(self, tmp_path, capsys):
        rc = main(["resume", "no-such-run", "--ledger-dir", str(tmp_path)])
        assert rc == 2
        assert "no-such-run" in capsys.readouterr().err
