"""Tests for repro.optim.simplex: projections and simplex QPs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.optim.simplex import minimize_qp_simplex, project_box, project_simplex

finite_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


def vectors(min_size=1, max_size=12):
    return hnp.arrays(
        dtype=float,
        shape=st.integers(min_size, max_size),
        elements=finite_floats,
    )


class TestProjectSimplex:
    def test_already_on_simplex_is_fixed_point(self):
        v = np.array([0.2, 0.3, 0.5])
        np.testing.assert_allclose(project_simplex(v, 1.0), v, atol=1e-12)

    def test_single_element(self):
        np.testing.assert_allclose(project_simplex(np.array([-5.0]), 3.0), [3.0])

    def test_uniform_from_symmetric_input(self):
        out = project_simplex(np.zeros(4), 2.0)
        np.testing.assert_allclose(out, np.full(4, 0.5))

    def test_dominant_coordinate_takes_all(self):
        out = project_simplex(np.array([100.0, 0.0, 0.0]), 1.0)
        np.testing.assert_allclose(out, [1.0, 0.0, 0.0])

    def test_total_zero_returns_zero(self):
        out = project_simplex(np.array([3.0, -1.0]), 0.0)
        np.testing.assert_allclose(out, [0.0, 0.0])

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            project_simplex(np.array([1.0]), -1.0)

    def test_3d_input_rejected(self):
        with pytest.raises(ValueError):
            project_simplex(np.zeros((2, 2, 2)), 1.0)

    def test_2d_negative_total_rejected(self):
        with pytest.raises(ValueError):
            project_simplex(np.zeros((2, 3)), np.array([1.0, -1.0]))

    def test_2d_rows_match_scalar_calls(self):
        v = np.array([[0.9, -0.2, 0.4], [100.0, 0.0, 0.0], [3.0, -1.0, 0.5]])
        totals = np.array([1.0, 1.0, 0.0])
        out = project_simplex(v, totals)
        for r in range(v.shape[0]):
            assert np.array_equal(out[r], project_simplex(v[r], totals[r]))

    def test_2d_scalar_total_broadcasts(self):
        v = np.array([[0.2, 0.3], [5.0, -5.0]])
        out = project_simplex(v, 2.0)
        for r in range(v.shape[0]):
            assert np.array_equal(out[r], project_simplex(v[r], 2.0))

    @given(
        v=hnp.arrays(
            dtype=float,
            shape=st.tuples(st.integers(1, 8), st.integers(1, 10)),
            elements=finite_floats,
        ),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=100, deadline=None)
    def test_2d_rows_bit_identical_to_scalar(self, v, seed):
        """Every batched row reproduces the 1-D algorithm exactly."""
        rng = np.random.default_rng(seed)
        totals = rng.uniform(0.0, 20.0, size=v.shape[0])
        out = project_simplex(v, totals)
        assert out.shape == v.shape
        for r in range(v.shape[0]):
            assert np.array_equal(out[r], project_simplex(v[r], totals[r]))

    @given(v=vectors(), total=st.floats(min_value=0.0, max_value=50.0))
    @settings(max_examples=150, deadline=None)
    def test_output_is_feasible(self, v, total):
        x = project_simplex(v, total)
        assert (x >= -1e-12).all()
        assert x.sum() == pytest.approx(total, abs=1e-8 * max(1.0, total))

    @given(v=vectors(min_size=2), total=st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=100, deadline=None)
    def test_projection_is_closest_feasible_point(self, v, total):
        """No random feasible point may be closer than the projection."""
        x = project_simplex(v, total)
        rng = np.random.default_rng(0)
        for _ in range(20):
            w = rng.random(len(v))
            y = total * w / w.sum()
            assert np.sum((x - v) ** 2) <= np.sum((y - v) ** 2) + 1e-9

    @given(v=vectors(), shift=finite_floats)
    @settings(max_examples=100, deadline=None)
    def test_shift_invariance(self, v, shift):
        """Projection onto a sum-constrained set ignores uniform shifts."""
        a = project_simplex(v, 1.0)
        b = project_simplex(v + shift, 1.0)
        np.testing.assert_allclose(a, b, atol=1e-8)


class TestProjectBox:
    def test_inside_unchanged(self):
        np.testing.assert_allclose(project_box(np.array([0.5]), 0.0, 1.0), [0.5])

    def test_clips_both_sides(self):
        out = project_box(np.array([-1.0, 2.0]), 0.0, 1.0)
        np.testing.assert_allclose(out, [0.0, 1.0])

    def test_vector_bounds(self):
        out = project_box(np.array([5.0, 5.0]), np.array([0.0, 6.0]), np.array([4.0, 9.0]))
        np.testing.assert_allclose(out, [4.0, 6.0])

    def test_2d_batch_matches_rowwise(self):
        v = np.array([[-1.0, 2.0], [0.5, 0.5], [9.0, -9.0]])
        out = project_box(v, 0.0, 1.0)
        for r in range(v.shape[0]):
            assert np.array_equal(out[r], project_box(v[r], 0.0, 1.0))

    def test_2d_broadcast_column_bounds(self):
        v = np.array([[5.0, 5.0], [-5.0, -5.0]])
        out = project_box(v, np.array([0.0, 6.0]), np.array([4.0, 9.0]))
        np.testing.assert_allclose(out, [[4.0, 6.0], [0.0, 6.0]])


def _brute_force_simplex_min(H, q, total, grid=60):
    """Dense grid search over the 2-simplex (for 2-3 dim checks)."""
    n = len(q)
    best, best_val = None, np.inf
    if n == 2:
        for t in np.linspace(0, total, grid + 1):
            x = np.array([t, total - t])
            val = 0.5 * x @ H @ x + q @ x
            if val < best_val:
                best, best_val = x, val
    else:
        for t1 in np.linspace(0, total, grid + 1):
            for t2 in np.linspace(0, total - t1, grid + 1):
                x = np.array([t1, t2, total - t1 - t2])
                val = 0.5 * x @ H @ x + q @ x
                if val < best_val:
                    best, best_val = x, val
    return best, best_val


class TestMinimizeQPSimplex:
    def test_projection_special_case(self):
        """With H = I and q = -v the QP is a Euclidean projection."""
        v = np.array([0.9, 0.2, -0.4, 0.5])
        res = minimize_qp_simplex(np.eye(4), -v, 1.0)
        np.testing.assert_allclose(res.x, project_simplex(v, 1.0), atol=1e-8)

    def test_matches_brute_force_2d(self):
        H = np.array([[2.0, 0.5], [0.5, 1.0]])
        q = np.array([-1.0, 0.3])
        res = minimize_qp_simplex(H, q, 2.0)
        _, best_val = _brute_force_simplex_min(H, q, 2.0, grid=2000)
        assert res.value <= best_val + 1e-6

    def test_matches_brute_force_3d(self):
        H = np.diag([1.0, 2.0, 3.0]) + 0.2
        q = np.array([0.5, -1.0, 0.1])
        res = minimize_qp_simplex(H, q, 1.0)
        _, best_val = _brute_force_simplex_min(H, q, 1.0, grid=120)
        assert res.value <= best_val + 1e-4

    def test_linear_objective_picks_cheapest_vertex(self):
        res = minimize_qp_simplex(np.zeros((3, 3)), np.array([3.0, 1.0, 2.0]), 5.0)
        np.testing.assert_allclose(res.x, [0.0, 5.0, 0.0], atol=1e-9)

    def test_total_zero(self):
        res = minimize_qp_simplex(np.eye(2), np.ones(2), 0.0)
        np.testing.assert_allclose(res.x, [0.0, 0.0])
        assert res.value == 0.0

    def test_rank_one_plus_diagonal_hessian(self):
        """The lambda-minimization structure: rho*I + c * l l^T."""
        l = np.array([0.01, 0.03, 0.02, 0.05])
        H = 0.3 * np.eye(4) + 40.0 * np.outer(l, l)
        q = np.array([0.1, -0.2, 0.0, 0.3])
        res = minimize_qp_simplex(H, q, 3.0)
        assert res.kkt_residual < 1e-7 * 3.0
        assert res.x.sum() == pytest.approx(3.0, abs=1e-8)

    def test_warm_start_agrees_with_cold(self):
        H = np.diag([1.0, 4.0, 2.0])
        q = np.array([0.0, -3.0, 1.0])
        cold = minimize_qp_simplex(H, q, 2.0)
        warm = minimize_qp_simplex(H, q, 2.0, x0=cold.x)
        np.testing.assert_allclose(warm.x, cold.x, atol=1e-7)
        assert warm.iterations == 0  # direct active-set hit

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            minimize_qp_simplex(np.eye(3), np.zeros(2), 1.0)

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            minimize_qp_simplex(np.eye(2), np.zeros(2), -1.0)

    @given(
        diag=hnp.arrays(
            dtype=float, shape=st.integers(2, 6),
            elements=st.floats(min_value=0.1, max_value=10.0),
        ),
        seed=st.integers(0, 1000),
        total=st.floats(min_value=0.1, max_value=20.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_kkt_conditions_hold(self, diag, seed, total):
        """Solutions satisfy stationarity/complementarity within tolerance."""
        n = len(diag)
        rng = np.random.default_rng(seed)
        low_rank = rng.normal(size=n)
        H = np.diag(diag) + np.outer(low_rank, low_rank)
        q = rng.normal(size=n) * 5
        res = minimize_qp_simplex(H, q, total)
        assert res.x.sum() == pytest.approx(total, rel=1e-6)
        assert (res.x >= -1e-10).all()
        g = H @ res.x + q
        support = res.x > 1e-8 * total
        assert support.any()
        theta = g[support].mean()
        # Stationarity on the support, dual feasibility off it.
        assert np.abs(g[support] - theta).max() < 1e-5 * max(1.0, np.abs(g).max())
        if (~support).any():
            assert (g[~support] >= theta - 1e-5 * max(1.0, np.abs(g).max())).all()

    @given(seed=st.integers(0, 500))
    @settings(max_examples=60, deadline=None)
    def test_never_worse_than_uniform_point(self, seed):
        rng = np.random.default_rng(seed)
        n = rng.integers(2, 8)
        a = rng.normal(size=(n, n))
        H = a @ a.T + 0.01 * np.eye(n)
        q = rng.normal(size=n)
        res = minimize_qp_simplex(H, q, 1.0)
        uniform = np.full(n, 1.0 / n)
        assert res.value <= 0.5 * uniform @ H @ uniform + q @ uniform + 1e-8
