"""End-to-end integration tests reproducing the paper's claims.

These exercise the full stack — traces -> model -> solvers ->
simulator -> metrics — on a 48-hour window and assert the qualitative
results of Sec. IV (the full-week versions live in ``benchmarks/``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CentralizedSolver,
    DistributedUFCSolver,
    GRID,
    HYBRID,
    Simulator,
    build_model,
    default_bundle,
)
from repro.distributed import DistributedRuntime
from repro.sim.metrics import improvement_series

HOURS = 48


@pytest.fixture(scope="module")
def comparison():
    bundle = default_bundle(hours=HOURS)
    model = build_model(bundle)
    return Simulator(model, bundle).compare_strategies()


class TestPaperClaims:
    def test_hybrid_dominates_everywhere(self, comparison):
        """Sec. IV-B insight 3: intelligent control never reduces UFC."""
        i_hg = improvement_series(comparison.hybrid.ufc, comparison.grid.ufc)
        i_hf = improvement_series(comparison.hybrid.ufc, comparison.fuel_cell.ufc)
        assert (i_hg > -1e-4).all()
        assert (i_hf > 0).all()

    def test_fuel_cell_only_reduces_utility_off_peak(self, comparison):
        """Sec. IV-B insight 1: relying on fuel cells alone hurts."""
        i_fg = improvement_series(comparison.fuel_cell.ufc, comparison.grid.ufc)
        assert i_fg.min() < -0.1
        assert (i_fg < 0).mean() > 0.5

    def test_load_following_latency(self, comparison):
        """Sec. IV-B insight 2 (Fig. 5): fuel cells enable load
        following; grid-only routing pays a latency premium."""
        assert (
            comparison.fuel_cell.avg_latency_ms.mean()
            <= comparison.hybrid.avg_latency_ms.mean() + 0.05
        )
        assert (
            comparison.hybrid.avg_latency_ms.mean()
            < comparison.grid.avg_latency_ms.mean()
        )

    def test_energy_cost_ordering(self, comparison):
        """Fig. 6: fuel-cell-only is dearest; hybrid arbitrage wins."""
        assert (
            comparison.hybrid.total_energy_cost()
            <= comparison.grid.total_energy_cost()
        )
        assert (
            comparison.grid.total_energy_cost()
            < comparison.fuel_cell.total_energy_cost()
        )

    def test_carbon_ordering(self, comparison):
        """Fig. 7: fuel cell zero carbon; hybrid near grid at $25/t."""
        assert comparison.fuel_cell.total_carbon_tonnes() == pytest.approx(0.0, abs=1e-6)
        ratio = (
            comparison.hybrid.total_carbon_tonnes()
            / comparison.grid.total_carbon_tonnes()
        )
        assert 0.5 < ratio <= 1.0

    def test_poor_utilization_at_market_prices(self, comparison):
        """Fig. 8: fuel cells are poorly utilized at p0=$80, tax=$25."""
        assert comparison.hybrid.mean_utilization() < 0.35


class TestSolverAgreementEndToEnd:
    def test_three_solvers_agree_on_one_slot(self):
        """Centralized IP, matrix ADM-G and message-passing agents all
        land on the same optimum."""
        bundle = default_bundle(hours=8)
        model = build_model(bundle)
        problem = Simulator(model, bundle).problem_for_slot(5, HYBRID)

        cent = CentralizedSolver().solve(problem)
        solver = DistributedUFCSolver(rho=0.3, tol=1e-3)
        matrix = solver.solve(problem)
        agents = DistributedRuntime(problem, solver).run()

        assert cent.converged and matrix.converged and agents.converged
        assert matrix.ufc == pytest.approx(cent.ufc, rel=1e-2)
        assert agents.ufc == pytest.approx(matrix.ufc, rel=1e-9)

    def test_weeklong_distributed_simulation(self):
        """A short distributed-solver simulation stays feasible and
        tracks the centralized UFC closely slot by slot."""
        bundle = default_bundle(hours=6)
        model = build_model(bundle)
        dist = Simulator(
            model, bundle, solver=DistributedUFCSolver(rho=0.3, tol=1e-3)
        ).run(HYBRID)
        cent = Simulator(model, bundle).run(HYBRID)
        assert dist.converged.all()
        np.testing.assert_allclose(dist.ufc, cent.ufc, rtol=1e-2)


class TestRightSizingRemark:
    def test_fewer_active_servers_reduce_idle_power(self):
        """The paper's Remark: with the right-sizing extension the
        operator can shut idle servers; fewer active servers strictly
        reduce idle (alpha) power and thus costs at equal load."""
        bundle = default_bundle(hours=4)
        model_full = build_model(bundle)

        from repro.core.model import CloudModel, Datacenter

        shrunk = [
            Datacenter(
                name=dc.name,
                servers=0.88 * dc.servers,
                power=dc.power,
                max_servers=dc.servers,
            )
            for dc in model_full.datacenters
        ]
        model_small = CloudModel(
            shrunk,
            model_full.frontends,
            model_full.latency_ms,
            emission_costs=model_full.emission_costs,
        )
        # The same workload fits in 88% of the servers on this bundle.
        assert bundle.arrivals.sum(axis=1).max() < model_small.capacities.sum()
        full = Simulator(model_full, bundle).run(GRID)
        small = Simulator(model_small, bundle).run(GRID)
        assert small.total_energy_cost() < full.total_energy_cost()


class TestDeterminism:
    def test_end_to_end_reproducibility(self):
        bundle_a = default_bundle(hours=6, seed=7)
        bundle_b = default_bundle(hours=6, seed=7)
        res_a = Simulator(build_model(bundle_a), bundle_a).run(HYBRID)
        res_b = Simulator(build_model(bundle_b), bundle_b).run(HYBRID)
        np.testing.assert_allclose(res_a.ufc, res_b.ufc, rtol=1e-12)
