"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import CloudModel, Datacenter, FrontEnd
from repro.core.problem import SlotInputs, UFCProblem
from repro.costs.carbon import LinearCarbonTax
from repro.costs.energy import ServerPowerModel
from repro.sim.simulator import build_model
from repro.traces.datasets import default_bundle


@pytest.fixture(scope="session")
def small_bundle():
    """A 24-hour default bundle (session-cached: generation is pure)."""
    return default_bundle(hours=24, seed=2014)


@pytest.fixture(scope="session")
def small_model(small_bundle):
    """The paper-default model over the small bundle."""
    return build_model(small_bundle)


@pytest.fixture()
def tiny_model():
    """A hand-sized cloud: 2 datacenters, 3 front-ends, exact numbers.

    alpha = [0.12, 0.24] MW, beta = 1.2e-4 MW/server,
    mu_max = [0.24, 0.48] MW, capacities = [1000, 2000].
    """
    power = ServerPowerModel(idle_watts=100, peak_watts=200, pue=1.2)
    dcs = [
        Datacenter(name="near", servers=1000, power=power),
        Datacenter(name="far", servers=2000, power=power),
    ]
    fes = [FrontEnd(name=f"fe{i}") for i in range(3)]
    latency = np.array([[5.0, 20.0], [10.0, 10.0], [25.0, 5.0]])
    return CloudModel(
        datacenters=dcs,
        frontends=fes,
        latency_ms=latency,
        fuel_cell_price=80.0,
        latency_weight=10.0,
        emission_costs=LinearCarbonTax(25.0),
    )


@pytest.fixture()
def tiny_inputs():
    """Matching inputs for ``tiny_model``: total load 1500 of 3000."""
    return SlotInputs(
        arrivals=np.array([400.0, 600.0, 500.0]),
        prices=np.array([60.0, 30.0]),
        carbon_rates=np.array([300.0, 600.0]),
    )


@pytest.fixture()
def tiny_problem(tiny_model, tiny_inputs):
    return UFCProblem(tiny_model, tiny_inputs)
