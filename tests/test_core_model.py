"""Tests for repro.core.model, solution and strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import CloudModel, Datacenter, FrontEnd
from repro.core.solution import Allocation
from repro.core.strategies import ALL_STRATEGIES, FUEL_CELL, GRID, HYBRID, Strategy
from repro.costs.carbon import LinearCarbonTax, NoEmissionCost


class TestDatacenter:
    def test_paper_sizing_rule(self):
        dc = Datacenter(name="x", servers=20_000)
        # mu_max defaults to peak demand: 20000 * 200W * 1.2.
        assert dc.mu_max_mw == pytest.approx(4.8)
        assert dc.alpha_mw == pytest.approx(2.4)
        assert dc.beta_mw == pytest.approx(1.2e-4)

    def test_explicit_fuel_cell_capacity(self):
        dc = Datacenter(name="x", servers=1000, fuel_cell_capacity_mw=0.1)
        assert dc.mu_max_mw == 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            Datacenter(name="x", servers=0)
        with pytest.raises(ValueError):
            Datacenter(name="x", servers=10, fuel_cell_capacity_mw=-1)
        with pytest.raises(ValueError):
            Datacenter(name="x", servers=10, max_servers=5)


class TestCloudModel:
    def _make(self, **kw):
        dcs = [Datacenter(name="a", servers=100), Datacenter(name="b", servers=200)]
        fes = [FrontEnd("f1"), FrontEnd("f2"), FrontEnd("f3")]
        latency = np.ones((3, 2))
        return CloudModel(dcs, fes, latency, **kw)

    def test_vector_properties(self):
        m = self._make()
        np.testing.assert_allclose(m.capacities, [100, 200])
        assert m.alphas.shape == (2,)
        assert m.mu_max.shape == (2,)
        assert m.num_datacenters == 2
        assert m.num_frontends == 3

    def test_default_emission_cost_broadcast(self):
        m = self._make()
        assert len(m.emission_costs) == 2
        assert all(isinstance(v, LinearCarbonTax) for v in m.emission_costs)

    def test_per_datacenter_emission_costs(self):
        m = self._make(emission_costs=[LinearCarbonTax(10.0), NoEmissionCost()])
        assert isinstance(m.emission_costs[1], NoEmissionCost)

    def test_emission_cost_count_mismatch(self):
        with pytest.raises(ValueError):
            self._make(emission_costs=[LinearCarbonTax(10.0)])

    def test_latency_shape_mismatch(self):
        dcs = [Datacenter(name="a", servers=100)]
        fes = [FrontEnd("f1")]
        with pytest.raises(ValueError):
            CloudModel(dcs, fes, np.ones((2, 2)))

    def test_negative_latency_rejected(self):
        dcs = [Datacenter(name="a", servers=100)]
        fes = [FrontEnd("f1")]
        with pytest.raises(ValueError):
            CloudModel(dcs, fes, np.array([[-1.0]]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CloudModel([], [FrontEnd("f")], np.ones((1, 0)))
        with pytest.raises(ValueError):
            CloudModel([Datacenter(name="a", servers=1)], [], np.ones((0, 1)))

    def test_invalid_prices_rejected(self):
        with pytest.raises(ValueError):
            self._make(fuel_cell_price=-1.0)
        with pytest.raises(ValueError):
            self._make(latency_weight=-1.0)

    def test_with_fuel_cell_price_copy(self):
        m = self._make()
        m2 = m.with_fuel_cell_price(55.0)
        assert m2.fuel_cell_price == 55.0
        assert m.fuel_cell_price == 80.0
        assert m2.datacenters is not None

    def test_with_emission_costs_copy(self):
        m = self._make()
        m2 = m.with_emission_costs(NoEmissionCost())
        assert isinstance(m2.emission_costs[0], NoEmissionCost)
        assert isinstance(m.emission_costs[0], LinearCarbonTax)


class TestStrategy:
    def test_canonical_strategies(self):
        assert GRID.effective_mu_max(np.array([5.0])).tolist() == [0.0]
        assert HYBRID.effective_mu_max(np.array([5.0])).tolist() == [5.0]
        assert FUEL_CELL.effective_mu_max(np.array([5.0])).tolist() == [5.0]
        assert not FUEL_CELL.nu_allowed
        assert GRID.nu_allowed and HYBRID.nu_allowed
        assert len(ALL_STRATEGIES) == 3

    def test_strategy_must_enable_a_source(self):
        with pytest.raises(ValueError):
            Strategy("nothing", fuel_cell_enabled=False, grid_enabled=False)


class TestAllocation:
    def test_datacenter_load(self):
        alloc = Allocation(
            lam=np.array([[1.0, 2.0], [3.0, 4.0]]),
            mu=np.zeros(2),
            nu=np.zeros(2),
        )
        np.testing.assert_allclose(alloc.datacenter_load(), [4.0, 6.0])
        assert alloc.num_frontends == 2
        assert alloc.num_datacenters == 2

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Allocation(lam=np.zeros(3), mu=np.zeros(1), nu=np.zeros(1))
        with pytest.raises(ValueError):
            Allocation(lam=np.zeros((2, 3)), mu=np.zeros(2), nu=np.zeros(3))

    def test_feasibility_clean_point(self):
        alloc = Allocation(
            lam=np.array([[2.0, 0.0]]),
            mu=np.array([0.0, 0.0]),
            nu=np.array([0.5, 0.2]),
        )
        report = alloc.check_feasibility(
            arrivals=np.array([2.0]),
            capacities=np.array([10.0, 10.0]),
            alphas=np.array([0.5, 0.2]),
            betas=np.array([0.0, 0.0]),
            mu_max=np.array([1.0, 1.0]),
        )
        assert report.ok
        assert report.max_violation() == pytest.approx(0.0)

    def test_feasibility_flags_violations(self):
        alloc = Allocation(
            lam=np.array([[5.0, 0.0]]),   # row sum 5 != arrival 2
            mu=np.array([2.0, 0.0]),      # exceeds mu_max 1
            nu=np.array([0.0, 0.0]),
        )
        report = alloc.check_feasibility(
            arrivals=np.array([2.0]),
            capacities=np.array([4.0, 10.0]),  # capacity violated too
            alphas=np.array([0.0, 0.0]),
            betas=np.array([0.0, 0.0]),
            mu_max=np.array([1.0, 1.0]),
        )
        assert not report.ok
        assert report.load_balance == pytest.approx(3.0)
        assert report.capacity == pytest.approx(1.0)
        assert report.bounds == pytest.approx(1.0)
        assert report.power_balance == pytest.approx(2.0)
