"""Socket/RPC client loopback smoke tests.

Spawns real worker processes that connect back over TCP, solves a
24-slot horizon through them, and checks bit-exact parity with the
serial engine — the same flow CI runs as its multi-node smoke.  Also
covers remote exception propagation, externally launched workers
(``serve_worker`` — what ``repro exec-worker`` calls), and clean
shutdown.
"""

from __future__ import annotations

import os
import socket as socket_module
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.cli import main
from repro.core.strategies import HYBRID
from repro.engine import HorizonEngine
from repro.exec import SocketClient, serve_worker
from repro.exec.store import problem_digest
from repro.obs import MetricsRegistry, SpanTracer
from repro.obs.ledger import load_run
from repro.sim.simulator import Simulator

SLOTS = 24


def _free_port() -> int:
    probe = socket_module.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


@pytest.fixture(scope="module")
def problems(small_model, small_bundle):
    sim = Simulator(small_model, small_bundle)
    return [sim.problem_for_slot(t, HYBRID) for t in range(SLOTS)]


def _square(x):
    return x * x


def _boom():
    raise RuntimeError("remote kaboom")


class TestSocketLoopback:
    def test_24_slot_horizon_matches_serial(self, problems):
        serial = [
            o.result.ufc for o in HorizonEngine("centralized").run(problems)
        ]
        client = SocketClient(workers=2)
        try:
            engine = HorizonEngine("centralized", client=client, max_pending=4)
            outcomes = engine.run(problems)
            assert [o.result.ufc for o in outcomes] == serial
            summary = engine.last_summary
            assert summary.executor == "socket"
            assert summary.client == "socket"
            assert summary.decision == "client:socket"
            assert summary.failed_slots == 0
        finally:
            client.close()

    def test_remote_exception_propagates_with_traceback_note(self):
        client = SocketClient(workers=1)
        try:
            client.submit(_boom)
            with pytest.raises(RuntimeError, match="remote kaboom") as info:
                client.wait_next()
            notes = getattr(info.value, "__notes__", [])
            assert any("remote worker traceback" in n for n in notes)
            # The worker survives a task failure and keeps serving.
            client.submit(_square, 6)
            assert client.wait_next()[1] == 36
        finally:
            client.close()

    def test_queueing_beyond_worker_count(self):
        client = SocketClient(workers=1)
        try:
            ids = [client.submit(_square, x) for x in range(5)]
            results = {}
            while client.num_pending():
                got = client.wait_next(timeout_s=10.0)
                assert got is not None
                results[got[0]] = got[1]
            assert [results[i] for i in ids] == [x * x for x in range(5)]
        finally:
            client.close()

    def test_close_is_idempotent_and_joins_workers(self):
        client = SocketClient(workers=2)
        procs = list(client._procs)
        client.close()
        client.close()
        assert all(not p.is_alive() for p in procs)


class TestExternalWorkers:
    def test_serve_worker_joins_an_external_fleet(self):
        # Pick a port up front so the worker thread can retry-connect
        # while the client's constructor blocks in accept().
        probe = socket_module.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        def worker():
            for _ in range(100):
                try:
                    serve_worker("127.0.0.1", port)
                    return
                except OSError:
                    time.sleep(0.05)

        thread = threading.Thread(target=worker, daemon=True)
        thread.start()
        client = SocketClient(
            workers=0, external=1, port=port, accept_timeout_s=10.0
        )
        try:
            assert client.workers == 1
            assert client.submit(_square, 7) is not None
            assert client.wait_next(timeout_s=10.0)[1] == 49
        finally:
            client.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()

    def test_fleet_timeout_raises(self):
        with pytest.raises(TimeoutError, match="workers connected"):
            SocketClient(workers=0, external=1, accept_timeout_s=0.2)

    def test_needs_at_least_one_worker(self):
        with pytest.raises(ValueError):
            SocketClient(workers=0, external=0)


class _KamikazeSolver:
    """Delegates to the centralized solver, but hard-kills its own
    process (``os._exit``, no cleanup, no result) on one poisoned slot
    — a deterministic stand-in for a worker machine dying mid-batch."""

    supports_warm_start = False
    name = "kamikaze"

    def __init__(self, die_digest: str) -> None:
        self.die_digest = die_digest

    def compile(self, model, strategy):
        return None

    def solve(self, problem, compiled=None, warm=None):
        if problem_digest(problem, self.name) == self.die_digest:
            os._exit(1)
        from repro.engine.registry import create_solver

        return create_solver("centralized").solve(problem)


class TestWorkerDeathTelemetry:
    def test_lost_batch_is_structured_and_survivor_telemetry_merges(
        self, problems, tmp_path
    ):
        # Chunks of 6 over 24 slots: the worker holding slots 6-11 dies
        # at slot 8.  The run must finish on the surviving worker, the
        # lost batch must come back as per-slot WorkerLostError
        # outcomes, and every completed slot's worker metrics and spans
        # must still merge into the parent.
        solver = _KamikazeSolver(problem_digest(problems[8], "kamikaze"))
        metrics = MetricsRegistry()
        tracer = SpanTracer()
        client = SocketClient(workers=2)
        try:
            engine = HorizonEngine(
                solver,
                client=client,
                chunk_size=6,
                metrics=metrics,
                tracer=tracer,
                ledger=tmp_path,
            )
            outcomes = engine.run(problems)
        finally:
            client.close()

        lost = [o for o in outcomes if o.error is not None]
        assert [o.index for o in lost] == list(range(6, 12))
        assert all(o.error_type == "WorkerLostError" for o in lost)
        assert all(o.result is None for o in lost)
        completed = [o for o in outcomes if o.error is None]
        assert len(completed) == 18
        assert all(o.worker_report is not None for o in completed)
        assert engine.last_summary.failed_slots == 6
        # The fleet shrank but kept serving.
        assert client.workers == 1

        # Merged worker metrics cover exactly the completed slots.
        slots_total = sum(
            value
            for name, _, value in metrics.samples()
            if name == "repro_worker_slots_total"
        )
        assert slots_total == 18
        assert len(tracer.by_name("worker.slot")) == 18

        # The ledger recorded the whole story, structured.
        run = load_run(engine.last_ledger_path)
        assert run.finalized
        assert len(run.slots) == SLOTS
        failed = run.failed
        assert sorted(s["index"] for s in failed) == list(range(6, 12))
        assert all(s["error_type"] == "WorkerLostError" for s in failed)


class TestWeekAcceptance:
    def test_week_over_external_workers_ledger_accounts_solve_wall(
        self, small_model, tmp_path
    ):
        # The PR's acceptance run: a 168-slot week through the socket
        # client backed by two external `repro exec-worker` processes.
        # The finalized ledger's merged worker metrics must account for
        # >= 90% of each worker's solve wall time, and `repro top
        # --replay` must render the run from the manifest alone.
        from repro.traces.datasets import default_bundle

        bundle = default_bundle(hours=168, seed=2014)
        sim = Simulator(small_model, bundle)
        problems = [sim.problem_for_slot(t, HYBRID) for t in range(168)]

        port = _free_port()
        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        # `repro exec-worker` connects once; retry until the parent's
        # listener is up (the SocketClient constructor blocks in accept).
        wrapper = (
            "import sys, time\n"
            "from repro.cli import main\n"
            "for _ in range(200):\n"
            f"    try:\n"
            f"        sys.exit(main(['exec-worker', '--connect', "
            f"'127.0.0.1:{port}']))\n"
            "    except OSError:\n"
            "        time.sleep(0.1)\n"
            "sys.exit(3)\n"
        )
        procs = [
            subprocess.Popen([sys.executable, "-c", wrapper], env=env)
            for _ in range(2)
        ]
        metrics = MetricsRegistry()
        client = SocketClient(
            workers=0, external=2, port=port, accept_timeout_s=60.0
        )
        try:
            engine = HorizonEngine(
                "centralized",
                client=client,
                chunk_size=7,
                max_pending=4,
                metrics=metrics,
                ledger=tmp_path,
            )
            outcomes = engine.run(problems)
        finally:
            client.close()
        for proc in procs:
            assert proc.wait(timeout=20.0) == 0

        assert len(outcomes) == 168
        assert engine.last_summary.failed_slots == 0
        run = load_run(engine.last_ledger_path)
        assert run.finalized
        assert len(run.slots) == 168

        # Per-worker accounting: merged `repro_worker_slot_solve_seconds`
        # sums vs the ledger's per-worker solve wall.
        merged: dict[str, float] = {}
        for name, labels, value in metrics.samples():
            if name == "repro_worker_slot_solve_seconds_sum":
                merged[dict(labels)["worker"]] = value
        ledger_wall: dict[str, float] = {}
        for slot in run.slots:
            worker = str(slot["worker"])
            ledger_wall[worker] = ledger_wall.get(worker, 0.0) + slot["wall_s"]
        assert len(ledger_wall) == 2, "both external workers solved slots"
        assert str(os.getpid()) not in ledger_wall
        for worker, wall in ledger_wall.items():
            assert merged.get(worker, 0.0) >= 0.9 * wall

        # The dashboard replays the run from the manifest alone.
        assert (
            main(
                [
                    "top",
                    run.run_id,
                    "--ledger-dir",
                    str(tmp_path),
                    "--replay",
                    "--frames",
                    "4",
                ]
            )
            == 0
        )


class TestExecWorkerCli:
    def test_bad_connect_spec_is_rejected(self, capsys):
        from repro.cli import main

        assert main(["exec-worker", "--connect", "nonsense"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err
