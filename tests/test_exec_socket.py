"""Socket/RPC client loopback smoke tests.

Spawns real worker processes that connect back over TCP, solves a
24-slot horizon through them, and checks bit-exact parity with the
serial engine — the same flow CI runs as its multi-node smoke.  Also
covers remote exception propagation, externally launched workers
(``serve_worker`` — what ``repro exec-worker`` calls), and clean
shutdown.
"""

from __future__ import annotations

import socket as socket_module
import threading
import time

import pytest

from repro.core.strategies import HYBRID
from repro.engine import HorizonEngine
from repro.exec import SocketClient, serve_worker
from repro.sim.simulator import Simulator

SLOTS = 24


@pytest.fixture(scope="module")
def problems(small_model, small_bundle):
    sim = Simulator(small_model, small_bundle)
    return [sim.problem_for_slot(t, HYBRID) for t in range(SLOTS)]


def _square(x):
    return x * x


def _boom():
    raise RuntimeError("remote kaboom")


class TestSocketLoopback:
    def test_24_slot_horizon_matches_serial(self, problems):
        serial = [
            o.result.ufc for o in HorizonEngine("centralized").run(problems)
        ]
        client = SocketClient(workers=2)
        try:
            engine = HorizonEngine("centralized", client=client, max_pending=4)
            outcomes = engine.run(problems)
            assert [o.result.ufc for o in outcomes] == serial
            summary = engine.last_summary
            assert summary.executor == "socket"
            assert summary.client == "socket"
            assert summary.decision == "client:socket"
            assert summary.failed_slots == 0
        finally:
            client.close()

    def test_remote_exception_propagates_with_traceback_note(self):
        client = SocketClient(workers=1)
        try:
            client.submit(_boom)
            with pytest.raises(RuntimeError, match="remote kaboom") as info:
                client.wait_next()
            notes = getattr(info.value, "__notes__", [])
            assert any("remote worker traceback" in n for n in notes)
            # The worker survives a task failure and keeps serving.
            client.submit(_square, 6)
            assert client.wait_next()[1] == 36
        finally:
            client.close()

    def test_queueing_beyond_worker_count(self):
        client = SocketClient(workers=1)
        try:
            ids = [client.submit(_square, x) for x in range(5)]
            results = {}
            while client.num_pending():
                got = client.wait_next(timeout_s=10.0)
                assert got is not None
                results[got[0]] = got[1]
            assert [results[i] for i in ids] == [x * x for x in range(5)]
        finally:
            client.close()

    def test_close_is_idempotent_and_joins_workers(self):
        client = SocketClient(workers=2)
        procs = list(client._procs)
        client.close()
        client.close()
        assert all(not p.is_alive() for p in procs)


class TestExternalWorkers:
    def test_serve_worker_joins_an_external_fleet(self):
        # Pick a port up front so the worker thread can retry-connect
        # while the client's constructor blocks in accept().
        probe = socket_module.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        def worker():
            for _ in range(100):
                try:
                    serve_worker("127.0.0.1", port)
                    return
                except OSError:
                    time.sleep(0.05)

        thread = threading.Thread(target=worker, daemon=True)
        thread.start()
        client = SocketClient(
            workers=0, external=1, port=port, accept_timeout_s=10.0
        )
        try:
            assert client.workers == 1
            assert client.submit(_square, 7) is not None
            assert client.wait_next(timeout_s=10.0)[1] == 49
        finally:
            client.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()

    def test_fleet_timeout_raises(self):
        with pytest.raises(TimeoutError, match="workers connected"):
            SocketClient(workers=0, external=1, accept_timeout_s=0.2)

    def test_needs_at_least_one_worker(self):
        with pytest.raises(ValueError):
            SocketClient(workers=0, external=0)


class TestExecWorkerCli:
    def test_bad_connect_spec_is_rejected(self, capsys):
        from repro.cli import main

        assert main(["exec-worker", "--connect", "nonsense"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err
