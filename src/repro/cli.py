"""Command-line interface.

Installed as ``python -m repro``::

    python -m repro simulate --hours 48 --strategy hybrid
    python -m repro compare --hours 24
    python -m repro --profile simulate
    python -m repro --telemetry-out run.jsonl compare
    python -m repro report --fast
    python -m repro sweep price --hours 48
    python -m repro sweep tax --hours 48
    python -m repro table1
    python -m repro convergence --hours 24
    python -m repro export --out results/ --hours 48
    python -m repro validate
    python -m repro doctor --horizon 24
    python -m repro doctor --solver distributed --json doctor.json
    python -m repro bench --quick
    python -m repro bench --quick --json BENCH_quick.json
    python -m repro bench --quick --client mp --max-pending 4 --json BENCH_exec.json
    python -m repro compare --client mp --max-pending 4 --store .repro-store
    python -m repro exec-worker --connect 127.0.0.1:7463
    python -m repro simulate --ledger runs/ --metrics-out metrics.prom
    python -m repro top runs/20260808-* --replay
    python -m repro runs list --ledger-dir runs/
    python -m repro runs diff RUN_A RUN_B --ledger-dir runs/
    python -m repro bench --quick --compare BENCH_engine.json
    python -m repro chaos --list
    python -m repro chaos --scenario dc-crash --horizon 24
    python -m repro chaos --spec my_scenario.json --json chaos.json
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core.strategies import FUEL_CELL, GRID, HYBRID, Strategy
from repro.engine.registry import available_solvers, create_solver
from repro.exec import available_clients
from repro.sim.simulator import Simulator, build_model
from repro.traces.datasets import default_bundle

__all__ = ["main", "build_parser"]

_STRATEGIES: dict[str, Strategy] = {
    "grid": GRID,
    "fuel-cell": FUEL_CELL,
    "hybrid": HYBRID,
}


def _add_exec_args(cmd: argparse.ArgumentParser) -> None:
    """The execution-layer knobs shared by the solving subcommands."""
    cmd.add_argument(
        "--client",
        choices=available_clients(),
        default=None,
        help="execution backend to solve through (default: classic "
        "workers-driven serial/pool choice; results are identical "
        "on every backend)",
    )
    cmd.add_argument(
        "--max-pending",
        type=int,
        default=None,
        metavar="N",
        help="cap on in-flight slot batches (pipelined submission); "
        "default keeps every batch in flight",
    )
    cmd.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="persistent result store directory; repeated runs "
        "resolve unchanged slots from disk",
    )
    cmd.add_argument(
        "--supervise",
        action="store_true",
        help="run under fleet supervision: lost or straggling slots "
        "are resubmitted/hedged to surviving workers instead of "
        "failing the run (asynchronous clients only)",
    )


def _exec_kwargs(args) -> dict:
    """Simulator/engine kwargs from the ``_add_exec_args`` flags."""
    return {
        "client": args.client,
        "max_pending": args.max_pending,
        "store": args.store,
        "supervision": True if args.supervise else None,
    }


def _add_obs_args(cmd: argparse.ArgumentParser) -> None:
    """The observability-plane knobs shared by the solving subcommands."""
    cmd.add_argument(
        "--ledger",
        default=None,
        metavar="DIR",
        help="persist the run as a JSONL ledger under DIR (header, "
        "per-slot outcome stream, summary) — the data source for "
        "'repro top' and 'repro runs'",
    )
    cmd.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the run's merged metrics registry (parent-side "
        "engine series plus worker-shipped samples) in Prometheus "
        "exposition format to PATH",
    )
    cmd.add_argument(
        "--worker-profile",
        type=int,
        default=0,
        metavar="N",
        help="profile each slot's solve in the worker with cProfile "
        "and ship the top-N hotspot rows back on the outcome "
        "(0 disables)",
    )


def _obs_kwargs(args, metrics=None):
    """Simulator kwargs from the ``_add_obs_args`` flags.

    ``--metrics-out`` needs a registry to merge into; the caller's own
    registry wins (the doctor already keeps one), otherwise a fresh one
    is created when any obs flag asks for it.
    """
    if metrics is None and args.metrics_out:
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
    return {
        "ledger": args.ledger,
        "worker_profile": args.worker_profile,
        "metrics": metrics,
    }


def _write_metrics_out(args, metrics) -> None:
    if args.metrics_out and metrics is not None:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(metrics.to_prometheus())
        print(f"wrote {args.metrics_out}")


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Fuel Cell Generation in "
        "Geo-Distributed Cloud Services' (ICDCS 2014)",
    )
    parser.add_argument("--hours", type=int, default=168, help="horizon (slots)")
    parser.add_argument("--seed", type=int, default=2014, help="trace seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the solve engine (results are "
        "identical at any worker count; counts beyond the usable CPUs "
        "are clamped, and a useless pool falls back to serial)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print the engine's per-phase profile (compile / solve / "
        "IPC, cache hits, executor decision) after the run "
        "(simulate and compare)",
    )
    parser.add_argument(
        "--telemetry-out",
        default=None,
        metavar="PATH",
        help="write engine telemetry events as JSON lines to PATH "
        "(simulate and compare)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run one strategy and print a summary")
    sim.add_argument(
        "--strategy", choices=sorted(_STRATEGIES), default="hybrid"
    )
    sim.add_argument(
        "--solver", choices=available_solvers(), default="centralized"
    )
    sim.add_argument("--rho", type=float, default=0.3,
                     help="ADM-G penalty (distributed solver only)")
    _add_exec_args(sim)
    _add_obs_args(sim)

    compare = sub.add_parser("compare", help="run all three strategies")
    _add_exec_args(compare)
    _add_obs_args(compare)

    report = sub.add_parser("report", help="regenerate every table/figure")
    report.add_argument("--fast", action="store_true", help="skip sweeps/Fig.11")

    sweep = sub.add_parser("sweep", help="regenerate Fig. 9 or Fig. 10")
    sweep.add_argument("kind", choices=["price", "tax"])

    sub.add_parser("table1", help="regenerate Table I")

    conv = sub.add_parser("convergence", help="regenerate Fig. 11")
    conv.add_argument("--rho", type=float, default=0.3)
    conv.add_argument("--tol", type=float, default=6e-3)

    export = sub.add_parser("export", help="write every figure's series to CSV")
    export.add_argument("--out", default="results", help="output directory")

    sub.add_parser(
        "validate", help="run every experiment and print the scorecard"
    )

    doctor = sub.add_parser(
        "doctor",
        help="certify every slot's solution a posteriori and print a "
        "horizon-health report (exit 1 if any slot fails)",
    )
    doctor.add_argument(
        "--horizon",
        type=int,
        default=None,
        metavar="SLOTS",
        help="slots to certify (alias for the global --hours)",
    )
    doctor.add_argument(
        "--strategy", choices=sorted(_STRATEGIES), default="hybrid"
    )
    doctor.add_argument(
        "--solver", choices=available_solvers(), default="centralized"
    )
    doctor.add_argument(
        "--tol",
        type=float,
        default=None,
        help="solver tolerance override; the distributed solver "
        "defaults to certification-grade 1e-6 here (the library "
        "default 1e-3 reproduces the paper's round counts but cannot "
        "meet the KKT gate)",
    )
    doctor.add_argument(
        "--max-iter",
        type=int,
        default=None,
        help="solver iteration cap override (distributed default "
        "here: 5000)",
    )
    doctor.add_argument(
        "--feas-tol",
        type=float,
        default=1e-6,
        help="max accepted relative constraint violation",
    )
    doctor.add_argument(
        "--kkt-tol",
        type=float,
        default=1e-5,
        help="max accepted relative KKT residual",
    )
    doctor.add_argument(
        "--full",
        action="store_true",
        help="show every slot in the table (default truncates "
        "passing rows; failures are always shown)",
    )
    doctor.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the certificate summary (per-slot verdicts "
        "plus the metrics registry) as JSON to PATH",
    )
    _add_exec_args(doctor)
    _add_obs_args(doctor)

    worker = sub.add_parser(
        "exec-worker",
        help="serve this process as a socket-client solve worker "
        "(connect to a SocketClient's listener and run tasks until "
        "it stops)",
    )
    worker.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="address of the SocketClient listener to join (e.g. "
        "127.0.0.1:7463) — run one worker per CPU you want to lend",
    )

    bench = sub.add_parser(
        "bench",
        help="time the batched solve lane against the serial cached "
        "path and check certification-grade parity (exit 1 on a "
        "parity failure, or on a speedup-floor regression when a "
        "floor is gated); with --client, benchmark the execution "
        "layer instead: serial vs pool vs pipelined client, plus a "
        "result-store cold/warm pair",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: 24 slots, 3 order-balanced rounds, gate the "
        "worst round's speedup at the 1.5x floor",
    )
    bench.add_argument(
        "--rounds",
        type=int,
        default=3,
        help="order-balanced timing rounds (serial / batched / serial)",
    )
    bench.add_argument(
        "--floor",
        type=float,
        default=None,
        metavar="X",
        help="fail unless every round's batched speedup reaches X "
        "(default: 1.5 with --quick, ungated otherwise)",
    )
    bench.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the timing/parity summary as JSON to PATH",
    )
    bench.add_argument(
        "--scale",
        action="store_true",
        help="benchmark the scale lane instead: generated hyperscale "
        "instances solved through the block-elimination KKT path vs "
        "the dense route, gating certification on every slot, "
        "paper-scale bit-identity, and a 5x speedup floor where both "
        "routes run (with --quick: 4x10 and 20x100, 12 slots)",
    )
    bench.add_argument(
        "--shapes",
        default=None,
        metavar="NxM,...",
        help="with --scale: comma-separated shape ladder, e.g. "
        "'4x10,20x100,100x1000' (default: the full ladder, or the "
        "smoke ladder with --quick)",
    )
    bench.add_argument(
        "--slots",
        type=int,
        default=None,
        metavar="T",
        help="with --scale: hourly slots per shape (default 24, or "
        "12 with --quick)",
    )
    bench.add_argument(
        "--warm",
        action="store_true",
        help="benchmark the warm-start lane instead: cold serial "
        "cached vs the centralized-warm chain on the week, the "
        "incumbent early-exit, the structured 20x100 factor-cache "
        "re-solve regime, and the ADM-G warm chain (exit 1 unless "
        "every gate passes; with --quick: 24 hours, 1 round)",
    )
    bench.add_argument(
        "--warm-floor",
        type=float,
        default=None,
        metavar="X",
        help="with --client: fail unless the disk-warm store re-run "
        "is X times faster than the cold run (default: 5.0 with "
        "--quick, ungated otherwise)",
    )
    bench.add_argument(
        "--compare",
        default=None,
        metavar="PATH",
        help="compare this run's per-slot timings against a committed "
        "bench JSON (e.g. BENCH_engine.json) and fail on a >25%% "
        "wall-time regression; slot counts are normalized, so a "
        "--quick run can gate against the full-week baseline",
    )
    bench.add_argument(
        "--compare-threshold",
        type=float,
        default=0.25,
        metavar="FRAC",
        help="relative per-slot regression tolerance for --compare "
        "(default 0.25)",
    )
    _add_exec_args(bench)

    top = sub.add_parser(
        "top",
        help="render a run-ledger dashboard: throughput, pending "
        "depth, latency percentiles, per-worker utilization and "
        "retry/fallback counts",
    )
    top.add_argument(
        "run",
        metavar="RUN",
        help="ledger file path, run id, or unique run-id prefix "
        "(resolved under --ledger-dir)",
    )
    top.add_argument(
        "--ledger-dir",
        default=".",
        metavar="DIR",
        help="directory run ids are resolved in (default: .)",
    )
    top.add_argument(
        "--replay",
        action="store_true",
        help="render the run as a sequence of frames over growing "
        "slot prefixes, reconstructing how it unfolded",
    )
    top.add_argument(
        "--frames",
        type=int,
        default=8,
        metavar="N",
        help="frames for --replay (default 8)",
    )
    top.add_argument(
        "--follow",
        action="store_true",
        help="poll a live .part ledger and re-render until it "
        "finalizes (or Ctrl-C)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="S",
        help="poll interval for --follow (default 1.0s)",
    )
    top.add_argument(
        "--width", type=int, default=64, help="chart width (default 64)"
    )

    runs = sub.add_parser(
        "runs",
        help="query a run-ledger directory: list runs, show one "
        "run's manifest, or diff two runs",
    )
    runs.add_argument(
        "action",
        choices=["list", "show", "diff"],
        help="list every ledger; show one run's header/summary; "
        "diff two runs' config, inputs and timings",
    )
    runs.add_argument(
        "refs",
        nargs="*",
        metavar="RUN",
        help="run references — none for list, one for show, two "
        "for diff",
    )
    runs.add_argument(
        "--ledger-dir",
        default=".",
        metavar="DIR",
        help="ledger directory (default: .)",
    )
    runs.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of tables",
    )

    chaos = sub.add_parser(
        "chaos",
        help="run a fault-injection scenario over a horizon and print "
        "the resilience report (exit 1 unless every slot's allocation "
        "certifies feasible)",
    )
    chaos.add_argument(
        "--scenario",
        default="flaky-net",
        metavar="NAME",
        help="shipped scenario name (see --list); ignored with --spec",
    )
    chaos.add_argument(
        "--spec",
        default=None,
        metavar="PATH",
        help="JSON fault-plan spec file (overrides --scenario)",
    )
    chaos.add_argument(
        "--horizon",
        type=int,
        default=None,
        metavar="SLOTS",
        help="slots to run (alias for the global --hours; chaos "
        "defaults to 24 rather than the global 168)",
    )
    chaos.add_argument(
        "--strategy", choices=sorted(_STRATEGIES), default="hybrid"
    )
    chaos.add_argument(
        "--fallback",
        default="centralized,proportional",
        metavar="CHAIN",
        help="comma-separated engine fallback chain for degraded slots "
        "('' disables escalation and keeps degraded distributed results)",
    )
    chaos.add_argument(
        "--events",
        type=int,
        default=12,
        metavar="N",
        help="notable fault/recovery events to print",
    )
    chaos.add_argument(
        "--list", action="store_true", help="list shipped scenarios and exit"
    )
    chaos.add_argument(
        "--ledger",
        default=None,
        metavar="DIR",
        help="record the run to a ledger directory (worker-churn only: "
        "the fleet run's retry lineage lands in the ledger)",
    )
    chaos.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the full report (slots, events, metrics) as "
        "JSON to PATH",
    )

    resume = sub.add_parser(
        "resume",
        help="finish an interrupted run from its torn .part ledger: "
        "slots the crashed run completed resolve from the result "
        "store (no re-solve), only the remainder solves, and a fresh "
        "finalized ledger is written",
    )
    resume.add_argument(
        "run",
        metavar="RUN",
        help="ledger file path, run id, or unique run-id prefix "
        "(resolved under --ledger-dir; .part ledgers resolve too)",
    )
    resume.add_argument(
        "--ledger-dir",
        default=".",
        metavar="DIR",
        help="directory run ids are resolved in and the resume ledger "
        "is written to (default: .)",
    )
    resume.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="override the recipe's result-store directory (e.g. when "
        "the store moved); without any store every slot re-solves",
    )
    resume.add_argument(
        "--supervise",
        action="store_true",
        help="run the remainder under fleet supervision",
    )

    store = sub.add_parser(
        "store",
        help="inspect a persistent result store (verify: probe every "
        "entry, quarantine the corrupt, report hit/miss/corrupt "
        "counts; exit 1 if anything was corrupt)",
    )
    store.add_argument("action", choices=["verify"])
    store.add_argument("dir", metavar="DIR", help="store directory")
    store.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of the table",
    )
    return parser


def _telemetry_sink(args):
    """The ``--telemetry-out`` JSONL sink, or None."""
    if args.telemetry_out:
        from repro.obs import JsonlTelemetry

        return JsonlTelemetry(args.telemetry_out)
    return None


def _print_profile(args, summary) -> None:
    if args.profile and summary is not None:
        print()
        print(summary.format_table())


def _cmd_simulate(args) -> int:
    bundle = default_bundle(hours=args.hours, seed=args.seed)
    model = build_model(bundle)
    solver_kwargs = {"rho": args.rho} if args.solver == "distributed" else {}
    solver = create_solver(args.solver, **solver_kwargs)
    sink = _telemetry_sink(args)
    obs = _obs_kwargs(args)
    try:
        sim = Simulator(
            model,
            bundle,
            solver=solver,
            workers=args.workers,
            **_exec_kwargs(args),
            **obs,
        )
        result = sim.run(_STRATEGIES[args.strategy], telemetry=sink)
    finally:
        if sink is not None:
            sink.close()
    print(result.summary())
    _print_profile(args, result.horizon_summary)
    _write_metrics_out(args, obs["metrics"])
    return 0


def _cmd_compare(args) -> int:
    bundle = default_bundle(hours=args.hours, seed=args.seed)
    model = build_model(bundle)
    sink = _telemetry_sink(args)
    obs = _obs_kwargs(args)
    try:
        comp = Simulator(
            model, bundle, **_exec_kwargs(args), **obs
        ).compare_strategies(workers=args.workers, telemetry=sink)
    finally:
        if sink is not None:
            sink.close()
    for result in (comp.grid, comp.fuel_cell, comp.hybrid):
        print(result.summary())
        print()
    gain = np.mean(
        (comp.hybrid.ufc - comp.grid.ufc) / np.abs(comp.grid.ufc)
    )
    print(f"mean hybrid-over-grid UFC improvement: {100 * gain:+.1f}%")
    # All three strategies share one engine pass, hence one summary.
    _print_profile(args, comp.hybrid.horizon_summary)
    _write_metrics_out(args, obs["metrics"])
    return 0


def _cmd_report(args) -> int:
    from repro.experiments.report import generate_report

    print(
        generate_report(
            hours=args.hours, seed=args.seed, fast=args.fast, workers=args.workers
        )
    )
    return 0


def _cmd_sweep(args) -> int:
    if args.kind == "price":
        from repro.experiments.fig9_price_sweep import render_fig9, run_fig9

        print(
            render_fig9(
                run_fig9(hours=args.hours, seed=args.seed, workers=args.workers)
            )
        )
    else:
        from repro.experiments.fig10_tax_sweep import render_fig10, run_fig10

        print(
            render_fig10(
                run_fig10(hours=args.hours, seed=args.seed, workers=args.workers)
            )
        )
    return 0


def _cmd_table1(args) -> int:
    from repro.experiments.table1 import render_table1, run_table1

    print(render_table1(run_table1()))
    return 0


def _cmd_convergence(args) -> int:
    from repro.experiments.fig11_convergence import render_fig11, run_fig11

    print(
        render_fig11(
            run_fig11(
                hours=args.hours,
                seed=args.seed,
                rho=args.rho,
                tol=args.tol,
                workers=args.workers,
            )
        )
    )
    return 0


def _cmd_export(args) -> int:
    from repro.experiments.export import export_all

    paths = export_all(args.out, hours=args.hours, seed=args.seed)
    for path in paths:
        print(f"wrote {path}")
    return 0


def _cmd_doctor(args) -> int:
    from repro.obs import MetricsRegistry
    from repro.obs.certify import CertificationContext
    from repro.viz.health import health_dashboard, health_table

    hours = args.hours if args.horizon is None else args.horizon
    bundle = default_bundle(hours=hours, seed=args.seed)
    model = build_model(bundle)
    solver_kwargs = {}
    if args.solver == "distributed":
        # Certification-grade accuracy: the library default (tol=1e-3)
        # matches the paper's round counts but stops far from the KKT
        # point, so the doctor tightens the stopping rule instead.
        solver_kwargs["tol"] = 1e-6 if args.tol is None else args.tol
        solver_kwargs["max_iter"] = (
            5000 if args.max_iter is None else args.max_iter
        )
    else:
        if args.tol is not None:
            solver_kwargs["tol"] = args.tol
        if args.max_iter is not None:
            solver_kwargs["max_iter"] = args.max_iter
    solver = create_solver(args.solver, **solver_kwargs)
    certifier = CertificationContext(
        feas_tol=args.feas_tol, kkt_tol=args.kkt_tol
    )
    metrics = MetricsRegistry()
    sink = _telemetry_sink(args)
    try:
        sim = Simulator(
            model,
            bundle,
            solver=solver,
            workers=args.workers,
            certify=certifier,
            **_exec_kwargs(args),
            **_obs_kwargs(args, metrics=metrics),
        )
        result = sim.run(_STRATEGIES[args.strategy], telemetry=sink)
    finally:
        if sink is not None:
            sink.close()
    certs = result.certificates or ()
    if not certs:
        print("doctor: no certificates produced", file=sys.stderr)
        return 1
    print(
        f"certifying {len(certs)} slots: solver={args.solver} "
        f"strategy={args.strategy} seed={args.seed}"
    )
    print()
    print(health_dashboard(certs, summary=result.horizon_summary))
    print()
    print(health_table(certs, max_rows=None if args.full else 24))
    _print_profile(args, result.horizon_summary)
    failing = [c for c in certs if not c.ok]
    if args.json:
        import json

        payload = {
            "solver": args.solver,
            "strategy": args.strategy,
            "hours": hours,
            "seed": args.seed,
            "feas_tol": args.feas_tol,
            "kkt_tol": args.kkt_tol,
            "slots": len(certs),
            "failing_slots": [c.slot for c in failing],
            "worst_violation": max(c.worst_violation for c in certs),
            "worst_kkt_residual": max(c.kkt_residual for c in certs),
            "certificates": [c.to_dict() for c in certs],
            "metrics": metrics.to_dict(),
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"\nwrote {args.json}")
    _write_metrics_out(args, metrics)
    return 1 if failing else 0


def _cmd_chaos(args) -> int:
    from repro.faults import FaultPlan, available_scenarios, scenario_spec
    from repro.faults.chaos import run_chaos

    if args.list:
        for name in available_scenarios():
            spec = scenario_spec(name)
            if spec.get("kind") == "worker-churn":
                detail = (
                    f"process-level: {spec.get('workers', 2)} exec "
                    f"workers, {spec.get('kills', 1)} kill(s), "
                    f"{'respawn' if spec.get('respawn', True) else 'no respawn'}"
                )
                print(f"{name:<14} {detail}")
                continue
            active = ", ".join(
                key.replace("_probability", "")
                for key, value in spec.items()
                if key.endswith("_probability") and value
            )
            extras = [
                f"{len(spec['crashes'])} crash(es)" if spec.get("crashes") else "",
                f"{len(spec['partitions'])} partition(s)"
                if spec.get("partitions")
                else "",
            ]
            detail = ", ".join(x for x in (active, *extras) if x)
            print(f"{name:<14} {detail}")
        return 0
    if args.spec:
        import json

        with open(args.spec, encoding="utf-8") as fh:
            spec = json.load(fh)
    else:
        spec = dict(scenario_spec(args.scenario))
    if args.horizon is not None:
        hours = args.horizon
    else:
        # The global --hours default (168) is a full week — heavy for a
        # chaos run that also solves a fault-free baseline.
        hours = 24 if args.hours == 168 else args.hours
    if spec.get("kind") == "worker-churn":
        # Process-level chaos takes the fleet path, not FaultPlan.
        from repro.faults.churn import run_worker_churn

        report = run_worker_churn(
            spec,
            hours=hours,
            seed=args.seed,
            strategy=_STRATEGIES[args.strategy],
            ledger=args.ledger,
        )
        print(report.render(max_events=args.events))
        if args.json:
            import json

            payload = report.to_dict()
            payload["metrics"] = report.metrics.to_dict()
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=2)
            print(f"\nwrote {args.json}")
        return 0 if report.passed else 1
    plan = FaultPlan.from_spec(spec)
    fallback = tuple(
        name.strip() for name in args.fallback.split(",") if name.strip()
    )
    report = run_chaos(
        plan,
        hours=hours,
        seed=args.seed,
        strategy=_STRATEGIES[args.strategy],
        fallback=fallback,
    )
    print(report.render(max_events=args.events))
    if args.json:
        import json

        payload = report.to_dict()
        payload["metrics"] = report.metrics.to_dict()
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"\nwrote {args.json}")
    return 0 if report.passed else 1


def _cmd_exec_worker(args) -> int:
    from repro.exec import serve_worker

    host, sep, port = args.connect.rpartition(":")
    if not sep or not host or not port.isdigit():
        print(
            f"exec-worker: --connect wants HOST:PORT, got {args.connect!r}",
            file=sys.stderr,
        )
        return 2
    serve_worker(host, int(port))
    return 0


def _bench_exec(args) -> int:
    """The ``bench --client`` flavor: execution-layer timings.

    Times the horizon through (a) the plain serial engine, (b) the
    classic pool lane, and (c) the requested client with pipelined
    submission, checking bit-identical UFC values across all three;
    then runs a result-store cold/warm pair and reports the disk-warm
    speedup.  Timing floors only gate what the issue gates: the warm
    re-run (``--warm-floor``, default 5x with --quick).
    """
    import json
    import shutil
    import tempfile
    import time

    from repro.core.strategies import ALL_STRATEGIES
    from repro.engine import HorizonEngine, usable_cpu_count

    hours = 24 if (args.quick and args.hours == 168) else args.hours
    warm_floor = args.warm_floor
    if warm_floor is None and args.quick:
        warm_floor = 5.0
    max_pending = args.max_pending if args.max_pending else 4
    pool_workers = max(2, min(4, usable_cpu_count()))

    bundle = default_bundle(hours=hours, seed=args.seed)
    model = build_model(bundle)
    sim = Simulator(model, bundle)
    problems = [
        sim.problem_for_slot(t, strategy)
        for strategy in ALL_STRATEGIES
        for t in range(hours)
    ]

    def timed(**engine_kwargs):
        engine = HorizonEngine("centralized", **engine_kwargs)
        start = time.perf_counter()
        outcomes = engine.run(problems)
        elapsed = time.perf_counter() - start
        return elapsed, [o.result.ufc for o in outcomes], engine.last_summary

    timed()  # warm numpy/BLAS before any measured lane
    serial_s, base_ufc, _ = timed()
    pool_s, pool_ufc, pool_summary = timed(
        workers=pool_workers, oversubscribe=True
    )
    client_s, client_ufc, client_summary = timed(
        workers=pool_workers,
        oversubscribe=True,
        client=args.client,
        max_pending=max_pending,
    )
    parity_ok = base_ufc == pool_ufc == client_ufc

    store_dir = tempfile.mkdtemp(prefix="repro-bench-store-")
    try:
        cold_s, cold_ufc, _ = timed(store=store_dir)
        warm_s, warm_ufc, warm_summary = timed(store=store_dir)
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)
    store_parity_ok = base_ufc == cold_ufc == warm_ufc
    store_hits = warm_summary.store_hits
    warm_speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    warm_ok = warm_floor is None or warm_speedup >= warm_floor
    all_hits = store_hits == len(problems)

    print(f"slots               : {len(problems)} ({hours}h x 3 strategies)")
    print(f"serial engine       : {serial_s * 1000:,.0f} ms")
    print(
        f"pool lane           : {pool_s * 1000:,.0f} ms  "
        f"({pool_workers} workers, executor {pool_summary.executor})"
    )
    print(
        f"pipelined client    : {client_s * 1000:,.0f} ms  "
        f"(client {client_summary.client}, "
        f"max {client_summary.max_pending_observed} pending)"
    )
    print(f"client vs pool      : {pool_s / client_s:.2f}x")
    print(f"store cold run      : {cold_s * 1000:,.0f} ms")
    print(
        f"store warm run      : {warm_s * 1000:,.0f} ms  "
        f"({store_hits}/{len(problems)} slots from disk)"
    )
    print(f"warm speedup        : {warm_speedup:.1f}x")
    if warm_floor is not None:
        print(
            f"warm floor {warm_floor:.1f}x     : "
            f"{'ok' if warm_ok else 'REGRESSED'}"
        )
    print(f"parity              : {'ok' if parity_ok else 'FAILURE'}")
    if not parity_ok:
        print("PARITY FAILURE: client lanes disagree with the serial engine")
    if not store_parity_ok:
        print("PARITY FAILURE: store-resolved run disagrees with the serial engine")

    passed = bool(parity_ok and store_parity_ok and warm_ok and all_hits)
    if args.json:
        payload = {
            "hours": hours,
            "slots": len(problems),
            "client": args.client,
            "max_pending": max_pending,
            "pool_workers": pool_workers,
            "serial_s": round(serial_s, 4),
            "pool_s": round(pool_s, 4),
            "client_s": round(client_s, 4),
            "client_vs_pool": round(pool_s / client_s, 4),
            "store_cold_s": round(cold_s, 4),
            "store_warm_s": round(warm_s, 4),
            "warm_speedup": round(warm_speedup, 4),
            "warm_floor": warm_floor,
            "store_hits": store_hits,
            "parity_ok": parity_ok,
            "store_parity_ok": store_parity_ok,
            "passed": passed,
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"\nwrote {args.json}")
    return 0 if passed else 1


def _bench_scale(args) -> int:
    """The ``bench --scale`` flavor: hyperscale structured-KKT lane."""
    import json

    from repro.experiments.scalebench import (
        DEFAULT_SHAPES,
        render_report,
        run_scale_bench,
    )

    if args.shapes:
        try:
            shapes = tuple(
                (int(n), int(m))
                for n, m in (part.split("x") for part in args.shapes.split(","))
            )
        except ValueError:
            print(f"bad --shapes {args.shapes!r}: expected 'NxM,NxM,...'")
            return 2
    elif args.quick:
        shapes = ((4, 10), (20, 100))
    else:
        shapes = DEFAULT_SHAPES
    slots = args.slots if args.slots else (12 if args.quick else 24)

    payload = run_scale_bench(shapes=shapes, slots=slots, seed=args.seed)
    print(render_report(payload))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"\nwrote {args.json}")
    return 0 if payload["passed"] else 1


def _bench_warm(args) -> int:
    """The ``bench --warm`` flavor: temporal warm-start lanes."""
    import json

    from repro.experiments.warmbench import render_report, run_warm_bench

    hours = 24 if (args.quick and args.hours == 168) else args.hours
    repeats = 1 if args.quick else max(1, args.rounds)
    floor = args.floor if args.floor is not None else 1.5
    payload = run_warm_bench(
        hours=hours, seed=args.seed, repeats=repeats, floor=floor
    )
    print(render_report(payload))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"\nwrote {args.json}")
    return 0 if payload["passed"] else 1


def _cmd_bench(args) -> int:
    import json
    import time

    from repro.core.strategies import ALL_STRATEGIES
    from repro.engine import HorizonEngine

    if args.warm:
        return _bench_warm(args)
    if args.scale:
        return _bench_scale(args)
    if args.client:
        return _bench_exec(args)

    # --quick drops the global week default to a 24-slot smoke; an
    # explicit non-default --hours wins either way.
    hours = 24 if (args.quick and args.hours == 168) else args.hours
    floor = args.floor
    if floor is None and args.quick:
        floor = 1.5
    rounds = max(1, args.rounds)

    bundle = default_bundle(hours=hours, seed=args.seed)
    model = build_model(bundle)
    sim = Simulator(model, bundle)
    problems = [
        sim.problem_for_slot(t, strategy)
        for strategy in ALL_STRATEGIES
        for t in range(hours)
    ]

    def timed(solver):
        engine = HorizonEngine(solver)
        start = time.perf_counter()
        engine.run(problems)
        return time.perf_counter() - start

    timed("centralized-batch")  # warm numpy/BLAS before the first round
    serial_best = batched_best = None
    round_speedups = []
    for _ in range(rounds):
        b1 = timed("centralized")
        bat = timed("centralized-batch")
        b2 = timed("centralized")
        round_speedups.append((b1 + b2) / 2.0 / bat)
        serial_best = min(b1, b2, serial_best or b1)
        batched_best = min(bat, batched_best or bat)

    certified = HorizonEngine("centralized-batch", certify=True).run(problems)
    scalar = HorizonEngine("centralized").run(problems)
    converged_all = all(o.ok and o.result.converged for o in certified)
    certified_all = all(
        o.ok and o.certificate is not None and o.certificate.ok
        for o in certified
    )
    max_ufc_delta = max(
        abs(x.result.ufc - y.result.ufc)
        for x, y in zip(certified, scalar)
    )
    parity_ok = converged_all and certified_all and max_ufc_delta < 1e-2
    speedup = serial_best / batched_best
    speedup_floor = min(round_speedups)
    floor_ok = floor is None or speedup_floor >= floor

    # --compare: regression gate against a committed bench JSON.  The
    # scalar lane's cost is per-slot, so slot counts normalize away and
    # a --quick (24h) run gates against the committed full-week record.
    # The batched lane amortizes one stacked solve over the whole
    # horizon — its per-slot cost falls with batch size — so it is only
    # gated when the two runs solved the same number of slots (and
    # reported, un-gated, otherwise).
    compare_ok = True
    compare_report = None
    if args.compare:
        with open(args.compare, encoding="utf-8") as fh:
            base = json.load(fh)
        base_slots = max(1, int(base.get("slots", 1)))
        threshold = args.compare_threshold
        compare_report = {"baseline": args.compare, "threshold": threshold}
        for key, current, gated in (
            ("serial_cached_s", serial_best, True),
            ("batched_s", batched_best, base_slots == len(problems)),
        ):
            if base.get(key) is None:
                continue
            base_per_slot = float(base[key]) / base_slots
            cur_per_slot = current / len(problems)
            delta = (
                (cur_per_slot - base_per_slot) / base_per_slot
                if base_per_slot > 0
                else 0.0
            )
            compare_report[key] = {
                "baseline_per_slot_s": round(base_per_slot, 6),
                "current_per_slot_s": round(cur_per_slot, 6),
                "delta": round(delta, 4),
                "gated": gated,
            }
            if gated and delta > threshold:
                compare_ok = False

    print(f"slots               : {len(problems)} ({hours}h x 3 strategies)")
    print(f"serial cached       : {serial_best * 1000:,.0f} ms")
    print(f"batched lane        : {batched_best * 1000:,.0f} ms")
    print(f"speedup (best/best) : {speedup:.2f}x")
    print(
        "speedup per round   : "
        + ", ".join(f"{s:.2f}x" for s in round_speedups)
    )
    print(f"converged           : {'all' if converged_all else 'NOT ALL'}")
    print(f"certified           : {'all' if certified_all else 'NOT ALL'}")
    print(f"max UFC delta       : {max_ufc_delta:.2e}")
    if floor is not None:
        verdict = "ok" if floor_ok else "REGRESSED"
        print(f"floor {floor:.1f}x          : {verdict} "
              f"(worst round {speedup_floor:.2f}x)")
    if compare_report is not None:
        for key in ("serial_cached_s", "batched_s"):
            row = compare_report.get(key)
            if row is None:
                continue
            note = "" if row["gated"] else "  [not gated: batch sizes differ]"
            print(
                f"vs baseline {key:<15}: {100 * row['delta']:+.1f}% per slot "
                f"({row['current_per_slot_s'] * 1e3:.2f} ms vs "
                f"{row['baseline_per_slot_s'] * 1e3:.2f} ms){note}"
            )
        verdict = "ok" if compare_ok else "REGRESSED"
        print(
            f"compare gate {args.compare_threshold:.0%}    : {verdict} "
            f"(baseline {args.compare})"
        )
    if not parity_ok:
        print("PARITY FAILURE: batched lane disagrees with the scalar path")

    passed = bool(parity_ok and floor_ok and compare_ok)
    if args.json:
        payload = {
            "hours": hours,
            "slots": len(problems),
            "rounds": rounds,
            "serial_cached_s": round(serial_best, 4),
            "batched_s": round(batched_best, 4),
            "batch_speedup_vs_serial_cached": round(speedup, 4),
            "round_speedups": [round(s, 4) for s in round_speedups],
            "speedup_floor": round(speedup_floor, 4),
            "floor_gate": floor,
            "converged_all": converged_all,
            "certified_all": certified_all,
            "max_ufc_delta_vs_serial": max_ufc_delta,
            "passed": passed,
        }
        if compare_report is not None:
            payload["compare"] = {**compare_report, "ok": compare_ok}
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"\nwrote {args.json}")
    return 0 if passed else 1


def _cmd_top(args) -> int:
    import time

    from repro.obs import load_run, resolve_run
    from repro.viz.top import render_top, replay_frames

    try:
        path = resolve_run(args.run, args.ledger_dir)
    except FileNotFoundError as exc:
        print(f"top: {exc}", file=sys.stderr)
        return 2
    if args.follow:
        try:
            while True:
                run = load_run(path)
                print(render_top(run, width=args.width))
                if run.finalized:
                    return 0
                time.sleep(max(0.05, args.interval))
                # A live .part promotes to .jsonl on finalize; chase it.
                if not path.is_file():
                    path = resolve_run(run.run_id, args.ledger_dir)
                print()
        except KeyboardInterrupt:
            return 130
    run = load_run(path)
    if args.replay:
        for shown, frame in replay_frames(
            run, frames=args.frames, width=args.width
        ):
            print(frame)
            print()
        return 0
    print(render_top(run, width=args.width))
    return 0


def _cmd_runs(args) -> int:
    import json

    from repro.obs import diff_runs, list_runs, load_run, resolve_run

    def _resolve(ref: str):
        return load_run(resolve_run(ref, args.ledger_dir))

    if args.action == "list":
        if args.refs:
            print("runs list: takes no RUN arguments", file=sys.stderr)
            return 2
        runs = list_runs(args.ledger_dir)
        if args.json:
            print(
                json.dumps(
                    [
                        {
                            "run_id": r.run_id,
                            "finalized": r.finalized,
                            "solver": r.header.get("solver"),
                            "slots": len(r.slots),
                            "failed": len(r.failed),
                            "wall_s": (r.summary or {}).get("wall_s"),
                        }
                        for r in runs
                    ],
                    indent=2,
                )
            )
            return 0
        if not runs:
            print(f"no run ledgers under {args.ledger_dir}")
            return 0
        for r in runs:
            status = "final" if r.finalized else "LIVE "
            wall = (r.summary or {}).get("wall_s")
            wall_str = f"{float(wall):8.3f}s" if wall is not None else "       -"
            print(
                f"{r.run_id}  [{status}]  solver={r.header.get('solver', '?'):<12} "
                f"slots={len(r.slots):>4}  failed={len(r.failed):>3}  "
                f"wall={wall_str}"
            )
        return 0
    if args.action == "show":
        if len(args.refs) != 1:
            print("runs show: exactly one RUN argument", file=sys.stderr)
            return 2
        try:
            run = _resolve(args.refs[0])
        except FileNotFoundError as exc:
            print(f"runs: {exc}", file=sys.stderr)
            return 2
        if args.json:
            print(
                json.dumps(
                    {
                        "run_id": run.run_id,
                        "finalized": run.finalized,
                        "header": run.header,
                        "slots": run.slots,
                        "summary": run.summary,
                    },
                    indent=2,
                )
            )
            return 0
        print(f"run {run.run_id}  [{'final' if run.finalized else 'live'}]")
        for key in ("solver", "slots_expected", "created_unix"):
            if run.header.get(key) is not None:
                print(f"  {key:<15}: {run.header[key]}")
        for section in ("config", "digests", "environment"):
            data = run.header.get(section) or {}
            for key, value in data.items():
                print(f"  {section}.{key:<20}: {value}")
        print(f"  slots harvested: {len(run.slots)} ({len(run.failed)} failed)")
        flagged = [s for s in run.slots if s.get("lineage")]
        if flagged:
            print("  retry lineage  : (slots that were not first-try-clean)")
            for s in flagged:
                li = s["lineage"]
                hedge = ""
                if li.get("hedged"):
                    hedge = ", hedge " + (
                        "won" if li.get("hedge_won") else "lost"
                    )
                workers = "->".join(li.get("workers") or []) or "?"
                faults = ", ".join(li.get("faults") or []) or "clean"
                print(
                    f"    slot {s['index']:>4}: "
                    f"{li.get('attempts', 1)} attempt(s) over {workers} "
                    f"({faults}{hedge}) -> {li.get('outcome', '?')}"
                )
        if run.summary is not None:
            for key in ("wall_s", "solve_s", "executor", "slot_p50_s", "slot_p99_s"):
                if run.summary.get(key) is not None:
                    print(f"  summary.{key:<15}: {run.summary[key]}")
        return 0
    # diff
    if len(args.refs) != 2:
        print("runs diff: exactly two RUN arguments", file=sys.stderr)
        return 2
    try:
        run_a, run_b = _resolve(args.refs[0]), _resolve(args.refs[1])
    except FileNotFoundError as exc:
        print(f"runs: {exc}", file=sys.stderr)
        return 2
    diff = diff_runs(run_a, run_b)
    if args.json:
        print(json.dumps(diff, indent=2))
        return 0
    print(f"a: {diff['a']['run_id']}   b: {diff['b']['run_id']}")
    print(f"same inputs     : {'yes' if diff['same_inputs'] else 'NO'}")
    if diff["changed_digests"]:
        print(f"changed digests : {', '.join(diff['changed_digests'])}")
    if diff["changed_config"]:
        print(f"changed config  : {', '.join(diff['changed_config'])}")
    for side in ("a", "b"):
        s = diff[side]
        print(
            f"{side}: slots={s['slots']} failed={s['failed']} "
            f"solve={s['solve_s']:.3f}s p50={s['p50_s'] * 1e3:.2f}ms "
            f"p99={s['p99_s'] * 1e3:.2f}ms workers={len(s['workers'])}"
        )
    if diff["solve_s_delta"] is not None:
        print(f"solve delta     : {100 * diff['solve_s_delta']:+.1f}%")
    print(f"failed delta    : {diff['failed_delta']:+d}")
    return 0


def _cmd_resume(args) -> int:
    from repro.exec import SupervisorConfig
    from repro.sim.resume import resume_run

    try:
        report = resume_run(
            args.run,
            args.ledger_dir,
            store=args.store,
            supervision=SupervisorConfig() if args.supervise else None,
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"resume: {exc}", file=sys.stderr)
        return 2
    print(f"resumed {report.resumed_from} as {report.run_id}")
    print(
        f"  completed before crash : {report.completed_before}/"
        f"{report.slots_total} slots"
    )
    print(
        f"  resolved from store    : {report.store_hits} "
        f"({report.store_misses} solved fresh)"
    )
    print(f"  failed slots           : {report.failed_slots}")
    print(f"  final ledger           : {report.ledger_path}")
    return 0 if report.ok else 1


def _cmd_store(args) -> int:
    import json

    from repro.exec import ResultStore

    store = ResultStore(args.dir)
    report = store.verify()
    if args.json:
        print(json.dumps({**report, "root": str(store.root)}, indent=2))
        return 0 if report["corrupt"] == 0 else 1
    print(f"store   : {store.root}")
    print(f"entries : {report['entries']}")
    print(f"hits    : {report['ok']} (readable, current version)")
    print(f"misses  : {report['corrupt']} (would re-solve)")
    print(
        f"corrupt : {report['corrupt']}"
        + (
            f"  (quarantined under {store.root / 'corrupt'})"
            if report["corrupt"]
            else ""
        )
    )
    return 0 if report["corrupt"] == 0 else 1


def _cmd_validate(args) -> int:
    from repro.experiments.validation import render_scorecard, run_validation

    checks = run_validation(hours=args.hours, seed=args.seed)
    print(render_scorecard(checks))
    return 0 if all(c.passed for c in checks) else 1


_COMMANDS = {
    "simulate": _cmd_simulate,
    "compare": _cmd_compare,
    "report": _cmd_report,
    "sweep": _cmd_sweep,
    "table1": _cmd_table1,
    "convergence": _cmd_convergence,
    "export": _cmd_export,
    "validate": _cmd_validate,
    "doctor": _cmd_doctor,
    "bench": _cmd_bench,
    "chaos": _cmd_chaos,
    "exec-worker": _cmd_exec_worker,
    "top": _cmd_top,
    "runs": _cmd_runs,
    "resume": _cmd_resume,
    "store": _cmd_store,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point: parse and dispatch."""
    args = build_parser().parse_args(argv)
    if args.command not in ("simulate", "compare", "doctor") and (
        args.profile or args.telemetry_out
    ):
        print(
            "note: --profile/--telemetry-out apply to the simulate, "
            "compare and doctor subcommands; ignoring.",
            file=sys.stderr,
        )
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
