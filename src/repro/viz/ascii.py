"""ASCII/unicode chart primitives.

Three renderers, each returning a string:

- :func:`sparkline` — one-line series overview (block characters);
- :func:`bar_chart` — labelled horizontal bars for categorical values;
- :func:`line_chart` — a small multi-row chart with a y-axis, for
  series where the sparkline is too coarse.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["sparkline", "bar_chart", "line_chart"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int | None = None) -> str:
    """One-line block-character rendering of a series.

    Args:
        values: the series (at least one value; NaNs rejected).
        width: optional output width; the series is resampled by
            averaging into that many buckets.

    Raises:
        ValueError: on empty input or NaNs.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("empty series")
    if np.isnan(arr).any():
        raise ValueError("series contains NaN")
    if width is not None and width > 0 and arr.size > width:
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.array(
            [arr[a:b].mean() for a, b in zip(edges[:-1], edges[1:]) if b > a]
        )
    lo, hi = float(arr.min()), float(arr.max())
    if hi == lo:
        return _BLOCKS[0] * len(arr)
    idx = ((arr - lo) / (hi - lo) * (len(_BLOCKS) - 1)).round().astype(int)
    return "".join(_BLOCKS[i] for i in idx)


def bar_chart(
    values: Mapping[str, float],
    width: int = 40,
    fmt: str = "{:,.1f}",
) -> str:
    """Horizontal bar chart of labelled values.

    Bars scale to the largest |value|; negative values are marked with
    a left-facing fill so orderings stay readable.

    Raises:
        ValueError: on empty input or non-positive width.
    """
    if not values:
        raise ValueError("no values")
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    label_width = max(len(k) for k in values)
    peak = max(abs(v) for v in values.values())
    lines = []
    for label, value in values.items():
        if peak == 0:
            filled = 0
        else:
            filled = int(round(abs(value) / peak * width))
        bar = ("█" * filled) if value >= 0 else ("░" * filled)
        lines.append(
            f"{label:<{label_width}} | {bar:<{width}} {fmt.format(value)}"
        )
    return "\n".join(lines)


def line_chart(
    values: Sequence[float],
    height: int = 8,
    width: int = 64,
    y_fmt: str = "{:,.0f}",
) -> str:
    """A small line chart with a labelled y-axis.

    The series is resampled to ``width`` columns; each column's value
    is drawn as a dot at the proportional row.

    Raises:
        ValueError: on empty input, NaNs, or non-positive dimensions.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("empty series")
    if np.isnan(arr).any():
        raise ValueError("series contains NaN")
    if height <= 1 or width <= 0:
        raise ValueError("height must be > 1 and width positive")
    if arr.size > width:
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.array(
            [arr[a:b].mean() for a, b in zip(edges[:-1], edges[1:]) if b > a]
        )
    lo, hi = float(arr.min()), float(arr.max())
    span = hi - lo if hi > lo else 1.0
    rows = [[" "] * len(arr) for _ in range(height)]
    for col, value in enumerate(arr):
        row = int(round((value - lo) / span * (height - 1)))
        rows[height - 1 - row][col] = "•"
    top_label = y_fmt.format(hi)
    bottom_label = y_fmt.format(lo)
    label_width = max(len(top_label), len(bottom_label))
    lines = []
    for r, row in enumerate(rows):
        if r == 0:
            label = top_label
        elif r == height - 1:
            label = bottom_label
        else:
            label = ""
        lines.append(f"{label:>{label_width}} ┤{''.join(row)}")
    return "\n".join(lines)
