"""Horizon-health rendering for solution certificates.

Turns a sequence of :class:`~repro.obs.certify.Certificate` objects
into terminal-friendly text: a per-slot table (``health_table``) and a
compact dashboard (``health_dashboard``) with sparklines of the KKT
residual and feasibility violation across the horizon.  Both return
plain strings; the ``repro doctor`` CLI command is the main consumer.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.viz.ascii import sparkline

__all__ = ["health_table", "health_dashboard"]


def _sci(value: float) -> str:
    """Fixed-width scientific rendering that keeps 0 readable."""
    if value == 0.0:
        return "0.0e+00"
    return f"{value:.1e}"


def health_table(
    certificates: Sequence[object],
    max_rows: int | None = None,
) -> str:
    """Per-slot certification table.

    One row per certificate: slot index, solver, worst feasibility
    violation (with the offending constraint), KKT residual, duality
    gap, dual source, and a PASS/FAIL verdict.  Failing slots are
    always shown; ``max_rows`` (when set) only truncates *passing*
    rows, so a long healthy horizon stays compact without ever hiding
    a failure.

    Raises:
        ValueError: on an empty certificate sequence.
    """
    certs = list(certificates)
    if not certs:
        raise ValueError("no certificates to render")
    header = (
        f"{'slot':>4}  {'solver':<12} {'feas viol':>9}  "
        f"{'worst constraint':<22} {'kkt':>9}  {'gap':>9}  "
        f"{'duals':<6} verdict"
    )
    rows = [header, "-" * len(header)]
    shown = 0
    hidden = 0
    for cert in certs:
        if not cert.ok:
            verdict = "FAIL"
        elif max_rows is not None and shown >= max_rows:
            hidden += 1
            continue
        else:
            verdict = "PASS"
        if cert.ok:
            shown += 1
        rows.append(
            f"{cert.slot:>4}  {cert.solver:<12} {_sci(cert.worst_violation):>9}  "
            f"{cert.worst_constraint:<22} {_sci(cert.kkt_residual):>9}  "
            f"{_sci(cert.duality_gap):>9}  {cert.dual_source:<6} {verdict}"
        )
    if hidden:
        rows.append(f"... {hidden} more passing slots not shown ...")
    return "\n".join(rows)


def health_dashboard(
    certificates: Sequence[object],
    width: int = 56,
    summary: object | None = None,
) -> str:
    """Compact horizon-health dashboard.

    Headline verdict, pass/fail counts, worst violation and KKT
    residual with the slots they occur at, and log-scale sparklines of
    both series over the horizon (so a single sick slot stands out
    against an otherwise flat week).  Passing the run's
    :class:`~repro.obs.HorizonSummary` as ``summary`` adds the
    execution rows: which executor/client solved the horizon and — if
    a result store was probed — its hit rate.

    Raises:
        ValueError: on an empty certificate sequence.
    """
    certs = list(certificates)
    if not certs:
        raise ValueError("no certificates to render")
    bad = [c for c in certs if not c.ok]
    worst_feas = max(certs, key=lambda c: c.worst_violation)
    worst_kkt = max(certs, key=lambda c: c.kkt_residual)
    total_s = sum(c.certify_s for c in certs)

    def _log_series(values: list[float]) -> list[float]:
        floor = 1e-16
        return [math.log10(max(v, floor)) for v in values]

    feas_spark = sparkline(
        _log_series([c.worst_violation for c in certs]), width=width
    )
    kkt_spark = sparkline(
        _log_series([c.kkt_residual for c in certs]), width=width
    )
    verdict = (
        "HEALTHY" if not bad else f"SUSPECT ({len(bad)}/{len(certs)} slots fail)"
    )
    lines = [
        f"horizon health      : {verdict}",
        f"slots certified     : {len(certs)} "
        f"(feas tol {_sci(certs[0].feas_tol)}, kkt tol {_sci(certs[0].kkt_tol)})",
        f"worst feasibility   : {_sci(worst_feas.worst_violation)} at slot "
        f"{worst_feas.slot} ({worst_feas.worst_constraint})",
        f"worst kkt residual  : {_sci(worst_kkt.kkt_residual)} at slot "
        f"{worst_kkt.slot}",
        f"certification time  : {total_s:.3f} s total, "
        f"{1e3 * total_s / len(certs):.2f} ms/slot",
        f"feas viol (log10)   : {feas_spark}",
        f"kkt resid (log10)   : {kkt_spark}",
    ]
    if summary is not None:
        executor = getattr(summary, "executor", None)
        if executor:
            line = f"executor            : {executor}"
            client = getattr(summary, "client", None)
            if client:
                line += f" (client {client}"
                pending = getattr(summary, "max_pending_observed", 0)
                if pending:
                    line += f", max {pending} pending"
                line += ")"
            lines.append(line)
        warm = getattr(summary, "warm_started_slots", 0)
        reused = getattr(summary, "incumbent_reuse_slots", 0)
        if warm or reused:
            lines.append(
                f"warm starts         : {warm} slots, {reused} incumbent "
                f"reuses, {getattr(summary, 'warm_iterations_saved', 0)} "
                "iterations saved"
            )
        hits = getattr(summary, "store_hits", 0)
        misses = getattr(summary, "store_misses", 0)
        if hits or misses:
            rate = hits / (hits + misses)
            lines.append(
                f"result store        : {hits} hits / {hits + misses} "
                f"probed ({100 * rate:.1f}% from disk)"
            )
    if bad:
        ids = ", ".join(str(c.slot) for c in bad[:12])
        more = "" if len(bad) <= 12 else f" (+{len(bad) - 12} more)"
        lines.append(f"failing slots       : {ids}{more}")
    return "\n".join(lines)
