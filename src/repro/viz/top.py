"""The ``repro top`` dashboard: a run ledger rendered as text frames.

One frame summarizes a run's execution shape — slot throughput, live
pending depth, latency percentiles, per-worker utilization, and the
retry/fallback/failure tallies — from nothing but the ledger's slot
record stream, so the same renderer serves three modes:

- **final** (``repro top RUN``): one frame over the whole ledger;
- **replay** (``--replay``): frames over growing prefixes of the slot
  stream, reconstructing how the run unfolded;
- **follow** (``--follow``): re-load a live ``.part`` ledger and render
  whatever consistent prefix is on disk (torn trailing lines are the
  reader's problem, and :func:`~repro.obs.load_run` already tolerates
  them).

Pure functions over :class:`~repro.obs.LedgerRun`; printing and
looping belong to the CLI.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.obs.ledger import LedgerRun, _percentile
from repro.viz.ascii import bar_chart, sparkline

__all__ = ["render_top", "replay_frames"]


def _throughput_series(times: Sequence[float], bins: int) -> list[float]:
    """Slots harvested per time bucket (uniform buckets over elapsed)."""
    if not times:
        return []
    hi = max(times)
    if hi <= 0:
        return [float(len(times))]
    bins = max(1, bins)
    series = [0.0] * bins
    for t in times:
        idx = min(bins - 1, int(t / hi * bins))
        series[idx] += 1.0
    return series


def _fmt_ms(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    return f"{seconds * 1e3:.2f} ms"


def render_top(
    run: LedgerRun,
    upto: int | None = None,
    width: int = 64,
) -> str:
    """Render one dashboard frame from the first ``upto`` slot records.

    Args:
        run: a parsed ledger (finalized or live).
        upto: number of slot records to include; None means all —
            replay mode passes growing prefixes here.
        width: chart width in characters.

    Returns a multi-line string; an empty run (header only) still
    renders, with the chart rows marked idle.
    """
    slots = run.slots if upto is None else run.slots[:upto]
    header = run.header
    expected = header.get("slots_expected")
    solver = header.get("solver", "?")
    status = "final" if run.finalized and upto is None else "live"
    progress = f"{len(slots)}/{expected}" if expected else str(len(slots))

    lines = [
        f"run {run.run_id}  solver={solver}  [{status}]  slots {progress}",
    ]
    config = header.get("config", {})
    if config:
        knobs = []
        for key in ("client", "workers", "max_pending", "batched"):
            if config.get(key) not in (None, False):
                knobs.append(f"{key}={config[key]}")
        if knobs:
            lines.append("  " + "  ".join(knobs))

    times = [float(s.get("t_rel_s", 0.0)) for s in slots]
    walls = [float(s.get("wall_s", 0.0)) for s in slots]
    elapsed = max(times) if times else 0.0

    if times:
        rate = len(slots) / elapsed if elapsed > 0 else float(len(slots))
        series = _throughput_series(times, min(width, max(1, len(slots))))
        lines.append(
            f"throughput | {sparkline(series, width=width)} {rate:,.1f} slots/s"
        )
    else:
        lines.append("throughput | (no slots harvested yet)")

    pending = [int(s.get("pending", 0)) for s in slots]
    if pending and any(pending):
        lines.append(
            f"pending    | {sparkline([float(p) for p in pending], width=width)} "
            f"now {pending[-1]}, peak {max(pending)}"
        )
    if walls:
        lines.append(
            f"latency    | p50 {_fmt_ms(_percentile(walls, 0.50))}, "
            f"p99 {_fmt_ms(_percentile(walls, 0.99))}, "
            f"max {_fmt_ms(max(walls))}"
        )

    busy: dict[str, float] = {}
    hosts: dict[str, str] = {}
    for s in slots:
        worker = str(s.get("worker", "?"))
        busy[worker] = busy.get(worker, 0.0) + (
            float(s.get("wall_s", 0.0))
            + float(s.get("compile_s", 0.0))
            + float(s.get("certify_s", 0.0))
        )
        if s.get("worker_host"):
            hosts[worker] = str(s["worker_host"])
    if busy:
        label = {
            w: f"{w}@{hosts[w]}" if w in hosts else w for w in busy
        }
        utilization = {
            label[w]: (100.0 * b / elapsed if elapsed > 0 else 0.0)
            for w, b in sorted(busy.items(), key=lambda kv: -kv[1])
        }
        total_busy = sum(busy.values())
        lines.append(f"workers    | {len(busy)} busy ({total_busy:.3f} s total)")
        lines.append(bar_chart(utilization, width=max(10, width - 24), fmt="{:,.1f}%"))

    failed = sum(1 for s in slots if not s.get("ok", False))
    retries = sum(max(0, int(s.get("attempts", 1)) - 1) for s in slots)
    fallbacks = sum(1 for s in slots if s.get("fallback_solver"))
    degraded = sum(1 for s in slots if s.get("degraded"))
    store_hits = sum(1 for s in slots if s.get("store_hit"))
    lines.append(
        f"outcomes   | failed {failed}, retries {retries}, "
        f"fallbacks {fallbacks}, degraded {degraded}, store hits {store_hits}"
    )
    warm = sum(1 for s in slots if s.get("warm_start"))
    if warm:
        reused = sum(1 for s in slots if s.get("incumbent_reuse"))
        saved = sum(int(s.get("iterations_saved", 0)) for s in slots)
        lines.append(
            f"warm chain | {warm} warm slots, {reused} incumbent reuses, "
            f"{saved} iterations saved"
        )
    lineages = [s["lineage"] for s in slots if s.get("lineage")]
    fleet = run.summary.get("fleet") if run.summary else None
    if lineages or fleet:
        resub = sum(max(0, int(li.get("attempts", 1)) - 1) for li in lineages)
        hedged = sum(1 for li in lineages if li.get("hedged"))
        hedge_won = sum(1 for li in lineages if li.get("hedge_won"))
        fleet = fleet or {}
        lines.append(
            f"fleet      | resubmissions {fleet.get('resubmissions', resub)}, "
            f"hedges {fleet.get('hedges_launched', hedged)} "
            f"({fleet.get('hedges_won', hedge_won)} won), workers "
            f"-{fleet.get('workers_lost', 0)}/+{fleet.get('workers_revived', 0)} "
            f"({fleet.get('workers_quarantined', 0)} quarantined)"
        )
    if run.finalized and upto is None and run.summary is not None:
        wall = run.summary.get("wall_s")
        if wall is not None:
            lines.append(f"run wall   | {float(wall):.3f} s")
    return "\n".join(lines)


def replay_frames(
    run: LedgerRun,
    frames: int = 10,
    width: int = 64,
) -> Iterator[tuple[int, str]]:
    """Yield ``(slots_shown, frame)`` pairs over growing slot prefixes.

    The final frame always covers the full slot stream, so a replay of
    N frames ends on exactly the same picture ``render_top(run)`` gives
    (modulo the live/final status tag).
    """
    total = len(run.slots)
    frames = max(1, frames)
    shown: set[int] = set()
    for i in range(1, frames + 1):
        upto = max(1, round(i * total / frames)) if total else 0
        if upto in shown:
            continue
        shown.add(upto)
        yield upto, render_top(run, upto=upto, width=width)
