"""Plot-free visualization: ASCII charts for terminals and logs.

No plotting library exists in the target environment, so the report
and CLI render series as unicode sparklines, bar charts and axis-
labelled line charts.  Everything returns plain strings.
"""

from repro.viz.ascii import bar_chart, line_chart, sparkline
from repro.viz.health import health_dashboard, health_table
from repro.viz.top import render_top, replay_frames

__all__ = [
    "bar_chart",
    "health_dashboard",
    "health_table",
    "line_chart",
    "render_top",
    "replay_frames",
    "sparkline",
]
