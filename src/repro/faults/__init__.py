"""Deterministic fault injection and chaos harness.

``repro.faults`` is the fault plane for the message-passing ADM-G
deployment: seeded, replayable fault plans
(:class:`~repro.faults.plan.FaultPlan`), a transport that injects them
(:class:`~repro.faults.network.FaultyNetwork`), shipped chaos
scenarios, and the ``repro chaos`` harness
(:func:`~repro.faults.chaos.run_chaos`) that runs one over a horizon
and reports the recovery path taken.

The chaos harness and solver are exposed lazily: they import the
distributed coordinator, which itself imports :mod:`repro.faults.plan`.
"""

from __future__ import annotations

from repro.faults.plan import (
    CrashSpec,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    PartitionSpec,
    RecoveryPolicy,
    RetransmitPolicy,
)
from repro.faults.scenarios import SCENARIOS, available_scenarios, scenario_spec

__all__ = [
    "SCENARIOS",
    "ChaosDistributedSolver",
    "ChaosReport",
    "ChurnReport",
    "CrashSpec",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultyNetwork",
    "PartitionSpec",
    "RecoveryPolicy",
    "RetransmitPolicy",
    "available_scenarios",
    "run_chaos",
    "run_worker_churn",
    "scenario_spec",
]

_LAZY = {
    "FaultyNetwork": ("repro.faults.network", "FaultyNetwork"),
    "ChaosDistributedSolver": ("repro.faults.solver", "ChaosDistributedSolver"),
    "ChaosReport": ("repro.faults.chaos", "ChaosReport"),
    "ChurnReport": ("repro.faults.churn", "ChurnReport"),
    "run_chaos": ("repro.faults.chaos", "run_chaos"),
    "run_worker_churn": ("repro.faults.churn", "run_worker_churn"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value
