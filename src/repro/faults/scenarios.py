"""Shipped chaos scenarios, by name.

Each entry is a plain spec dict (exactly what
:meth:`~repro.faults.plan.FaultPlan.from_spec` accepts), so ``repro
chaos --scenario dc-crash`` and a hand-written ``--spec file.json``
travel the same path.  Rounds are ADM-G rounds within each slot; the
same schedule replays in every slot with a slot-derived RNG stream.
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = ["SCENARIOS", "available_scenarios", "scenario_spec"]

SCENARIOS: dict[str, Mapping[str, Any]] = {
    # A WAN having a bad day: heavy loss, some reordering-by-delay,
    # the odd duplicate.  Exercises the budgeted retransmit path.
    "flaky-net": {
        "name": "flaky-net",
        "seed": 0,
        "drop_probability": 0.2,
        "delay_probability": 0.05,
        "duplicate_probability": 0.02,
    },
    # The acceptance scenario: one datacenter subproblem owner dies
    # mid-run and rejoins from its checkpoint while 20% of messages
    # drop.  Exercises crash/revive + checkpoint restore + retransmit.
    "dc-crash": {
        "name": "dc-crash",
        "seed": 0,
        "drop_probability": 0.2,
        "crashes": [{"agent": "dc0", "round": 8, "revive_round": 16}],
    },
    # A front-end region is cut off for a span of rounds; everyone
    # else keeps iterating on stale views of it.
    "partition": {
        "name": "partition",
        "seed": 0,
        "delay_probability": 0.05,
        "partitions": [{"start": 6, "stop": 12, "isolate": ["fe0", "fe1"]}],
    },
    # Rare payload corruption, frequently NaN: the divergence watchdog
    # must catch the blow-up and restart from a healthy checkpoint.
    "bit-rot": {
        "name": "bit-rot",
        "seed": 0,
        "corrupt_probability": 0.004,
        "corrupt_scale": 200.0,
        "corrupt_nan_probability": 0.5,
    },
    # Everything at once, at lower intensity.
    "chaos-monkey": {
        "name": "chaos-monkey",
        "seed": 0,
        "drop_probability": 0.1,
        "delay_probability": 0.05,
        "duplicate_probability": 0.02,
        "corrupt_probability": 0.002,
        "corrupt_scale": 100.0,
        "corrupt_nan_probability": 0.25,
        "crashes": [{"agent": "dc1", "round": 12, "revive_round": 20}],
        "partitions": [{"start": 30, "stop": 36, "isolate": ["fe0"]}],
    },
    # Process-level chaos: SIGKILL-equivalent worker deaths in the
    # execution fleet, not message faults in the algorithm.  The
    # ``kind`` marker routes it to
    # :func:`~repro.faults.churn.run_worker_churn` (a fleet of socket
    # workers under supervision) instead of FaultPlan.
    "worker-churn": {
        "name": "worker-churn",
        "kind": "worker-churn",
        "seed": 0,
        "workers": 2,
        "kills": 1,
        "respawn": True,
    },
}


def available_scenarios() -> tuple[str, ...]:
    """Shipped scenario names, sorted."""
    return tuple(sorted(SCENARIOS))


def scenario_spec(name: str) -> Mapping[str, Any]:
    """The spec dict for a shipped scenario.

    Raises:
        KeyError: for an unknown name, listing what ships.
    """
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown chaos scenario {name!r}; shipped: "
            f"{', '.join(available_scenarios())}"
        ) from None
