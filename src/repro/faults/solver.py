"""A slot solver that runs the distributed ADM-G under a fault plan.

:class:`ChaosDistributedSolver` adapts the fault-injected
:class:`~repro.distributed.coordinator.DistributedRuntime` to the
engine's :class:`~repro.engine.protocol.SlotSolver` surface, deriving
slot ``t``'s deterministic injector from the plan on the t-th call.
That mapping makes the solver *stateful and strictly serial*: run it
through an engine with ``workers=1`` and a retry budget of 1 (a
re-solve would consume the next slot's fault stream).  The
``repro chaos`` harness (:func:`repro.faults.chaos.run_chaos`) wires
exactly that up.

With ``escalate_degraded=True`` a degraded completion raises
:class:`DegradedRunError` instead of returning, which is what lets the
engine's fallback chain (e.g. ``centralized`` → ``proportional``)
rescue the slot — the paper's distributed deployment falling back to a
centralized solve when the control plane cannot converge.
"""

from __future__ import annotations

from typing import Any

from repro.core.problem import UFCProblem
from repro.distributed.coordinator import DistributedRun, DistributedRuntime
from repro.engine.protocol import SlotResult
from repro.faults.plan import FaultInjector, FaultPlan, RecoveryPolicy

__all__ = ["ChaosDistributedSolver", "DegradedRunError"]


class DegradedRunError(RuntimeError):
    """A fault-injected run exhausted its budgets and completed degraded.

    Carries the degraded :class:`DistributedRun` so diagnostics (and
    the chaos report) can still see the recovery path that was taken
    before the engine escalated to a fallback solver.
    """

    def __init__(self, message: str, run: DistributedRun) -> None:
        super().__init__(message)
        self.run = run


class ChaosDistributedSolver:
    """Distributed ADM-G under an injected :class:`FaultPlan`.

    Args:
        plan: fault plan, spec dict, or shipped scenario name.
        recovery: checkpoint/watchdog/retransmit budgets.
        solver: ADM-G hyper-parameters (defaults to the paper's).
        escalate_degraded: raise :class:`DegradedRunError` on a
            degraded completion so an engine fallback chain can rescue
            the slot; False returns the degraded (still feasible)
            result with ``extras["degraded"]`` set.

    Attributes:
        injectors: one consumed :class:`FaultInjector` per solved slot,
            in slot order — the full fault/recovery ledger of a run.
        runs: the per-slot :class:`DistributedRun` records (including
            runs that were escalated away).
    """

    name = "chaos-distributed"
    supports_warm_start = False

    def __init__(
        self,
        plan: FaultPlan | str | dict,
        recovery: RecoveryPolicy | None = None,
        solver: Any | None = None,
        escalate_degraded: bool = False,
    ) -> None:
        self.plan = FaultPlan.from_spec(plan)
        self.recovery = recovery if recovery is not None else RecoveryPolicy()
        self.solver = solver
        self.escalate_degraded = bool(escalate_degraded)
        self.injectors: list[FaultInjector] = []
        self.runs: list[DistributedRun] = []
        self._next_slot = 0

    def compile(self, model: Any, strategy: Any) -> None:
        """No slot-invariant structure: each slot builds fresh agents."""
        return None

    def solve(
        self,
        problem: UFCProblem,
        compiled: Any | None = None,
        warm: Any | None = None,
    ) -> SlotResult:
        """Solve the next slot under its derived fault injector.

        Raises:
            DegradedRunError: when the run completes degraded and
                ``escalate_degraded`` is set (the engine's fallback
                chain catches this and rescues the slot).
        """
        slot = self._next_slot
        self._next_slot += 1
        injector = self.plan.injector(slot)
        self.injectors.append(injector)
        runtime = DistributedRuntime(
            problem,
            solver=self.solver,
            faults=injector,
            recovery=self.recovery,
        )
        run = runtime.run()
        self.runs.append(run)
        if run.degraded and self.escalate_degraded:
            raise DegradedRunError(
                f"slot {slot}: fault-injected run completed degraded "
                f"(converged={run.converged}, watchdog trips="
                f"{run.watchdog_trips}) under plan {self.plan.name!r}",
                run,
            )
        return SlotResult(
            allocation=run.allocation,
            ufc=run.ufc,
            iterations=run.iterations,
            converged=run.converged,
            extras={
                "degraded": run.degraded,
                "fault_counts": run.fault_counts,
                "retransmits": run.retransmits,
                "sends_failed": run.sends_failed,
                "checkpoint_restores": run.checkpoint_restores,
                "watchdog_trips": run.watchdog_trips,
                "messages_sent": run.messages_sent,
                "bytes_sent": run.bytes_sent,
            },
        )
