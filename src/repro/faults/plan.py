"""Deterministic fault plans and per-slot fault injectors.

A :class:`FaultPlan` is a *replayable chaos scenario*: a plain
dict/JSON spec naming which faults to inject (message drop / delay /
duplication / corruption, agent crashes, network partitions) plus a
seed.  ``plan.injector(slot)`` derives an independent, deterministic
:class:`FaultInjector` for each horizon slot, so the same plan over
the same horizon reproduces the exact same fault sequence — chaos runs
are experiments, not dice rolls.

The injector is pure decision-making: it owns the RNG, the fault
schedule and the event/counter log, but never touches messages or
agent state itself.  The transport
(:class:`~repro.faults.network.FaultyNetwork`) and the runtime
(:class:`~repro.distributed.coordinator.DistributedRuntime`) consult
it and record what they did, which keeps the arithmetic of the solve
path free of any RNG when no plan is active.

This module imports nothing from the rest of the library so every
layer (transport, runtime, engine, CLI) can depend on it without
cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

import numpy as np

__all__ = [
    "CrashSpec",
    "PartitionSpec",
    "RetransmitPolicy",
    "RecoveryPolicy",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
]

#: Fault kinds that land in the (bounded) event log; high-frequency
#: kinds (drop/delay/duplicate/corrupt/unreachable) are counted only.
LOGGED_KINDS = frozenset(
    {
        "crash",
        "revive",
        "checkpoint_restore",
        "watchdog_trip",
        "watchdog_exhausted",
        "send_failed",
        "partition",
        "degraded_completion",
        "round_error",
    }
)


@dataclass(frozen=True)
class CrashSpec:
    """Crash one agent for a contiguous span of rounds.

    Attributes:
        agent: agent id as the coordinator names them (``"fe3"``,
            ``"dc0"``).
        round: first round (1-based) the agent is down.
        revive_round: first round the agent is back up (restored from
            its last checkpoint); None means it never rejoins.
    """

    agent: str
    round: int
    revive_round: int | None = None

    def __post_init__(self) -> None:
        if self.round < 1:
            raise ValueError(f"crash round must be >= 1, got {self.round}")
        if self.revive_round is not None and self.revive_round <= self.round:
            raise ValueError(
                f"revive_round must exceed the crash round, got "
                f"{self.revive_round} <= {self.round}"
            )

    def down(self, round_: int) -> bool:
        """Whether the agent is down in ``round_``."""
        if round_ < self.round:
            return False
        return self.revive_round is None or round_ < self.revive_round


@dataclass(frozen=True)
class PartitionSpec:
    """Cut the listed agents off from everyone else for a round span.

    Links *within* the isolated set and *within* the rest of the fleet
    keep working; only traffic crossing the cut is lost.  Rounds are
    the half-open interval ``[start, stop)``.
    """

    start: int
    stop: int
    isolate: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.start < 1 or self.stop <= self.start:
            raise ValueError(
                f"partition needs 1 <= start < stop, got [{self.start}, {self.stop})"
            )
        if not self.isolate:
            raise ValueError("partition must isolate at least one agent")

    def cuts(self, sender: str, receiver: str, round_: int) -> bool:
        """Whether the link sender->receiver is severed in ``round_``."""
        if not self.start <= round_ < self.stop:
            return False
        return (sender in self.isolate) != (receiver in self.isolate)


@dataclass(frozen=True)
class RetransmitPolicy:
    """Budgeted at-least-once delivery with exponential backoff.

    A sender keeps retransmitting a dropped message up to
    ``max_attempts`` total attempts; each retry waits
    ``backoff_base_s * backoff_factor**k`` (*simulated* — accounted,
    never slept, so chaos runs stay fast and deterministic).  When the
    budget is exhausted the send *fails* and the receiver proceeds on
    its stale view — unlike the unbudgeted
    :class:`~repro.distributed.messages.LossyNetwork` resend loop,
    which retries forever at zero cost.
    """

    max_attempts: int = 4
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_s < 0 or self.backoff_factor < 1.0:
            raise ValueError(
                "backoff needs base >= 0 and factor >= 1, got "
                f"{self.backoff_base_s}/{self.backoff_factor}"
            )


@dataclass(frozen=True)
class RecoveryPolicy:
    """Checkpoint / watchdog / degradation knobs for the runtime.

    Attributes:
        checkpoint_every: snapshot the fleet every k healthy rounds.
        watchdog_window: trip after this many *consecutive* rounds of
            growing residual (NaN/Inf trips immediately).
        watchdog_warmup: rounds to ignore before growth counting starts
            (the first iterations climb out of the zero start).
        growth_factor: a round only counts toward the growth streak
            when its residual exceeds the previous round's by this
            factor — plain packet loss makes residuals *oscillate*,
            and the watchdog must not mistake that for divergence.
            Growth tracking is also suspended while any agent is
            crashed (a half-fleet cannot be expected to contract).
        damping: multiply every agent's Gaussian back-substitution step
            ``eps`` by this on each watchdog restart.
        min_eps: floor for the damped step (ADM-G theory wants
            ``eps > 0.5``).
        max_restarts: watchdog restarts before the runtime stops
            restoring and completes degraded.
        retransmit: the per-message retry budget.
    """

    checkpoint_every: int = 1
    watchdog_window: int = 4
    watchdog_warmup: int = 10
    growth_factor: float = 1.2
    damping: float = 0.9
    min_eps: float = 0.55
    max_restarts: int = 3
    retransmit: RetransmitPolicy = field(default_factory=RetransmitPolicy)

    def __post_init__(self) -> None:
        if self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.watchdog_window < 1:
            raise ValueError(
                f"watchdog_window must be >= 1, got {self.watchdog_window}"
            )
        if self.growth_factor < 1.0:
            raise ValueError(
                f"growth_factor must be >= 1, got {self.growth_factor}"
            )
        if not 0.0 < self.damping <= 1.0:
            raise ValueError(f"damping must lie in (0, 1], got {self.damping}")
        if self.max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {self.max_restarts}")


@dataclass(frozen=True)
class FaultEvent:
    """One notable fault or recovery action (bounded log).

    Attributes:
        kind: event kind (one of :data:`LOGGED_KINDS`).
        round: ADM-G round the event happened in (0 = outside rounds).
        subject: the affected agent or link (``"dc0"``, ``"fe1->dc2"``).
        info: free-form detail for the report.
    """

    kind: str
    round: int
    subject: str
    info: str = ""


def _probability(spec: Mapping[str, Any], key: str, default: float = 0.0) -> float:
    value = float(spec.get(key, default))
    if not 0.0 <= value < 1.0:
        raise ValueError(f"{key} must lie in [0, 1), got {value}")
    return value


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, replayable chaos scenario.

    Build one from a dict/JSON spec with :meth:`from_spec` (also
    accepts a shipped scenario name via
    :mod:`repro.faults.scenarios`); :meth:`to_dict` round-trips it.

    Attributes:
        name: scenario name (for reports and metric labels).
        seed: base RNG seed; slot ``t`` uses ``default_rng((seed, t))``.
        drop_probability: per-transmission-attempt drop chance.
        delay_probability: chance a delivered message lands next round.
        duplicate_probability: chance of an extra delivered copy.
        corrupt_probability: chance a delivered payload is perturbed.
        corrupt_scale: multiplicative magnitude of a corruption.
        corrupt_nan_probability: chance a corruption is a NaN instead
            of a scale (exercises the divergence watchdog).
        crashes: agent crash/revive schedule.
        partitions: network partition schedule.
    """

    name: str = "custom"
    seed: int = 0
    drop_probability: float = 0.0
    delay_probability: float = 0.0
    duplicate_probability: float = 0.0
    corrupt_probability: float = 0.0
    corrupt_scale: float = 100.0
    corrupt_nan_probability: float = 0.0
    crashes: tuple[CrashSpec, ...] = ()
    partitions: tuple[PartitionSpec, ...] = ()

    @classmethod
    def from_spec(cls, spec: "FaultPlan | str | Mapping[str, Any]") -> "FaultPlan":
        """A plan from a spec dict, a shipped scenario name, or a plan."""
        if isinstance(spec, FaultPlan):
            return spec
        if isinstance(spec, str):
            from repro.faults.scenarios import scenario_spec

            return cls.from_spec(scenario_spec(spec))
        if not isinstance(spec, Mapping):
            raise TypeError(
                f"fault plan spec must be a dict, scenario name or FaultPlan, "
                f"got {type(spec).__name__!r}"
            )
        known = {
            "name", "seed", "drop_probability", "delay_probability",
            "duplicate_probability", "corrupt_probability", "corrupt_scale",
            "corrupt_nan_probability", "crashes", "partitions",
        }
        unknown = set(spec) - known
        if unknown:
            raise ValueError(
                f"unknown fault plan keys: {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(known))}"
            )
        crashes = tuple(
            c if isinstance(c, CrashSpec) else CrashSpec(
                agent=str(c["agent"]),
                round=int(c["round"]),
                revive_round=(
                    None if c.get("revive_round") is None
                    else int(c["revive_round"])
                ),
            )
            for c in spec.get("crashes", ())
        )
        partitions = tuple(
            p if isinstance(p, PartitionSpec) else PartitionSpec(
                start=int(p["start"]),
                stop=int(p["stop"]),
                isolate=tuple(str(a) for a in p["isolate"]),
            )
            for p in spec.get("partitions", ())
        )
        return cls(
            name=str(spec.get("name", "custom")),
            seed=int(spec.get("seed", 0)),
            drop_probability=_probability(spec, "drop_probability"),
            delay_probability=_probability(spec, "delay_probability"),
            duplicate_probability=_probability(spec, "duplicate_probability"),
            corrupt_probability=_probability(spec, "corrupt_probability"),
            corrupt_scale=float(spec.get("corrupt_scale", 100.0)),
            corrupt_nan_probability=_probability(spec, "corrupt_nan_probability"),
            crashes=crashes,
            partitions=partitions,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready spec that :meth:`from_spec` accepts back."""
        return {
            "name": self.name,
            "seed": self.seed,
            "drop_probability": self.drop_probability,
            "delay_probability": self.delay_probability,
            "duplicate_probability": self.duplicate_probability,
            "corrupt_probability": self.corrupt_probability,
            "corrupt_scale": self.corrupt_scale,
            "corrupt_nan_probability": self.corrupt_nan_probability,
            "crashes": [
                {
                    "agent": c.agent,
                    "round": c.round,
                    "revive_round": c.revive_round,
                }
                for c in self.crashes
            ],
            "partitions": [
                {"start": p.start, "stop": p.stop, "isolate": list(p.isolate)}
                for p in self.partitions
            ],
        }

    @property
    def message_faults_active(self) -> bool:
        """Whether any per-message fault can fire."""
        return any(
            p > 0
            for p in (
                self.drop_probability,
                self.delay_probability,
                self.duplicate_probability,
                self.corrupt_probability,
            )
        )

    def injector(self, slot: int = 0) -> "FaultInjector":
        """The deterministic injector for horizon slot ``slot``."""
        return FaultInjector(self, slot)


class FaultInjector:
    """Per-slot fault oracle: seeded decisions plus the fault ledger.

    One injector serves exactly one slot's run.  All randomness lives
    here; the transport and runtime ask (``attempt``, ``corrupts``,
    ``duplicates``, ``crashed``, ``cut``) and report what they did
    (``count``, ``record``), so the full fault history of a run is one
    object: :attr:`counts` (every fault, cheap) and :attr:`events`
    (notable faults, bounded by ``max_events``).
    """

    def __init__(self, plan: FaultPlan, slot: int = 0, max_events: int = 512) -> None:
        self.plan = plan
        self.slot = int(slot)
        self.max_events = int(max_events)
        self._rng = np.random.default_rng((plan.seed, self.slot))
        self.counts: dict[str, int] = {}
        self.events: list[FaultEvent] = []
        self.events_dropped = 0

    # -- ledger --------------------------------------------------------------

    def count(self, kind: str, amount: int = 1) -> None:
        """Bump the counter for ``kind``."""
        self.counts[kind] = self.counts.get(kind, 0) + amount

    def record(self, kind: str, round_: int, subject: str, info: str = "") -> None:
        """Count ``kind`` and, for notable kinds, log the event."""
        self.count(kind)
        if kind in LOGGED_KINDS:
            if len(self.events) < self.max_events:
                self.events.append(FaultEvent(kind, round_, subject, info))
            else:
                self.events_dropped += 1

    @property
    def faults_injected(self) -> int:
        """Total injected faults (drops, delays, corruptions, ...).

        Recovery actions (restores, watchdog trips) are bookkeeping,
        not injections, and are excluded.
        """
        injected = (
            "drop", "delay", "duplicate", "corrupt", "partition",
            "crash", "unreachable",
        )
        return sum(self.counts.get(k, 0) for k in injected)

    def summary(self) -> dict[str, int]:
        """A copy of the fault/recovery counters."""
        return dict(self.counts)

    # -- schedule queries (deterministic, no RNG) ----------------------------

    def crashed(self, agent: str, round_: int) -> bool:
        """Whether ``agent`` is down in ``round_``."""
        return any(
            c.agent == agent and c.down(round_) for c in self.plan.crashes
        )

    def crashed_agents(self, round_: int) -> frozenset[str]:
        """All agents down in ``round_``."""
        return frozenset(
            c.agent for c in self.plan.crashes if c.down(round_)
        )

    def cut(self, sender: str, receiver: str, round_: int) -> bool:
        """Whether a partition severs sender->receiver in ``round_``."""
        return any(p.cuts(sender, receiver, round_) for p in self.plan.partitions)

    # -- randomized per-message decisions ------------------------------------

    def attempt(self) -> str:
        """Fate of one transmission attempt: drop, delay or deliver."""
        plan = self.plan
        if plan.drop_probability and self._rng.random() < plan.drop_probability:
            return "drop"
        if plan.delay_probability and self._rng.random() < plan.delay_probability:
            return "delay"
        return "deliver"

    def corrupts(self) -> bool:
        """Whether this delivered payload gets perturbed."""
        p = self.plan.corrupt_probability
        return bool(p) and self._rng.random() < p

    def corrupt_value(self, value: float) -> float:
        """The perturbed payload value (possibly NaN)."""
        plan = self.plan
        if (
            plan.corrupt_nan_probability
            and self._rng.random() < plan.corrupt_nan_probability
        ):
            return float("nan")
        # A signed multiplicative blow-up: large enough to destabilize
        # the iteration, finite so only the growth watchdog sees it.
        factor = 1.0 + plan.corrupt_scale * (2.0 * self._rng.random() - 1.0)
        return float(value) * factor

    def duplicates(self) -> bool:
        """Whether this delivered message gets an extra copy."""
        p = self.plan.duplicate_probability
        return bool(p) and self._rng.random() < p

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)
