"""Worker-churn chaos: kill exec workers mid-run, supervised recovery.

The shipped message-level scenarios (:mod:`repro.faults.scenarios`)
torture the ADM-G *algorithm*; ``worker-churn`` tortures the
*execution fleet* instead.  A socket fleet of loopback workers solves
the horizon slot by slot while a seeded schedule hard-kills workers
mid-solve (``os._exit`` from inside the victim, no cleanup — the
process-level equivalent of a machine dying).  The
:class:`~repro.exec.FleetSupervisor` must detect each loss, resubmit
the orphaned slot to a survivor, and respawn the fleet back to
strength; the run passes only if every slot completes, certifies
feasible, and the total UFC is bit-identical to a fault-free run —
resubmission re-executes a deterministic solve, so churn must be
invisible in the numbers.

Each poisoned slot kills its worker exactly once (a marker file keyed
by the slot digest makes the retry attempt solve normally), so the
fault count is exact and the run always terminates.
"""

from __future__ import annotations

import os
import random
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.strategies import HYBRID, Strategy
from repro.engine.horizon import HorizonEngine
from repro.engine.registry import create_solver
from repro.exec import RetryBudget, SocketClient, SupervisorConfig
from repro.exec.store import problem_digest
from repro.obs.metrics import MetricsRegistry

__all__ = ["ChurnReport", "WorkerChurnSolver", "run_worker_churn"]

#: Spec marker that routes a scenario to this harness instead of the
#: message-level :class:`~repro.faults.plan.FaultPlan` path.
CHURN_KIND = "worker-churn"


class WorkerChurnSolver:
    """Centralized solver whose worker dies on scheduled slots.

    Picklable (module-level, plain attributes) so it ships to socket
    workers.  On a poisoned slot the worker claims the kill marker and
    ``os._exit(1)``s mid-solve — no result, no goodbye — exactly once
    per poisoned slot; the resubmitted attempt finds the marker and
    solves normally.  Every completed solve is the plain centralized
    answer, so outcomes are bit-identical to a fault-free run.
    """

    supports_warm_start = False
    name = "worker-churn"

    def __init__(self, die_digests: frozenset[str], marker_dir: str) -> None:
        self.die_digests = die_digests
        self.marker_dir = marker_dir

    def compile(self, model: Any, strategy: Any) -> None:
        return None

    def solve(self, problem: Any, compiled: Any = None, warm: Any = None):
        digest = problem_digest(problem, self.name)
        if digest in self.die_digests:
            marker = os.path.join(self.marker_dir, digest[:24])
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                pass  # already died here once; solve normally
            else:
                os.close(fd)
                os._exit(1)
        return create_solver("centralized").solve(problem)


@dataclass
class ChurnReport:
    """Everything a worker-churn run learned, in one record."""

    scenario: dict[str, Any]
    horizon: int
    strategy: str
    seed: int
    workers: int
    killed_slots: list[int]
    failed_slots: int
    feasible_slots: int
    resubmissions: int
    hedges_launched: int
    workers_lost: int
    workers_revived: int
    workers_quarantined: int
    lineages: list[dict[str, Any]]
    ufc_churn: float
    ufc_fault_free: float
    wall_s: float
    baseline_wall_s: float
    ledger_path: Any | None = None
    metrics: MetricsRegistry = field(repr=False, default_factory=MetricsRegistry)

    @property
    def ufc_identical(self) -> bool:
        """Bit-identity with the fault-free run (the determinism gate)."""
        return self.ufc_churn == self.ufc_fault_free

    @property
    def passed(self) -> bool:
        """Every slot completed and certified, every kill recovered,
        and the numbers are bit-identical to the fault-free run."""
        return (
            self.failed_slots == 0
            and self.feasible_slots == self.horizon
            and self.workers_lost >= len(self.killed_slots)
            and self.resubmissions >= len(self.killed_slots)
            and self.ufc_identical
        )

    def to_dict(self) -> dict[str, Any]:
        """Machine-readable report for ``repro chaos --json``."""
        return {
            "scenario": self.scenario,
            "horizon": self.horizon,
            "strategy": self.strategy,
            "seed": self.seed,
            "verdict": "PASS" if self.passed else "FAIL",
            "workers": self.workers,
            "killed_slots": list(self.killed_slots),
            "fleet": {
                "resubmissions": self.resubmissions,
                "hedges_launched": self.hedges_launched,
                "workers_lost": self.workers_lost,
                "workers_revived": self.workers_revived,
                "workers_quarantined": self.workers_quarantined,
            },
            "certification": {
                "feasible_slots": self.feasible_slots,
                "failed_slots": self.failed_slots,
            },
            "ufc": {
                "churn": self.ufc_churn,
                "fault_free": self.ufc_fault_free,
                "bit_identical": self.ufc_identical,
            },
            "lineages": list(self.lineages),
            "wall_s": round(self.wall_s, 3),
            "baseline_wall_s": round(self.baseline_wall_s, 3),
            "ledger_path": (
                None if self.ledger_path is None else str(self.ledger_path)
            ),
        }

    def render(self, max_events: int = 12) -> str:
        """The human-readable fleet-resilience report the CLI prints."""
        kills = ", ".join(str(t) for t in self.killed_slots) or "none"
        lines = [
            f"chaos report: scenario 'worker-churn' over {self.horizon} "
            f"slots (strategy {self.strategy}, seed {self.seed})",
            f"  fleet           : {self.workers} socket workers, "
            f"kills scheduled at slot(s) {kills}",
            f"  losses          : {self.workers_lost} workers lost, "
            f"{self.workers_revived} respawned, "
            f"{self.workers_quarantined} quarantined",
            f"  recovery        : {self.resubmissions} resubmissions, "
            f"{self.hedges_launched} hedges",
            f"  certification   : {self.feasible_slots}/{self.horizon} "
            f"feasible, {self.failed_slots} failed",
            f"  UFC             : {self.ufc_churn:.3f} churn vs "
            f"{self.ufc_fault_free:.3f} fault-free  "
            f"({'bit-identical' if self.ufc_identical else 'DIVERGED'})",
            f"  wall            : {self.wall_s:.2f} s churn, "
            f"{self.baseline_wall_s:.2f} s fault-free baseline",
            f"  verdict         : {'PASS' if self.passed else 'FAIL'}",
        ]
        if self.lineages:
            shown = self.lineages[:max_events]
            lines.append(
                f"  retry lineage (first {len(shown)} of "
                f"{len(self.lineages)}):"
            )
            for row in shown:
                workers = "->".join(row.get("workers") or []) or "?"
                lines.append(
                    f"    slot {row['slot']:>3}: {row.get('attempts', 1)} "
                    f"attempt(s) over {workers} -> {row.get('outcome', '?')}"
                )
        return "\n".join(lines)


def run_worker_churn(
    scenario: Mapping[str, Any] | None = None,
    hours: int = 24,
    seed: int = 2014,
    strategy: Strategy = HYBRID,
    metrics: MetricsRegistry | None = None,
    ledger: Any | None = None,
) -> ChurnReport:
    """Run the worker-churn scenario over a horizon.

    Args:
        scenario: spec dict (``workers``, ``kills``, ``seed``,
            ``respawn``); None uses the shipped defaults.
        hours: horizon length (slots of the default bundle).
        seed: trace-bundle seed (the *kill* seed lives in the spec).
        strategy: power-sourcing strategy for every slot.
        metrics: registry for the supervisor's fleet counters (a fresh
            one is created when None; lands on ``report.metrics``).
        ledger: optional ledger directory or
            :class:`~repro.obs.RunLedger` — the run's retry lineage is
            recorded per slot, and the finalized path lands on
            ``report.ledger_path``.
    """
    from repro.sim.simulator import Simulator, build_model
    from repro.traces.datasets import default_bundle

    spec = dict(scenario or {})
    workers = int(spec.get("workers", 2))
    kills = int(spec.get("kills", 1))
    kill_seed = int(spec.get("seed", 0))
    respawn = bool(spec.get("respawn", True))
    if workers < 2:
        raise ValueError("worker-churn needs at least 2 workers to survive")
    if not 0 < kills < hours:
        raise ValueError(f"kills must be in (0, {hours}), got {kills}")

    registry = metrics if metrics is not None else MetricsRegistry()
    bundle = default_bundle(hours=hours, seed=seed)
    model = build_model(bundle)
    sim = Simulator(model, bundle)
    problems = [sim.problem_for_slot(t, strategy) for t in range(bundle.hours)]

    rng = random.Random((kill_seed << 16) ^ seed)
    killed_slots = sorted(rng.sample(range(len(problems)), kills))
    die_digests = frozenset(
        problem_digest(problems[t], WorkerChurnSolver.name)
        for t in killed_slots
    )

    marker_dir = tempfile.mkdtemp(prefix="repro-churn-")
    client = SocketClient(workers=workers)
    try:
        engine = HorizonEngine(
            WorkerChurnSolver(die_digests, marker_dir),
            client=client,
            chunk_size=1,
            certify=True,
            metrics=registry,
            ledger=ledger,
            supervision=SupervisorConfig(
                retry=RetryBudget(max_attempts=3),
                respawn=respawn,
                max_respawns=max(2, kills),
            ),
        )
        start = time.perf_counter()
        outcomes = engine.run(problems)
        wall_s = time.perf_counter() - start
    finally:
        client.close()
        shutil.rmtree(marker_dir, ignore_errors=True)

    baseline = HorizonEngine("centralized")
    base_start = time.perf_counter()
    base_outcomes = baseline.run(problems)
    baseline_wall_s = time.perf_counter() - base_start

    failed = feasible = 0
    ufc_churn = 0.0
    lineages: list[dict[str, Any]] = []
    for outcome in outcomes:
        if not outcome.ok:
            failed += 1
        else:
            ufc_churn += outcome.result.ufc
            cert = outcome.certificate
            if cert is not None and cert.feasible:
                feasible += 1
        if outcome.lineage is not None:
            lineages.append({"slot": outcome.index, **outcome.lineage})
    ufc_fault_free = sum(o.result.ufc for o in base_outcomes if o.result)

    summary = engine.last_summary
    fleet = (summary.fleet if summary else None) or {}
    return ChurnReport(
        scenario={"name": CHURN_KIND, **spec},
        horizon=len(problems),
        strategy=strategy.name,
        seed=seed,
        workers=workers,
        killed_slots=killed_slots,
        failed_slots=failed,
        feasible_slots=feasible,
        resubmissions=fleet.get("resubmissions", 0),
        hedges_launched=fleet.get("hedges_launched", 0),
        workers_lost=fleet.get("workers_lost", 0),
        workers_revived=fleet.get("workers_revived", 0),
        workers_quarantined=fleet.get("workers_quarantined", 0),
        lineages=lineages,
        ufc_churn=ufc_churn,
        ufc_fault_free=ufc_fault_free,
        wall_s=wall_s,
        baseline_wall_s=baseline_wall_s,
        ledger_path=engine.last_ledger_path,
        metrics=registry,
    )
