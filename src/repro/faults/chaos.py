"""Run a chaos scenario over a horizon and report the recovery path.

:func:`run_chaos` is the ``repro chaos`` CLI's engine room: it solves
``hours`` slots of the default bundle with the distributed ADM-G under
an injected :class:`~repro.faults.plan.FaultPlan` (via
:class:`~repro.faults.solver.ChaosDistributedSolver` and the
:class:`~repro.engine.horizon.HorizonEngine` fallback chain), solves
the same horizon fault-free as the baseline, certifies every faulty
slot a posteriori, and aggregates everything — faults injected,
retransmits, checkpoint restores, watchdog trips, engine fallbacks,
UFC degradation — into a :class:`ChaosReport`.

The report's verdict gates on *feasibility*: every slot must produce
an allocation that passes the certification feasibility audit.  KKT
optimality is reported but not gated — under heavy faults a rescued
slot is expected to be feasible-but-suboptimal; that is what graceful
degradation means.

All fault/recovery totals are also recorded into the
:class:`~repro.obs.MetricsRegistry` (``repro_faults_total{kind=...}``
plus the engine's retry/fallback/degraded counters), so the printed
report and the metrics surface agree by construction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.strategies import HYBRID, Strategy
from repro.engine.horizon import HorizonEngine
from repro.engine.resilience import ResilienceConfig, RetryPolicy
from repro.faults.plan import FaultPlan, RecoveryPolicy
from repro.faults.solver import ChaosDistributedSolver
from repro.obs.metrics import MetricsRegistry

__all__ = ["ChaosReport", "run_chaos"]

#: Default engine fallback chain for chaos runs: a slot whose
#: fault-injected distributed solve completes degraded is rescued by a
#: local centralized solve, then by the proportional heuristic.
DEFAULT_FALLBACK = ("centralized", "proportional")


@dataclass
class ChaosReport:
    """Everything a chaos run learned, in one record.

    ``slots`` rows carry per-slot recovery detail:
    ``(index, solver, converged, degraded, iterations, retransmits,
    checkpoint_restores, watchdog_trips, ufc, feasible)``.
    """

    scenario: dict[str, Any]
    horizon: int
    strategy: str
    seed: int
    faults_injected: int
    fault_counts: dict[str, int]
    events: list[dict[str, Any]]
    events_dropped: int
    slots: list[dict[str, Any]]
    failed_slots: int
    degraded_slots: int
    fallback_slots: int
    engine_retries: int
    retransmits: int
    sends_failed: int
    checkpoint_restores: int
    watchdog_trips: int
    feasible_slots: int
    kkt_suspect_slots: int
    ufc_faulty: float
    ufc_fault_free: float
    wall_s: float
    baseline_wall_s: float
    metrics: MetricsRegistry = field(repr=False, default_factory=MetricsRegistry)

    @property
    def ufc_degradation_pct(self) -> float:
        """UFC lost to faults, as a percentage of the fault-free total."""
        if self.ufc_fault_free == 0.0:
            return 0.0
        return (
            100.0
            * (self.ufc_fault_free - self.ufc_faulty)
            / abs(self.ufc_fault_free)
        )

    @property
    def passed(self) -> bool:
        """Zero failed slots and every allocation certified feasible."""
        return self.failed_slots == 0 and self.feasible_slots == self.horizon

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary (events rendered as dicts)."""
        return {
            "scenario": self.scenario,
            "horizon": self.horizon,
            "strategy": self.strategy,
            "seed": self.seed,
            "verdict": "PASS" if self.passed else "FAIL",
            "faults_injected": self.faults_injected,
            "fault_counts": dict(sorted(self.fault_counts.items())),
            "recovery": {
                "retransmits": self.retransmits,
                "sends_failed": self.sends_failed,
                "checkpoint_restores": self.checkpoint_restores,
                "watchdog_trips": self.watchdog_trips,
                "engine_retries": self.engine_retries,
                "fallback_slots": self.fallback_slots,
                "degraded_slots": self.degraded_slots,
            },
            "certification": {
                "feasible_slots": self.feasible_slots,
                "kkt_suspect_slots": self.kkt_suspect_slots,
                "failed_slots": self.failed_slots,
            },
            "ufc": {
                "faulty": self.ufc_faulty,
                "fault_free": self.ufc_fault_free,
                "degradation_pct": self.ufc_degradation_pct,
            },
            "wall_s": round(self.wall_s, 3),
            "baseline_wall_s": round(self.baseline_wall_s, 3),
            "slots": self.slots,
            "events": list(self.events),
            "events_dropped": self.events_dropped,
        }

    def render(self, max_events: int = 12) -> str:
        """The human-readable resilience report the CLI prints."""
        injected_kinds = (
            "drop", "delay", "duplicate", "corrupt", "partition",
            "crash", "unreachable",
        )
        counts = ", ".join(
            f"{kind} {self.fault_counts[kind]}"
            for kind in injected_kinds
            if self.fault_counts.get(kind)
        )
        lines = [
            f"chaos report: scenario {self.scenario['name']!r} over "
            f"{self.horizon} slots (strategy {self.strategy}, seed {self.seed})",
            f"  faults injected : {self.faults_injected}  ({counts or 'none'})",
            f"  network         : {self.retransmits} retransmits, "
            f"{self.sends_failed} sends abandoned",
            f"  recovery        : {self.checkpoint_restores} checkpoint "
            f"restores, {self.watchdog_trips} watchdog trips",
            f"  engine          : {self.engine_retries} retries, "
            f"{self.fallback_slots} fallback slots, "
            f"{self.degraded_slots} degraded distributed runs",
            f"  certification   : {self.feasible_slots}/{self.horizon} "
            f"feasible, {self.kkt_suspect_slots} KKT-suspect, "
            f"{self.failed_slots} failed",
            f"  UFC             : {self.ufc_faulty:.3f} faulty vs "
            f"{self.ufc_fault_free:.3f} fault-free  "
            f"(degradation {self.ufc_degradation_pct:.3f}%)",
            f"  wall            : {self.wall_s:.2f} s chaos, "
            f"{self.baseline_wall_s:.2f} s fault-free baseline",
            f"  verdict         : {'PASS' if self.passed else 'FAIL'}",
        ]
        rescued = [s for s in self.slots if s["solver"] != "chaos-distributed"]
        if rescued:
            shown = ", ".join(
                f"{s['index']}->{s['solver']}" for s in rescued[:10]
            )
            if len(rescued) > 10:
                shown += ", ..."
            lines.append(f"  rescued slots   : {shown}")
        if self.events:
            lines.append(f"  events (first {min(max_events, len(self.events))} "
                         f"of {len(self.events) + self.events_dropped}):")
            for event in self.events[:max_events]:
                detail = f"  [{event['info']}]" if event["info"] else ""
                lines.append(
                    f"    slot {event['slot']:>2} round {event['round']:>3} "
                    f"{event['kind']:<19} {event['subject']}{detail}"
                )
        return "\n".join(lines)


def run_chaos(
    scenario: FaultPlan | str | Mapping[str, Any],
    hours: int = 24,
    seed: int = 2014,
    strategy: Strategy = HYBRID,
    recovery: RecoveryPolicy | None = None,
    fallback: tuple[str, ...] = DEFAULT_FALLBACK,
    metrics: MetricsRegistry | None = None,
) -> ChaosReport:
    """Run ``scenario`` over a horizon and aggregate the recovery path.

    Args:
        scenario: a shipped scenario name, a spec dict, or a plan.
        hours: horizon length (slots of the default bundle).
        seed: trace-bundle seed (the *fault* seed lives in the plan).
        strategy: power-sourcing strategy for every slot.
        recovery: runtime recovery budgets (defaults per the docs).
        fallback: engine fallback chain for slots whose fault-injected
            run completes degraded; empty disables escalation (the
            degraded-but-feasible distributed result is kept).
        metrics: registry to record fault/engine counters into (a
            fresh one is created when None; either way it lands on the
            report as ``report.metrics``).
    """
    from repro.sim.simulator import Simulator, build_model
    from repro.traces.datasets import default_bundle

    plan = FaultPlan.from_spec(scenario)
    recovery = recovery if recovery is not None else RecoveryPolicy()
    fallback = tuple(fallback)
    registry = metrics if metrics is not None else MetricsRegistry()
    bundle = default_bundle(hours=hours, seed=seed)
    model = build_model(bundle)
    sim = Simulator(model, bundle)
    problems = [sim.problem_for_slot(t, strategy) for t in range(bundle.hours)]

    chaos_solver = ChaosDistributedSolver(
        plan, recovery=recovery, escalate_degraded=bool(fallback)
    )
    resilience = (
        ResilienceConfig(retry=RetryPolicy(max_attempts=1), fallback=fallback)
        if fallback
        else None
    )
    engine = HorizonEngine(
        chaos_solver,
        workers=1,
        certify=True,
        metrics=registry,
        resilience=resilience,
    )
    start = time.perf_counter()
    outcomes = engine.run(problems)
    wall_s = time.perf_counter() - start

    baseline = HorizonEngine("distributed", workers=1)
    base_start = time.perf_counter()
    base_outcomes = baseline.run(problems)
    baseline_wall_s = time.perf_counter() - base_start

    fault_counts: dict[str, int] = {}
    events: list[dict[str, Any]] = []
    events_dropped = 0
    for injector in chaos_solver.injectors:
        for kind, count in injector.counts.items():
            fault_counts[kind] = fault_counts.get(kind, 0) + count
        events.extend(
            {
                "slot": injector.slot,
                "kind": event.kind,
                "round": event.round,
                "subject": event.subject,
                "info": event.info,
            }
            for event in injector.events
        )
        events_dropped += injector.events_dropped
    faults_injected = sum(
        injector.faults_injected for injector in chaos_solver.injectors
    )
    for kind, count in sorted(fault_counts.items()):
        registry.counter(
            "repro_faults_total", kind=kind, scenario=plan.name
        ).inc(count)

    runs_by_slot = {i: run for i, run in enumerate(chaos_solver.runs)}
    slots: list[dict[str, Any]] = []
    feasible = kkt_suspect = failed = 0
    ufc_faulty = 0.0
    for outcome in outcomes:
        run = runs_by_slot.get(outcome.index)
        cert = outcome.certificate
        if not outcome.ok:
            failed += 1
        else:
            ufc_faulty += outcome.result.ufc
            if cert is not None:
                if cert.feasible:
                    feasible += 1
                if cert.feasible and not cert.ok:
                    kkt_suspect += 1
        slots.append(
            {
                "index": outcome.index,
                "solver": (
                    outcome.telemetry.solver if outcome.telemetry else "?"
                ),
                "converged": bool(
                    outcome.result.converged if outcome.result else False
                ),
                "degraded": outcome.degraded,
                "iterations": (
                    outcome.result.iterations if outcome.result else 0
                ),
                "retransmits": run.retransmits if run else 0,
                "checkpoint_restores": run.checkpoint_restores if run else 0,
                "watchdog_trips": run.watchdog_trips if run else 0,
                "ufc": outcome.result.ufc if outcome.result else None,
                "feasible": bool(cert.feasible) if cert is not None else None,
            }
        )
    ufc_fault_free = sum(o.result.ufc for o in base_outcomes if o.result)

    summary = engine.last_summary
    return ChaosReport(
        scenario=plan.to_dict(),
        horizon=len(problems),
        strategy=strategy.name,
        seed=seed,
        faults_injected=faults_injected,
        fault_counts=fault_counts,
        events=events,
        events_dropped=events_dropped,
        slots=slots,
        failed_slots=failed,
        degraded_slots=sum(1 for run in chaos_solver.runs if run.degraded),
        fallback_slots=summary.fallbacks_total if summary else 0,
        engine_retries=summary.retries_total if summary else 0,
        retransmits=sum(run.retransmits for run in chaos_solver.runs),
        sends_failed=sum(run.sends_failed for run in chaos_solver.runs),
        checkpoint_restores=sum(
            run.checkpoint_restores for run in chaos_solver.runs
        ),
        watchdog_trips=sum(run.watchdog_trips for run in chaos_solver.runs),
        feasible_slots=feasible,
        kkt_suspect_slots=kkt_suspect,
        ufc_faulty=ufc_faulty,
        ufc_fault_free=ufc_fault_free,
        wall_s=wall_s,
        baseline_wall_s=baseline_wall_s,
        metrics=registry,
    )
