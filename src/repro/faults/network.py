"""A fault-injected transport with a budgeted retransmit loop.

:class:`FaultyNetwork` extends the reliable
:class:`~repro.distributed.messages.SimulatedNetwork` with the fault
taxonomy of a :class:`~repro.faults.plan.FaultInjector`: per-attempt
drops retried under an explicit
:class:`~repro.faults.plan.RetransmitPolicy` budget (exponential
backoff is *accounted* in ``simulated_backoff_s``, never slept),
one-round delivery delays, payload corruption and duplication, and
partition cuts.  Every attempt — dropped, delayed, duplicated or
landed — bills the message/float/byte counters exactly once, matching
the audited :class:`~repro.distributed.messages.LossyNetwork`
semantics.

Unlike ``LossyNetwork``'s unbudgeted resend loop, a send here can
*fail*: after ``max_attempts`` drops (or on a partition cut, which no
retry can cross) the coordinator is told so and the receiver proceeds
on its stale view of that pair.
"""

from __future__ import annotations

import dataclasses
from collections import deque

from repro.distributed.messages import Message, SimulatedNetwork
from repro.faults.plan import FaultInjector, RetransmitPolicy

__all__ = ["FaultyNetwork"]


def _corrupt_payload(message: Message, injector: FaultInjector) -> Message:
    """A copy of ``message`` with every float payload field perturbed."""
    changes = {
        f.name: injector.corrupt_value(getattr(message, f.name))
        for f in dataclasses.fields(message)
        if f.name not in ("sender", "receiver") and f.type in ("float", float)
    }
    return dataclasses.replace(message, **changes)


class FaultyNetwork(SimulatedNetwork):
    """Transport that consults a fault injector on every attempt.

    Attributes:
        round: current ADM-G round (the coordinator advances it).
        retransmits: dropped attempts that were retried within budget.
        sends_failed: sends abandoned (budget exhausted or partition).
        duplicates_delivered: extra copies delivered.
        corruptions: delivered payloads that were perturbed.
        delayed_delivered: messages that landed one round late.
        simulated_backoff_s: summed virtual backoff wait (never slept).
    """

    def __init__(
        self,
        injector: FaultInjector,
        retransmit: RetransmitPolicy | None = None,
    ) -> None:
        super().__init__()
        self.injector = injector
        self.retransmit = retransmit if retransmit is not None else RetransmitPolicy()
        self.round = 0
        self.retransmits = 0
        self.sends_failed = 0
        self.duplicates_delivered = 0
        self.corruptions = 0
        self.delayed_delivered = 0
        self.simulated_backoff_s = 0.0
        self._delayed: list[Message] = []

    def advance_round(self, round_: int) -> int:
        """Start ``round_``: deliver last round's delayed messages.

        Returns:
            how many straggler messages landed at the round boundary.
        """
        self.round = int(round_)
        stragglers = len(self._delayed)
        for message in self._delayed:
            self._enqueue(message)
        self._delayed.clear()
        self.delayed_delivered += stragglers
        return stragglers

    def reset_in_flight(self) -> int:
        """Drop every queued/delayed message (watchdog restart).

        A restart rewinds the fleet to a checkpointed state; in-flight
        traffic belongs to the abandoned trajectory and must not leak
        into the restarted one.
        """
        dropped = len(self._delayed) + sum(len(q) for q in self._queues.values())
        self._delayed.clear()
        self._queues.clear()
        return dropped

    def _enqueue(self, message: Message) -> None:
        """Place a message in its receiver's queue (no accounting)."""
        self._queues.setdefault(message.receiver, deque()).append(message)

    def _bill(self, message: Message) -> None:
        self.messages_sent += 1
        self.floats_sent += message.payload_floats()

    def send(self, message: Message) -> bool:  # type: ignore[override]
        """Transmit with the retry budget; False when the send failed."""
        injector = self.injector
        policy = self.retransmit
        link = f"{message.sender}->{message.receiver}"
        if injector.cut(message.sender, message.receiver, self.round):
            # A partition is not a lossy link: no number of retries
            # crosses it, so bill one attempt and give up immediately.
            self._bill(message)
            injector.record("partition", self.round, link)
            self.sends_failed += 1
            return False
        backoff = policy.backoff_base_s
        for attempt in range(1, policy.max_attempts + 1):
            self._bill(message)
            fate = injector.attempt()
            if fate == "drop":
                injector.count("drop")
                if attempt < policy.max_attempts:
                    self.retransmits += 1
                    self.simulated_backoff_s += backoff
                    backoff *= policy.backoff_factor
                continue
            delivered = message
            if injector.corrupts():
                delivered = _corrupt_payload(message, injector)
                injector.count("corrupt")
                self.corruptions += 1
            if fate == "delay":
                injector.count("delay")
                self._delayed.append(delivered)
            else:
                self._enqueue(delivered)
                if injector.duplicates():
                    self._bill(delivered)
                    self._enqueue(delivered)
                    injector.count("duplicate")
                    self.duplicates_delivered += 1
            return True
        injector.record(
            "send_failed",
            self.round,
            link,
            f"budget of {policy.max_attempts} attempts exhausted",
        )
        self.sends_failed += 1
        return False
