"""Optional extensions the paper sketches but does not evaluate.

- :mod:`repro.extensions.rightsizing` — the Remark of Sec. II-C:
  let the number of active servers ``S_j`` be a decision bounded by
  ``S_j^max`` (shut idle servers down), implemented as an exact model
  transformation.
- :mod:`repro.extensions.ramping` — fuel cells are load-following but
  not instantaneous (the paper's Sec. II-B3 cites distributed-generation
  work on this); bound the hour-over-hour ramp-up of ``mu_j``.
- :mod:`repro.extensions.forecast_robustness` — the paper assumes
  near-term arrivals are predicted accurately (Sec. II-A); quantify the
  UFC lost when decisions are made on imperfect forecasts.
- :mod:`repro.extensions.multislot` — solve ramp-coupled horizons
  *jointly* (a stacked QP), measuring the greedy scheme's optimality
  gap.
- :mod:`repro.extensions.storage` — batteries add the temporal
  arbitrage dimension the paper leaves on the table; co-optimized in
  the stacked QP.
"""

from repro.extensions.forecast_robustness import (
    ForecastRobustnessResult,
    evaluate_forecast_robustness,
)
from repro.extensions.multislot import MultiSlotResult, solve_multislot
from repro.extensions.ramping import RampingSimulator
from repro.extensions.rightsizing import right_sized_model
from repro.extensions.storage import (
    BatterySpec,
    StorageResult,
    solve_multislot_with_storage,
)

__all__ = [
    "BatterySpec",
    "ForecastRobustnessResult",
    "MultiSlotResult",
    "RampingSimulator",
    "StorageResult",
    "evaluate_forecast_robustness",
    "right_sized_model",
    "solve_multislot",
    "solve_multislot_with_storage",
]
