"""Exact multi-slot optimization under time-coupling constraints.

The paper's slot-independence argument (interactive load, no storage)
breaks as soon as fuel-cell ramp limits couple consecutive hours.
:class:`repro.extensions.ramping.RampingSimulator` handles that
greedily — each slot optimizes myopically given yesterday's output.
This module solves the *joint* problem over a horizon exactly:

    min  sum_t [ slot objective_t ]
    s.t. every per-slot constraint, plus
         mu_j(t) - mu_j(t-1) <= R_j       (ramp-up)
         mu_j(0) - mu_init_j <= R_j

by stacking the per-slot QP compilations block-diagonally and adding
the ramp rows, then handing the result to the interior-point solver.
Dimensions stay modest (T * (MN + 2N) variables), so horizons up to a
day are practical — enough to measure the greedy scheme's optimality
gap, which is the ablation ``benchmarks/bench_multislot.py`` reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import CloudModel
from repro.core.problem import SlotInputs, UFCProblem
from repro.core.solution import Allocation
from repro.core.strategies import HYBRID, Strategy
from repro.optim.ipqp import solve_qp
from repro.traces.datasets import TraceBundle

__all__ = ["MultiSlotResult", "solve_multislot"]


@dataclass(frozen=True)
class MultiSlotResult:
    """The jointly optimal ramp-constrained plan.

    Attributes:
        allocations: one :class:`Allocation` per slot.
        ufc: (T,) per-slot UFC of the joint optimum.
        total_ufc: sum over the horizon.
        converged: interior-point convergence flag.
        iterations: interior-point iterations for the stacked solve.
    """

    allocations: list[Allocation]
    ufc: np.ndarray
    total_ufc: float
    converged: bool
    iterations: int


def solve_multislot(
    model: CloudModel,
    bundle: TraceBundle,
    ramp_mw_per_hour: float | np.ndarray,
    hours: int,
    strategy: Strategy = HYBRID,
    initial_mu_mw: float | np.ndarray = 0.0,
    tol: float = 1e-8,
) -> MultiSlotResult:
    """Solve ``hours`` coupled slots to joint optimality.

    Args:
        model: the cloud (fuel cells at their full capacities; the ramp
            rows do the coupling).
        bundle: traces covering at least ``hours`` slots.
        ramp_mw_per_hour: scalar or (N,) ramp-up limits.
        hours: horizon length (stacked problem size grows linearly).
        strategy: must enable fuel cells for the coupling to matter.
        initial_mu_mw: output before the first slot.
        tol: interior-point tolerance.

    Raises:
        ValueError: on horizon/bundle mismatch or a mu-less strategy
            combined with finite ramps.
    """
    if hours <= 0 or hours > bundle.hours:
        raise ValueError(f"hours must be in [1, {bundle.hours}], got {hours}")
    n = model.num_datacenters
    ramp = np.broadcast_to(np.asarray(ramp_mw_per_hour, dtype=float), (n,))
    if (ramp < 0).any():
        raise ValueError("ramp limits must be non-negative")
    mu_init = np.broadcast_to(np.asarray(initial_mu_mw, dtype=float), (n,))

    problems = []
    qps = []
    for t in range(hours):
        slot = bundle.slot(t)
        problem = UFCProblem(
            model,
            SlotInputs(
                arrivals=slot["arrivals"],
                prices=slot["prices"],
                carbon_rates=slot["carbon_rates"],
            ),
            strategy=strategy,
        )
        problems.append(problem)
        qps.append(problem.to_qp())

    has_mu = qps[0].mu_offset is not None
    if not has_mu and np.isfinite(ramp).any():
        raise ValueError("ramp limits require a fuel-cell-enabled strategy")

    dims = [qp.P.shape[0] for qp in qps]
    offsets = np.concatenate([[0], np.cumsum(dims)])
    total_dim = int(offsets[-1])

    p_mat = np.zeros((total_dim, total_dim))
    q_vec = np.zeros(total_dim)
    a_rows = []
    b_rhs = []
    g_rows = []
    h_rhs = []
    for t, qp in enumerate(qps):
        sl = slice(offsets[t], offsets[t + 1])
        p_mat[sl, sl] = qp.P
        q_vec[sl] = qp.q
        for row, rhs in zip(qp.A, qp.b):
            stacked = np.zeros(total_dim)
            stacked[sl] = row
            a_rows.append(stacked)
            b_rhs.append(rhs)
        for row, rhs in zip(qp.G, qp.h):
            stacked = np.zeros(total_dim)
            stacked[sl] = row
            g_rows.append(stacked)
            h_rhs.append(rhs)

    # Ramp-up coupling rows (only where the limit is finite).
    if has_mu:
        for t in range(hours):
            for j in range(n):
                if not np.isfinite(ramp[j]):
                    continue
                row = np.zeros(total_dim)
                row[offsets[t] + qps[t].mu_offset + j] = 1.0
                if t == 0:
                    rhs = float(mu_init[j] + ramp[j])
                else:
                    row[offsets[t - 1] + qps[t - 1].mu_offset + j] = -1.0
                    rhs = float(ramp[j])
                g_rows.append(row)
                h_rhs.append(rhs)

    res = solve_qp(
        p_mat,
        q_vec,
        A=np.array(a_rows),
        b=np.array(b_rhs),
        G=np.array(g_rows),
        h=np.array(h_rhs),
        tol=tol,
        max_iter=200,
    )

    allocations = []
    ufc = np.empty(hours)
    for t, (problem, qp) in enumerate(zip(problems, qps)):
        alloc = qp.extract(res.x[offsets[t] : offsets[t + 1]])
        allocations.append(alloc)
        ufc[t] = problem.ufc(alloc)
    return MultiSlotResult(
        allocations=allocations,
        ufc=ufc,
        total_ufc=float(ufc.sum()),
        converged=res.converged,
        iterations=res.iterations,
    )
