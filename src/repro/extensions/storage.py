"""Battery storage co-optimization (a future-work "what if").

The paper arbitrages prices *spatially* (route requests) and across
*sources* (grid vs fuel cell).  Batteries would add the *temporal*
dimension: charge at off-peak prices, discharge at peaks.  This module
extends the stacked multi-slot QP with per-site battery power
variables ``w_j(t)`` (positive = charging):

    power balance:  alpha_j + beta_j sum_i lambda_ij - mu_j - nu_j
                    + w_j(t) = 0
    power limits:   -discharge_mw <= w <= charge_mw
    state of charge:  0 <= E_init + sum_{s<=t} w_j(s) <= energy_mwh
    sustainability:   sum_t w_j(t) >= 0   (end at least as charged)
    wear cost:        kappa * w^2 added to the objective

Unit round-trip efficiency keeps the problem a QP (losses would need
separate charge/discharge variables; the no-loss bound is what the
ablation reports).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import CloudModel
from repro.core.problem import SlotInputs, UFCProblem
from repro.core.strategies import HYBRID, Strategy
from repro.extensions.multislot import MultiSlotResult
from repro.optim.ipqp import solve_qp
from repro.traces.datasets import TraceBundle

__all__ = ["BatterySpec", "StorageResult", "solve_multislot_with_storage"]


@dataclass(frozen=True)
class BatterySpec:
    """Per-site battery parameters (broadcast to all sites).

    Attributes:
        energy_mwh: usable energy capacity.
        charge_mw: maximum charging power.
        discharge_mw: maximum discharging power.
        initial_soc: initial state of charge as a fraction of capacity.
        wear_cost: quadratic cycling cost in $/(MW)^2 per slot.
    """

    energy_mwh: float
    charge_mw: float
    discharge_mw: float
    initial_soc: float = 0.5
    wear_cost: float = 0.05

    def __post_init__(self) -> None:
        if self.energy_mwh < 0 or self.charge_mw < 0 or self.discharge_mw < 0:
            raise ValueError("battery ratings must be non-negative")
        if not 0.0 <= self.initial_soc <= 1.0:
            raise ValueError(f"initial_soc must be in [0, 1], got {self.initial_soc}")
        if self.wear_cost < 0:
            raise ValueError("wear cost must be non-negative")


@dataclass(frozen=True)
class StorageResult:
    """Joint plan with batteries.

    Attributes:
        base: per-slot allocations and UFC (battery wear excluded from
            the per-slot UFC, reported separately).
        battery_power: (T, N) battery power, positive = charging.
        state_of_charge: (T+1, N) energy trajectory including t=0.
        wear_cost_total: total quadratic wear cost, $.
    """

    base: MultiSlotResult
    battery_power: np.ndarray
    state_of_charge: np.ndarray
    wear_cost_total: float


def solve_multislot_with_storage(
    model: CloudModel,
    bundle: TraceBundle,
    battery: BatterySpec,
    hours: int,
    strategy: Strategy = HYBRID,
    tol: float = 1e-8,
) -> StorageResult:
    """Jointly optimize routing, sourcing and battery schedules.

    Raises:
        ValueError: on horizon mismatch (via the slot problems).
    """
    if hours <= 0 or hours > bundle.hours:
        raise ValueError(f"hours must be in [1, {bundle.hours}], got {hours}")
    n = model.num_datacenters

    problems = []
    qps = []
    for t in range(hours):
        slot = bundle.slot(t)
        problem = UFCProblem(
            model,
            SlotInputs(
                arrivals=slot["arrivals"],
                prices=slot["prices"],
                carbon_rates=slot["carbon_rates"],
            ),
            strategy=strategy,
        )
        problems.append(problem)
        qps.append(problem.to_qp())

    dims = [qp.P.shape[0] for qp in qps]
    offsets = np.concatenate([[0], np.cumsum(dims)])
    base_dim = int(offsets[-1])
    w_dim = hours * n
    total_dim = base_dim + w_dim

    def w_index(t: int, j: int) -> int:
        return base_dim + t * n + j

    p_mat = np.zeros((total_dim, total_dim))
    q_vec = np.zeros(total_dim)
    a_rows = []
    b_rhs = []
    g_rows = []
    h_rhs = []
    for t, qp in enumerate(qps):
        sl = slice(offsets[t], offsets[t + 1])
        p_mat[sl, sl] = qp.P
        q_vec[sl] = qp.q
        m = qp.num_frontends
        for r, (row, rhs) in enumerate(zip(qp.A, qp.b)):
            stacked = np.zeros(total_dim)
            stacked[sl] = row
            # Rows m..m+n-1 are the power balances; batteries join them.
            if r >= m:
                stacked[w_index(t, r - m)] = 1.0
            a_rows.append(stacked)
            b_rhs.append(rhs)
        for row, rhs in zip(qp.G, qp.h):
            stacked = np.zeros(total_dim)
            stacked[sl] = row
            g_rows.append(stacked)
            h_rhs.append(rhs)

    e_init = battery.initial_soc * battery.energy_mwh
    for t in range(hours):
        for j in range(n):
            idx = w_index(t, j)
            p_mat[idx, idx] += 2.0 * battery.wear_cost
            # Power limits.
            row = np.zeros(total_dim)
            row[idx] = 1.0
            g_rows.append(row)
            h_rhs.append(battery.charge_mw)
            row = np.zeros(total_dim)
            row[idx] = -1.0
            g_rows.append(row)
            h_rhs.append(battery.discharge_mw)
            # State of charge after slot t: 0 <= E_init + cumsum <= cap.
            row = np.zeros(total_dim)
            for s in range(t + 1):
                row[w_index(s, j)] = 1.0
            g_rows.append(row.copy())
            h_rhs.append(battery.energy_mwh - e_init)
            g_rows.append(-row)
            h_rhs.append(e_init)
    # Sustainability: finish at least as charged as started.
    for j in range(n):
        row = np.zeros(total_dim)
        for t in range(hours):
            row[w_index(t, j)] = -1.0
        g_rows.append(row)
        h_rhs.append(0.0)

    res = solve_qp(
        p_mat,
        q_vec,
        A=np.array(a_rows),
        b=np.array(b_rhs),
        G=np.array(g_rows),
        h=np.array(h_rhs),
        tol=tol,
        max_iter=200,
    )

    allocations = []
    ufc = np.empty(hours)
    for t, (problem, qp) in enumerate(zip(problems, qps)):
        alloc = qp.extract(res.x[offsets[t] : offsets[t + 1]])
        allocations.append(alloc)
        ufc[t] = problem.ufc(alloc)
    w = res.x[base_dim:].reshape(hours, n)
    soc = np.vstack([np.full(n, e_init), e_init + np.cumsum(w, axis=0)])
    base = MultiSlotResult(
        allocations=allocations,
        ufc=ufc,
        total_ufc=float(ufc.sum()),
        converged=res.converged,
        iterations=res.iterations,
    )
    return StorageResult(
        base=base,
        battery_power=w,
        state_of_charge=soc,
        wear_cost_total=float(battery.wear_cost * (w**2).sum()),
    )
