"""How much UFC does imperfect workload prediction cost?

The paper optimizes each slot against *known* arrivals, arguing that
near-term prediction is accurate (Sec. II-A).  This extension closes
the loop: decisions are made on a forecast, then *executed* against
the true arrivals — each front-end keeps its optimized routing
*fractions* (the natural way to apply a routing plan to a different
volume), capacity overflows are repaired, and the power split is
re-optimized (grid draw is adjusted in real time, which operators can
do).  The UFC of that executed allocation is compared with the
perfect-information optimum, slot by slot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.centralized import CentralizedSolver
from repro.core.model import CloudModel
from repro.core.problem import SlotInputs, UFCProblem
from repro.core.repair import polish_allocation
from repro.core.strategies import HYBRID, Strategy
from repro.forecast.metrics import mape
from repro.forecast.predictors import Predictor
from repro.traces.datasets import TraceBundle

__all__ = ["ForecastRobustnessResult", "evaluate_forecast_robustness"]


@dataclass(frozen=True)
class ForecastRobustnessResult:
    """Forecast-driven vs perfect-information operation.

    Attributes:
        ufc_perfect: (T,) UFC with known arrivals.
        ufc_forecast: (T,) UFC when decisions use the forecast.
        forecast_mape: MAPE of the arrival forecasts (fraction).
        start: first evaluated slot (warm-up excluded).
    """

    ufc_perfect: np.ndarray
    ufc_forecast: np.ndarray
    forecast_mape: float
    start: int

    @property
    def mean_degradation(self) -> float:
        """Mean relative UFC loss from forecasting (>= ~0)."""
        return float(
            np.mean(
                (self.ufc_perfect - self.ufc_forecast)
                / np.abs(self.ufc_perfect)
            )
        )


def _routing_fractions(lam: np.ndarray, arrivals: np.ndarray) -> np.ndarray:
    """Per-front-end routing shares; uniform rows where demand was 0."""
    m, n = lam.shape
    fractions = np.full((m, n), 1.0 / n)
    for i in range(m):
        if arrivals[i] > 0:
            fractions[i] = lam[i] / arrivals[i]
    return fractions


def evaluate_forecast_robustness(
    model: CloudModel,
    bundle: TraceBundle,
    predictor: Predictor,
    strategy: Strategy = HYBRID,
    start: int = 24,
    hours: int | None = None,
) -> ForecastRobustnessResult:
    """Backtest forecast-driven operation over ``bundle``.

    Args:
        model: the cloud.
        bundle: traces (true arrivals).
        predictor: one-step-ahead arrival forecaster, applied per
            front-end.
        strategy: operating strategy (default Hybrid).
        start: warm-up slots whose history seeds the predictor.
        hours: last slot to evaluate (default: whole bundle).

    Raises:
        ValueError: if ``start`` leaves no slots to evaluate.
    """
    horizon = bundle.hours if hours is None else min(hours, bundle.hours)
    if start >= horizon:
        raise ValueError(f"start={start} leaves no slots in horizon {horizon}")
    solver = CentralizedSolver()
    total_capacity = float(model.capacities.sum())

    ufc_perfect = []
    ufc_forecast = []
    predicted_all = []
    actual_all = []
    for t in range(start, horizon):
        actual = bundle.arrivals[t]
        predicted = np.array(
            [
                predictor.predict(bundle.arrivals[:t, i])
                for i in range(bundle.num_frontends)
            ]
        )
        # Keep the forecast servable: scale into total capacity.
        total = predicted.sum()
        if total > total_capacity:
            predicted = predicted * (total_capacity / total) * (1 - 1e-9)
        predicted_all.append(predicted)
        actual_all.append(actual)
        prices = bundle.prices[t]
        carbon = bundle.carbon_rates[t]

        true_inputs = SlotInputs(arrivals=actual, prices=prices, carbon_rates=carbon)
        true_problem = UFCProblem(model, true_inputs, strategy=strategy)
        ufc_perfect.append(solver.solve(true_problem).ufc)

        planned = solver.solve(
            UFCProblem(
                model,
                SlotInputs(arrivals=predicted, prices=prices, carbon_rates=carbon),
                strategy=strategy,
            )
        ).allocation
        fractions = _routing_fractions(planned.lam, predicted)
        executed_lam = fractions * actual[:, None]
        executed = polish_allocation(model, true_inputs, executed_lam, strategy)
        ufc_forecast.append(true_problem.ufc(executed))

    return ForecastRobustnessResult(
        ufc_perfect=np.array(ufc_perfect),
        ufc_forecast=np.array(ufc_forecast),
        forecast_mape=mape(np.array(actual_all), np.array(predicted_all)),
        start=start,
    )
