"""Fuel-cell ramp-rate constraints across consecutive slots.

The paper's load-following argument (Sec. II-B3) assumes fuel cells can
track the workload within a slot.  Real stacks ramp *up* slowly
(thermal constraints) while shedding load quickly, so a deployment
plan must respect ``mu_j(t) <= mu_j(t-1) + R_j`` — which couples slots
and breaks the paper's slot-independence.

Because only the upper bound tightens, each slot remains a standard
UFC problem over a model whose fuel-cell capacity is
``min(mu_j^max, mu_j(t-1) + R_j)``; this module runs that sequential
scheme (a greedy rolling horizon) and records the ramp-limited
trajectory.  ``ramp_mw_per_hour = inf`` exactly reproduces the
unconstrained simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.centralized import CentralizedSolver
from repro.core.model import CloudModel, Datacenter
from repro.core.problem import SlotInputs, UFCProblem
from repro.core.strategies import HYBRID, Strategy
from repro.sim.results import SimulationResult
from repro.traces.datasets import TraceBundle

__all__ = ["RampingResult", "RampingSimulator"]


@dataclass
class RampingResult:
    """A ramp-constrained simulation outcome.

    Attributes:
        result: the usual per-slot metric series.
        mu_trajectory: (T, N) fuel-cell outputs actually scheduled.
        ramp_binding_slots: count of slots where some site's ramp bound
            was active (within 1% of the cap).
    """

    result: SimulationResult
    mu_trajectory: np.ndarray
    ramp_binding_slots: int


class RampingSimulator:
    """Sequential simulator with per-site fuel-cell ramp-up limits.

    Args:
        model: the static cloud model.
        bundle: aligned traces.
        ramp_mw_per_hour: scalar or (N,) ramp-up limit; ``np.inf``
            disables the constraint.
        initial_mu_mw: fuel-cell output before the first slot
            (default 0 — cold stacks).
    """

    def __init__(
        self,
        model: CloudModel,
        bundle: TraceBundle,
        ramp_mw_per_hour: float | np.ndarray,
        initial_mu_mw: float | np.ndarray = 0.0,
    ) -> None:
        if model.num_datacenters != bundle.num_datacenters:
            raise ValueError("model/bundle datacenter mismatch")
        if model.num_frontends != bundle.num_frontends:
            raise ValueError("model/bundle front-end mismatch")
        n = model.num_datacenters
        self.model = model
        self.bundle = bundle
        self.ramp = np.broadcast_to(
            np.asarray(ramp_mw_per_hour, dtype=float), (n,)
        ).copy()
        if (self.ramp < 0).any():
            raise ValueError("ramp limits must be non-negative")
        self.initial_mu = np.broadcast_to(
            np.asarray(initial_mu_mw, dtype=float), (n,)
        ).copy()
        self.solver = CentralizedSolver()

    def _capped_model(self, mu_caps: np.ndarray) -> CloudModel:
        datacenters = [
            Datacenter(
                name=dc.name,
                servers=dc.servers,
                power=dc.power,
                fuel_cell_capacity_mw=float(cap),
                max_servers=dc.max_servers,
            )
            for dc, cap in zip(self.model.datacenters, mu_caps)
        ]
        return CloudModel(
            datacenters=datacenters,
            frontends=self.model.frontends,
            latency_ms=self.model.latency_ms,
            fuel_cell_price=self.model.fuel_cell_price,
            latency_weight=self.model.latency_weight,
            utility=self.model.utility,
            emission_costs=self.model.emission_costs,
        )

    def run(
        self, strategy: Strategy = HYBRID, hours: int | None = None
    ) -> RampingResult:
        """Simulate the horizon with the ramp-coupled upper bounds."""
        horizon = self.bundle.hours if hours is None else min(hours, self.bundle.hours)
        n = self.model.num_datacenters
        full_caps = self.model.mu_max
        mu_prev = np.minimum(self.initial_mu, full_caps)

        ufc = np.empty(horizon)
        energy = np.empty(horizon)
        carbon_cost = np.empty(horizon)
        carbon_kg = np.empty(horizon)
        utility = np.empty(horizon)
        latency = np.empty(horizon)
        utilization = np.empty(horizon)
        iterations = np.zeros(horizon, dtype=int)
        converged = np.ones(horizon, dtype=bool)
        trajectory = np.empty((horizon, n))
        binding = 0

        for t in range(horizon):
            # A strictly positive floor keeps the interior-point
            # reference well-posed when a stack is cold and unrampable
            # (mu in [0, 0] has no strictly feasible interior).
            caps = np.maximum(np.minimum(full_caps, mu_prev + self.ramp), 1e-9)
            slot_model = self._capped_model(caps)
            slot = self.bundle.slot(t)
            problem = UFCProblem(
                slot_model,
                SlotInputs(
                    arrivals=slot["arrivals"],
                    prices=slot["prices"],
                    carbon_rates=slot["carbon_rates"],
                ),
                strategy=strategy,
            )
            res = self.solver.solve(problem)
            alloc = res.allocation
            trajectory[t] = alloc.mu
            effective = np.minimum(caps, full_caps)
            if (alloc.mu > 0.99 * effective).any() and (
                effective < full_caps - 1e-12
            ).any():
                binding += int(
                    ((alloc.mu > 0.99 * effective) & (effective < full_caps)).any()
                )
            mu_prev = alloc.mu
            ufc[t] = problem.ufc(alloc)
            energy[t] = problem.energy_cost(alloc)
            carbon_cost[t] = problem.carbon_cost(alloc)
            carbon_kg[t] = problem.carbon_kg(alloc)
            utility[t] = self.model.latency_weight * problem.utility(alloc)
            latency[t] = problem.average_latency_ms(alloc)
            utilization[t] = problem.fuel_cell_utilization(alloc)
            iterations[t] = res.iterations
            converged[t] = res.converged

        result = SimulationResult(
            strategy=f"{strategy.name} (ramped)",
            ufc=ufc,
            energy_cost=energy,
            carbon_cost=carbon_cost,
            carbon_kg=carbon_kg,
            utility=utility,
            avg_latency_ms=latency,
            utilization=utilization,
            iterations=iterations,
            converged=converged,
        )
        return RampingResult(
            result=result,
            mu_trajectory=trajectory,
            ramp_binding_slots=binding,
        )
