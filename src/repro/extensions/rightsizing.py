"""The server right-sizing extension (paper Sec. II-C, Remark).

The main formulation pins every server on (``S_j`` fixed), citing
reliability practice at commercial clouds.  The Remark notes the model
extends to choosing the active count ``S_j <= S_j^max``.  With the
linear power model this extension collapses to an *exact model
transformation*:

For a fixed routing, demand is ``PUE (S_j P_idle + (P_peak - P_idle)
load_j)``, increasing in ``S_j``; serving constraints only need
``S_j >= load_j``; and nothing else in the objective touches ``S_j``.
The optimal active count is therefore ``S_j = load_j`` exactly, giving
demand ``PUE * P_peak * load_j`` — i.e. the *same* UFC problem with

    alpha_j' = 0,     beta_j' = P_peak * PUE,    capacity' = S_j^max.

:func:`right_sized_model` builds that transformed model, so every
solver, strategy and experiment in the library works unchanged on the
right-sized cloud.  (The transformation ignores switching costs and
the reliability concerns the paper raises — it bounds the *best case*
of shutting idle servers.)
"""

from __future__ import annotations

from repro.core.model import CloudModel, Datacenter
from repro.costs.energy import ServerPowerModel

__all__ = ["right_sized_model"]


def right_sized_model(model: CloudModel) -> CloudModel:
    """The exact right-sized equivalent of ``model``.

    Each datacenter's power model becomes idle-free with marginal power
    ``P_peak * PUE`` (idle servers are off), capacity becomes
    ``S_j^max`` (defaulting to the current active count), and fuel-cell
    capacity is preserved.

    Raises:
        ValueError: if a datacenter has a non-trivial ``max_servers``
            below its active count (already impossible by validation).
    """
    datacenters = []
    for dc in model.datacenters:
        total = dc.max_servers if dc.max_servers is not None else dc.servers
        datacenters.append(
            Datacenter(
                name=dc.name,
                servers=total,
                power=ServerPowerModel(
                    idle_watts=0.0,
                    peak_watts=dc.power.peak_watts,
                    pue=dc.power.pue,
                ),
                # Preserve the original fuel-cell sizing (it was sized
                # for the *fixed-fleet* peak, not the right-sized one).
                fuel_cell_capacity_mw=dc.mu_max_mw,
            )
        )
    return CloudModel(
        datacenters=datacenters,
        frontends=model.frontends,
        latency_ms=model.latency_ms,
        fuel_cell_price=model.fuel_cell_price,
        latency_weight=model.latency_weight,
        utility=model.utility,
        emission_costs=model.emission_costs,
    )
