"""Adapters putting every library solver behind the SlotSolver protocol.

Each adapter owns an underlying solver instance (built from the
adapter's kwargs, or passed in pre-configured via ``inner=``) and
translates its native result type into a :class:`SlotResult`.  The
adapters add no arithmetic of their own: solutions are bit-identical
to calling the underlying solver directly.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.admg.solver import ADMGState, DistributedUFCSolver, ScaledView
from repro.baselines.dual_subgradient import DualSubgradientSolver
from repro.baselines.heuristics import (
    cheapest_power_routing,
    nearest_datacenter_routing,
    proportional_routing,
    solve_heuristic,
)
from repro.core.centralized import CentralizedSolver
from repro.core.compiled import CompiledQPStructure
from repro.core.model import CloudModel
from repro.core.problem import UFCProblem
from repro.core.strategies import Strategy
from repro.engine.protocol import SlotResult

__all__ = [
    "CentralizedSlotSolver",
    "DistributedSlotSolver",
    "DualSubgradientSlotSolver",
    "HeuristicSlotSolver",
]


def _reject_warm(name: str, warm: Any) -> None:
    if warm is not None:
        raise ValueError(
            f"solver {name!r} does not support warm starts; "
            "run with warm_start=False (see Simulator docs)"
        )


class CentralizedSlotSolver:
    """Interior-point reference solver behind the SlotSolver protocol.

    The interior-point method re-solves each slot from its own
    well-centered starting point, so warm starts are rejected rather
    than silently ignored.
    """

    name = "centralized"
    supports_warm_start = False

    def __init__(self, inner: CentralizedSolver | None = None, **kwargs: Any) -> None:
        self.inner = inner if inner is not None else CentralizedSolver(**kwargs)

    def compile(self, model: CloudModel, strategy: Strategy) -> CompiledQPStructure:
        """The slot-invariant QP skeleton for (model, strategy)."""
        return self.inner.compile(model, strategy)

    def solve(
        self,
        problem: UFCProblem,
        compiled: CompiledQPStructure | None = None,
        warm: Any | None = None,
    ) -> SlotResult:
        """Solve one slot with the interior-point reference solver."""
        _reject_warm(self.name, warm)
        res = self.inner.solve(problem, compiled=compiled)
        extras: dict[str, Any] = {}
        if res.trace is not None:
            extras["ip_trace"] = res.trace
        if res.eq_dual is not None and res.ineq_dual is not None:
            extras["duals"] = (res.eq_dual, res.ineq_dual)
        return SlotResult(
            allocation=res.allocation,
            ufc=res.ufc,
            iterations=res.iterations,
            converged=res.converged,
            extras=extras,
        )


class DistributedSlotSolver:
    """The paper's 4-block ADM-G solver behind the SlotSolver protocol.

    Warm payloads are :class:`ADMGState` iterates; the compiled
    structure is the slot-invariant :class:`ScaledView`.
    """

    name = "distributed"
    supports_warm_start = True

    def __init__(self, inner: DistributedUFCSolver | None = None, **kwargs: Any) -> None:
        self.inner = inner if inner is not None else DistributedUFCSolver(**kwargs)

    def compile(self, model: CloudModel, strategy: Strategy) -> ScaledView:
        """The model's workload rescaling, shared by every slot."""
        return self.inner.compile_context(model)

    def solve(
        self,
        problem: UFCProblem,
        compiled: ScaledView | None = None,
        warm: ADMGState | None = None,
    ) -> SlotResult:
        """Solve one slot with ADM-G, optionally warm-started."""
        res = self.inner.solve(problem, initial=warm, context=compiled)
        extras = {
            "coupling_residuals": res.coupling_residuals,
            "power_residuals": res.power_residuals,
        }
        if res.trace is not None:
            extras["residual_trace"] = res.trace
        return SlotResult(
            allocation=res.allocation,
            ufc=res.ufc,
            iterations=res.iterations,
            converged=res.converged,
            warm=res.state,
            extras=extras,
        )


class DualSubgradientSlotSolver:
    """The Fig. 11 dual-subgradient comparator behind the protocol."""

    name = "dual-subgradient"
    supports_warm_start = False

    def __init__(self, inner: DualSubgradientSolver | None = None, **kwargs: Any) -> None:
        self.inner = inner if inner is not None else DualSubgradientSolver(**kwargs)

    def compile(self, model: CloudModel, strategy: Strategy) -> None:
        """No slot-invariant structure: the solver is matrix-free."""
        return None

    def solve(
        self,
        problem: UFCProblem,
        compiled: Any | None = None,
        warm: Any | None = None,
    ) -> SlotResult:
        """Solve one slot with the dual-subgradient comparator."""
        _reject_warm(self.name, warm)
        res = self.inner.solve(problem)
        return SlotResult(
            allocation=res.allocation,
            ufc=res.ufc,
            iterations=res.iterations,
            converged=res.converged,
            extras={
                "capacity_residuals": res.capacity_residuals,
                "power_residuals": res.power_residuals,
            },
        )


class HeuristicSlotSolver:
    """A routing heuristic + optimal power split behind the protocol.

    Non-iterative: ``iterations`` is 0 and ``converged`` is True by
    construction (the policies always emit feasible routings).
    """

    supports_warm_start = False

    def __init__(self, policy: Callable[[UFCProblem], np.ndarray], name: str) -> None:
        self.policy = policy
        self.name = name

    def compile(self, model: CloudModel, strategy: Strategy) -> None:
        """No slot-invariant structure: policies are closed-form."""
        return None

    def solve(
        self,
        problem: UFCProblem,
        compiled: Any | None = None,
        warm: Any | None = None,
    ) -> SlotResult:
        """Route with the policy, then split power optimally."""
        _reject_warm(self.name, warm)
        res = solve_heuristic(problem, self.policy, name=self.name)
        return SlotResult(
            allocation=res.allocation,
            ufc=res.ufc,
            iterations=0,
            converged=True,
        )


#: Policy table for the heuristic registry entries.
HEURISTIC_POLICIES: dict[str, Callable[[UFCProblem], np.ndarray]] = {
    "nearest": nearest_datacenter_routing,
    "cheapest-power": cheapest_power_routing,
    "proportional": proportional_routing,
}
