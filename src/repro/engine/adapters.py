"""Adapters putting every library solver behind the SlotSolver protocol.

Each adapter owns an underlying solver instance (built from the
adapter's kwargs, or passed in pre-configured via ``inner=``) and
translates its native result type into a :class:`SlotResult`.  The
adapters add no arithmetic of their own: solutions are bit-identical
to calling the underlying solver directly.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.admg.solver import ADMGState, DistributedUFCSolver, ScaledView
from repro.baselines.dual_subgradient import DualSubgradientSolver
from repro.baselines.heuristics import (
    cheapest_power_routing,
    nearest_datacenter_routing,
    proportional_routing,
    solve_heuristic,
)
from repro.core.centralized import CentralizedSolver
from repro.core.compiled import CompiledQPStructure
from repro.core.model import CloudModel
from repro.core.problem import UFCProblem
from repro.core.strategies import Strategy
from repro.engine.protocol import SlotResult

__all__ = [
    "CentralizedSlotSolver",
    "DistributedSlotSolver",
    "DualSubgradientSlotSolver",
    "HeuristicSlotSolver",
    "StructuredCentralizedSolver",
]


def _reject_warm(name: str, warm: Any) -> None:
    if warm is not None:
        raise ValueError(
            f"solver {name!r} does not support warm starts; "
            "run with warm_start=False (see Simulator docs)"
        )


class CentralizedSlotSolver:
    """Interior-point reference solver behind the SlotSolver protocol.

    The interior-point method re-solves each slot from its own
    well-centered starting point, so warm starts are rejected rather
    than silently ignored.
    """

    name = "centralized"
    supports_warm_start = False

    def __init__(self, inner: CentralizedSolver | None = None, **kwargs: Any) -> None:
        self.inner = inner if inner is not None else CentralizedSolver(**kwargs)

    def compile(self, model: CloudModel, strategy: Strategy) -> CompiledQPStructure:
        """The slot-invariant QP skeleton for (model, strategy)."""
        return self.inner.compile(model, strategy)

    def solve(
        self,
        problem: UFCProblem,
        compiled: CompiledQPStructure | None = None,
        warm: Any | None = None,
    ) -> SlotResult:
        """Solve one slot with the interior-point reference solver."""
        _reject_warm(self.name, warm)
        res = self.inner.solve(problem, compiled=compiled)
        extras: dict[str, Any] = {}
        if res.trace is not None:
            extras["ip_trace"] = res.trace
        if res.eq_dual is not None and res.ineq_dual is not None:
            extras["duals"] = (res.eq_dual, res.ineq_dual)
        return SlotResult(
            allocation=res.allocation,
            ufc=res.ufc,
            iterations=res.iterations,
            converged=res.converged,
            extras=extras,
        )


class StructuredCentralizedSolver:
    """Block-elimination interior-point solver behind the protocol.

    Compiles each (model, strategy) to a
    :class:`~repro.optim.kkt.StructuredQPCompiler` and solves every
    slot through the block-sparse KKT path — the lane the hyperscale
    benchmark measures.  An optional ``reach`` array restricts the
    routing pattern to a sparse front-end fan-in (the scale-out
    instance generator produces one); with the default full reach the
    solutions agree with the dense ``"centralized"`` lane to solver
    tolerance.

    ``mode="dense"`` materializes the same reduced QP via
    :meth:`StructuredSlotQP.to_dense` and solves it with the dense
    Mehrotra factorization — the apples-to-apples baseline the
    benchmark's speedup gate compares against (same variables, same
    coefficients, only the KKT linear algebra differs).

    Extras carry ``structured_qp`` and ``duals`` (reduced-layout
    equality/inequality multipliers) so
    :func:`repro.obs.certify.certify_structured_solution` can audit
    the slot without ever forming a dense QP.
    """

    supports_warm_start = False

    def __init__(
        self,
        reach: np.ndarray | None = None,
        mode: str = "block",
        tol: float = 1e-9,
        max_iter: int = 120,
        metrics: Any | None = None,
    ) -> None:
        if mode not in ("block", "dense"):
            raise ValueError(f"mode must be 'block' or 'dense', got {mode!r}")
        self.reach = reach
        self.mode = mode
        self.tol = tol
        self.max_iter = max_iter
        self.metrics = metrics
        self.name = (
            "centralized-structured" if mode == "block" else "centralized-structured-dense"
        )

    def compile(self, model: CloudModel, strategy: Strategy) -> Any:
        """The slot-invariant block-sparse compiler for (model, strategy)."""
        from repro.optim.kkt import StructuredQPCompiler

        return StructuredQPCompiler(model, strategy, reach=self.reach)

    def solve(
        self,
        problem: UFCProblem,
        compiled: Any | None = None,
        warm: Any | None = None,
    ) -> SlotResult:
        """Solve one slot through the reduced (reach-restricted) QP."""
        from repro.optim.ipqp import solve_qp
        from repro.optim.kkt import StructuredQPCompiler, solve_structured_qp

        _reject_warm(self.name, warm)
        if compiled is None or not compiled.matches(problem):
            compiled = self.compile(problem.model, problem.strategy)
        assert isinstance(compiled, StructuredQPCompiler)
        sqp = compiled.structured_qp_for(problem.inputs)
        if self.mode == "block":
            res = solve_structured_qp(
                sqp, tol=self.tol, max_iter=self.max_iter, metrics=self.metrics
            )
            x, eq_dual, ineq_dual = res.x, res.eq_dual, res.ineq_dual
        else:
            p_mat, q_vec, a_mat, b_vec, g_mat, h_vec = sqp.to_dense()
            res = solve_qp(
                p_mat, q_vec, A=a_mat, b=b_vec, G=g_mat, h=h_vec,
                tol=self.tol, max_iter=self.max_iter, metrics=self.metrics,
            )
            x, eq_dual, ineq_dual = res.x, res.eq_dual, res.ineq_dual
        alloc = sqp.extract(x)
        extras: dict[str, Any] = {
            "structured_qp": sqp,
            "structured_x": x,
        }
        if eq_dual is not None and ineq_dual is not None:
            extras["duals"] = (eq_dual, ineq_dual)
        return SlotResult(
            allocation=alloc,
            ufc=problem.ufc(alloc),
            iterations=res.iterations,
            converged=res.converged,
            extras=extras,
        )


class DistributedSlotSolver:
    """The paper's 4-block ADM-G solver behind the SlotSolver protocol.

    Warm payloads are :class:`ADMGState` iterates; the compiled
    structure is the slot-invariant :class:`ScaledView`.
    """

    name = "distributed"
    supports_warm_start = True

    def __init__(self, inner: DistributedUFCSolver | None = None, **kwargs: Any) -> None:
        self.inner = inner if inner is not None else DistributedUFCSolver(**kwargs)

    def compile(self, model: CloudModel, strategy: Strategy) -> ScaledView:
        """The model's workload rescaling, shared by every slot."""
        return self.inner.compile_context(model)

    def solve(
        self,
        problem: UFCProblem,
        compiled: ScaledView | None = None,
        warm: ADMGState | None = None,
    ) -> SlotResult:
        """Solve one slot with ADM-G, optionally warm-started."""
        res = self.inner.solve(problem, initial=warm, context=compiled)
        extras = {
            "coupling_residuals": res.coupling_residuals,
            "power_residuals": res.power_residuals,
        }
        if res.trace is not None:
            extras["residual_trace"] = res.trace
        return SlotResult(
            allocation=res.allocation,
            ufc=res.ufc,
            iterations=res.iterations,
            converged=res.converged,
            warm=res.state,
            extras=extras,
        )


class DualSubgradientSlotSolver:
    """The Fig. 11 dual-subgradient comparator behind the protocol."""

    name = "dual-subgradient"
    supports_warm_start = False

    def __init__(self, inner: DualSubgradientSolver | None = None, **kwargs: Any) -> None:
        self.inner = inner if inner is not None else DualSubgradientSolver(**kwargs)

    def compile(self, model: CloudModel, strategy: Strategy) -> None:
        """No slot-invariant structure: the solver is matrix-free."""
        return None

    def solve(
        self,
        problem: UFCProblem,
        compiled: Any | None = None,
        warm: Any | None = None,
    ) -> SlotResult:
        """Solve one slot with the dual-subgradient comparator."""
        _reject_warm(self.name, warm)
        res = self.inner.solve(problem)
        return SlotResult(
            allocation=res.allocation,
            ufc=res.ufc,
            iterations=res.iterations,
            converged=res.converged,
            extras={
                "capacity_residuals": res.capacity_residuals,
                "power_residuals": res.power_residuals,
            },
        )


class HeuristicSlotSolver:
    """A routing heuristic + optimal power split behind the protocol.

    Non-iterative: ``iterations`` is 0 and ``converged`` is True by
    construction (the policies always emit feasible routings).
    """

    supports_warm_start = False

    def __init__(self, policy: Callable[[UFCProblem], np.ndarray], name: str) -> None:
        self.policy = policy
        self.name = name

    def compile(self, model: CloudModel, strategy: Strategy) -> None:
        """No slot-invariant structure: policies are closed-form."""
        return None

    def solve(
        self,
        problem: UFCProblem,
        compiled: Any | None = None,
        warm: Any | None = None,
    ) -> SlotResult:
        """Route with the policy, then split power optimally."""
        _reject_warm(self.name, warm)
        res = solve_heuristic(problem, self.policy, name=self.name)
        return SlotResult(
            allocation=res.allocation,
            ufc=res.ufc,
            iterations=0,
            converged=True,
        )


#: Policy table for the heuristic registry entries.
HEURISTIC_POLICIES: dict[str, Callable[[UFCProblem], np.ndarray]] = {
    "nearest": nearest_datacenter_routing,
    "cheapest-power": cheapest_power_routing,
    "proportional": proportional_routing,
}
