"""Per-slot retry, fallback-chain and quarantine policy for the engine.

A production horizon cannot afford one slot's solver failure to
propagate: the engine already *captures* per-slot exceptions, but a
captured failure still means an hour with no allocation.
:class:`ResilienceConfig` upgrades capture to recovery: retry the
primary solver under a budget, then walk a fallback chain of
strictly-simpler solvers (e.g. ``distributed`` → ``centralized`` →
``proportional``), optionally bounded by a per-attempt wall-clock
budget, with quarantine for a primary that keeps failing.  Every
rescued slot is *flagged* — ``degraded`` / ``fallback_solver`` on the
:class:`~repro.engine.horizon.SlotOutcome` — and still flows through
certification, so recovery never hides behind a clean-looking result.

With no config attached (the default) the engine's original code path
runs unchanged and outputs stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RetryPolicy", "ResilienceConfig"]


@dataclass(frozen=True)
class RetryPolicy:
    """Attempt budget for the *primary* solver on one slot.

    Fallback solvers get one attempt each: they are deterministic
    simplifications, so a retry would recompute the identical failure.
    Retrying the primary is useful precisely when its failures are not
    deterministic — fault-injected runs, timeouts, resource pressure.
    """

    max_attempts: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")


@dataclass(frozen=True)
class ResilienceConfig:
    """How the engine rescues a failing slot.

    Attributes:
        retry: attempt budget for the primary solver.
        fallback: registry names tried in order once the primary's
            budget is spent.  Each fallback result marks the outcome
            ``degraded`` with ``fallback_solver`` set.
        slot_timeout_s: per-attempt wall-clock budget.  In-process
            solvers cannot be preempted, so this is enforced *post
            hoc*: an attempt that returns after the budget is treated
            as failed and the chain escalates.  None disables.
        quarantine_after: consecutive primary failures (across a
            chunk's slots) after which the primary is skipped and
            slots go straight to the fallback chain.  Quarantine is
            per worker process — pool chunks track it independently.
            0 disables.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    fallback: tuple[str, ...] = ()
    slot_timeout_s: float | None = None
    quarantine_after: int = 0

    def __post_init__(self) -> None:
        if self.slot_timeout_s is not None and self.slot_timeout_s <= 0:
            raise ValueError(
                f"slot_timeout_s must be positive, got {self.slot_timeout_s}"
            )
        if self.quarantine_after < 0:
            raise ValueError(
                f"quarantine_after must be >= 0, got {self.quarantine_after}"
            )
        object.__setattr__(self, "fallback", tuple(self.fallback))
        if self.quarantine_after and not self.fallback:
            raise ValueError(
                "quarantine_after needs a fallback chain: a quarantined "
                "primary with no fallback would leave slots unsolvable"
            )
