"""String-keyed factory for slot solvers.

``create_solver`` is the single place the library turns a solver
*specification* — a registry name, an already-adapted
:class:`~repro.engine.protocol.SlotSolver`, or a bare legacy solver
instance (:class:`CentralizedSolver`, :class:`DistributedUFCSolver`,
:class:`DualSubgradientSolver`) — into a protocol-conformant solver.
The simulator, CLI, experiment drivers and benchmarks all resolve
through it, which is what lets ``--solver dual-subgradient`` or a
custom registered solver flow through every code path unchanged.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.admg.solver import DistributedUFCSolver
from repro.baselines.dual_subgradient import DualSubgradientSolver
from repro.core.centralized import CentralizedSolver
from repro.engine.adapters import (
    HEURISTIC_POLICIES,
    CentralizedSlotSolver,
    DistributedSlotSolver,
    DualSubgradientSlotSolver,
    HeuristicSlotSolver,
    StructuredCentralizedSolver,
)
from repro.engine.protocol import SlotSolver
from repro.engine.warm import CentralizedWarmSlotSolver

__all__ = ["available_solvers", "create_solver", "register_solver"]

_FACTORIES: dict[str, Callable[..., SlotSolver]] = {}


def register_solver(name: str, factory: Callable[..., SlotSolver]) -> None:
    """Register a solver factory under ``name``.

    The factory receives ``create_solver``'s keyword arguments and must
    return a :class:`SlotSolver`.  Re-registering a name overwrites it.
    """
    if not name:
        raise ValueError("solver name must be non-empty")
    _FACTORIES[name] = factory


def available_solvers() -> tuple[str, ...]:
    """Registered solver names, sorted."""
    return tuple(sorted(_FACTORIES))


def create_solver(spec: str | SlotSolver | Any = "centralized", **kwargs: Any) -> SlotSolver:
    """Resolve a solver specification into a :class:`SlotSolver`.

    Args:
        spec: a registry name (see :func:`available_solvers`), an
            object already implementing the protocol, or a bare
            ``CentralizedSolver`` / ``DistributedUFCSolver`` /
            ``DualSubgradientSolver`` instance (adapted in place).
        **kwargs: forwarded to the registered factory (ignored for
            pre-built instances).  The built-in adapters forward them
            to the underlying solver constructor, so observability
            knobs resolve here too — e.g.
            ``create_solver("distributed", trace=True)`` yields a
            solver whose every slot carries a per-iteration
            ``residual_trace`` in ``SlotResult.extras``.

    Raises:
        KeyError: for an unknown registry name.
        TypeError: for a specification of an unsupported type.
    """
    if isinstance(spec, str):
        try:
            factory = _FACTORIES[spec]
        except KeyError:
            raise KeyError(
                f"unknown solver {spec!r}; available: "
                f"{', '.join(available_solvers())}"
            ) from None
        return factory(**kwargs)
    if isinstance(spec, CentralizedSolver):
        return CentralizedSlotSolver(inner=spec)
    if isinstance(spec, DistributedUFCSolver):
        return DistributedSlotSolver(inner=spec)
    if isinstance(spec, DualSubgradientSolver):
        return DualSubgradientSlotSolver(inner=spec)
    if isinstance(spec, SlotSolver):
        return spec
    raise TypeError(
        f"cannot build a slot solver from {type(spec).__name__!r}; pass a "
        "registry name, a SlotSolver, or a supported solver instance"
    )


register_solver("centralized", CentralizedSlotSolver)
register_solver("centralized-structured", StructuredCentralizedSolver)
register_solver("centralized-warm", CentralizedWarmSlotSolver)
register_solver("distributed", DistributedSlotSolver)
register_solver("dual-subgradient", DualSubgradientSlotSolver)
for _name, _policy in HEURISTIC_POLICIES.items():
    register_solver(
        _name,
        lambda policy=_policy, name=_name, **kwargs: HeuristicSlotSolver(policy, name),
    )
