"""The unified solve engine.

One protocol (:class:`~repro.engine.protocol.SlotSolver`), one factory
(:mod:`repro.engine.registry`), one horizon mapper
(:class:`~repro.engine.horizon.HorizonEngine`): every per-slot UFC
solver in the library — centralized interior-point, distributed ADM-G,
dual subgradient, routing heuristics — plugs in behind the same
``solve(problem, warm=...) -> SlotResult`` surface, with slot-invariant
compiled structure built once per horizon and slots mapped over a
serial or process-pool executor.
"""

from repro.engine.adapters import (
    CentralizedSlotSolver,
    DistributedSlotSolver,
    DualSubgradientSlotSolver,
    HeuristicSlotSolver,
)
from repro.engine.batch import CentralizedBatchSlotSolver
from repro.engine.horizon import CompileCache, HorizonEngine, SlotOutcome

# Re-exported from their home in the execution layer (the old
# `repro.engine.horizon.parallel_map` shim is now a hard error).
from repro.exec import parallel_map, usable_cpu_count
from repro.engine.warm import CentralizedWarmSlotSolver, WarmPayload
from repro.engine.protocol import SlotResult, SlotSolver
from repro.engine.registry import available_solvers, create_solver, register_solver

__all__ = [
    "SlotResult",
    "SlotSolver",
    "SlotOutcome",
    "CompileCache",
    "HorizonEngine",
    "parallel_map",
    "usable_cpu_count",
    "CentralizedBatchSlotSolver",
    "CentralizedSlotSolver",
    "CentralizedWarmSlotSolver",
    "DistributedSlotSolver",
    "DualSubgradientSlotSolver",
    "HeuristicSlotSolver",
    "WarmPayload",
    "available_solvers",
    "create_solver",
    "register_solver",
]
