"""The slot-solver protocol every UFC solver plugs into.

A *slot solver* answers one question — "given one slot's
:class:`~repro.core.problem.UFCProblem`, what allocation do you pick?"
— through a uniform surface, so the simulator, the experiment drivers
and the benchmarks never branch on solver kind again:

- :meth:`SlotSolver.compile` builds the solver's *slot-invariant*
  structure once per (model, strategy): the compiled QP skeleton for
  the centralized solver, the rescaled model view for ADM-G.  Solvers
  without reusable structure return None.
- :meth:`SlotSolver.solve` solves one slot, optionally resuming from
  the previous slot's opaque ``warm`` payload (only solvers with
  ``supports_warm_start`` accept one).

Results come back as :class:`SlotResult`, a solver-agnostic record of
the allocation plus convergence bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol, runtime_checkable

from repro.core.model import CloudModel
from repro.core.problem import UFCProblem
from repro.core.solution import Allocation
from repro.core.strategies import Strategy

__all__ = ["SlotResult", "SlotSolver"]


@dataclass
class SlotResult:
    """One slot's solve outcome, solver-agnostic.

    Attributes:
        allocation: the chosen (lambda, mu, nu).
        ufc: UFC value of the allocation.
        iterations: solver iterations used (0 for non-iterative
            solvers such as routing heuristics).
        converged: whether the solver met its own stopping criterion.
        warm: opaque warm-start payload for the *next* slot (None when
            the solver does not support warm starts).
        extras: solver-specific diagnostics, safe to ignore — e.g.
            ADM-G residual histories, and the opt-in per-iteration
            traces (``"residual_trace"`` from ADM-G built with
            ``trace=True``, ``"ip_trace"`` from the centralized
            interior-point solver).
    """

    allocation: Allocation
    ufc: float
    iterations: int
    converged: bool
    warm: Any = None
    extras: dict[str, Any] = field(default_factory=dict)


@runtime_checkable
class SlotSolver(Protocol):
    """The pluggable per-slot solver interface.

    Attributes:
        name: registry/display name.
        supports_warm_start: whether :meth:`solve` accepts a ``warm``
            payload from the previous slot's :class:`SlotResult`.
    """

    name: str
    supports_warm_start: bool

    def compile(self, model: CloudModel, strategy: Strategy) -> Any | None:
        """Slot-invariant structure for (model, strategy), or None."""
        ...

    def solve(
        self,
        problem: UFCProblem,
        compiled: Any | None = None,
        warm: Any | None = None,
    ) -> SlotResult:
        """Solve one slot, optionally using compiled structure and a
        warm-start payload from the previous slot."""
        ...
