"""Map independent slot problems over pluggable execution clients.

Interactive workloads cannot be deferred, so the paper's 168 hourly
UFC problems are independent — the horizon is an embarrassingly
parallel map.  :class:`HorizonEngine` runs it as a *policy layer* over
the :mod:`repro.exec` client stack: slots are chunked into batches,
submitted asynchronously through an
:class:`~repro.exec.clients.ExecutionClient` (in-process,
multiprocessing, or socket/RPC for multi-node sharding), kept at most
``max_pending`` batches in flight, and harvested as they complete —
with results reassembled in slot order, so every lane stays
deterministic.  Concretely:

- a **serial** executor (``workers=1``, the in-process client) or a
  chunked **process pool** (``workers>1``, the multiprocessing
  client), with deterministic, index-ordered results either way
  (solvers are deterministic, so serial and parallel runs return
  bit-identical allocations); ``client=`` swaps in any registered
  backend (``"mp"``, ``"socket"``, or a custom
  :class:`~repro.exec.clients.ExecutionClient`);
- an optional **persistent result store**
  (:class:`~repro.exec.store.ResultStore`): slots whose (model,
  strategy, solver, inputs) digest is already on disk resolve from
  the store instead of the solver, so repeated sweeps and chaos runs
  warm-start from disk;
- **pool sizing that cannot hurt**: the requested worker count is
  clamped to the CPUs actually usable by this process, the
  multiprocessing start method is pinned explicitly, and when the pool
  cannot help (≤1 usable CPU) the engine falls back to the serial path
  — every such decision is recorded in the run's telemetry and
  :class:`~repro.obs.HorizonSummary` instead of silently costing 5%;
- **compiled-structure caching**: each distinct (model, strategy) pair
  gets one :meth:`SlotSolver.compile` call per horizon (per worker in
  the process pool), not one per slot.  The cache
  (:class:`CompileCache`) is identity-safe: it holds a strong
  reference to each keyed model and verifies ``is`` on hit, so a
  recycled ``id()`` can never serve a stale structure;
- **per-slot error capture**: a slot whose solve raises is reported as
  a failed :class:`SlotOutcome` — with the exception's class name and
  message carried as structured fields next to the formatted traceback
  — instead of killing the horizon;
- **warm-start chaining** (``warm_start=True``): each slot resumes
  from the previous slot's payload.  Chaining is inherently
  sequential, so it requires ``workers=1`` and a solver that supports
  warm starts;
- **telemetry**: pass a :class:`~repro.obs.Telemetry` sink to receive
  ``engine.decision`` / ``engine.slot`` / ``engine.compile`` /
  ``engine.run`` events; every outcome carries a
  :class:`~repro.obs.SlotTelemetry` (these pickle with the outcome, so
  pool workers report exactly what the serial path does), and
  :attr:`HorizonEngine.last_summary` aggregates the run.
"""

from __future__ import annotations

import cProfile
import hashlib
import os
import platform
import sys
import time
import traceback
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.core.problem import UFCProblem
from repro.engine.protocol import SlotResult, SlotSolver
from repro.engine.registry import create_solver
from repro.engine.resilience import ResilienceConfig
from repro.exec.clients import (
    ExecutionClient,
    InProcessClient,
    MultiprocessingClient,
    WorkerLostError,
    create_client,
    usable_cpu_count,
)
from repro.exec.pipeline import BatchScheduler
from repro.exec.store import ResultStore, problem_digest
from repro.exec.supervisor import (
    FleetStats,
    FleetSupervisor,
    SupervisorConfig,
    TaskTimeoutError,
)
from repro.obs import (
    HorizonSummary,
    RunLedger,
    SlotTelemetry,
    SpanTracer,
    Telemetry,
    TraceContext,
    WorkerObsPlan,
    WorkerReport,
    as_telemetry,
    interrupt_guard,
    new_run_id,
)
from repro.obs.worker import local_host, profile_hotspots, slot_metrics

__all__ = [
    "SlotOutcome",
    "SlotTimeoutError",
    "CompileCache",
    "HorizonEngine",
    "parallel_map",
    "usable_cpu_count",
]


class SlotTimeoutError(RuntimeError):
    """An attempt exceeded the per-slot wall-clock budget.

    In-process solvers cannot be preempted, so the budget is enforced
    after the attempt returns (and, for asynchronous clients, on the
    whole pending batch at harvest time); the late result is discarded
    and the fallback chain escalates.
    """

_T = TypeVar("_T")
_R = TypeVar("_R")


@dataclass
class SlotOutcome:
    """One slot's engine outcome: a result or a captured error.

    Attributes:
        index: slot index within the submitted horizon.
        result: the solver's :class:`SlotResult` (None on error).
        error: formatted traceback of the slot's failure (None on
            success).
        error_type: exception class name (e.g. ``"LinAlgError"``) so
            callers can branch on failure kind without parsing the
            traceback; None on success.
        error_message: ``str(exception)`` of the failure; None on
            success.
        telemetry: the slot's :class:`~repro.obs.SlotTelemetry`
            measurements (None only for legacy hand-built outcomes).
        certificate: the slot's numerical-health
            :class:`~repro.obs.certify.Certificate` when the engine ran
            with certification on; None otherwise.
        attempts: total solve attempts this slot consumed (1 on the
            non-resilient path; retries and fallbacks each add one).
        degraded: the result came from a fallback solver or the solver
            itself reported a degraded completion — flagged, never
            hidden.
        fallback_solver: name of the fallback solver that produced the
            result; None when the primary did.
        chain_errors: one ``"solver[attempt k]: ErrType: message"``
            entry per failed attempt along the retry/fallback chain.
        worker_report: the slot's worker-side
            :class:`~repro.obs.WorkerReport` (metric samples, spans,
            optional profile) when the engine ran with worker
            observability on; None otherwise (the default — the
            observability-off outcome is unchanged).
        lineage: the fleet supervisor's retry lineage for this slot's
            chunk (attempt count, workers tried, faults, hedge
            outcome) when the slot was not first-try-clean under
            supervision; None otherwise.
    """

    index: int
    result: SlotResult | None = None
    error: str | None = None
    error_type: str | None = None
    error_message: str | None = None
    telemetry: SlotTelemetry | None = None
    certificate: Any | None = None
    attempts: int = 1
    degraded: bool = False
    fallback_solver: str | None = None
    chain_errors: tuple[str, ...] = ()
    worker_report: WorkerReport | None = None
    lineage: dict[str, Any] | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


class CompileCache:
    """Identity-safe (model, strategy) -> compiled-structure cache.

    Keys combine ``id(model)`` (models are mutable and unhashable by
    value) with the strategy.  A raw id key is unsafe on its own:
    CPython recycles addresses, so a freed transient model's id can be
    reassigned to a different model, which would then be served the
    stale structure.  Two defenses make the cache exact:

    - every entry holds a **strong reference** to its keyed model, so
      a cached model can never be garbage-collected (and its id never
      recycled) while the cache lives;
    - lookups verify the stored model ``is`` the requesting problem's
      model, so even a corrupted or inherited entry can never hit for
      a different object.

    The cache also times compilation and counts hits/misses for the
    observability layer.
    """

    def __init__(self, solver: SlotSolver) -> None:
        self._solver = solver
        self._entries: dict[tuple[int, Any], tuple[Any, Any]] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, model: Any, strategy: Any) -> tuple[Any, bool, float]:
        """The compiled structure for (model, strategy).

        Returns:
            ``(compiled, hit, compile_seconds)`` — ``hit`` is False and
            ``compile_seconds`` nonzero when this call compiled.
        """
        key = (id(model), strategy)
        entry = self._entries.get(key)
        if entry is not None and entry[0] is model:
            self.hits += 1
            return entry[1], True, 0.0
        start = time.perf_counter()
        compiled = self._solver.compile(model, strategy)
        elapsed = time.perf_counter() - start
        self.misses += 1
        self._entries[key] = (model, compiled)
        return compiled, False, elapsed


@dataclass
class _Chunk:
    """A batch of slots shipped to one worker.

    Usually a contiguous run (``start + offset`` indexing); a store-
    warmed horizon solves only the miss slots, so ``indices`` carries
    the explicit (sorted, possibly gapped) slot indices in that case.
    """

    start: int
    problems: list[UFCProblem] = field(default_factory=list)
    indices: list[int] | None = None

    def index(self, offset: int) -> int:
        """The global slot index of the chunk's ``offset``-th problem."""
        if self.indices is not None:
            return self.indices[offset]
        return self.start + offset


def _failed_outcome(
    index: int,
    exc: Exception,
    solver_name: str,
    *,
    wall_s: float,
    compile_s: float,
    cache_hit: bool | None,
    warm_start: bool = False,
) -> SlotOutcome:
    """A failed :class:`SlotOutcome` with structured error info."""
    return SlotOutcome(
        index=index,
        error=traceback.format_exc(),
        error_type=type(exc).__name__,
        error_message=str(exc),
        telemetry=SlotTelemetry(
            solver=solver_name,
            wall_s=wall_s,
            compile_s=compile_s,
            iterations=0,
            converged=False,
            cache_hit=cache_hit,
            worker=os.getpid(),
            warm_start=warm_start,
            error_type=type(exc).__name__,
        ),
    )


def _certify_result(
    certifier: Any, problem: UFCProblem, result: SlotResult, solver_name: str,
    index: int,
) -> Any:
    """The slot's certificate (solver duals preferred when shipped)."""
    duals = result.extras.get("duals") if result.extras else None
    return certifier.certify(
        problem, result.allocation, duals=duals, solver=solver_name, slot=index
    )


def _solve_one(
    solver: SlotSolver,
    index: int,
    problem: UFCProblem,
    cache: CompileCache,
    structure_cache: bool,
    certifier: Any | None,
    pid: int,
) -> SlotOutcome:
    """Solve one slot through the scalar path, capturing any failure."""
    compiled = None
    cache_hit: bool | None = None
    compile_s = 0.0
    start = time.perf_counter()
    try:
        if structure_cache:
            compiled, cache_hit, compile_s = cache.lookup(
                problem.model, problem.strategy
            )
        solve_start = time.perf_counter()
        result = solver.solve(problem, compiled=compiled)
        wall_s = time.perf_counter() - solve_start
        certificate = (
            _certify_result(certifier, problem, result, solver.name, index)
            if certifier is not None
            else None
        )
        return SlotOutcome(
            index=index,
            result=result,
            certificate=certificate,
            telemetry=SlotTelemetry(
                solver=solver.name,
                wall_s=wall_s,
                compile_s=compile_s,
                iterations=result.iterations,
                converged=result.converged,
                cache_hit=cache_hit,
                worker=pid,
                warm_start=False,
                certify_s=(
                    certificate.certify_s if certificate is not None else 0.0
                ),
            ),
        )
    except Exception as exc:
        return _failed_outcome(
            index,
            exc,
            solver.name,
            wall_s=time.perf_counter() - start,
            compile_s=compile_s,
            cache_hit=cache_hit,
        )


def _solve_chunk(
    solver: SlotSolver,
    chunk: _Chunk,
    structure_cache: bool,
    certifier: Any | None = None,
    resilience: ResilienceConfig | None = None,
    batched: bool = False,
    obs: WorkerObsPlan | None = None,
) -> list[SlotOutcome]:
    """Solve a contiguous chunk serially with a per-chunk compile cache.

    Module-level so the process executor can pickle it; also the
    serial executor's inner loop, so both paths share one code path.
    Per-slot telemetry (and, with ``certifier``, each slot's
    certificate) travels back attached to the outcomes, which is what
    lets the parent aggregate pool runs without a second channel.

    With ``resilience`` attached the chunk runs through
    :func:`_solve_chunk_resilient` instead, and with ``batched`` set
    through :func:`_solve_chunk_batched`; with the defaults this
    original scalar path runs untouched (bit-identical outputs).
    With an ``obs`` plan, :func:`_solve_chunk_observed` additionally
    attaches a :class:`~repro.obs.WorkerReport` to every outcome.
    """
    if obs is not None:
        return _solve_chunk_observed(
            solver, chunk, structure_cache, certifier, resilience, batched, obs
        )
    if batched:
        return _solve_chunk_batched(solver, chunk, structure_cache, certifier)
    if resilience is not None:
        return _solve_chunk_resilient(
            solver, chunk, structure_cache, certifier, resilience
        )
    cache = CompileCache(solver)
    pid = os.getpid()
    return [
        _solve_one(
            solver, chunk.index(offset), problem, cache, structure_cache,
            certifier, pid,
        )
        for offset, problem in enumerate(chunk.problems)
    ]


def _solve_chunk_warm(
    solver: SlotSolver,
    chunk: _Chunk,
    structure_cache: bool,
    certifier: Any | None,
    warm: Any | None,
) -> list[SlotOutcome]:
    """Solve a warm-chained chunk shipped through an execution client.

    Module-level so process and socket clients can pickle it.  The
    previous slot's warm payload rides the task arguments and the new
    payload rides back on ``SlotResult.warm``, so the chain's state
    crosses worker boundaries with the task itself.  A slot failure is
    captured per slot exactly as in the scalar path and ships no
    payload, which cold-restarts the chain on the next submission.
    """
    cache = CompileCache(solver)
    pid = os.getpid()
    outcomes: list[SlotOutcome] = []
    for offset, problem in enumerate(chunk.problems):
        index = chunk.index(offset)
        compiled = None
        cache_hit: bool | None = None
        compile_s = 0.0
        had_warm = warm is not None
        start = time.perf_counter()
        try:
            if structure_cache:
                compiled, cache_hit, compile_s = cache.lookup(
                    problem.model, problem.strategy
                )
            solve_start = time.perf_counter()
            result = solver.solve(problem, compiled=compiled, warm=warm)
            wall_s = time.perf_counter() - solve_start
            warm = result.warm
            certificate = (
                _certify_result(certifier, problem, result, solver.name, index)
                if certifier is not None
                else None
            )
            outcomes.append(
                SlotOutcome(
                    index=index,
                    result=result,
                    certificate=certificate,
                    telemetry=SlotTelemetry(
                        solver=solver.name,
                        wall_s=wall_s,
                        compile_s=compile_s,
                        iterations=result.iterations,
                        converged=result.converged,
                        cache_hit=cache_hit,
                        worker=pid,
                        warm_start=had_warm,
                        certify_s=(
                            certificate.certify_s
                            if certificate is not None
                            else 0.0
                        ),
                    ),
                )
            )
        except Exception as exc:
            warm = None
            outcomes.append(
                _failed_outcome(
                    index,
                    exc,
                    solver.name,
                    wall_s=time.perf_counter() - start,
                    compile_s=compile_s,
                    cache_hit=cache_hit,
                    warm_start=had_warm,
                )
            )
    return outcomes


def _synth_slot_span(outcome: SlotOutcome, pid: int) -> dict[str, Any]:
    """A synthesized ``worker.slot`` span dict built from telemetry.

    The batched/resilient lanes solve many slots inside one solver
    call, so individual slots cannot be wrapped live; their spans are
    reconstructed from the per-slot telemetry instead (wall time known,
    CPU time not) and marked ``synthesized``.
    """
    tele = outcome.telemetry
    wall = 0.0 if tele is None else tele.wall_s + tele.compile_s + tele.certify_s
    return {
        "name": "worker.slot",
        "span_id": 0,
        "parent_id": None,
        "wall_s": wall,
        "cpu_s": 0.0,
        "attributes": {
            "index": outcome.index,
            "worker": pid,
            "ok": outcome.ok,
            "iterations": 0 if tele is None else tele.iterations,
            "converged": bool(tele is not None and tele.converged),
            "synthesized": True,
        },
    }


def _attach_report(
    outcome: SlotOutcome,
    obs: WorkerObsPlan,
    *,
    pid: int,
    host: str,
    spans: tuple[dict[str, Any], ...],
    profile: tuple[dict[str, Any], ...] = (),
    profile_scope: str = "slot",
) -> None:
    tele = outcome.telemetry
    outcome.worker_report = WorkerReport(
        worker=pid,
        host=host,
        metrics=(
            slot_metrics(tele).to_dict() if obs.metrics and tele is not None else None
        ),
        spans=spans,
        trace=obs.trace,
        profile=profile,
        profile_scope=profile_scope,
    )


def _solve_chunk_observed(
    solver: SlotSolver,
    chunk: _Chunk,
    structure_cache: bool,
    certifier: Any | None,
    resilience: ResilienceConfig | None,
    batched: bool,
    obs: WorkerObsPlan,
) -> list[SlotOutcome]:
    """The worker-observability wrapper around the chunk solve paths.

    The scalar lane wraps every slot individually — a live
    ``worker.slot`` span and (optionally) a per-slot cProfile.  The
    batched and resilient lanes run their existing chunk function
    untouched and synthesize per-slot spans from the telemetry the
    outcomes already carry (one chunk-level profile lands on the first
    outcome with ``profile_scope="chunk"``).  Either way every outcome
    comes back with a :class:`~repro.obs.WorkerReport` whose metric
    samples cover exactly that slot, so the parent can merge reports
    without double counting.
    """
    pid = os.getpid()
    host = local_host()
    if batched or resilience is not None:
        profiler = None
        if obs.profile > 0:
            profiler = cProfile.Profile()
            profiler.enable()
        try:
            outcomes = _solve_chunk(
                solver, chunk, structure_cache, certifier, resilience, batched
            )
        finally:
            if profiler is not None:
                profiler.disable()
        rows = (
            profile_hotspots(profiler, obs.profile) if profiler is not None else ()
        )
        for j, outcome in enumerate(outcomes):
            spans: tuple[dict[str, Any], ...] = ()
            if obs.spans:
                spans = (_synth_slot_span(outcome, pid),)
            _attach_report(
                outcome,
                obs,
                pid=pid,
                host=host,
                spans=spans,
                profile=rows if j == 0 else (),
                profile_scope="chunk",
            )
        return outcomes
    cache = CompileCache(solver)
    outcomes = []
    for offset, problem in enumerate(chunk.problems):
        index = chunk.index(offset)
        tracer = SpanTracer() if obs.spans else None
        profiler = cProfile.Profile() if obs.profile > 0 else None
        with ExitStack() as stack:
            span = None
            if tracer is not None:
                span = stack.enter_context(
                    tracer.span(
                        "worker.slot", index=index, solver=solver.name, worker=pid
                    )
                )
            if profiler is not None:
                profiler.enable()
            try:
                outcome = _solve_one(
                    solver, index, problem, cache, structure_cache, certifier, pid
                )
            finally:
                if profiler is not None:
                    profiler.disable()
            if span is not None:
                tele = outcome.telemetry
                span.set(
                    ok=outcome.ok,
                    iterations=0 if tele is None else tele.iterations,
                    converged=bool(tele is not None and tele.converged),
                )
        _attach_report(
            outcome,
            obs,
            pid=pid,
            host=host,
            spans=tuple(tracer.to_dicts()) if tracer is not None else (),
            profile=(
                profile_hotspots(profiler, obs.profile)
                if profiler is not None
                else ()
            ),
        )
        outcomes.append(outcome)
    return outcomes


def _solve_chunk_batched(
    solver: SlotSolver,
    chunk: _Chunk,
    structure_cache: bool,
    certifier: Any | None = None,
) -> list[SlotOutcome]:
    """Solve a chunk through the solver's vectorized ``solve_batch``.

    Slots are grouped by (model, strategy) — the unit the compile
    cache keys on — and each group goes to ``solver.solve_batch`` as
    one stacked solve.  Every slot still yields its own
    :class:`SlotOutcome` with telemetry (the batch wall clock is
    apportioned evenly across the group; the group's single compile
    cost lands on its first slot, mirroring the scalar path where the
    first slot misses and the rest hit) and, when a certifier is
    attached, its own certificate.

    A group-level failure (compile error, non-representable cost, ...)
    degrades gracefully: each slot of the group is re-solved through
    the scalar :func:`_solve_one` path, which captures per-slot errors
    as failed outcomes exactly like the serial executor.
    """
    cache = CompileCache(solver)
    pid = os.getpid()
    outcomes: dict[int, SlotOutcome] = {}
    groups: list[tuple[Any, Any, list[int]]] = []
    for offset, problem in enumerate(chunk.problems):
        for model, strategy, offsets in groups:
            if problem.model is model and problem.strategy == strategy:
                offsets.append(offset)
                break
        else:
            groups.append((problem.model, problem.strategy, [offset]))
    for model, strategy, offsets in groups:
        group = [chunk.problems[offset] for offset in offsets]
        compiled = None
        cache_hit: bool | None = None
        compile_s = 0.0
        try:
            if structure_cache:
                compiled, cache_hit, compile_s = cache.lookup(model, strategy)
            solve_start = time.perf_counter()
            results = solver.solve_batch(group, compiled=compiled)
            wall_s = (time.perf_counter() - solve_start) / len(group)
        except Exception:
            for offset in offsets:
                outcomes[offset] = _solve_one(
                    solver, chunk.index(offset), chunk.problems[offset],
                    cache, structure_cache, certifier, pid,
                )
            continue
        for j, (offset, problem, result) in enumerate(zip(offsets, group, results)):
            index = chunk.index(offset)
            try:
                certificate = (
                    _certify_result(certifier, problem, result, solver.name, index)
                    if certifier is not None
                    else None
                )
            except Exception as exc:
                outcomes[offset] = _failed_outcome(
                    index, exc, solver.name, wall_s=wall_s,
                    compile_s=compile_s if j == 0 else 0.0,
                    cache_hit=cache_hit if j == 0 else (
                        True if structure_cache else None
                    ),
                )
                continue
            outcomes[offset] = SlotOutcome(
                index=index,
                result=result,
                certificate=certificate,
                telemetry=SlotTelemetry(
                    solver=solver.name,
                    wall_s=wall_s,
                    compile_s=compile_s if j == 0 else 0.0,
                    iterations=result.iterations,
                    converged=result.converged,
                    cache_hit=cache_hit if j == 0 else (
                        True if structure_cache else None
                    ),
                    worker=pid,
                    warm_start=False,
                    certify_s=(
                        certificate.certify_s if certificate is not None else 0.0
                    ),
                ),
            )
    return [outcomes[offset] for offset in range(len(chunk.problems))]


def _solve_chunk_resilient(
    solver: SlotSolver,
    chunk: _Chunk,
    structure_cache: bool,
    certifier: Any | None,
    resilience: ResilienceConfig,
) -> list[SlotOutcome]:
    """Solve a chunk under a retry/fallback-chain/quarantine policy.

    Per slot: the primary solver gets ``retry.max_attempts`` tries,
    then each fallback (instantiated once per chunk, with its own
    compile cache) gets one.  Any attempt exceeding ``slot_timeout_s``
    is discarded as a :class:`SlotTimeoutError`.  After
    ``quarantine_after`` consecutive slots where the primary's whole
    budget failed, the primary is skipped for the rest of the chunk
    and slots go straight to the fallback chain.  A slot only becomes
    a failed outcome when *every* solver in the chain failed.
    """
    pid = os.getpid()
    lanes: list[tuple[SlotSolver, CompileCache, int, bool]] = [
        (solver, CompileCache(solver), resilience.retry.max_attempts, True)
    ]
    for name in resilience.fallback:
        fallback = create_solver(name)
        lanes.append((fallback, CompileCache(fallback), 1, False))
    consecutive_primary_failures = 0
    quarantined = False
    outcomes: list[SlotOutcome] = []
    for offset, problem in enumerate(chunk.problems):
        index = chunk.index(offset)
        chain_errors: list[str] = []
        attempts = 0
        outcome: SlotOutcome | None = None
        primary_failed = False
        last_exc: Exception | None = None
        last_tb = ""
        last_compile_s = 0.0
        last_cache_hit: bool | None = None
        slot_start = time.perf_counter()
        if quarantined:
            chain_errors.append(
                f"{solver.name}: quarantined after "
                f"{consecutive_primary_failures} consecutive slot failures"
            )
        for lane_solver, cache, budget, is_primary in lanes:
            if is_primary and quarantined:
                continue
            for attempt in range(1, budget + 1):
                attempts += 1
                compiled = None
                cache_hit: bool | None = None
                compile_s = 0.0
                try:
                    if structure_cache:
                        compiled, cache_hit, compile_s = cache.lookup(
                            problem.model, problem.strategy
                        )
                    solve_start = time.perf_counter()
                    result = lane_solver.solve(problem, compiled=compiled)
                    wall_s = time.perf_counter() - solve_start
                    budget_s = resilience.slot_timeout_s
                    if budget_s is not None and wall_s > budget_s:
                        raise SlotTimeoutError(
                            f"slot {index}: {lane_solver.name} attempt took "
                            f"{wall_s:.3f}s > budget {budget_s:.3f}s"
                        )
                except Exception as exc:
                    last_exc = exc
                    last_tb = traceback.format_exc()
                    last_compile_s = compile_s
                    last_cache_hit = cache_hit
                    chain_errors.append(
                        f"{lane_solver.name}[attempt {attempt}]: "
                        f"{type(exc).__name__}: {exc}"
                    )
                    continue
                degraded_result = bool(result.extras.get("degraded"))
                certificate = (
                    _certify_result(
                        certifier, problem, result, lane_solver.name, index
                    )
                    if certifier is not None
                    else None
                )
                outcome = SlotOutcome(
                    index=index,
                    result=result,
                    certificate=certificate,
                    attempts=attempts,
                    degraded=degraded_result or not is_primary,
                    fallback_solver=None if is_primary else lane_solver.name,
                    chain_errors=tuple(chain_errors),
                    telemetry=SlotTelemetry(
                        solver=lane_solver.name,
                        wall_s=wall_s,
                        compile_s=compile_s,
                        iterations=result.iterations,
                        converged=result.converged,
                        cache_hit=cache_hit,
                        worker=pid,
                        warm_start=False,
                        certify_s=(
                            certificate.certify_s if certificate is not None else 0.0
                        ),
                    ),
                )
                break
            if outcome is not None:
                if is_primary:
                    consecutive_primary_failures = 0
                break
            if is_primary:
                primary_failed = True
        if outcome is None:
            outcome = SlotOutcome(
                index=index,
                error=last_tb,
                error_type=type(last_exc).__name__,
                error_message=str(last_exc),
                attempts=attempts,
                chain_errors=tuple(chain_errors),
                telemetry=SlotTelemetry(
                    solver=solver.name,
                    wall_s=time.perf_counter() - slot_start,
                    compile_s=last_compile_s,
                    iterations=0,
                    converged=False,
                    cache_hit=last_cache_hit,
                    worker=pid,
                    warm_start=False,
                    error_type=type(last_exc).__name__,
                ),
            )
        if primary_failed:
            consecutive_primary_failures += 1
            if (
                resilience.quarantine_after
                and consecutive_primary_failures >= resilience.quarantine_after
            ):
                quarantined = True
        outcomes.append(outcome)
    return outcomes


def _timeout_chunk_outcomes(
    chunk: _Chunk, budget_s: float, solver_name: str
) -> list[SlotOutcome]:
    """Failed outcomes for a pending batch abandoned at harvest time.

    A batch that blows its harvest budget (``slot_timeout_s`` summed
    over its slots) never delivers per-slot telemetry, so every slot
    becomes a :class:`SlotTimeoutError` outcome attributed to the
    harvesting process.
    """
    pid = os.getpid()
    outcomes = []
    for offset in range(len(chunk.problems)):
        index = chunk.index(offset)
        message = (
            f"slot {index}: pending batch exceeded its harvest budget "
            f"({budget_s:.3f}s for {len(chunk.problems)} slots); the "
            "batch was abandoned and its late result discarded"
        )
        outcomes.append(
            SlotOutcome(
                index=index,
                error=f"SlotTimeoutError: {message}",
                error_type="SlotTimeoutError",
                error_message=message,
                telemetry=SlotTelemetry(
                    solver=solver_name,
                    wall_s=0.0,
                    compile_s=0.0,
                    iterations=0,
                    converged=False,
                    cache_hit=None,
                    worker=pid,
                    warm_start=False,
                    error_type="SlotTimeoutError",
                ),
            )
        )
    return outcomes


def _lost_chunk_outcomes(
    chunk: _Chunk, exc: BaseException, solver_name: str
) -> list[SlotOutcome]:
    """Failed outcomes for a batch whose worker died mid-flight.

    The socket client shrinks its fleet and keeps serving when a
    worker vanishes; the batch that worker held comes back as one
    :class:`~repro.exec.clients.WorkerLostError` per slot — a
    structured failure, not a silent gap — while every completed
    slot's merged metrics and spans survive untouched.
    """
    pid = os.getpid()
    outcomes = []
    for offset in range(len(chunk.problems)):
        index = chunk.index(offset)
        message = f"slot {index}: {exc}"
        outcomes.append(
            SlotOutcome(
                index=index,
                error=f"WorkerLostError: {message}",
                error_type="WorkerLostError",
                error_message=message,
                telemetry=SlotTelemetry(
                    solver=solver_name,
                    wall_s=0.0,
                    compile_s=0.0,
                    iterations=0,
                    converged=False,
                    cache_hit=None,
                    worker=pid,
                    warm_start=False,
                    error_type="WorkerLostError",
                ),
            )
        )
    return outcomes


def _ledger_environment() -> dict[str, Any]:
    """The run-ledger header's environment stamp (parent process)."""
    return {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "host": local_host(),
        "usable_cpus": usable_cpu_count(),
        "pid": os.getpid(),
    }


@dataclass
class _ExecStats:
    """What the execution layer reports back into the run summary."""

    client: str | None = None
    pending_max: int = 0
    store_hits: int = 0
    store_misses: int = 0
    fleet: FleetStats | None = None


class HorizonEngine:
    """Run a sequence of slot problems through one solver.

    Args:
        solver: a solver specification (registry name, SlotSolver, or
            legacy solver instance — see
            :func:`repro.engine.registry.create_solver`).
        workers: worker processes; 1 (default) runs in-process.  Counts
            above the usable CPUs are clamped (and recorded), and a
            pool that cannot help (≤1 usable CPU) falls back to the
            serial path — see ``oversubscribe``.
        chunk_size: slots per process-pool task; None picks
            ``ceil(T / (4 * workers))`` so the pool load-balances while
            amortizing per-task pickling.
        structure_cache: build each (model, strategy)'s slot-invariant
            structure once per horizon (default).  Disable only to
            measure the cold path — results are identical either way.
        telemetry: optional :class:`~repro.obs.Telemetry` sink for
            engine events; None (default) is the no-op sink.
        oversubscribe: run the requested worker count even beyond the
            usable CPUs (benchmarks use this to *measure* the pool
            penalty; tests use it to exercise the pool path on 1-CPU
            CI).  Off by default.
        certify: audit every successful slot a posteriori and attach a
            :class:`~repro.obs.certify.Certificate` to its outcome.
            ``True`` builds a default
            :class:`~repro.obs.certify.CertificationContext`; passing a
            context (anything with a ``certify(problem, allocation,
            ...)`` method) customizes thresholds.  Certification never
            changes solutions — it reads them after the solver is done.
        metrics: optional :class:`~repro.obs.MetricsRegistry`; each run
            records slot counts, solve-time/iteration histograms and —
            with ``certify`` on — certificate residual histograms.
            Process-local: pool-run metrics are recorded in the parent
            from the shipped-back outcomes.
        resilience: optional
            :class:`~repro.engine.resilience.ResilienceConfig` giving
            every slot a retry budget, a solver fallback chain, a
            per-attempt wall-clock budget, and quarantine for a
            repeatedly-failing primary.  None (default) keeps the
            original single-attempt path bit-identical.  Incompatible
            with ``warm_start`` runs (a fallback breaks the chain's
            state contract).  With an asynchronous client,
            ``slot_timeout_s`` is additionally enforced on each whole
            pending batch at harvest time: a batch still outstanding
            after ``slot_timeout_s x slots`` seconds is abandoned and
            every slot in it surfaces as a ``SlotTimeoutError``
            outcome.
        supervision: optional
            :class:`~repro.exec.supervisor.SupervisorConfig` (or
            ``True`` for the defaults).  Wraps the run's client in a
            :class:`~repro.exec.supervisor.FleetSupervisor`: lost or
            timed-out batches are resubmitted to surviving workers
            under a bounded retry budget, stragglers are hedged,
            faulty workers quarantined, and (when configured) lost
            loopback workers respawned.  Only asynchronous clients are
            supervised — with a synchronous client (or ``None``,
            default) the pre-supervision code path runs bit-identical.
            With both ``resilience.slot_timeout_s`` and supervision
            set, the supervisor owns the clock: each *attempt* gets
            the per-batch budget, and only budget exhaustion surfaces
            as ``SlotTimeoutError`` outcomes.
        client: execution backend the horizon runs through — a
            registry name (``"in-process"``, ``"mp"``, ``"socket"``;
            see :func:`repro.exec.clients.available_clients`) or an
            :class:`~repro.exec.clients.ExecutionClient` instance (the
            caller keeps ownership of an instance's lifecycle; names
            are instantiated per run with this engine's ``workers`` /
            ``oversubscribe`` and closed afterwards).  None (default)
            picks the classic backends from ``workers``: the
            in-process client serially, the multiprocessing client for
            pools — outcomes are bit-identical across all of them.
        max_pending: maximum slot batches in flight at once (None
            keeps every batch in flight, the classic pool shape).
            Bounding it pipelines the horizon: batches are submitted
            out of order as others complete, which caps memory and
            keeps elastic backends busy without flooding them.
        store: optional persistent result store — a
            :class:`~repro.exec.store.ResultStore` or a directory
            path.  Before solving, every slot's (model, strategy,
            solver, inputs) digest is probed; hits resolve from disk
            (and are re-certified in-process when ``certify`` is on),
            misses are solved and written back.  Degraded/fallback
            results are never stored.
        tracer: optional :class:`~repro.obs.SpanTracer`.  Each run
            opens an ``engine.run`` span, and worker-side spans shipped
            back in :class:`~repro.obs.WorkerReport` payloads are
            re-parented under it (:meth:`SpanTracer.adopt`), so one
            trace covers local and remote work.
        ledger: optional run ledger — a directory path (each run writes
            a fresh :class:`~repro.obs.RunLedger` there) or a
            :class:`~repro.obs.RunLedger` instance (single-use; the
            engine finalizes it).  Every run persists its header
            (config + input digests + environment), the per-slot
            outcome stream in harvest order, and the final summary;
            the path of the last finalized ledger is
            :attr:`last_ledger_path`.
        worker_obs: collect worker-side observability (metric samples,
            spans, optional profiles) and attach a
            :class:`~repro.obs.WorkerReport` to every outcome.  None
            (default) auto-enables it exactly when there is a consumer
            — ``metrics``, ``tracer`` or ``worker_profile`` — so the
            observability-off path stays bit-identical; True/False
            force it.
        worker_profile: when > 0, run cProfile around each slot's solve
            in the worker and ship the top-N hotspot rows back on the
            report (per-slot on the scalar lane, per-chunk on the
            batched/resilient lanes).

    After each :meth:`run`, :attr:`last_summary` holds the run's
    :class:`~repro.obs.HorizonSummary` (phase breakdown, executor
    decision, client and store statistics, cache, convergence and
    certification totals).
    """

    def __init__(
        self,
        solver: str | SlotSolver | Any = "centralized",
        workers: int = 1,
        chunk_size: int | None = None,
        structure_cache: bool = True,
        telemetry: Telemetry | None = None,
        oversubscribe: bool = False,
        certify: bool | Any = False,
        metrics: Any | None = None,
        resilience: ResilienceConfig | None = None,
        supervision: SupervisorConfig | bool | None = None,
        client: str | ExecutionClient | None = None,
        max_pending: int | None = None,
        store: ResultStore | str | os.PathLike | None = None,
        tracer: SpanTracer | None = None,
        ledger: RunLedger | str | os.PathLike | None = None,
        worker_obs: bool | None = None,
        worker_profile: int = 0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if max_pending is not None and max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if worker_profile < 0:
            raise ValueError(f"worker_profile must be >= 0, got {worker_profile}")
        self.solver = create_solver(solver)
        self.workers = int(workers)
        self.chunk_size = chunk_size
        self.structure_cache = structure_cache
        self.telemetry = as_telemetry(telemetry)
        self.oversubscribe = bool(oversubscribe)
        self.client = client
        self.max_pending = max_pending
        if store is None or isinstance(store, ResultStore):
            self.store: ResultStore | None = store
        else:
            self.store = ResultStore(store)
        if certify is True:
            from repro.obs.certify import CertificationContext

            self.certifier: Any | None = CertificationContext()
        elif certify:
            self.certifier = certify
        else:
            self.certifier = None
        self.metrics = metrics
        self.resilience = resilience
        if supervision is True:
            self.supervision: SupervisorConfig | None = SupervisorConfig()
        elif supervision:
            self.supervision = supervision
        else:
            self.supervision = None
        self.tracer = tracer
        self.ledger = ledger
        self.worker_obs = worker_obs
        self.worker_profile = int(worker_profile)
        self.last_summary: HorizonSummary | None = None
        self.last_ledger_path: Any | None = None
        # Per-run observability state (set up in run(), read on the
        # harvest path); the engine is not reentrant, matching the
        # existing last_summary contract.
        self._run_ledger: RunLedger | None = None
        self._run_trace: TraceContext | None = None

    def plan_workers(self, n_items: int) -> tuple[int, str, int]:
        """The pool-sizing decision for a horizon of ``n_items`` slots.

        Returns:
            ``(effective_workers, decision, usable_cpus)`` — effective
            is 1 for every serial outcome; the decision string says
            why (``"serial:requested"``, ``"serial:single-slot"``,
            ``"serial:fallback-single-cpu"``, ``"pool:requested"``,
            ``"pool:clamped-to-cpus"``, ``"pool:oversubscribed"``).
        """
        usable = usable_cpu_count()
        if self.workers == 1:
            return 1, "serial:requested", usable
        if n_items <= 1:
            return 1, "serial:single-slot", usable
        if self.oversubscribe:
            return self.workers, "pool:oversubscribed", usable
        effective = min(self.workers, usable)
        if effective <= 1:
            return 1, "serial:fallback-single-cpu", usable
        if effective < self.workers:
            return effective, "pool:clamped-to-cpus", usable
        return effective, "pool:requested", usable

    def _plan_batch(self, batch: bool | None, warm_start: bool) -> bool:
        """Whether this run takes the vectorized ``solve_batch`` lane.

        ``None`` (default) auto-enables batching whenever the solver
        exposes a callable ``solve_batch`` and nothing incompatible is
        requested (warm-start chaining consumes slots sequentially;
        resilience retries are per-slot by design).  ``True`` forces
        the lane and raises on any incompatibility; ``False`` forces
        the scalar per-slot path.
        """
        capable = callable(getattr(self.solver, "solve_batch", None))
        if batch is None:
            return capable and not warm_start and self.resilience is None
        if not batch:
            return False
        if not capable:
            raise ValueError(
                f"solver {self.solver.name!r} has no solve_batch; use a "
                "batch-capable solver (e.g. 'centralized-batch') or "
                "run with batch=False"
            )
        if warm_start:
            raise ValueError(
                "batch=True cannot combine with warm_start: warm chaining "
                "consumes slots sequentially"
            )
        if self.resilience is not None:
            raise ValueError(
                "batch=True cannot combine with a resilience config: "
                "retry/fallback budgets are per-slot; run with batch=False"
            )
        return True

    def run(
        self,
        problems: Sequence[UFCProblem],
        warm_start: bool = False,
        batch: bool | None = None,
    ) -> list[SlotOutcome]:
        """Solve every problem; outcomes are returned in input order.

        Args:
            problems: the horizon's slot problems.
            warm_start: chain each slot from the previous slot's warm
                payload.  Requires a warm-start-capable solver and
                ``workers=1`` (the chain is sequential by nature).
                With an execution client attached the chain routes
                through it at pipeline depth one: slot ``t + 1``'s
                submission carries slot ``t``'s harvested payload, so
                warm hints survive process and socket boundaries.
            batch: take the vectorized ``solve_batch`` lane.  None
                (default) auto-enables it for batch-capable solvers
                (see :meth:`_plan_batch`); True forces it (raising on
                an incompatible configuration); False forces the
                scalar per-slot path.

        Raises:
            ValueError: for warm-start or batch requests the
                configuration cannot honor (clear error instead of
                silent fallback).
        """
        problems = list(problems)
        start = time.perf_counter()
        batched = self._plan_batch(batch, warm_start)
        if warm_start:
            if not self.solver.supports_warm_start:
                raise ValueError(
                    f"solver {self.solver.name!r} does not support warm "
                    "starts; run with warm_start=False"
                )
            if self.resilience is not None:
                raise ValueError(
                    "warm-start chaining cannot combine with a resilience "
                    "config: a fallback solver would break the chain's "
                    "warm-state contract"
                )
            if self.workers > 1:
                raise ValueError(
                    "warm-start chaining is sequential; use workers=1 "
                    "(the Fig. 11 iteration counts are cold-started anyway)"
                )
            if self.store is not None:
                raise ValueError(
                    "warm-start chaining cannot combine with a result "
                    "store: a store hit would break the chain's "
                    "warm-state hand-off"
                )
        ledger = self._open_ledger()
        self._run_ledger = ledger
        try:
            with ExitStack() as stack:
                if ledger is not None:
                    # SIGINT/SIGTERM/atexit leave a flushed, resumable
                    # .part ledger behind instead of an open handle.
                    stack.enter_context(interrupt_guard(ledger))
                run_span = None
                if self.tracer is not None:
                    run_span = stack.enter_context(
                        self.tracer.span(
                            "engine.run",
                            solver=self.solver.name,
                            slots=len(problems),
                            warm_start=warm_start,
                            batched=batched,
                        )
                    )
                if self._worker_obs_enabled():
                    trace_id = (
                        ledger.run_id if ledger is not None else new_run_id()
                    )
                    self._run_trace = TraceContext(
                        trace_id=trace_id,
                        parent_span_id=(
                            None if run_span is None else run_span.span_id
                        ),
                    )
                if ledger is not None:
                    ledger.write_header(
                        solver=self.solver.name,
                        config=self._ledger_config(warm_start, batched),
                        digests=self._ledger_digests(problems),
                        environment=_ledger_environment(),
                        slots_expected=len(problems),
                    )
                if warm_start:
                    if self.client is not None:
                        (
                            outcomes,
                            executor,
                            decision,
                            start_method,
                            stats,
                        ) = self._run_warm_client(problems)
                    else:
                        outcomes = self._run_warm(problems)
                        executor, decision = "serial-warm", "serial:warm-start"
                        start_method = None
                        stats = _ExecStats()
                    effective = 1
                    usable = usable_cpu_count()
                else:
                    (
                        outcomes,
                        executor,
                        decision,
                        effective,
                        usable,
                        start_method,
                        stats,
                    ) = self._run_horizon(problems, batched)
                wall_s = time.perf_counter() - start
                summary = HorizonSummary.from_outcomes(
                    outcomes,
                    solver=self.solver.name,
                    wall_s=wall_s,
                    executor=executor,
                    decision=decision,
                    workers_requested=self.workers,
                    workers_effective=effective,
                    usable_cpus=usable,
                    mp_start_method=start_method,
                    client=stats.client,
                    max_pending_observed=stats.pending_max,
                    store_hits=stats.store_hits,
                    store_misses=stats.store_misses,
                    fleet=(
                        None if stats.fleet is None else stats.fleet.to_dict()
                    ),
                )
                if run_span is not None:
                    run_span.set(
                        executor=summary.executor,
                        failed=summary.failed_slots,
                        store_hits=summary.store_hits,
                    )
        except BaseException:
            if ledger is not None:
                ledger.abandon()
            raise
        finally:
            self._run_ledger = None
            self._run_trace = None
        self.last_summary = summary
        if ledger is not None:
            self.last_ledger_path = ledger.finalize(summary.to_dict())
        self._emit(summary, outcomes)
        self._record_metrics(summary, outcomes)
        return outcomes

    # -- observability plumbing ----------------------------------------------

    def _worker_obs_enabled(self) -> bool:
        """Whether workers should ship :class:`WorkerReport` payloads.

        ``worker_obs=None`` auto-enables exactly when a consumer exists
        (a metrics registry, a tracer, or profiling), so a bare engine
        keeps the observability-off fast path bit-identical.
        """
        if self.worker_obs is not None:
            return bool(self.worker_obs)
        return (
            self.metrics is not None
            or self.tracer is not None
            or self.worker_profile > 0
        )

    def _make_obs_plan(self) -> WorkerObsPlan | None:
        """The per-run worker observability plan, or None when off."""
        if not self._worker_obs_enabled():
            return None
        return WorkerObsPlan(
            metrics=True,
            spans=True,
            trace=self._run_trace,
            profile=self.worker_profile,
        )

    def _open_ledger(self) -> RunLedger | None:
        """Materialize this run's ledger from the ``ledger`` setting.

        A directory gets a fresh ledger per run; a
        :class:`~repro.obs.RunLedger` instance is used as-is (and is
        therefore single-use — the engine finalizes or abandons it).
        """
        if self.ledger is None:
            return None
        if isinstance(self.ledger, RunLedger):
            return self.ledger
        return RunLedger(self.ledger)

    def _ledger_config(self, warm_start: bool, batched: bool) -> dict[str, Any]:
        """The run's engine configuration, JSON-ready, for the header."""
        client = self.client
        if client is not None and not isinstance(client, str):
            client = getattr(client, "name", type(client).__name__)
        return {
            "solver": self.solver.name,
            "workers": self.workers,
            "chunk_size": self.chunk_size,
            "structure_cache": self.structure_cache,
            "oversubscribe": self.oversubscribe,
            "certify": self.certifier is not None,
            "resilience": self.resilience is not None,
            "supervised": self.supervision is not None,
            "client": client,
            "max_pending": self.max_pending,
            "store": self.store is not None,
            "warm_start": warm_start,
            "batched": batched,
            "worker_profile": self.worker_profile,
        }

    def _ledger_digests(self, problems: list[UFCProblem]) -> dict[str, Any]:
        """Input identity: per-slot digests folded into one run digest."""
        hasher = hashlib.sha256()
        for problem in problems:
            hasher.update(problem_digest(problem, self.solver.name).encode())
        return {"slots": len(problems), "inputs_sha256": hasher.hexdigest()}

    def _absorb(self, outcome: SlotOutcome, pending: int | None = None) -> None:
        """Fold one harvested outcome into the parent-side observers.

        This is the single merge point for remote work: the worker
        report's metric samples land in the engine's registry, its
        spans are re-parented under the run span, and the outcome is
        appended to the run ledger (with the live pending depth when
        the scheduler knows it).
        """
        report = outcome.worker_report
        if report is not None:
            if report.metrics is not None and self.metrics is not None:
                self.metrics.merge_samples(report.metrics)
            if report.spans and self.tracer is not None:
                parent = (
                    report.trace.parent_span_id
                    if report.trace is not None
                    else None
                )
                self.tracer.adopt(report.spans, parent_id=parent)
        if self._run_ledger is not None:
            self._run_ledger.record_slot(outcome, pending=pending)

    def _emit(self, summary: HorizonSummary, outcomes: list[SlotOutcome]) -> None:
        """Stream the run's events to the telemetry sink (if enabled)."""
        sink = self.telemetry
        if not sink.enabled:
            return
        sink.counter(
            "engine.decision",
            summary.workers_effective,
            requested=summary.workers_requested,
            usable_cpus=summary.usable_cpus,
            executor=summary.executor,
            decision=summary.decision,
            mp_start_method=summary.mp_start_method,
        )
        for outcome in outcomes:
            tele = outcome.telemetry
            if tele is None:
                continue
            sink.timer(
                "engine.slot",
                tele.wall_s,
                index=outcome.index,
                solver=tele.solver,
                iterations=tele.iterations,
                converged=tele.converged,
                cache_hit=tele.cache_hit,
                worker=tele.worker,
                warm_start=tele.warm_start,
                ok=outcome.ok,
                error_type=outcome.error_type,
                attempts=outcome.attempts,
                degraded=outcome.degraded,
                fallback_solver=outcome.fallback_solver,
            )
        sink.timer(
            "engine.compile",
            summary.compile_s,
            hits=summary.cache_hits,
            misses=summary.cache_misses,
        )
        sink.timer(
            "engine.run",
            summary.wall_s,
            solver=summary.solver,
            slots=summary.slots,
            failed=summary.failed_slots,
            executor=summary.executor,
            overhead_s=round(summary.overhead_s, 6),
        )
        if summary.certified_slots:
            sink.counter(
                "engine.certified",
                summary.certified_slots,
                suspect=len(summary.suspect_slots),
                worst_violation=summary.worst_violation,
                worst_kkt=summary.worst_kkt,
                certify_s=round(summary.certify_s, 6),
            )

    def _record_metrics(
        self, summary: HorizonSummary, outcomes: list[SlotOutcome]
    ) -> None:
        """Record the run into the metrics registry (parent process).

        Registries are process-local, so pool workers cannot record
        directly; everything here is derived from the outcomes they
        shipped back, which keeps serial and pool runs identical in
        what they expose.
        """
        reg = self.metrics
        if reg is None:
            return
        from repro.obs.metrics import (
            DEFAULT_ITERATION_BUCKETS,
            DEFAULT_RESIDUAL_BUCKETS,
            DEFAULT_TIME_BUCKETS,
        )

        solver = summary.solver
        reg.counter("repro_engine_runs_total", solver=solver, executor=summary.executor).inc()
        reg.gauge("repro_engine_last_run_seconds", solver=solver).set(summary.wall_s)
        solve_hist = reg.histogram(
            "repro_engine_slot_solve_seconds", buckets=DEFAULT_TIME_BUCKETS,
            solver=solver,
        )
        iter_hist = reg.histogram(
            "repro_engine_slot_iterations", buckets=DEFAULT_ITERATION_BUCKETS,
            solver=solver,
        )
        for outcome in outcomes:
            reg.counter("repro_engine_slots_total", solver=solver).inc()
            if not outcome.ok:
                reg.counter("repro_engine_slot_failures_total", solver=solver).inc()
            if outcome.attempts > 1:
                reg.counter("repro_engine_slot_retries_total", solver=solver).inc(
                    outcome.attempts - 1
                )
            if outcome.fallback_solver:
                reg.counter(
                    "repro_engine_slot_fallbacks_total",
                    solver=solver,
                    fallback=outcome.fallback_solver,
                ).inc()
            if outcome.degraded:
                reg.counter(
                    "repro_engine_degraded_slots_total", solver=solver
                ).inc()
            tele = outcome.telemetry
            if tele is not None:
                solve_hist.observe(tele.wall_s)
                iter_hist.observe(tele.iterations)
                if tele.warm_start:
                    reg.counter(
                        "repro_warm_starts_total", solver=solver
                    ).inc()
            result = outcome.result
            extras = result.extras if result is not None else None
            if extras:
                if extras.get("incumbent_reuse"):
                    reg.counter(
                        "repro_incumbent_reuse_total", solver=solver
                    ).inc()
                saved = extras.get("iterations_saved")
                if saved is not None:
                    reg.histogram(
                        "repro_warm_iterations_saved",
                        buckets=DEFAULT_ITERATION_BUCKETS,
                        solver=solver,
                    ).observe(saved)
            cert = outcome.certificate
            if cert is not None:
                reg.histogram(
                    "repro_cert_kkt_residual", buckets=DEFAULT_RESIDUAL_BUCKETS,
                    solver=solver,
                ).observe(cert.kkt_residual)
                reg.histogram(
                    "repro_cert_feasibility_violation",
                    buckets=DEFAULT_RESIDUAL_BUCKETS,
                    solver=solver,
                ).observe(cert.worst_violation)
                if not cert.ok:
                    reg.counter("repro_cert_suspect_total", solver=solver).inc()

    # -- executors -----------------------------------------------------------

    def _run_warm(self, problems: list[UFCProblem]) -> list[SlotOutcome]:
        cache = CompileCache(self.solver)
        pid = os.getpid()
        outcomes: list[SlotOutcome] = []
        warm = None
        for index, problem in enumerate(problems):
            compiled = None
            cache_hit: bool | None = None
            compile_s = 0.0
            had_warm = warm is not None
            start = time.perf_counter()
            try:
                if self.structure_cache:
                    compiled, cache_hit, compile_s = cache.lookup(
                        problem.model, problem.strategy
                    )
                solve_start = time.perf_counter()
                result = self.solver.solve(problem, compiled=compiled, warm=warm)
                wall_s = time.perf_counter() - solve_start
                warm = result.warm
                certificate = (
                    _certify_result(
                        self.certifier, problem, result, self.solver.name, index
                    )
                    if self.certifier is not None
                    else None
                )
                outcomes.append(
                    SlotOutcome(
                        index=index,
                        result=result,
                        certificate=certificate,
                        telemetry=SlotTelemetry(
                            solver=self.solver.name,
                            wall_s=wall_s,
                            compile_s=compile_s,
                            iterations=result.iterations,
                            converged=result.converged,
                            cache_hit=cache_hit,
                            worker=pid,
                            warm_start=had_warm,
                            certify_s=(
                                certificate.certify_s
                                if certificate is not None
                                else 0.0
                            ),
                        ),
                    )
                )
            except Exception as exc:
                # A poisoned slot breaks the chain: the next slot
                # cold-starts, mirroring a restarted solver.
                warm = None
                outcomes.append(
                    _failed_outcome(
                        index,
                        exc,
                        self.solver.name,
                        wall_s=time.perf_counter() - start,
                        compile_s=compile_s,
                        cache_hit=cache_hit,
                        warm_start=had_warm,
                    )
                )
            self._absorb(outcomes[-1])
        return outcomes

    def _run_warm_client(
        self, problems: list[UFCProblem]
    ) -> tuple[list[SlotOutcome], str, str, str | None, _ExecStats]:
        """Warm-chain a horizon through the attached execution client.

        Warm chaining is a sequential dependency, so the chain
        pipelines at depth one: each single-slot chunk is submitted
        only after the previous one is harvested, and the submission
        carries the harvested :attr:`SlotResult.warm` payload as the
        next slot's hint.  The solves themselves run wherever the
        client puts them (pool worker, socket worker), which lets a
        warm chain share a long-lived remote fleet with cold runs.  A
        failed slot — including a lost worker — ships no payload, so
        the next slot cold-restarts the chain exactly as the
        in-process loop does.

        Returns ``(outcomes, executor, decision, start_method, stats)``.
        """
        stats = _ExecStats()
        spec = self.client
        owns = False
        if isinstance(spec, str):
            client = create_client(
                spec, workers=self.workers, oversubscribe=self.oversubscribe
            )
            owns = True
        else:
            client = spec
        stats.client = client.name
        outcomes: list[SlotOutcome] = []
        warm = None
        try:
            for index, problem in enumerate(problems):
                chunk = _Chunk(start=index, problems=[problem])
                try:
                    client.submit(
                        _solve_chunk_warm,
                        self.solver,
                        chunk,
                        self.structure_cache,
                        self.certifier,
                        warm,
                    )
                    got = None
                    while got is None:
                        got = client.wait_next(None)
                    chunk_outcomes = got[1]
                except WorkerLostError as exc:
                    chunk_outcomes = _lost_chunk_outcomes(
                        chunk, exc, self.solver.name
                    )
                outcome = chunk_outcomes[0]
                warm = (
                    outcome.result.warm
                    if outcome.ok and outcome.result is not None
                    else None
                )
                outcomes.append(outcome)
                self._absorb(outcome)
        finally:
            if owns:
                client.close()
        name = client.name
        return (
            outcomes,
            f"{name}-warm",
            f"client:{name}:warm-chain",
            getattr(client, "start_method", None),
            stats,
        )

    def _store_hit_outcome(
        self,
        index: int,
        problem: UFCProblem,
        result: SlotResult,
        load_s: float,
    ) -> SlotOutcome:
        """Synthesize the outcome for a slot resolved from the store.

        The stored result is re-certified in-process when the engine
        certifies (trust the digest for identity, not for feasibility
        bookkeeping); a certification crash degrades to a failed
        outcome exactly as it would on a fresh solve.
        """
        try:
            certificate = (
                _certify_result(
                    self.certifier, problem, result, self.solver.name, index
                )
                if self.certifier is not None
                else None
            )
        except Exception as exc:
            return _failed_outcome(
                index, exc, self.solver.name, wall_s=load_s
            )
        return SlotOutcome(
            index=index,
            result=result,
            certificate=certificate,
            telemetry=SlotTelemetry(
                solver=self.solver.name,
                wall_s=load_s,
                compile_s=0.0,
                iterations=result.iterations,
                converged=result.converged,
                cache_hit=None,
                worker=os.getpid(),
                warm_start=False,
                store_hit=True,
                certify_s=(
                    certificate.certify_s if certificate is not None else 0.0
                ),
            ),
        )

    def _run_horizon(
        self, problems: list[UFCProblem], batched: bool
    ) -> tuple[
        list[SlotOutcome], str, str, int, int, str | None, _ExecStats
    ]:
        """Solve a cold horizon through the execution-client layer.

        The legacy serial/pool lanes are policies over one scheduler
        now: with ``client=None`` the worker plan picks the in-process
        or multiprocessing backend and keeps the historical executor
        strings (``"serial"``, ``"pool"``, …); an explicit client is
        named verbatim (``executor=client.name``,
        ``decision="client:<name>"``).  When a result store is
        attached, every slot is probed in the parent before anything
        is scheduled; only misses reach the client, and fresh
        non-degraded results are written back after harvest.

        Returns ``(outcomes, executor, decision, effective_workers,
        usable_cpus, start_method, stats)``.
        """
        stats = _ExecStats()
        outcomes: list[SlotOutcome | None] = [None] * len(problems)

        # Store probe: parent-process, before any scheduling.
        keys: list[str | None] = [None] * len(problems)
        if self.store is None:
            to_solve: list[tuple[int, UFCProblem]] = list(enumerate(problems))
        else:
            to_solve = []
            for index, problem in enumerate(problems):
                key = problem_digest(problem, self.solver.name)
                keys[index] = key
                load_start = time.perf_counter()
                result = self.store.get(key)
                load_s = time.perf_counter() - load_start
                if result is None:
                    stats.store_misses += 1
                    to_solve.append((index, problem))
                else:
                    stats.store_hits += 1
                    outcomes[index] = self._store_hit_outcome(
                        index, problem, result, load_s
                    )
                    self._absorb(outcomes[index])

        # Client resolution: None keeps the classic worker plan and
        # its executor vocabulary; a name or instance takes over.
        spec = self.client
        owns = False
        client: ExecutionClient | None = None
        if spec is None:
            effective, decision, usable = self.plan_workers(len(to_solve))
            executor = "pool" if effective > 1 else "serial"
            if to_solve:
                if effective > 1:
                    client = MultiprocessingClient(
                        workers=effective, oversubscribe=True
                    )
                else:
                    client = InProcessClient()
                owns = True
        else:
            usable = usable_cpu_count()
            if isinstance(spec, str):
                client = create_client(
                    spec, workers=self.workers, oversubscribe=self.oversubscribe
                )
                owns = True
            else:
                client = spec
            effective = getattr(client, "workers", 1)
            decision = f"client:{client.name}"
            executor = client.name
        start_method = getattr(client, "start_method", None)
        stats.client = None if client is None else client.name
        supervisor: FleetSupervisor | None = None

        try:
            if to_solve:
                chunks = self._chunk_tasks(to_solve, len(problems), client, effective)
                budget_fn = None
                on_timeout = None
                solver_name = self.solver.name
                if (
                    self.resilience is not None
                    and self.resilience.slot_timeout_s is not None
                    and getattr(client, "asynchronous", False)
                ):
                    timeout_s = self.resilience.slot_timeout_s

                    def budget_fn(task: tuple[Any, ...]) -> float:
                        return timeout_s * len(task[1].problems)

                    def on_timeout(task: tuple[Any, ...]) -> list[SlotOutcome]:
                        return _timeout_chunk_outcomes(
                            task[1], budget_fn(task), solver_name
                        )

                if self.supervision is not None and getattr(
                    client, "asynchronous", False
                ):
                    # The supervisor owns the clock: each *attempt* gets
                    # the per-batch budget, and the scheduler's own
                    # deadline enforcement is turned off — resubmission
                    # extends a batch's life past any single attempt.
                    supervisor = FleetSupervisor(
                        client,
                        self.supervision,
                        budget_s=budget_fn,
                        metrics=self.metrics,
                    )
                    stats.fleet = supervisor.stats
                scheduler = BatchScheduler(
                    supervisor if supervisor is not None else client,
                    max_pending=self.max_pending,
                    telemetry=self.telemetry,
                    metrics=self.metrics,
                )

                def on_error(
                    task: tuple[Any, ...], exc: BaseException
                ) -> list[SlotOutcome]:
                    # A lost worker becomes structured per-slot failures
                    # (the fleet already shrank); under supervision this
                    # only fires once the retry budget is spent.  A
                    # supervised batch whose every attempt blew its
                    # budget gets the same timeout verdict the
                    # scheduler's own enforcement would give.  Anything
                    # else is a real bug and propagates as before.
                    if isinstance(exc, WorkerLostError):
                        return _lost_chunk_outcomes(task[1], exc, solver_name)
                    if isinstance(exc, TaskTimeoutError) and supervisor is not None:
                        budget = budget_fn(task) if budget_fn is not None else 0.0
                        return _timeout_chunk_outcomes(task[1], budget, solver_name)
                    raise exc

                plan = self._make_obs_plan()
                tasks = [
                    (
                        self.solver,
                        chunk,
                        self.structure_cache,
                        self.certifier,
                        self.resilience,
                        batched,
                        plan,
                    )
                    for chunk in chunks
                ]
                # The supervisor assigns its task ids in submission
                # order, which is list order here — that is what lets
                # the harvest hook look a chunk's retry lineage up.
                task_order = {id(task): i for i, task in enumerate(tasks)}

                def on_harvest(
                    task: tuple[Any, ...], result: Any, depth: int
                ) -> None:
                    if supervisor is not None:
                        lin = supervisor.lineage(task_order[id(task)])
                        if lin is not None:
                            for outcome in result:
                                outcome.lineage = lin
                    for outcome in result:
                        self._absorb(outcome, pending=depth)
                        # Write back at harvest, not at run end: a run
                        # killed mid-horizon keeps every completed
                        # slot's result on disk, which is what makes
                        # `repro resume` skip the finished work.  Only
                        # fresh, trustworthy results land (no degraded
                        # or fallback allocations — a healthy re-run
                        # should never inherit those).
                        if (
                            self.store is not None
                            and keys[outcome.index] is not None
                            and outcome.ok
                            and outcome.result is not None
                            and not outcome.degraded
                        ):
                            self.store.put(keys[outcome.index], outcome.result)

                for chunk_outcomes in scheduler.map(
                    _solve_chunk,
                    tasks,
                    budget_s=None if supervisor is not None else budget_fn,
                    on_timeout=None if supervisor is not None else on_timeout,
                    on_result=on_harvest,
                    on_error=on_error,
                ):
                    for outcome in chunk_outcomes:
                        outcomes[outcome.index] = outcome
                stats.pending_max = scheduler.pending_max_observed
        finally:
            if owns and client is not None:
                client.close()

        if batched:
            executor = f"{executor}-batch"
        return (
            [outcome for outcome in outcomes if outcome is not None],
            executor,
            decision,
            effective,
            usable,
            start_method,
            stats,
        )

    def _chunk_tasks(
        self,
        to_solve: list[tuple[int, UFCProblem]],
        total: int,
        client: ExecutionClient | None,
        effective: int,
    ) -> list[_Chunk]:
        """Split pending (index, problem) pairs into solver batches.

        A synchronous single-worker client gets ONE chunk — that is
        the legacy serial lane, and one chunk is what lets its
        :class:`CompileCache` span the whole horizon.  Everything else
        uses the classic pool rule ``ceil(T / (4 * workers))`` unless
        ``chunk_size`` pins it.  Chunks over a contiguous zero-based
        range skip the explicit index list (matching the historical
        pool task payloads); store-thinned runs carry their slot
        indices explicitly.
        """
        contiguous = len(to_solve) == total
        if effective <= 1 and not getattr(client, "asynchronous", False):
            size = len(to_solve)
        else:
            size = self.chunk_size
            if size is None:
                size = max(1, -(-len(to_solve) // (4 * max(1, effective))))
        chunks = []
        for lo in range(0, len(to_solve), size):
            part = to_solve[lo : lo + size]
            chunks.append(
                _Chunk(
                    start=part[0][0],
                    problems=[problem for _, problem in part],
                    indices=(
                        None if contiguous else [index for index, _ in part]
                    ),
                )
            )
        return chunks


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    workers: int = 1,
    telemetry: Telemetry | None = None,
    oversubscribe: bool = False,
) -> list[_R]:
    """Removed — the sweep map lives at :func:`repro.exec.parallel_map`.

    The order-preserving sweep map moved to the execution layer, where
    it shares mp-context pinning, CPU clamping and pipelining with the
    horizon engine's clients.  This name forwarded with a
    ``DeprecationWarning`` for one release; it is now a hard error so
    stale imports fail loudly instead of silently diverging from the
    exec-layer behavior.
    """
    del fn, items, workers, telemetry, oversubscribe
    raise RuntimeError(
        "repro.engine.horizon.parallel_map was removed; use "
        "repro.exec.parallel_map (same signature, plus client/"
        "max_pending support)"
    )
