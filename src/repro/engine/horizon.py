"""Map independent slot problems over a worker pool.

Interactive workloads cannot be deferred, so the paper's 168 hourly
UFC problems are independent — the horizon is an embarrassingly
parallel map.  :class:`HorizonEngine` runs it with

- a **serial** executor (``workers=1``) or a chunked **process pool**
  (``workers>1``), with deterministic, index-ordered results either
  way (solvers are deterministic, so serial and parallel runs return
  bit-identical allocations);
- **compiled-structure caching**: each distinct (model, strategy) pair
  gets one :meth:`SlotSolver.compile` call per horizon (per worker in
  the process pool), not one per slot;
- **per-slot error capture**: a slot whose solve raises is reported as
  a failed :class:`SlotOutcome` instead of killing the horizon;
- **warm-start chaining** (``warm_start=True``): each slot resumes
  from the previous slot's payload.  Chaining is inherently
  sequential, so it requires ``workers=1`` and a solver that supports
  warm starts.
"""

from __future__ import annotations

import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.core.problem import UFCProblem
from repro.engine.protocol import SlotResult, SlotSolver
from repro.engine.registry import create_solver

__all__ = ["SlotOutcome", "HorizonEngine", "parallel_map"]

_T = TypeVar("_T")
_R = TypeVar("_R")


@dataclass
class SlotOutcome:
    """One slot's engine outcome: a result or a captured error.

    Attributes:
        index: slot index within the submitted horizon.
        result: the solver's :class:`SlotResult` (None on error).
        error: formatted traceback of the slot's failure (None on
            success).
    """

    index: int
    result: SlotResult | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class _Chunk:
    """A contiguous run of slots shipped to one worker."""

    start: int
    problems: list[UFCProblem] = field(default_factory=list)


def _solve_chunk(
    solver: SlotSolver, chunk: _Chunk, structure_cache: bool
) -> list[SlotOutcome]:
    """Solve a contiguous chunk serially with a per-chunk compile cache.

    Module-level so the process executor can pickle it; also the
    serial executor's inner loop, so both paths share one code path.
    """
    compiled_for: dict[tuple[int, Any], Any] = {}
    outcomes: list[SlotOutcome] = []
    for offset, problem in enumerate(chunk.problems):
        index = chunk.start + offset
        try:
            compiled = None
            if structure_cache:
                key = (id(problem.model), problem.strategy)
                if key not in compiled_for:
                    compiled_for[key] = solver.compile(problem.model, problem.strategy)
                compiled = compiled_for[key]
            result = solver.solve(problem, compiled=compiled)
            outcomes.append(SlotOutcome(index=index, result=result))
        except Exception:
            outcomes.append(SlotOutcome(index=index, error=traceback.format_exc()))
    return outcomes


class HorizonEngine:
    """Run a sequence of slot problems through one solver.

    Args:
        solver: a solver specification (registry name, SlotSolver, or
            legacy solver instance — see
            :func:`repro.engine.registry.create_solver`).
        workers: worker processes; 1 (default) runs in-process.
        chunk_size: slots per process-pool task; None picks
            ``ceil(T / (4 * workers))`` so the pool load-balances while
            amortizing per-task pickling.
        structure_cache: build each (model, strategy)'s slot-invariant
            structure once per horizon (default).  Disable only to
            measure the cold path — results are identical either way.
    """

    def __init__(
        self,
        solver: str | SlotSolver | Any = "centralized",
        workers: int = 1,
        chunk_size: int | None = None,
        structure_cache: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.solver = create_solver(solver)
        self.workers = int(workers)
        self.chunk_size = chunk_size
        self.structure_cache = structure_cache

    def run(
        self, problems: Sequence[UFCProblem], warm_start: bool = False
    ) -> list[SlotOutcome]:
        """Solve every problem; outcomes are returned in input order.

        Args:
            problems: the horizon's slot problems.
            warm_start: chain each slot from the previous slot's warm
                payload.  Requires a warm-start-capable solver and
                ``workers=1`` (the chain is sequential by nature).

        Raises:
            ValueError: for warm-start requests the configuration
                cannot honor (clear error instead of silent fallback).
        """
        problems = list(problems)
        if warm_start:
            if not self.solver.supports_warm_start:
                raise ValueError(
                    f"solver {self.solver.name!r} does not support warm "
                    "starts; run with warm_start=False"
                )
            if self.workers > 1:
                raise ValueError(
                    "warm-start chaining is sequential; use workers=1 "
                    "(the Fig. 11 iteration counts are cold-started anyway)"
                )
            return self._run_warm(problems)
        if self.workers == 1 or len(problems) <= 1:
            return _solve_chunk(
                self.solver, _Chunk(start=0, problems=problems), self.structure_cache
            )
        return self._run_pool(problems)

    # -- executors -----------------------------------------------------------

    def _run_warm(self, problems: list[UFCProblem]) -> list[SlotOutcome]:
        compiled_for: dict[tuple[int, Any], Any] = {}
        outcomes: list[SlotOutcome] = []
        warm = None
        for index, problem in enumerate(problems):
            try:
                compiled = None
                if self.structure_cache:
                    key = (id(problem.model), problem.strategy)
                    if key not in compiled_for:
                        compiled_for[key] = self.solver.compile(
                            problem.model, problem.strategy
                        )
                    compiled = compiled_for[key]
                result = self.solver.solve(problem, compiled=compiled, warm=warm)
                warm = result.warm
                outcomes.append(SlotOutcome(index=index, result=result))
            except Exception:
                # A poisoned slot breaks the chain: the next slot
                # cold-starts, mirroring a restarted solver.
                warm = None
                outcomes.append(SlotOutcome(index=index, error=traceback.format_exc()))
        return outcomes

    def _run_pool(self, problems: list[UFCProblem]) -> list[SlotOutcome]:
        chunk_size = self.chunk_size
        if chunk_size is None:
            chunk_size = max(1, -(-len(problems) // (4 * self.workers)))
        chunks = [
            _Chunk(start=start, problems=problems[start : start + chunk_size])
            for start in range(0, len(problems), chunk_size)
        ]
        outcomes: list[SlotOutcome] = []
        with ProcessPoolExecutor(max_workers=min(self.workers, len(chunks))) as pool:
            for chunk_outcomes in pool.map(
                _solve_chunk,
                (self.solver for _ in chunks),
                chunks,
                (self.structure_cache for _ in chunks),
            ):
                outcomes.extend(chunk_outcomes)
        outcomes.sort(key=lambda o: o.index)
        return outcomes


def parallel_map(
    fn: Callable[[_T], _R], items: Iterable[_T], workers: int = 1
) -> list[_R]:
    """Order-preserving map over a process pool.

    The sweep drivers (Fig. 9/10) use this to evaluate independent
    grid points concurrently.  ``fn`` and every item must be picklable
    (module-level functions, models, bundles all are); with
    ``workers <= 1`` it degrades to a plain list comprehension.
    Exceptions propagate to the caller — a sweep point is not a slot,
    so there is no per-item capture here.
    """
    items = list(items)
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(workers, len(items))) as pool:
        return list(pool.map(fn, items))
