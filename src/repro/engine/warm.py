"""The ``centralized-warm`` engine lane: cross-slot incremental solves.

This adapter chains :func:`repro.optim.warm.solve_qp_warm` across a
horizon behind the :class:`~repro.engine.protocol.SlotSolver`
protocol.  Each slot's :class:`SlotResult` carries a
:class:`WarmPayload` for the next slot; the payload is plain arrays
and floats, so it pickles across process and socket boundaries — the
engine's warm chaining works through the pipelined exec clients, not
just the in-process sequential loop.

On top of the optimizer-level ladder (active-set reuse, then
shift-initialized interior point, then cold — see
:mod:`repro.optim.warm`), the lane adds the *incumbent early-exit*:
when the slot's inputs drifted less than ``incumbent_tol`` (relative
infinity norm over arrivals, prices and carbon rates) from the inputs
the incumbent allocation was solved against, the incumbent is handed
to the a-posteriori certifier instead of the solver.  A certified
incumbent is returned with zero iterations and an
``incumbent_reuse`` extra; a failed certificate falls through to the
warm solve, so the early-exit can never degrade solution quality
below certificate tolerance.  The drift reference is *not* advanced
on reuse — consecutive small perturbations accumulate against the
incumbent's own inputs, so creep beyond ``incumbent_tol`` always
forces a re-solve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.compiled import CompiledQPStructure
from repro.core.model import CloudModel
from repro.core.solution import Allocation
from repro.core.strategies import Strategy
from repro.engine.protocol import SlotResult
from repro.obs.certify import certify_solution
from repro.optim.warm import WarmState, solve_qp_warm

__all__ = ["CentralizedWarmSlotSolver", "WarmPayload"]


@dataclass
class WarmPayload:
    """Everything one slot hands the next — plain data, picklable.

    Attributes:
        state: optimizer-level warm state (previous iterates plus
            cached Ruiz scalings), or None when the last solve did not
            produce a reusable state.
        arrivals, prices, carbon_rates: the inputs the incumbent
            allocation was solved against (the drift reference for the
            incumbent early-exit).
        allocation: the incumbent allocation.
        duals: the incumbent's ``(eq_dual, ineq_dual)`` for the
            certifier.
        cold_ref_iterations: iteration count of the most recent cold
            solve in this chain — the baseline ``iterations_saved``
            is measured against.
    """

    state: WarmState | None
    arrivals: np.ndarray
    prices: np.ndarray
    carbon_rates: np.ndarray
    allocation: Allocation
    duals: tuple[np.ndarray, np.ndarray] | None
    cold_ref_iterations: int


def _input_drift(payload: WarmPayload, inputs: Any) -> float:
    """Relative infinity-norm drift of the slot inputs since the
    incumbent was solved."""
    worst = 0.0
    for ref, cur in (
        (payload.arrivals, inputs.arrivals),
        (payload.prices, inputs.prices),
        (payload.carbon_rates, inputs.carbon_rates),
    ):
        if ref.shape != np.shape(cur):
            return np.inf
        denom = 1.0 + float(np.abs(ref).max(initial=0.0))
        worst = max(worst, float(np.abs(cur - ref).max(initial=0.0)) / denom)
    return worst


class CentralizedWarmSlotSolver:
    """Warm-chained dense interior-point solver behind the protocol.

    Identical arithmetic to the ``centralized`` lane on the first slot
    of a chain (the cold rung *is* ``solve_qp``); subsequent slots run
    the warm ladder.  Every returned allocation either comes from a
    converged solve meeting the cold tolerance or is a re-certified
    incumbent, so the lane's solutions match the cold lane within
    certificate tolerance by construction.

    Args:
        tol: interior-point convergence tolerance (cold and warm).
        max_iter: interior-point iteration cap.
        incumbent_tol: relative input-drift threshold below which the
            incumbent allocation is re-certified instead of re-solved.
            0 disables the early-exit (every slot is solved).
        feas_tol, kkt_tol: certificate thresholds for the incumbent
            early-exit (defaults match :func:`certify_solution`).
        metrics: duck-typed metrics registry shared with the solvers.
    """

    name = "centralized-warm"
    supports_warm_start = True

    def __init__(
        self,
        tol: float = 1e-9,
        max_iter: int = 120,
        incumbent_tol: float = 0.0,
        feas_tol: float | None = None,
        kkt_tol: float | None = None,
        metrics=None,
    ) -> None:
        self.tol = tol
        self.max_iter = max_iter
        self.incumbent_tol = incumbent_tol
        self.feas_tol = feas_tol
        self.kkt_tol = kkt_tol
        self.metrics = metrics

    def compile(self, model: CloudModel, strategy: Strategy) -> CompiledQPStructure:
        """The slot-invariant QP skeleton for (model, strategy)."""
        return CompiledQPStructure(model, strategy)

    def _certify_kwargs(self) -> dict[str, float]:
        kwargs: dict[str, float] = {}
        if self.feas_tol is not None:
            kwargs["feas_tol"] = self.feas_tol
        if self.kkt_tol is not None:
            kwargs["kkt_tol"] = self.kkt_tol
        return kwargs

    def solve(
        self,
        problem: Any,
        compiled: CompiledQPStructure | None = None,
        warm: WarmPayload | None = None,
    ) -> SlotResult:
        """Solve one slot, warm-chained from the previous payload."""
        if compiled is None or not compiled.matches(problem):
            compiled = CompiledQPStructure(problem.model, problem.strategy)
        qp = compiled.qp_for(problem.inputs)

        if (
            warm is not None
            and self.incumbent_tol > 0.0
            and _input_drift(warm, problem.inputs) <= self.incumbent_tol
        ):
            cert = certify_solution(
                problem,
                warm.allocation,
                qp=qp,
                duals=warm.duals,
                solver=self.name,
                **self._certify_kwargs(),
            )
            if cert.ok:
                # Keep the payload's drift reference pinned to the
                # inputs the incumbent was *solved* against.
                return SlotResult(
                    allocation=warm.allocation,
                    ufc=problem.ufc(warm.allocation),
                    iterations=0,
                    converged=True,
                    warm=warm,
                    extras={
                        "incumbent_reuse": True,
                        "warm_used": True,
                        "warm_mechanism": "incumbent",
                        "iterations_saved": warm.cold_ref_iterations,
                        "certificate": cert,
                    },
                )

        state = warm.state if warm is not None else None
        ws = solve_qp_warm(
            qp.P,
            qp.q,
            A=qp.A,
            b=qp.b,
            G=qp.G,
            h=qp.h,
            state=state,
            tol=self.tol,
            max_iter=self.max_iter,
            metrics=self.metrics,
        )
        res = ws.result
        allocation = qp.extract(res.x)
        cold_ref = res.iterations
        if ws.info.warm_used and warm is not None:
            cold_ref = warm.cold_ref_iterations
        payload = WarmPayload(
            state=ws.state,
            arrivals=problem.inputs.arrivals.copy(),
            prices=problem.inputs.prices.copy(),
            carbon_rates=problem.inputs.carbon_rates.copy(),
            allocation=allocation,
            duals=(res.eq_dual, res.ineq_dual),
            cold_ref_iterations=cold_ref,
        )
        extras: dict[str, Any] = {
            "duals": (res.eq_dual, res.ineq_dual),
            "warm_used": ws.info.warm_used,
            "warm_mechanism": ws.info.mechanism,
        }
        if ws.info.fallback_reason:
            extras["warm_fallback_reason"] = ws.info.fallback_reason
        if ws.info.warm_used and warm is not None:
            extras["iterations_saved"] = max(
                0, warm.cold_ref_iterations - res.iterations
            )
        return SlotResult(
            allocation=allocation,
            ufc=problem.ufc(allocation),
            iterations=res.iterations,
            converged=res.converged,
            warm=payload,
            extras=extras,
        )
