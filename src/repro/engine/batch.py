"""The batched centralized solver lane: whole-horizon vectorized IPQP.

:class:`CentralizedBatchSlotSolver` is the registered
``"centralized-batch"`` solver.  It speaks the same
:class:`~repro.engine.protocol.SlotSolver` protocol as every other
solver — ``compile`` returns the identical
:class:`~repro.core.compiled.CompiledQPStructure`, ``solve`` delegates
to the scalar :class:`~repro.engine.adapters.CentralizedSlotSolver` —
and adds one method the :class:`~repro.engine.horizon.HorizonEngine`
batch lane discovers by duck typing:

- :meth:`CentralizedBatchSlotSolver.solve_batch` compiles every slot's
  QP (through the shared compiled structure when it matches), groups
  the QPs by shared constraint structure, and hands each group to
  :func:`~repro.optim.batch.solve_qp_batch` as one stacked
  ``(T, n, n)`` solve.  Each slot comes back as an ordinary
  :class:`~repro.engine.protocol.SlotResult` carrying its own duals,
  iteration count and convergence flag, so certification, telemetry
  and metrics downstream are oblivious to the batching.

Instances the batched iteration cannot converge are re-solved by the
scalar interior-point solver inside :func:`solve_qp_batch` (flagged
``"batch_fallback"`` in the result extras); a whole-group failure is
handled one level up by the engine, which re-runs the group's slots
through the scalar :meth:`solve` path.

Batched solves agree with the scalar path to solver tolerance (see
:mod:`repro.optim.batch`); per-iteration ``ip_trace`` diagnostics are
a scalar-path-only feature and are not recorded here.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core.centralized import CentralizedSolver
from repro.core.compiled import CompiledQPStructure
from repro.core.model import CloudModel
from repro.core.problem import QPForm, UFCProblem
from repro.core.strategies import Strategy
from repro.engine.adapters import CentralizedSlotSolver
from repro.engine.protocol import SlotResult
from repro.engine.registry import register_solver
from repro.optim.batch import solve_qp_batch

__all__ = ["CentralizedBatchSlotSolver"]


def _share_groups(qps: list[QPForm]) -> list[list[int]]:
    """Partition QP indices into runs sharing one constraint structure.

    Two QPs batch together when their ``A`` and ``G`` matrices are
    equal (identical objects in the compiled-structure case, where
    ``qp_for`` hands out the same arrays every slot; value-equal
    otherwise).  ``P``/``q``/``b``/``h`` stay per-slot and are stacked
    by the caller.
    """
    groups: list[tuple[QPForm, list[int]]] = []
    for i, qp in enumerate(qps):
        for rep, members in groups:
            if (
                rep.A.shape == qp.A.shape
                and rep.G.shape == qp.G.shape
                and (rep.A is qp.A or np.array_equal(rep.A, qp.A))
                and (rep.G is qp.G or np.array_equal(rep.G, qp.G))
            ):
                members.append(i)
                break
        else:
            groups.append((qp, [i]))
    return [members for _, members in groups]


class CentralizedBatchSlotSolver:
    """Interior-point solver that solves whole horizons in one batch.

    Scalar ``solve`` calls delegate to the plain centralized adapter
    (bit-identical results); ``solve_batch`` is the vectorized lane.

    Args:
        inner: pre-configured :class:`CentralizedSolver`; built from
            ``**kwargs`` (``tol``, ``max_iter``, ...) when omitted.
    """

    name = "centralized-batch"
    supports_warm_start = False

    def __init__(self, inner: CentralizedSolver | None = None, **kwargs: Any) -> None:
        self._scalar = CentralizedSlotSolver(inner=inner, **kwargs)
        self.inner = self._scalar.inner

    def compile(self, model: CloudModel, strategy: Strategy) -> CompiledQPStructure:
        """The slot-invariant QP skeleton for (model, strategy)."""
        return self.inner.compile(model, strategy)

    def solve(
        self,
        problem: UFCProblem,
        compiled: CompiledQPStructure | None = None,
        warm: Any | None = None,
    ) -> SlotResult:
        """Solve one slot through the scalar interior-point path."""
        return self._scalar.solve(problem, compiled=compiled, warm=warm)

    def solve_batch(
        self,
        problems: Sequence[UFCProblem],
        compiled: CompiledQPStructure | None = None,
    ) -> list[SlotResult]:
        """Solve a run of slots as stacked batched interior-point QPs.

        Args:
            problems: the slots to solve (any mix; QPs are grouped by
                shared constraint structure internally).
            compiled: optional compiled structure; used for every
                problem it :meth:`~CompiledQPStructure.matches`.

        Returns:
            One :class:`SlotResult` per problem, in input order.  Each
            carries ``extras["duals"]`` for certification plus
            ``"batched"``, ``"batch_size"`` and ``"batch_fallback"``
            diagnostics.

        Raises:
            NotImplementedError: when a slot's emission cost is not
                QP-representable (same contract as the scalar path).
        """
        problems = list(problems)
        if not problems:
            return []
        forms: list[QPForm | None] = [None] * len(problems)
        if compiled is not None:
            matched = [
                i for i, problem in enumerate(problems)
                if compiled.matches(problem)
            ]
            if matched:
                batch_compile = getattr(compiled, "qp_for_batch", None)
                if batch_compile is not None:
                    compiled_forms = batch_compile(
                        [problems[i].inputs for i in matched]
                    )
                    for i, form in zip(matched, compiled_forms):
                        forms[i] = form
                else:
                    for i in matched:
                        forms[i] = compiled.qp_for(problems[i].inputs)
        qps: list[QPForm] = [
            form if form is not None else problems[i].to_qp()
            for i, form in enumerate(forms)
        ]
        results: list[SlotResult | None] = [None] * len(problems)
        for members in _share_groups(qps):
            self._solve_group(problems, qps, members, results)
        return results  # type: ignore[return-value]

    def _solve_group(
        self,
        problems: list[UFCProblem],
        qps: list[QPForm],
        members: list[int],
        results: list[SlotResult | None],
    ) -> None:
        """Solve one shared-structure group and fill its results."""
        rep = qps[members[0]]
        p, m = rep.A.shape[0], rep.G.shape[0]
        stacked_p = np.stack([qps[i].P for i in members])
        stacked_q = np.stack([qps[i].q for i in members])
        res = solve_qp_batch(
            stacked_p,
            stacked_q,
            A=rep.A if p else None,
            b=np.stack([qps[i].b for i in members]) if p else None,
            G=rep.G if m else None,
            h=np.stack([qps[i].h for i in members]) if m else None,
            tol=self.inner.tol,
            max_iter=self.inner.max_iter,
        )
        size = len(members)
        for pos, i in enumerate(members):
            alloc = qps[i].extract(res.x[pos])
            results[i] = SlotResult(
                allocation=alloc,
                ufc=problems[i].ufc(alloc),
                iterations=int(res.iterations[pos]),
                converged=bool(res.converged[pos]),
                extras={
                    "duals": (res.eq_dual[pos], res.ineq_dual[pos]),
                    "batched": True,
                    "batch_size": size,
                    "batch_fallback": bool(res.fallback[pos]),
                },
            )


register_solver("centralized-batch", CentralizedBatchSlotSolver)
