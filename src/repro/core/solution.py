"""Allocations (control decisions) and their derived metrics.

An :class:`Allocation` is one slot's joint decision: the routing
matrix ``lambda`` (M, N), fuel-cell outputs ``mu`` (N,) and grid draws
``nu`` (N,).  Metric evaluation (energy cost, carbon, latency, UFC)
lives in :class:`repro.core.problem.UFCProblem`; this module holds the
container and feasibility checking.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Allocation", "FeasibilityReport"]


@dataclass(frozen=True)
class FeasibilityReport:
    """Constraint-violation magnitudes for an allocation.

    All entries are max absolute violations (0 when satisfied); the
    report is `ok` when every violation is below the tolerance used to
    produce it.
    """

    load_balance: float
    capacity: float
    power_balance: float
    bounds: float
    ok: bool

    def max_violation(self) -> float:
        """The largest violation across all constraint families."""
        return max(self.load_balance, self.capacity, self.power_balance, self.bounds)


@dataclass(frozen=True)
class Allocation:
    """One time slot's control decisions.

    Attributes:
        lam: (M, N) request routing ``lambda_ij``, servers' worth.
        mu: (N,) fuel-cell generation in MW.
        nu: (N,) grid power draw in MW.
    """

    lam: np.ndarray
    mu: np.ndarray
    nu: np.ndarray

    def __post_init__(self) -> None:
        lam = np.asarray(self.lam, dtype=float)
        mu = np.asarray(self.mu, dtype=float)
        nu = np.asarray(self.nu, dtype=float)
        if lam.ndim != 2:
            raise ValueError(f"lam must be 2-d (M, N), got shape {lam.shape}")
        n = lam.shape[1]
        if mu.shape != (n,) or nu.shape != (n,):
            raise ValueError(
                f"mu/nu must have shape ({n},), got {mu.shape} / {nu.shape}"
            )
        object.__setattr__(self, "lam", lam)
        object.__setattr__(self, "mu", mu)
        object.__setattr__(self, "nu", nu)

    @property
    def num_frontends(self) -> int:
        return self.lam.shape[0]

    @property
    def num_datacenters(self) -> int:
        return self.lam.shape[1]

    def datacenter_load(self) -> np.ndarray:
        """(N,) total workload per datacenter, ``sum_i lambda_ij``."""
        return self.lam.sum(axis=0)

    def check_feasibility(
        self,
        arrivals: np.ndarray,
        capacities: np.ndarray,
        alphas: np.ndarray,
        betas: np.ndarray,
        mu_max: np.ndarray,
        tol: float = 1e-6,
    ) -> FeasibilityReport:
        """Measure violations of the paper's constraints (4)-(6) + bounds.

        ``tol`` is relative to the natural scale of each constraint.
        """
        arrivals = np.asarray(arrivals, dtype=float)
        load = self.datacenter_load()
        load_balance = float(np.abs(self.lam.sum(axis=1) - arrivals).max())
        capacity = float(np.maximum(load - capacities, 0.0).max())
        balance = alphas + betas * load - self.mu - self.nu
        power_balance = float(np.abs(balance).max())
        bounds = max(
            float(np.maximum(-self.lam, 0.0).max()),
            float(np.maximum(-self.mu, 0.0).max()),
            float(np.maximum(self.mu - mu_max, 0.0).max()),
            float(np.maximum(-self.nu, 0.0).max()),
        )
        arrival_scale = max(1.0, float(arrivals.max(initial=0.0)))
        power_scale = max(1.0, float((alphas + betas * capacities).max()))
        ok = (
            load_balance < tol * arrival_scale
            and capacity < tol * arrival_scale
            and power_balance < tol * power_scale
            and bounds < tol * max(arrival_scale, power_scale)
        )
        return FeasibilityReport(
            load_balance=load_balance,
            capacity=capacity,
            power_balance=power_balance,
            bounds=bounds,
            ok=ok,
        )
