"""Feasibility repair: turning near-feasible iterates into exact ones.

A distributed algorithm stopped at a finite tolerance leaves small
constraint violations: the routing may exceed a datacenter's capacity
by the coupling residual, and the power balance may be off by the
dual residual.  :func:`repair_routing` restores capacity feasibility
while preserving every front-end's load-balance equality, and
:func:`polish_allocation` then recomputes the exact optimal
``(mu, nu)`` for the repaired routing, yielding a strictly feasible
allocation whose objective is within the stopping tolerance of the
optimum.
"""

from __future__ import annotations

import numpy as np

from repro.core.centralized import optimal_power_split
from repro.core.model import CloudModel
from repro.core.problem import SlotInputs
from repro.core.solution import Allocation
from repro.core.strategies import HYBRID, Strategy

__all__ = ["repair_routing", "polish_allocation"]


def repair_routing(
    lam: np.ndarray,
    arrivals: np.ndarray,
    capacities: np.ndarray,
    max_passes: int = 20,
) -> np.ndarray:
    """Project a row-feasible routing onto the capacity constraints.

    Overflowing columns are scaled down uniformly; each row's resulting
    deficit is redistributed to datacenters proportionally to their
    remaining slack.  Row sums (the load-balance equalities (4)) are
    preserved exactly at every pass.  Requires total capacity >= total
    arrivals, which the model guarantees.

    Raises:
        ValueError: if total arrivals exceed total capacity (no feasible
            routing exists).
    """
    lam = np.maximum(np.asarray(lam, dtype=float).copy(), 0.0)
    arrivals = np.asarray(arrivals, dtype=float)
    capacities = np.asarray(capacities, dtype=float)
    if arrivals.sum() > capacities.sum() * (1 + 1e-12):
        raise ValueError(
            f"total arrivals {arrivals.sum():.3f} exceed total capacity "
            f"{capacities.sum():.3f}"
        )
    # Restore exact row sums first (iterates may be off by the residual).
    row = lam.sum(axis=1)
    for i in range(lam.shape[0]):
        if row[i] > 0:
            lam[i] *= arrivals[i] / row[i]
        elif arrivals[i] > 0:
            lam[i] = arrivals[i] / lam.shape[1]

    for _ in range(max_passes):
        load = lam.sum(axis=0)
        over = load > capacities * (1 + 1e-15)
        if not over.any():
            break
        scale = np.where(over, capacities / np.maximum(load, 1e-300), 1.0)
        shrunk = lam * scale
        deficit = lam.sum(axis=1) - shrunk.sum(axis=1)
        lam = shrunk
        slack = np.maximum(capacities - lam.sum(axis=0), 0.0)
        slack_total = slack.sum()
        if slack_total <= 0:
            break
        share = slack / slack_total
        lam += np.outer(deficit, share)
    return lam


def polish_allocation(
    model: CloudModel,
    inputs: SlotInputs,
    lam: np.ndarray,
    strategy: Strategy = HYBRID,
) -> Allocation:
    """Exactly-feasible allocation from a near-feasible routing.

    Repairs the routing against capacities, then solves the scalar
    convex power-split per datacenter for the exact optimal
    ``(mu, nu)`` given that routing.
    """
    lam_fixed = repair_routing(lam, inputs.arrivals, model.capacities)
    mu, nu = optimal_power_split(
        model, inputs, lam_fixed.sum(axis=0), strategy=strategy
    )
    return Allocation(lam=lam_fixed, mu=mu, nu=nu)
