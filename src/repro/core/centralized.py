"""Centralized reference solvers for the UFC problem.

Two solvers live here:

- :class:`CentralizedSolver` compiles a slot's UFC problem to a dense
  QP and solves it with the library's interior-point method
  (:func:`repro.optim.ipqp.solve_qp`).  It is the ground truth the
  distributed ADM-G algorithm is verified against.
- :func:`optimal_power_split` solves the *restricted* problem of
  choosing ``(mu_j, nu_j)`` for a fixed routing — a one-dimensional
  convex problem per datacenter.  It powers the Table I warm-up
  (single-site arbitrage) and is used to polish near-feasible iterates
  into exactly power-balanced allocations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import CloudModel
from repro.core.problem import SlotInputs, UFCProblem
from repro.core.solution import Allocation
from repro.core.strategies import HYBRID, Strategy
from repro.optim.ipqp import IPQPTrace, solve_qp
from repro.optim.scalar import minimize_convex_on_interval

__all__ = ["CentralizedResult", "CentralizedSolver", "optimal_power_split"]


@dataclass(frozen=True)
class CentralizedResult:
    """A centralized solve outcome.

    Attributes:
        allocation: the optimal (lambda, mu, nu).
        ufc: UFC value at the optimum.
        iterations: interior-point iterations used.
        converged: solver convergence flag.
        trace: per-iteration interior-point diagnostics (duality gap,
            KKT residual, step lengths) when the solver was built with
            ``trace=True``; None otherwise.
        eq_dual: equality multipliers at the optimum (certification
            uses these as the solver-provided dual certificate).
        ineq_dual: inequality multipliers at the optimum.
    """

    allocation: Allocation
    ufc: float
    iterations: int
    converged: bool
    trace: IPQPTrace | None = None
    eq_dual: np.ndarray | None = None
    ineq_dual: np.ndarray | None = None


#: QP dimension at and above which ``kkt_mode="auto"`` switches from
#: the dense Mehrotra KKT factorization to the block-elimination path.
#: The paper-scale QP (M=10, N=4: dim 48) sits far below this, so
#: paper-scale results stay bit-identical to the dense route.
STRUCTURED_KKT_CUTOFF = 512


class CentralizedSolver:
    """Interior-point reference solver for per-slot UFC maximization.

    Args:
        tol: interior-point tolerance.
        max_iter: interior-point iteration cap.
        trace: record a per-iteration :class:`~repro.optim.ipqp.IPQPTrace`
            on every solve (opt-in; the iterates are identical either
            way).  Tracing pins ``kkt_mode="auto"`` to the dense path,
            which is the one that produces traces.
        trace_every: keep every k-th trace iteration (memory bound for
            long horizons; 1 keeps all, matching the iteration count).
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`
            forwarded to the interior-point method (duck-typed; the
            optim layer never imports obs).
        kkt_mode: ``"auto"`` (default) uses the dense KKT factorization
            below :data:`STRUCTURED_KKT_CUTOFF` variables — bit-identical
            to every prior release at paper scale — and the
            block-elimination Schur path at or above it; ``"dense"`` and
            ``"structured"`` force one route.  The structured route
            needs a compiled structure (``compile``/``solve(compiled=)``)
            and falls back to dense for slots it cannot represent
            (epigraph emission costs).
        structured_cutoff: override the auto-selection dimension
            threshold.
    """

    def __init__(
        self,
        tol: float = 1e-9,
        max_iter: int = 120,
        trace: bool = False,
        trace_every: int = 1,
        metrics=None,
        kkt_mode: str = "auto",
        structured_cutoff: int = STRUCTURED_KKT_CUTOFF,
    ) -> None:
        if kkt_mode not in ("auto", "dense", "structured"):
            raise ValueError(
                f"kkt_mode must be 'auto', 'dense' or 'structured', got {kkt_mode!r}"
            )
        self.tol = tol
        self.max_iter = max_iter
        self.trace = bool(trace)
        self.trace_every = int(trace_every)
        self.metrics = metrics
        self.kkt_mode = kkt_mode
        self.structured_cutoff = int(structured_cutoff)

    def compile(self, model: CloudModel, strategy: Strategy) -> "CompiledQPStructure":
        """Slot-invariant QP structure for (model, strategy).

        Passing the returned structure back into :meth:`solve` skips
        the per-slot constraint-matrix assembly; the emitted QP (and
        therefore the solution) is bit-identical to a from-scratch
        compile.
        """
        from repro.core.compiled import CompiledQPStructure

        return CompiledQPStructure(model, strategy)

    def solve(
        self, problem: UFCProblem, compiled: "CompiledQPStructure | None" = None
    ) -> CentralizedResult:
        """Solve one slot to optimality.

        Args:
            problem: the slot's UFC problem.
            compiled: optional slot-invariant structure from
                :meth:`compile`; ignored when it was built for a
                different model or strategy.

        Raises:
            NotImplementedError: when an emission cost is not
                QP-representable (see :meth:`UFCProblem.to_qp`).
        """
        use_compiled = compiled is not None and compiled.matches(problem)
        if use_compiled and self.kkt_mode != "dense" and not self.trace:
            forced = self.kkt_mode == "structured"
            if forced or compiled.dim >= self.structured_cutoff:
                result = self._solve_structured(problem, compiled, forced=forced)
                if result is not None:
                    return result
        if use_compiled:
            qp = compiled.qp_for(problem.inputs)
        else:
            qp = problem.to_qp()
        res = solve_qp(
            qp.P, qp.q, A=qp.A, b=qp.b, G=qp.G, h=qp.h,
            tol=self.tol, max_iter=self.max_iter, trace=self.trace,
            trace_every=self.trace_every, metrics=self.metrics,
        )
        alloc = qp.extract(res.x)
        return CentralizedResult(
            allocation=alloc,
            ufc=problem.ufc(alloc),
            iterations=res.iterations,
            converged=res.converged,
            trace=res.trace,
            eq_dual=res.eq_dual,
            ineq_dual=res.ineq_dual,
        )

    def _solve_structured(
        self, problem: UFCProblem, compiled: "CompiledQPStructure", forced: bool
    ) -> CentralizedResult | None:
        """Block-elimination route; None means 'take the dense path'.

        Epigraph slots are not block-representable: forced mode raises,
        auto mode falls back.  A non-converged structured solve also
        falls back under auto so the dense factorization gets a shot at
        the slot.
        """
        from repro.optim.kkt import solve_structured_qp

        sc = compiled.structured_compiler()
        try:
            sqp = sc.structured_qp_for(problem.inputs)
        except NotImplementedError:
            if forced:
                raise
            return None
        res = solve_structured_qp(
            sqp, tol=self.tol, max_iter=self.max_iter, metrics=self.metrics
        )
        if not res.converged and not forced:
            return None
        alloc = sqp.extract(res.x)
        ineq_dual = (
            sqp.ineq_dual_to_dense(res.ineq_dual)
            if sqp.fan_in == sqp.num_datacenters
            else res.ineq_dual
        )
        return CentralizedResult(
            allocation=alloc,
            ufc=problem.ufc(alloc),
            iterations=res.iterations,
            converged=res.converged,
            trace=None,
            eq_dual=res.eq_dual,
            ineq_dual=ineq_dual,
        )


def optimal_power_split(
    model: CloudModel,
    inputs: SlotInputs,
    loads: np.ndarray,
    strategy: Strategy = HYBRID,
) -> tuple[np.ndarray, np.ndarray]:
    """Optimal ``(mu, nu)`` for fixed per-datacenter loads.

    For each datacenter the demand ``D_j = alpha_j + beta_j * load_j``
    must be met by ``mu_j + nu_j``; minimizing
    ``p0 mu + p_j nu + V_j(C_j nu)`` over ``0 <= mu <= min(mu_max, D)``
    with ``nu = D - mu`` is scalar convex.  Linear emission costs give
    the bang-bang arbitrage rule the paper's Table I uses; other convex
    costs are solved by golden-section search.

    Returns:
        ``(mu, nu)`` arrays of shape (N,).

    Raises:
        ValueError: if the Fuel-cell strategy cannot cover demand
            (``D_j > mu_j^max`` with the grid disabled).
    """
    loads = np.asarray(loads, dtype=float)
    n = model.num_datacenters
    if loads.shape != (n,):
        raise ValueError(f"loads shape {loads.shape} != ({n},)")
    demand = model.alphas + model.betas * loads
    mu_cap = strategy.effective_mu_max(model.mu_max)
    mu = np.zeros(n)
    nu = np.zeros(n)
    for j in range(n):
        d = float(demand[j])
        hi = min(float(mu_cap[j]), d)
        if not strategy.grid_enabled:
            if d > mu_cap[j] * (1 + 1e-9):
                raise ValueError(
                    f"datacenter {model.datacenters[j].name!r}: demand "
                    f"{d:.3f} MW exceeds fuel-cell capacity {mu_cap[j]:.3f} MW "
                    "and the grid is disabled"
                )
            mu[j], nu[j] = d, 0.0
            continue
        if hi <= 0:
            mu[j], nu[j] = 0.0, d
            continue
        v_j = model.emission_costs[j]
        c_j = float(inputs.carbon_rates[j])
        p_j = float(inputs.prices[j])
        p0 = model.fuel_cell_price

        quad = v_j.nu_quadratic(c_j)
        if quad is not None and quad[0] == 0.0:
            # Linear total cost in mu: bang-bang arbitrage.
            marginal_grid = p_j + quad[1]
            mu[j] = hi if p0 < marginal_grid else 0.0
        else:
            def split_cost(mu_val: float, _d: float = d, _vj=v_j, _c=c_j, _p=p_j) -> float:
                nu_val = _d - mu_val
                return p0 * mu_val + _p * nu_val + _vj.cost(_c * nu_val)

            mu[j] = minimize_convex_on_interval(split_cost, 0.0, hi, tol=1e-12)
        nu[j] = d - mu[j]
    return mu, nu
