"""The geo-distributed cloud model of Sec. II-A.

A :class:`CloudModel` is the static description of the provider: N
datacenters (server counts, power models, fuel-cell capacities,
emission-cost functions), M front-end proxies, the (M, N) propagation
latency matrix, the fuel-cell generation price ``p0`` and the latency
weight ``w``.  Time-varying inputs (arrivals, prices, carbon rates)
arrive per slot via :class:`repro.core.problem.SlotInputs`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.costs.carbon import EmissionCostFunction, LinearCarbonTax
from repro.costs.energy import ServerPowerModel
from repro.costs.latency import LatencyUtility, QuadraticLatencyUtility

__all__ = ["Datacenter", "FrontEnd", "CloudModel"]

#: The paper's evaluation defaults (Sec. IV-A).
DEFAULT_FUEL_CELL_PRICE = 80.0  # $/MWh
DEFAULT_LATENCY_WEIGHT = 10.0  # $/s^2
DEFAULT_CARBON_TAX = 25.0  # $/tonne


@dataclass(frozen=True)
class Datacenter:
    """One back-end datacenter.

    Attributes:
        name: site label (e.g. ``"dallas"``).
        servers: number of homogeneous active servers ``S_j``.
        power: the linear server power model.
        fuel_cell_capacity_mw: maximal fuel-cell output ``mu_j^max`` in
            MW; None applies the paper's sizing rule (full peak demand,
            ``P_peak * S_j * PUE``).
        max_servers: optional total deployed servers ``S_j^max`` for the
            right-sizing extension of the paper's Remark; None pins the
            active count at ``servers``.
    """

    name: str
    servers: float
    power: ServerPowerModel = field(default_factory=ServerPowerModel)
    fuel_cell_capacity_mw: float | None = None
    max_servers: float | None = None

    def __post_init__(self) -> None:
        if self.servers <= 0:
            raise ValueError(f"{self.name}: servers must be positive, got {self.servers}")
        if self.fuel_cell_capacity_mw is not None and self.fuel_cell_capacity_mw < 0:
            raise ValueError(
                f"{self.name}: fuel-cell capacity must be non-negative"
            )
        if self.max_servers is not None and self.max_servers < self.servers:
            raise ValueError(
                f"{self.name}: max_servers ({self.max_servers}) below active "
                f"servers ({self.servers})"
            )

    @property
    def alpha_mw(self) -> float:
        """Idle facility power ``alpha_j`` in MW."""
        return self.power.alpha_mw(self.servers)

    @property
    def beta_mw(self) -> float:
        """Marginal facility power ``beta_j`` in MW per server of load."""
        return self.power.beta_mw_per_server

    @property
    def mu_max_mw(self) -> float:
        """Fuel-cell output capacity ``mu_j^max`` in MW."""
        if self.fuel_cell_capacity_mw is not None:
            return self.fuel_cell_capacity_mw
        return self.power.peak_demand_mw(self.servers)


@dataclass(frozen=True)
class FrontEnd:
    """One front-end proxy server aggregating a region's requests."""

    name: str


class CloudModel:
    """Static description of a geo-distributed cloud (Sec. II-A).

    Args:
        datacenters: the N back-end sites.
        frontends: the M proxy sites.
        latency_ms: (M, N) propagation latencies ``L_ij`` in ms.
        fuel_cell_price: fuel-cell generation price ``p0`` in $/MWh
            (paper default 80).
        latency_weight: the weight ``w`` in $/s^2 (paper default 10).
        utility: the workload utility ``U`` (paper default quadratic
            Eq. (2)).
        emission_costs: per-datacenter ``V_j``; a single function is
            broadcast to all sites (paper default: $25/tonne flat tax).
    """

    def __init__(
        self,
        datacenters: Sequence[Datacenter],
        frontends: Sequence[FrontEnd],
        latency_ms: np.ndarray,
        fuel_cell_price: float = DEFAULT_FUEL_CELL_PRICE,
        latency_weight: float = DEFAULT_LATENCY_WEIGHT,
        utility: LatencyUtility | None = None,
        emission_costs: EmissionCostFunction | Sequence[EmissionCostFunction] | None = None,
    ) -> None:
        if not datacenters:
            raise ValueError("need at least one datacenter")
        if not frontends:
            raise ValueError("need at least one front-end")
        latency_ms = np.asarray(latency_ms, dtype=float)
        if latency_ms.shape != (len(frontends), len(datacenters)):
            raise ValueError(
                f"latency shape {latency_ms.shape} != "
                f"({len(frontends)}, {len(datacenters)})"
            )
        if (latency_ms < 0).any():
            raise ValueError("latencies must be non-negative")
        if fuel_cell_price < 0:
            raise ValueError(f"fuel-cell price must be non-negative, got {fuel_cell_price}")
        if latency_weight < 0:
            raise ValueError(f"latency weight must be non-negative, got {latency_weight}")

        self.datacenters = list(datacenters)
        self.frontends = list(frontends)
        self.latency_ms = latency_ms
        self.fuel_cell_price = float(fuel_cell_price)
        self.latency_weight = float(latency_weight)
        self.utility = utility if utility is not None else QuadraticLatencyUtility()

        if emission_costs is None:
            emission_costs = LinearCarbonTax(DEFAULT_CARBON_TAX)
        if isinstance(emission_costs, EmissionCostFunction):
            self.emission_costs: list[EmissionCostFunction] = [
                emission_costs for _ in self.datacenters
            ]
        else:
            self.emission_costs = list(emission_costs)
            if len(self.emission_costs) != len(self.datacenters):
                raise ValueError(
                    "need one emission-cost function per datacenter "
                    f"(got {len(self.emission_costs)} for {len(self.datacenters)})"
                )

    # -- convenience vectors ------------------------------------------------

    @property
    def num_datacenters(self) -> int:
        return len(self.datacenters)

    @property
    def num_frontends(self) -> int:
        return len(self.frontends)

    @property
    def capacities(self) -> np.ndarray:
        """(N,) server counts ``S_j``."""
        return np.array([dc.servers for dc in self.datacenters])

    @property
    def alphas(self) -> np.ndarray:
        """(N,) idle power ``alpha_j`` in MW."""
        return np.array([dc.alpha_mw for dc in self.datacenters])

    @property
    def betas(self) -> np.ndarray:
        """(N,) marginal power ``beta_j`` in MW/server."""
        return np.array([dc.beta_mw for dc in self.datacenters])

    @property
    def mu_max(self) -> np.ndarray:
        """(N,) fuel-cell capacities ``mu_j^max`` in MW."""
        return np.array([dc.mu_max_mw for dc in self.datacenters])

    def with_emission_costs(
        self, emission_costs: EmissionCostFunction | Sequence[EmissionCostFunction]
    ) -> "CloudModel":
        """A copy of this model with different ``V_j`` (for tax sweeps)."""
        return CloudModel(
            datacenters=self.datacenters,
            frontends=self.frontends,
            latency_ms=self.latency_ms,
            fuel_cell_price=self.fuel_cell_price,
            latency_weight=self.latency_weight,
            utility=self.utility,
            emission_costs=emission_costs,
        )

    def with_fuel_cell_price(self, price: float) -> "CloudModel":
        """A copy of this model with a different ``p0`` (for price sweeps)."""
        return CloudModel(
            datacenters=self.datacenters,
            frontends=self.frontends,
            latency_ms=self.latency_ms,
            fuel_cell_price=price,
            latency_weight=self.latency_weight,
            utility=self.utility,
            emission_costs=self.emission_costs,
        )
