"""Slot-invariant compiled structure for the UFC QP.

Compiling a slot's :class:`~repro.core.problem.UFCProblem` to a dense
QP rebuilds every constraint matrix from Python row loops, yet most of
that work does not depend on the slot at all: the equality/inequality
patterns come from the model geometry (``beta_j``, capacities,
``mu_j^max``) and the strategy switches, while only the linear terms
(prices, emission intercepts), the utility block (arrivals) and the
load-balance right-hand side vary hour to hour.

:class:`CompiledQPStructure` performs the slot-invariant assembly once
per (model, strategy, scale) and re-emits a fresh :class:`QPForm` per
slot by filling in the varying entries — arithmetic-for-arithmetic the
same operations as a from-scratch compile, so the emitted QP is
bit-identical to ``UFCProblem.to_qp()`` (the test suite asserts exact
array equality).  Slots whose emission costs need epigraph variables
change the QP dimension with the slot's carbon rates; those fall back
to the generic assembly path transparently.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.model import CloudModel
from repro.core.problem import QPForm, SlotInputs, UFCProblem
from repro.core.strategies import Strategy

__all__ = ["CompiledQPStructure", "default_workload_scale"]


def default_workload_scale(model: CloudModel) -> float:
    """The default routing unit used by the QP compilation.

    Total capacity spread over the front-ends, floored at one server —
    the same rule ``UFCProblem.to_qp`` applies when no explicit scale
    is given.
    """
    return max(1.0, float(model.capacities.sum()) / model.num_frontends)


class CompiledQPStructure:
    """The slot-invariant part of the UFC QP compilation.

    Args:
        model: the static cloud model.
        strategy: operating strategy (decides which power blocks exist).
        workload_scale: servers per routing unit; None applies the
            model's default (see :func:`default_workload_scale`).

    Raises:
        ValueError: for a non-positive explicit ``workload_scale``.
    """

    def __init__(
        self,
        model: CloudModel,
        strategy: Strategy,
        workload_scale: float | None = None,
    ) -> None:
        if workload_scale is None:
            workload_scale = default_workload_scale(model)
        if workload_scale <= 0:
            raise ValueError(f"workload_scale must be positive, got {workload_scale}")
        self.model = model
        self.strategy = strategy
        self.scale = float(workload_scale)

        m, n = model.num_frontends, model.num_datacenters
        self.m, self.n = m, n
        self.capacities = model.capacities / self.scale
        self.betas = model.betas * self.scale
        self.weight = model.latency_weight * self.scale
        self.include_mu = strategy.fuel_cell_enabled
        self.include_nu = strategy.grid_enabled
        self.mu_offset = m * n if self.include_mu else None
        self.nu_offset = (
            m * n + (n if self.include_mu else 0) if self.include_nu else None
        )
        # Base layout: no epigraph variables (the overwhelmingly common
        # case — quadratic and single-segment emission costs).  Slots
        # that need them rebuild from scratch via the generic path.
        self.dim = m * n + (n if self.include_mu else 0) + (n if self.include_nu else 0)
        self._structured = None
        self._assemble_invariants()

    # -- slot-invariant assembly ---------------------------------------------

    def _assemble_invariants(self) -> None:
        model, m, n, dim = self.model, self.m, self.n, self.dim

        a_rows = []
        b_rhs = []
        for i in range(m):
            row = np.zeros(dim)
            row[i * n : (i + 1) * n] = 1.0
            a_rows.append(row)
            b_rhs.append(0.0)  # overwritten with scaled arrivals per slot
        for j in range(n):
            row = np.zeros(dim)
            row[j : m * n : n] = self.betas[j]
            if self.include_mu:
                row[self.mu_offset + j] = -1.0
            if self.include_nu:
                row[self.nu_offset + j] = -1.0
            a_rows.append(row)
            b_rhs.append(-model.alphas[j])
        self._A = np.array(a_rows)
        self._b_template = np.array(b_rhs)

        g_rows = []
        h_rhs = []
        for j in range(n):
            row = np.zeros(dim)
            row[j : m * n : n] = 1.0
            g_rows.append(row)
            h_rhs.append(self.capacities[j])
        for k in range(m * n):
            row = np.zeros(dim)
            row[k] = -1.0
            g_rows.append(row)
            h_rhs.append(0.0)
        if self.include_mu:
            for j in range(n):
                row = np.zeros(dim)
                row[self.mu_offset + j] = -1.0
                g_rows.append(row)
                h_rhs.append(0.0)
                row = np.zeros(dim)
                row[self.mu_offset + j] = 1.0
                g_rows.append(row)
                h_rhs.append(model.mu_max[j])
        if self.include_nu:
            for j in range(n):
                row = np.zeros(dim)
                row[self.nu_offset + j] = -1.0
                g_rows.append(row)
                h_rhs.append(0.0)
        self._G = np.array(g_rows)
        self._h = np.array(h_rhs)

        q_base = np.zeros(dim)
        if self.include_mu:
            q_base[self.mu_offset : self.mu_offset + n] += model.fuel_cell_price
        self._q_template = q_base
        # Slot-invariant utility state (e.g. the latency outer products
        # of Eq. (2)) hoisted once; per-slot emission touches only the
        # arrival-dependent terms.
        self._utility_eval = model.utility.neg_quad_form_compiled(
            model.latency_ms, self.weight
        )

    # -- per-slot emission -----------------------------------------------------

    def matches(self, problem: UFCProblem) -> bool:
        """Whether this structure was compiled for ``problem``'s shape."""
        return problem.model is self.model and problem.strategy == self.strategy

    def structured_compiler(self):
        """The block-sparse twin of this structure (full reach pattern).

        Lazily builds and caches a
        :class:`~repro.optim.kkt.StructuredQPCompiler` with the same
        model, strategy and workload scale.  The structured compiler
        emits the same QP in block form — same coefficients, same
        scaling — which is what lets the centralized solver switch to
        the block-elimination KKT path when the dimension warrants it.
        """
        if self._structured is None:
            from repro.optim.kkt import StructuredQPCompiler

            self._structured = StructuredQPCompiler(
                self.model, self.strategy, reach=None, workload_scale=self.scale
            )
        return self._structured

    def _nu_cost_terms(
        self, inputs: SlotInputs
    ) -> tuple[list[tuple[float, float] | None], list[list[tuple[float, float]] | None], int] | None:
        """Per-datacenter nu-cost representation for this slot.

        Returns ``(quad_terms, epigraph_segments, num_u)`` exactly like
        the generic compilation, or None when an emission cost is not
        QP-representable.
        """
        model = self.model
        quad_terms: list[tuple[float, float] | None] = []
        epigraph_segments: list[list[tuple[float, float]] | None] = []
        num_u = 0
        for v, c in zip(model.emission_costs, inputs.carbon_rates):
            quad = v.nu_quadratic(c)
            if quad is not None:
                quad_terms.append(quad)
                epigraph_segments.append(None)
                continue
            segments = v.nu_epigraph(c)
            if segments is None:
                return None
            if len(segments) == 1:
                quad_terms.append((0.0, segments[0][0]))
                epigraph_segments.append(None)
            else:
                quad_terms.append(None)
                epigraph_segments.append(segments)
                num_u += 1
        return quad_terms, epigraph_segments, num_u

    def qp_for(self, inputs: SlotInputs) -> QPForm:
        """The slot's QP, bit-identical to a from-scratch compile.

        Raises:
            NotImplementedError: for emission costs that are neither
                quadratic nor piecewise linear (not QP-representable).
        """
        model, m, n = self.model, self.m, self.n
        if self.include_nu:
            terms = self._nu_cost_terms(inputs)
            if terms is None:
                raise NotImplementedError(
                    "an emission cost is neither quadratic nor piecewise "
                    "linear; use the distributed solver"
                )
            quad_terms, epigraph_segments, num_u = terms
            if num_u:
                # Epigraph variables change the QP dimension with this
                # slot's carbon rates: rebuild from scratch.
                return UFCProblem(model, inputs, strategy=self.strategy).to_qp(
                    workload_scale=self.scale
                )
        else:
            quad_terms = []

        dim = self.dim
        arrivals = inputs.arrivals / self.scale

        p_mat = np.zeros((dim, dim))
        q_vec = self._q_template.copy()
        # The cached evaluator is bit-identical to the scalar
        # ``neg_quad_form`` per front-end (the batch form is asserted
        # elementwise equal in the test suite).
        h_blocks, g_blocks = self._utility_eval(arrivals[None])
        for i in range(m):
            sl = slice(i * n, (i + 1) * n)
            p_mat[sl, sl] += h_blocks[0, i]
            q_vec[sl] += g_blocks[0, i]
        if self.include_nu:
            for j in range(n):
                q_vec[self.nu_offset + j] += inputs.prices[j]
                a_j, b_j = quad_terms[j]
                p_mat[self.nu_offset + j, self.nu_offset + j] += 2.0 * a_j
                q_vec[self.nu_offset + j] += b_j

        b_rhs = self._b_template.copy()
        b_rhs[:m] = arrivals

        return QPForm(
            P=p_mat,
            q=q_vec,
            A=self._A,
            b=b_rhs,
            G=self._G,
            h=self._h,
            num_frontends=m,
            num_datacenters=n,
            mu_offset=self.mu_offset,
            nu_offset=self.nu_offset,
            lam_scale=self.scale,
        )

    def qp_for_batch(self, inputs_list: "Sequence[SlotInputs]") -> list[QPForm]:
        """Many slots' QPs assembled in one vectorized pass.

        Elementwise identical to ``[self.qp_for(inp) for inp in
        inputs_list]``: the utility blocks go through the utility's
        vectorized ``neg_quad_form_batch`` (bit-identical to the scalar
        form), the constraint arrays are the same shared ``A``/``G``/
        ``h`` objects every ``qp_for`` call hands out, and ``P``/``q``/
        ``b`` are per-slot views into stacked arrays.  Slots needing
        epigraph variables rebuild through the generic scalar path,
        exactly like :meth:`qp_for`.

        Raises:
            NotImplementedError: for emission costs that are neither
                quadratic nor piecewise linear (not QP-representable).
        """
        inputs_list = list(inputs_list)
        if not inputs_list:
            return []
        model, m, n = self.model, self.m, self.n
        batch = len(inputs_list)
        generic: dict[int, QPForm] = {}
        nu_quads: list[list[tuple[float, float]] | None] = [None] * batch
        if self.include_nu:
            for t, inputs in enumerate(inputs_list):
                terms = self._nu_cost_terms(inputs)
                if terms is None:
                    raise NotImplementedError(
                        "an emission cost is neither quadratic nor piecewise "
                        "linear; use the distributed solver"
                    )
                quad_terms, _segments, num_u = terms
                if num_u:
                    generic[t] = self.qp_for(inputs)
                else:
                    nu_quads[t] = quad_terms

        dim = self.dim
        arrivals = np.stack([inp.arrivals for inp in inputs_list]) / self.scale
        p_stack = np.zeros((batch, dim, dim))
        q_stack = np.tile(self._q_template, (batch, 1))
        h_blocks, g_blocks = self._utility_eval(arrivals)
        for i in range(m):
            sl = slice(i * n, (i + 1) * n)
            p_stack[:, sl, sl] += h_blocks[:, i]
            q_stack[:, sl] += g_blocks[:, i]
        if self.include_nu:
            off = self.nu_offset
            prices = np.stack([inp.prices for inp in inputs_list])
            quad_a = np.array(
                [[q[j][0] if q is not None else 0.0 for j in range(n)]
                 for q in nu_quads]
            )
            quad_b = np.array(
                [[q[j][1] if q is not None else 0.0 for j in range(n)]
                 for q in nu_quads]
            )
            q_stack[:, off : off + n] += prices
            diag = np.arange(off, off + n)
            p_stack[:, diag, diag] += 2.0 * quad_a
            q_stack[:, off : off + n] += quad_b

        b_stack = np.tile(self._b_template, (batch, 1))
        b_stack[:, :m] = arrivals

        forms: list[QPForm] = []
        for t in range(batch):
            if t in generic:
                forms.append(generic[t])
                continue
            forms.append(
                QPForm(
                    P=p_stack[t],
                    q=q_stack[t],
                    A=self._A,
                    b=b_stack[t],
                    G=self._G,
                    h=self._h,
                    num_frontends=m,
                    num_datacenters=n,
                    mu_offset=self.mu_offset,
                    nu_offset=self.nu_offset,
                    lam_scale=self.scale,
                )
            )
        return forms
