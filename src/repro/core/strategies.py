"""The three operating strategies compared throughout the paper.

- **Grid** uses only grid electricity (adds ``mu_j = 0``);
- **Fuel cell** uses only fuel-cell generation (adds ``nu_j = 0``);
- **Hybrid** jointly optimizes both sources (the paper's proposal).

A strategy is just a pair of switches restricting the ``mu``/``nu``
boxes; every solver in the library accepts one and solves the same
UFC maximization under the restricted feasible set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Strategy", "GRID", "FUEL_CELL", "HYBRID", "ALL_STRATEGIES"]


@dataclass(frozen=True)
class Strategy:
    """An operating strategy for the cloud's power sourcing.

    Attributes:
        name: display name.
        fuel_cell_enabled: when False, forces ``mu_j = 0`` (Grid).
        grid_enabled: when False, forces ``nu_j = 0`` (Fuel cell).
    """

    name: str
    fuel_cell_enabled: bool
    grid_enabled: bool

    def __post_init__(self) -> None:
        if not (self.fuel_cell_enabled or self.grid_enabled):
            raise ValueError("a strategy must enable at least one power source")

    def effective_mu_max(self, mu_max: np.ndarray) -> np.ndarray:
        """Fuel-cell upper bounds under this strategy."""
        return np.asarray(mu_max, dtype=float) if self.fuel_cell_enabled else np.zeros_like(
            np.asarray(mu_max, dtype=float)
        )

    @property
    def nu_allowed(self) -> bool:
        return self.grid_enabled


GRID = Strategy("Grid", fuel_cell_enabled=False, grid_enabled=True)
FUEL_CELL = Strategy("Fuel cell", fuel_cell_enabled=True, grid_enabled=False)
HYBRID = Strategy("Hybrid", fuel_cell_enabled=True, grid_enabled=True)

ALL_STRATEGIES: tuple[Strategy, ...] = (GRID, FUEL_CELL, HYBRID)
