"""The per-slot UFC maximization problem (paper Sec. II-C).

:class:`UFCProblem` binds a static :class:`~repro.core.model.CloudModel`
to one slot's inputs (arrivals, prices, carbon rates) under a
:class:`~repro.core.strategies.Strategy`.  It evaluates every UFC
component exactly, checks feasibility, and compiles the problem into a
dense convex QP for the centralized interior-point reference solver.

The maximization (3) is handled everywhere in its equivalent
minimization form (12):

    min  sum_j [ V_j(C_j nu_j) + p_j nu_j + p0 mu_j ] - w sum_i U(lambda_i)

so ``UFC = -objective`` (up to nothing: all terms are included).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import CloudModel
from repro.core.solution import Allocation, FeasibilityReport
from repro.core.strategies import HYBRID, Strategy

__all__ = ["SlotInputs", "UFCProblem", "QPForm"]


@dataclass(frozen=True)
class SlotInputs:
    """One slot's time-varying inputs.

    Attributes:
        arrivals: (M,) request arrivals ``A_i`` in servers' worth.
        prices: (N,) grid prices ``p_j`` in $/MWh.
        carbon_rates: (N,) carbon intensities ``C_j`` in kg/MWh.
    """

    arrivals: np.ndarray
    prices: np.ndarray
    carbon_rates: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "arrivals", np.asarray(self.arrivals, dtype=float))
        object.__setattr__(self, "prices", np.asarray(self.prices, dtype=float))
        object.__setattr__(
            self, "carbon_rates", np.asarray(self.carbon_rates, dtype=float)
        )
        if (self.arrivals < 0).any():
            raise ValueError("arrivals must be non-negative")
        if (self.prices < 0).any():
            raise ValueError("prices must be non-negative")
        if (self.carbon_rates < 0).any():
            raise ValueError("carbon rates must be non-negative")


@dataclass(frozen=True)
class QPForm:
    """A compiled dense QP ``min 0.5 x'Px + q'x  s.t. Ax = b, Gx <= h``.

    ``lam_slice``/``mu_index``/``nu_index`` recover the model variables
    from the stacked vector; disabled blocks have None indices.  The QP
    objective equals the UFC minimization objective up to an additive
    constant (piecewise-linear emission intercepts folded away).
    """

    P: np.ndarray
    q: np.ndarray
    A: np.ndarray
    b: np.ndarray
    G: np.ndarray
    h: np.ndarray
    num_frontends: int
    num_datacenters: int
    mu_offset: int | None
    nu_offset: int | None
    lam_scale: float = 1.0

    def extract(self, x: np.ndarray) -> Allocation:
        """Unpack a stacked solver vector into an :class:`Allocation`."""
        m, n = self.num_frontends, self.num_datacenters
        lam = x[: m * n].reshape(m, n) * self.lam_scale
        mu = (
            x[self.mu_offset : self.mu_offset + n]
            if self.mu_offset is not None
            else np.zeros(n)
        )
        nu = (
            x[self.nu_offset : self.nu_offset + n]
            if self.nu_offset is not None
            else np.zeros(n)
        )
        return Allocation(lam=np.maximum(lam, 0.0), mu=np.clip(mu, 0.0, None),
                          nu=np.maximum(nu, 0.0))


class UFCProblem:
    """One slot's UFC maximization instance."""

    def __init__(
        self,
        model: CloudModel,
        inputs: SlotInputs,
        strategy: Strategy = HYBRID,
    ) -> None:
        if len(inputs.arrivals) != model.num_frontends:
            raise ValueError(
                f"arrivals length {len(inputs.arrivals)} != M={model.num_frontends}"
            )
        if len(inputs.prices) != model.num_datacenters:
            raise ValueError(
                f"prices length {len(inputs.prices)} != N={model.num_datacenters}"
            )
        if len(inputs.carbon_rates) != model.num_datacenters:
            raise ValueError(
                f"carbon rates length {len(inputs.carbon_rates)} != "
                f"N={model.num_datacenters}"
            )
        if inputs.arrivals.sum() > model.capacities.sum() * (1 + 1e-9):
            raise ValueError(
                f"total arrivals {inputs.arrivals.sum():.1f} exceed total "
                f"capacity {model.capacities.sum():.1f}: the load-balance "
                "constraints are infeasible"
            )
        self.model = model
        self.inputs = inputs
        self.strategy = strategy

    # -- component metrics ---------------------------------------------------

    def demand_mw(self, alloc: Allocation) -> np.ndarray:
        """(N,) total power demand ``alpha_j + beta_j sum_i lambda_ij``."""
        return self.model.alphas + self.model.betas * alloc.datacenter_load()

    def energy_cost(self, alloc: Allocation) -> float:
        """Slot energy cost ``sum_j p_j nu_j + p0 mu_j`` in dollars."""
        return float(
            self.inputs.prices @ alloc.nu + self.model.fuel_cell_price * alloc.mu.sum()
        )

    def carbon_kg(self, alloc: Allocation) -> float:
        """Slot grid carbon emissions ``sum_j C_j nu_j`` in kg."""
        return float(self.inputs.carbon_rates @ alloc.nu)

    def carbon_cost(self, alloc: Allocation) -> float:
        """Slot emission cost ``sum_j V_j(C_j nu_j)`` in dollars."""
        return float(
            sum(
                v.cost(c * nu)
                for v, c, nu in zip(
                    self.model.emission_costs, self.inputs.carbon_rates, alloc.nu
                )
            )
        )

    def utility(self, alloc: Allocation) -> float:
        """Unweighted workload utility ``sum_i U(lambda_i)``."""
        return float(
            sum(
                self.model.utility.value(
                    alloc.lam[i], self.model.latency_ms[i], self.inputs.arrivals[i]
                )
                for i in range(self.model.num_frontends)
            )
        )

    def average_latency_ms(self, alloc: Allocation) -> float:
        """Request-weighted mean propagation latency in ms."""
        total = self.inputs.arrivals.sum()
        if total <= 0:
            return 0.0
        return float((alloc.lam * self.model.latency_ms).sum()) / total

    def fuel_cell_utilization(self, alloc: Allocation) -> float:
        """Ratio of fuel-cell generation to total power demand (Fig. 8)."""
        demand = self.demand_mw(alloc).sum()
        if demand <= 0:
            return 0.0
        return float(alloc.mu.sum()) / demand

    def ufc(self, alloc: Allocation) -> float:
        """The UFC index: weighted utility minus carbon and energy costs."""
        return (
            self.model.latency_weight * self.utility(alloc)
            - self.carbon_cost(alloc)
            - self.energy_cost(alloc)
        )

    def objective_min(self, alloc: Allocation) -> float:
        """The minimization objective (12); equals ``-ufc``."""
        return -self.ufc(alloc)

    def check_feasibility(self, alloc: Allocation, tol: float = 1e-6) -> FeasibilityReport:
        """Constraint violations of (4)-(6) and bounds under this strategy."""
        mu_max = self.strategy.effective_mu_max(self.model.mu_max)
        report = alloc.check_feasibility(
            arrivals=self.inputs.arrivals,
            capacities=self.model.capacities,
            alphas=self.model.alphas,
            betas=self.model.betas,
            mu_max=mu_max,
            tol=tol,
        )
        if not self.strategy.nu_allowed and float(np.abs(alloc.nu).max(initial=0.0)) > 0:
            scale = max(1.0, float(self.model.alphas.max()))
            nu_violation = float(np.abs(alloc.nu).max())
            return FeasibilityReport(
                load_balance=report.load_balance,
                capacity=report.capacity,
                power_balance=report.power_balance,
                bounds=max(report.bounds, nu_violation),
                ok=report.ok and nu_violation < tol * scale,
            )
        return report

    # -- QP compilation for the centralized reference ------------------------

    def to_qp(self, workload_scale: float | None = None) -> QPForm:
        """Compile to a dense QP over ``x = [lambda_scaled, mu?, nu?, u?]``.

        Routing variables are expressed in units of ``workload_scale``
        servers (default: total capacity spread over the front-ends) so
        every variable and right-hand side is O(1)-O(10) — raw server
        counts (~1e4) next to MW power variables (~1) defeat even an
        equilibrated interior-point method.  :meth:`QPForm.extract`
        converts back to servers.

        ``mu`` is omitted under the Grid strategy and ``nu`` under the
        Fuel-cell strategy (rather than boxed to zero, which would leave
        an interior-point method without a strictly feasible region).
        Piecewise-linear emission costs with multiple segments become
        epigraph variables ``u_j``; emission costs that are neither
        quadratic nor piecewise linear are not QP-representable.

        Raises:
            NotImplementedError: for non-QP-representable ``V_j``.
        """
        model, inputs = self.model, self.inputs
        m, n = model.num_frontends, model.num_datacenters
        if workload_scale is None:
            workload_scale = max(1.0, float(model.capacities.sum()) / m)
        if workload_scale <= 0:
            raise ValueError(f"workload_scale must be positive, got {workload_scale}")
        scale = float(workload_scale)
        arrivals = inputs.arrivals / scale
        capacities = model.capacities / scale
        betas = model.betas * scale
        weight = model.latency_weight * scale
        include_mu = self.strategy.fuel_cell_enabled
        include_nu = self.strategy.grid_enabled

        # Decide the nu-cost representation per datacenter.
        quad_terms: list[tuple[float, float] | None] = []
        epigraph_segments: list[list[tuple[float, float]] | None] = []
        num_u = 0
        if include_nu:
            for v, c in zip(model.emission_costs, inputs.carbon_rates):
                quad = v.nu_quadratic(c)
                if quad is not None:
                    quad_terms.append(quad)
                    epigraph_segments.append(None)
                    continue
                segments = v.nu_epigraph(c)
                if segments is None:
                    raise NotImplementedError(
                        f"emission cost {v!r} is neither quadratic nor "
                        "piecewise linear; use the distributed solver"
                    )
                if len(segments) == 1:
                    quad_terms.append((0.0, segments[0][0]))
                    epigraph_segments.append(None)
                else:
                    quad_terms.append(None)
                    epigraph_segments.append(segments)
                    num_u += 1

        mu_offset = m * n if include_mu else None
        nu_offset = (m * n + (n if include_mu else 0)) if include_nu else None
        u_offset = m * n + (n if include_mu else 0) + (n if include_nu else 0)
        dim = u_offset + num_u

        p_mat = np.zeros((dim, dim))
        q_vec = np.zeros(dim)

        for i in range(m):
            h_i, g_i = model.utility.neg_quad_form(
                model.latency_ms[i], arrivals[i], weight
            )
            sl = slice(i * n, (i + 1) * n)
            p_mat[sl, sl] += h_i
            q_vec[sl] += g_i

        if include_mu:
            q_vec[mu_offset : mu_offset + n] += model.fuel_cell_price
        u_index: dict[int, int] = {}
        if include_nu:
            next_u = u_offset
            for j in range(n):
                q_vec[nu_offset + j] += inputs.prices[j]
                quad = quad_terms[j]
                if quad is not None:
                    a_j, b_j = quad
                    p_mat[nu_offset + j, nu_offset + j] += 2.0 * a_j
                    q_vec[nu_offset + j] += b_j
                else:
                    u_index[j] = next_u
                    q_vec[next_u] += 1.0
                    next_u += 1

        # Equalities: load balance (M rows) + power balance (N rows).
        a_rows = []
        b_rhs = []
        for i in range(m):
            row = np.zeros(dim)
            row[i * n : (i + 1) * n] = 1.0
            a_rows.append(row)
            b_rhs.append(arrivals[i])
        for j in range(n):
            row = np.zeros(dim)
            row[j : m * n : n] = betas[j]
            if include_mu:
                row[mu_offset + j] = -1.0
            if include_nu:
                row[nu_offset + j] = -1.0
            a_rows.append(row)
            b_rhs.append(-model.alphas[j])

        # Inequalities: capacity, bounds, epigraphs.
        g_rows = []
        h_rhs = []
        for j in range(n):
            row = np.zeros(dim)
            row[j : m * n : n] = 1.0
            g_rows.append(row)
            h_rhs.append(capacities[j])
        for k in range(m * n):
            row = np.zeros(dim)
            row[k] = -1.0
            g_rows.append(row)
            h_rhs.append(0.0)
        if include_mu:
            for j in range(n):
                row = np.zeros(dim)
                row[mu_offset + j] = -1.0
                g_rows.append(row)
                h_rhs.append(0.0)
                row = np.zeros(dim)
                row[mu_offset + j] = 1.0
                g_rows.append(row)
                h_rhs.append(model.mu_max[j])
        if include_nu:
            for j in range(n):
                row = np.zeros(dim)
                row[nu_offset + j] = -1.0
                g_rows.append(row)
                h_rhs.append(0.0)
            for j, uj in u_index.items():
                for slope, intercept in epigraph_segments[j]:
                    row = np.zeros(dim)
                    row[nu_offset + j] = slope
                    row[uj] = -1.0
                    g_rows.append(row)
                    h_rhs.append(-intercept)

        return QPForm(
            P=p_mat,
            q=q_vec,
            A=np.array(a_rows),
            b=np.array(b_rhs),
            G=np.array(g_rows),
            h=np.array(h_rhs),
            num_frontends=m,
            num_datacenters=n,
            mu_offset=mu_offset,
            nu_offset=nu_offset,
            lam_scale=scale,
        )
