"""The paper's primary contribution: the UFC model and its optimization.

- :mod:`repro.core.model` — the geo-distributed cloud description;
- :mod:`repro.core.problem` — per-slot UFC maximization instances,
  exact metric evaluation and QP compilation;
- :mod:`repro.core.solution` — allocations and feasibility checking;
- :mod:`repro.core.strategies` — Grid / Fuel cell / Hybrid;
- :mod:`repro.core.centralized` — the interior-point reference solver
  and the fixed-routing power-split (arbitrage) subroutine.
"""

from repro.core.centralized import (
    CentralizedResult,
    CentralizedSolver,
    optimal_power_split,
)
from repro.core.model import CloudModel, Datacenter, FrontEnd
from repro.core.problem import QPForm, SlotInputs, UFCProblem
from repro.core.solution import Allocation, FeasibilityReport
from repro.core.strategies import ALL_STRATEGIES, FUEL_CELL, GRID, HYBRID, Strategy

__all__ = [
    "ALL_STRATEGIES",
    "Allocation",
    "CentralizedResult",
    "CentralizedSolver",
    "CloudModel",
    "Datacenter",
    "FUEL_CELL",
    "FeasibilityReport",
    "FrontEnd",
    "GRID",
    "HYBRID",
    "QPForm",
    "SlotInputs",
    "Strategy",
    "UFCProblem",
    "optimal_power_split",
]
