"""repro — reproduction of "Fuel Cell Generation in Geo-Distributed
Cloud Services: A Quantitative Study" (Zhou et al., ICDCS 2014).

The library implements the paper's UFC index (utility of the cloud
using fuel cells), the joint optimization of fuel-cell generation and
geographic request routing, the distributed 4-block ADM-G algorithm
that solves it, the trace substrate the evaluation runs on, and the
experiment drivers that regenerate every table and figure.

Quickstart::

    from repro import default_bundle, build_model, Simulator, HYBRID

    bundle = default_bundle(hours=24)
    model = build_model(bundle)
    result = Simulator(model, bundle).run(HYBRID)
    print(result.summary())
"""

from repro.admg import ADMGState, DistributedUFCSolver, UFCADMGResult
from repro.core import (
    ALL_STRATEGIES,
    Allocation,
    CentralizedResult,
    CentralizedSolver,
    CloudModel,
    Datacenter,
    FUEL_CELL,
    FrontEnd,
    GRID,
    HYBRID,
    SlotInputs,
    Strategy,
    UFCProblem,
    optimal_power_split,
)
from repro.core.compiled import CompiledQPStructure
from repro.costs import (
    CapAndTrade,
    EmissionCostFunction,
    LinearCarbonTax,
    LinearLatencyUtility,
    NoEmissionCost,
    QuadraticEmissionCost,
    QuadraticLatencyUtility,
    ServerPowerModel,
    SteppedCarbonTax,
    carbon_intensity,
)
from repro.engine import (
    HorizonEngine,
    SlotOutcome,
    SlotResult,
    SlotSolver,
    available_solvers,
    create_solver,
    register_solver,
)
from repro.exec import ExecutionClient, ResultStore, parallel_map
from repro.obs import (
    HorizonSummary,
    JsonlTelemetry,
    NullTelemetry,
    RecordingTelemetry,
    ResidualTrace,
    SlotTelemetry,
    Telemetry,
    TelemetryEvent,
)
from repro.sim import SimulationResult, Simulator, build_model
from repro.traces import TraceBundle, default_bundle

__version__ = "1.0.0"

__all__ = [
    "ADMGState",
    "ALL_STRATEGIES",
    "Allocation",
    "CapAndTrade",
    "CentralizedResult",
    "CentralizedSolver",
    "CloudModel",
    "CompiledQPStructure",
    "Datacenter",
    "DistributedUFCSolver",
    "EmissionCostFunction",
    "ExecutionClient",
    "FUEL_CELL",
    "FrontEnd",
    "GRID",
    "HYBRID",
    "HorizonEngine",
    "HorizonSummary",
    "JsonlTelemetry",
    "LinearCarbonTax",
    "LinearLatencyUtility",
    "NoEmissionCost",
    "NullTelemetry",
    "QuadraticEmissionCost",
    "QuadraticLatencyUtility",
    "RecordingTelemetry",
    "ResidualTrace",
    "ResultStore",
    "ServerPowerModel",
    "SimulationResult",
    "Simulator",
    "SlotInputs",
    "SlotOutcome",
    "SlotResult",
    "SlotSolver",
    "SlotTelemetry",
    "SteppedCarbonTax",
    "Strategy",
    "Telemetry",
    "TelemetryEvent",
    "TraceBundle",
    "UFCADMGResult",
    "UFCProblem",
    "available_solvers",
    "build_model",
    "carbon_intensity",
    "create_solver",
    "default_bundle",
    "optimal_power_split",
    "parallel_map",
    "register_solver",
    "__version__",
]
