"""Non-optimizing routing heuristics + optimal power split.

Each heuristic produces a feasible routing by a simple policy; the
per-site power sourcing is then chosen optimally for that routing
(:func:`repro.core.centralized.optimal_power_split`), so the gap to
the jointly optimized Hybrid strategy isolates the value of
*optimizing the routing* itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.problem import UFCProblem
from repro.core.repair import polish_allocation
from repro.core.solution import Allocation

__all__ = [
    "HeuristicResult",
    "nearest_datacenter_routing",
    "cheapest_power_routing",
    "proportional_routing",
    "solve_heuristic",
]

RoutingPolicy = Callable[[UFCProblem], np.ndarray]


@dataclass(frozen=True)
class HeuristicResult:
    """A heuristic allocation and its UFC."""

    name: str
    allocation: Allocation
    ufc: float


def _greedy_fill(problem: UFCProblem, dc_order_for_frontend) -> np.ndarray:
    """Waterfill each front-end's demand along its datacenter ranking,
    respecting remaining capacities.  Always feasible because total
    capacity covers total arrivals (model invariant)."""
    model, inputs = problem.model, problem.inputs
    m, n = model.num_frontends, model.num_datacenters
    lam = np.zeros((m, n))
    remaining = model.capacities.astype(float).copy()
    for i in range(m):
        demand = float(inputs.arrivals[i])
        for j in dc_order_for_frontend(i):
            if demand <= 0:
                break
            take = min(demand, remaining[j])
            lam[i, j] += take
            remaining[j] -= take
            demand -= take
    return lam


def nearest_datacenter_routing(problem: UFCProblem) -> np.ndarray:
    """Route each front-end to its nearest datacenters first.

    This is the latency-optimal greedy policy (the implicit routing of
    the paper's Fuel-cell discussion: requests stay near users).
    """
    latency = problem.model.latency_ms

    def order(i: int):
        return np.argsort(latency[i])

    return _greedy_fill(problem, order)


def cheapest_power_routing(problem: UFCProblem) -> np.ndarray:
    """Route toward the cheapest effective power first.

    Effective marginal price per site: the better of the grid
    (price + marginal emission cost) and the fuel cell, times
    ``beta_j`` — a pure cost-chaser that ignores latency entirely.
    """
    model, inputs = problem.model, problem.inputs
    # Marginal emission cost of the first MWh: V(C * 1) - V(0).
    emission_marginal = np.array(
        [
            v.cost(float(c)) - v.cost(0.0)
            for v, c in zip(model.emission_costs, inputs.carbon_rates)
        ]
    )
    effective = np.minimum(
        inputs.prices + emission_marginal, model.fuel_cell_price
    ) * model.betas
    order_global = np.argsort(effective)

    def order(i: int):
        return order_global

    return _greedy_fill(problem, order)


def proportional_routing(problem: UFCProblem) -> np.ndarray:
    """Split every front-end's demand proportionally to capacities.

    The naive load balancer: always feasible, never clever.
    """
    model, inputs = problem.model, problem.inputs
    weights = model.capacities / model.capacities.sum()
    return np.outer(inputs.arrivals, weights)


def solve_heuristic(
    problem: UFCProblem, policy: RoutingPolicy, name: str | None = None
) -> HeuristicResult:
    """Apply a routing policy, choose the optimal power split, and
    evaluate the UFC of the result."""
    lam = policy(problem)
    alloc = polish_allocation(
        problem.model, problem.inputs, lam, strategy=problem.strategy
    )
    return HeuristicResult(
        name=name or policy.__name__,
        allocation=alloc,
        ufc=problem.ufc(alloc),
    )
