"""Baseline algorithms the paper compares against (or implies).

- :mod:`repro.baselines.dual_subgradient` — the classic dual
  (sub)gradient method used by prior geographical-load-balancing work
  (the paper's Fig. 11 remark: such gradient/projection methods take
  "hundreds of iterations" against ADM-G's tens).
- :mod:`repro.baselines.heuristics` — non-optimizing routing policies
  (nearest-datacenter, cheapest-power, proportional-to-capacity), each
  combined with the optimal per-site power split, quantifying what the
  joint optimization actually buys.
"""

from repro.baselines.dual_subgradient import DualSubgradientSolver
from repro.baselines.heuristics import (
    cheapest_power_routing,
    nearest_datacenter_routing,
    proportional_routing,
    solve_heuristic,
)

__all__ = [
    "DualSubgradientSolver",
    "cheapest_power_routing",
    "nearest_datacenter_routing",
    "proportional_routing",
    "solve_heuristic",
]
