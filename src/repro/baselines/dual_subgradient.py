"""Dual subgradient baseline (the "gradient/projection" comparator).

Prior geographical-load-balancing work (e.g. Liu et al., "Greening
Geographic Load Balancing", which the paper cites when claiming such
methods need "hundreds of iterations") solves problems of this shape
by dualizing the coupling constraints and running projected
(sub)gradient ascent on the multipliers:

- capacity rows ``sum_i lambda_ij <= S_j`` get multipliers
  ``sigma_j >= 0``;
- power-balance rows ``alpha_j + beta_j sum_i lambda_ij = mu_j + nu_j``
  get free multipliers ``y_j``;
- the inner minimization then separates exactly like ADM-G's
  subproblems (per-front-end simplex QPs, bang-bang power choices),
  but *without* the proximal terms — so primal iterates chatter and an
  ergodic (averaged) sequence must be tracked for feasibility.

This module exists to reproduce the paper's Fig. 11 comparison: on
the same slots, this method needs several times more iterations than
the distributed ADM-G to reach the same feasibility tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.admg.solver import ScaledView
from repro.core.problem import SlotInputs, UFCProblem
from repro.core.repair import polish_allocation
from repro.core.solution import Allocation
from repro.optim.simplex import minimize_qp_simplex

__all__ = ["DualSubgradientResult", "DualSubgradientSolver"]


@dataclass
class DualSubgradientResult:
    """Outcome of a dual subgradient run.

    Attributes:
        allocation: polished allocation built from the averaged primal.
        ufc: UFC of that allocation.
        iterations: subgradient steps performed.
        converged: whether the averaged iterate met the tolerance.
        capacity_residuals: per-iteration relative capacity violation of
            the averaged routing.
        power_residuals: per-iteration relative power-balance violation.
    """

    allocation: Allocation
    ufc: float
    iterations: int
    converged: bool
    capacity_residuals: list[float] = field(default_factory=list)
    power_residuals: list[float] = field(default_factory=list)


class DualSubgradientSolver:
    """Projected dual subgradient ascent for the UFC problem.

    Args:
        step0: initial step size for the diminishing rule
            ``step0 / sqrt(k)``.
        tol: relative feasibility tolerance on the *averaged* primal
            (same convergence notion as the ADM-G solver, so iteration
            counts are comparable).
        max_iter: iteration cap.
        polish: repair + power-split the averaged routing on exit.
    """

    def __init__(
        self,
        step0: float = 2.0,
        tol: float = 6e-3,
        max_iter: int = 5000,
        polish: bool = True,
    ) -> None:
        if step0 <= 0:
            raise ValueError(f"step0 must be positive, got {step0}")
        if tol <= 0:
            raise ValueError(f"tol must be positive, got {tol}")
        self.step0 = float(step0)
        self.tol = float(tol)
        self.max_iter = int(max_iter)
        self.polish = polish

    def solve(self, problem: UFCProblem) -> DualSubgradientResult:
        """Run dual subgradient ascent on one slot's problem."""
        scale = ScaledView.natural_scale(problem.model, rho=0.3)
        view = ScaledView(problem.model, scale)
        inputs = SlotInputs(
            arrivals=problem.inputs.arrivals / scale,
            prices=problem.inputs.prices,
            carbon_rates=problem.inputs.carbon_rates,
        )
        strategy = problem.strategy
        m, n = view.num_frontends, view.num_datacenters
        mu_caps = strategy.effective_mu_max(view.mu_max)
        # The grid draw never needs to exceed peak facility demand; the
        # bound keeps the inner LP bounded when y overshoots a price.
        nu_caps = (
            view.alphas + view.betas * view.capacities
            if strategy.grid_enabled
            else np.zeros(n)
        )

        sigma = np.zeros(n)
        y = np.zeros(n)
        lam_avg = np.zeros((m, n))
        mu_avg = np.zeros(n)
        nu_avg = np.zeros(n)
        arrival_scale = max(1.0, float(inputs.arrivals.max(initial=0.0)))
        power_scale = max(
            1.0, float((view.alphas + view.betas * view.capacities).max())
        )

        cap_hist: list[float] = []
        pow_hist: list[float] = []
        converged = False
        it = 0
        eye = np.eye(n)
        lam = np.zeros((m, n))
        for it in range(1, self.max_iter + 1):
            # Inner minimization at the current multipliers.
            price_vec = sigma + y * view.betas
            for i in range(m):
                arrival = float(inputs.arrivals[i])
                if arrival <= 0:
                    lam[i] = 0.0
                    continue
                h_util, g_util = view.utility.neg_quad_form(
                    view.latency_ms[i], arrival, view.latency_weight
                )
                # Tiny Tikhonov term keeps the subproblem solvable when
                # the utility Hessian is rank one.
                h = h_util + 1e-9 * eye
                lam[i] = minimize_qp_simplex(
                    h, price_vec + g_util, arrival, x0=lam[i]
                ).x
            mu = np.where(view.fuel_cell_price - y < 0, mu_caps, 0.0)
            nu = np.empty(n)
            for j in range(n):
                quad = view.emission_costs[j].nu_quadratic(
                    float(inputs.carbon_rates[j])
                )
                marginal = float(inputs.prices[j]) - y[j]
                if quad is not None and quad[0] == 0.0:
                    nu[j] = nu_caps[j] if marginal + quad[1] < 0 else 0.0
                else:
                    nu[j] = view.emission_costs[j].prox_nu(
                        c_rate=float(inputs.carbon_rates[j]),
                        linear=marginal,
                        d=0.0,
                        rho=1e-6,
                    )
                    nu[j] = min(nu[j], nu_caps[j])

            # Subgradient step on the multipliers.
            step = self.step0 / np.sqrt(it)
            load = lam.sum(axis=0)
            sigma = np.maximum(sigma + step * (load - view.capacities), 0.0)
            y = y + step * (view.alphas + view.betas * load - mu - nu)

            # Ergodic primal averages drive the stopping rule (raw
            # bang-bang iterates chatter between vertices forever).
            lam_avg += (lam - lam_avg) / it
            mu_avg += (mu - mu_avg) / it
            nu_avg += (nu - nu_avg) / it
            load_avg = lam_avg.sum(axis=0)
            cap_res = float(
                np.maximum(load_avg - view.capacities, 0.0).max()
            ) / arrival_scale
            balance = view.alphas + view.betas * load_avg - mu_avg - nu_avg
            pow_res = float(np.abs(balance).max()) / power_scale
            cap_hist.append(cap_res)
            pow_hist.append(pow_res)
            if max(cap_res, pow_res) < self.tol:
                converged = True
                break

        lam_servers = lam_avg * scale
        if self.polish:
            alloc = polish_allocation(
                problem.model, problem.inputs, lam_servers, strategy=strategy
            )
        else:
            alloc = Allocation(lam=lam_servers, mu=mu, nu=nu)
        return DualSubgradientResult(
            allocation=alloc,
            ufc=problem.ufc(alloc),
            iterations=it,
            converged=converged,
            capacity_residuals=cap_hist,
            power_residuals=pow_hist,
        )
