"""Where does Hybrid's gain over Grid actually come from?

The Hybrid strategy improves on Grid through two mechanisms at once:

1. **sourcing** — per site, buying fuel-cell energy whenever it beats
   the effective grid price (the Table I arbitrage);
2. **routing** — shaping ``lambda`` differently because fuel cells
   change each site's marginal power cost.

The decomposition evaluates the natural counterfactual: take Grid's
optimal routing, keep it fixed, and let each site re-source optimally
(``optimal_power_split``).  The gain up to that point is pure
sourcing; the remainder — re-optimizing the routing jointly — is the
routing effect.  Both terms are non-negative by construction
(each step enlarges the feasible set or re-optimizes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.centralized import CentralizedSolver, optimal_power_split
from repro.core.problem import UFCProblem
from repro.core.solution import Allocation
from repro.core.strategies import GRID, HYBRID

__all__ = ["GainDecomposition", "decompose_hybrid_gain"]


@dataclass(frozen=True)
class GainDecomposition:
    """Decomposition of one slot's Hybrid-over-Grid UFC gain.

    Attributes:
        ufc_grid: Grid optimum.
        ufc_fixed_routing: Grid routing + optimal sourcing.
        ufc_hybrid: joint Hybrid optimum.
        sourcing_gain: ``ufc_fixed_routing - ufc_grid``.
        routing_gain: ``ufc_hybrid - ufc_fixed_routing``.
    """

    ufc_grid: float
    ufc_fixed_routing: float
    ufc_hybrid: float

    @property
    def sourcing_gain(self) -> float:
        return self.ufc_fixed_routing - self.ufc_grid

    @property
    def routing_gain(self) -> float:
        return self.ufc_hybrid - self.ufc_fixed_routing

    @property
    def total_gain(self) -> float:
        return self.ufc_hybrid - self.ufc_grid


def decompose_hybrid_gain(problem: UFCProblem) -> GainDecomposition:
    """Decompose the Hybrid-over-Grid gain for one slot.

    ``problem`` may carry any strategy; Grid and Hybrid variants are
    constructed internally.
    """
    solver = CentralizedSolver()
    grid_problem = UFCProblem(problem.model, problem.inputs, strategy=GRID)
    hybrid_problem = UFCProblem(problem.model, problem.inputs, strategy=HYBRID)

    grid = solver.solve(grid_problem)
    hybrid = solver.solve(hybrid_problem)

    # Counterfactual: Grid's routing, re-sourced with fuel cells allowed.
    loads = grid.allocation.datacenter_load()
    mu, nu = optimal_power_split(
        problem.model, problem.inputs, loads, strategy=HYBRID
    )
    fixed_routing = Allocation(lam=grid.allocation.lam, mu=mu, nu=nu)
    ufc_fixed = hybrid_problem.ufc(fixed_routing)

    return GainDecomposition(
        ufc_grid=grid.ufc,
        ufc_fixed_routing=ufc_fixed,
        ufc_hybrid=hybrid.ufc,
    )
