"""Parameter sensitivities and the latency/cost Pareto frontier.

The paper sweeps ``p0`` (Fig. 9) and the carbon tax (Fig. 10) but
fixes the latency weight at ``w = 10 $/s^2``.  These tools complete
the sensitivity picture:

- :func:`ufc_sensitivity` — central-difference derivatives of the
  mean UFC with respect to ``p0``, the tax rate and ``w``;
- :func:`latency_cost_frontier` — the Pareto frontier between average
  latency and total (energy + carbon) cost traced by sweeping ``w``,
  quantifying what a millisecond costs the operator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.model import CloudModel
from repro.core.strategies import HYBRID, Strategy
from repro.costs.carbon import LinearCarbonTax
from repro.sim.simulator import Simulator
from repro.traces.datasets import TraceBundle

__all__ = ["ufc_sensitivity", "ParetoPoint", "latency_cost_frontier"]


def _mean_ufc(model: CloudModel, bundle: TraceBundle, strategy: Strategy,
              hours: int | None) -> float:
    return float(Simulator(model, bundle).run(strategy, hours=hours).ufc.mean())


def ufc_sensitivity(
    model: CloudModel,
    bundle: TraceBundle,
    strategy: Strategy = HYBRID,
    hours: int | None = None,
    rel_step: float = 0.05,
) -> dict[str, float]:
    """Central-difference sensitivities of mean UFC per parameter.

    Returns:
        ``{"fuel_cell_price": dUFC/dp0, "carbon_tax": dUFC/dr,
        "latency_weight": dUFC/dw}`` in $ per parameter unit.

    The carbon-tax derivative requires the model's emission costs to be
    flat taxes (the evaluation default); other shapes raise.
    """
    taxes = []
    for v in model.emission_costs:
        if not isinstance(v, LinearCarbonTax):
            raise ValueError(
                "carbon-tax sensitivity needs LinearCarbonTax emission costs"
            )
        taxes.append(v.rate_per_tonne)
    base_tax = float(np.mean(taxes))

    out: dict[str, float] = {}

    h = max(model.fuel_cell_price * rel_step, 1e-3)
    up = _mean_ufc(model.with_fuel_cell_price(model.fuel_cell_price + h),
                   bundle, strategy, hours)
    dn = _mean_ufc(model.with_fuel_cell_price(model.fuel_cell_price - h),
                   bundle, strategy, hours)
    out["fuel_cell_price"] = (up - dn) / (2 * h)

    h = max(base_tax * rel_step, 1e-3)
    up = _mean_ufc(model.with_emission_costs(LinearCarbonTax(base_tax + h)),
                   bundle, strategy, hours)
    dn = _mean_ufc(
        model.with_emission_costs(LinearCarbonTax(max(base_tax - h, 0.0))),
        bundle, strategy, hours,
    )
    out["carbon_tax"] = (up - dn) / (2 * h)

    h = max(model.latency_weight * rel_step, 1e-3)
    w_model_up = CloudModel(
        model.datacenters, model.frontends, model.latency_ms,
        fuel_cell_price=model.fuel_cell_price,
        latency_weight=model.latency_weight + h,
        utility=model.utility, emission_costs=model.emission_costs,
    )
    w_model_dn = CloudModel(
        model.datacenters, model.frontends, model.latency_ms,
        fuel_cell_price=model.fuel_cell_price,
        latency_weight=max(model.latency_weight - h, 0.0),
        utility=model.utility, emission_costs=model.emission_costs,
    )
    up = _mean_ufc(w_model_up, bundle, strategy, hours)
    dn = _mean_ufc(w_model_dn, bundle, strategy, hours)
    out["latency_weight"] = (up - dn) / (2 * h)
    return out


@dataclass(frozen=True)
class ParetoPoint:
    """One point of the latency/cost frontier.

    Attributes:
        latency_weight: the ``w`` that produced this operating point.
        mean_latency_ms: request-weighted average latency.
        total_cost: energy + emission cost over the horizon, $.
    """

    latency_weight: float
    mean_latency_ms: float
    total_cost: float


def latency_cost_frontier(
    model: CloudModel,
    bundle: TraceBundle,
    weights: Sequence[float] = (0.0, 1.0, 3.0, 10.0, 30.0, 100.0),
    strategy: Strategy = HYBRID,
    hours: int | None = None,
) -> list[ParetoPoint]:
    """Trace the latency/cost trade-off by sweeping ``w``.

    Larger ``w`` buys lower latency at higher cost; the paper's
    ``w = 10`` sits on this frontier.  Points are returned in the given
    weight order (monotone in both coordinates up to solver tolerance).
    """
    points = []
    for w in weights:
        if w < 0:
            raise ValueError(f"weights must be non-negative, got {w}")
        swept = CloudModel(
            model.datacenters, model.frontends, model.latency_ms,
            fuel_cell_price=model.fuel_cell_price,
            latency_weight=w,
            utility=model.utility, emission_costs=model.emission_costs,
        )
        result = Simulator(swept, bundle).run(strategy, hours=hours)
        points.append(
            ParetoPoint(
                latency_weight=float(w),
                mean_latency_ms=float(result.avg_latency_ms.mean()),
                total_cost=float(
                    result.energy_cost.sum() + result.carbon_cost.sum()
                ),
            )
        )
    return points
