"""Analysis tools on top of the simulator.

- :mod:`repro.analysis.decomposition` — split the Hybrid strategy's
  UFC gain over Grid into its two mechanisms (smarter *routing* vs
  smarter *sourcing*) by counterfactual evaluation;
- :mod:`repro.analysis.sensitivity` — finite-difference elasticities
  of the mean UFC with respect to the model's economic knobs, and the
  latency/cost Pareto frontier traced by the utility weight ``w``.
"""

from repro.analysis.decomposition import GainDecomposition, decompose_hybrid_gain
from repro.analysis.sensitivity import (
    ParetoPoint,
    latency_cost_frontier,
    ufc_sensitivity,
)

__all__ = [
    "GainDecomposition",
    "ParetoPoint",
    "decompose_hybrid_gain",
    "latency_cost_frontier",
    "ufc_sensitivity",
]
