"""Fig. 6: per-slot energy cost under the three strategies.

The paper's shape: Fuel cell is the most expensive ($80/MWh beats the
grid only at peaks), Hybrid arbitrages the difference for roughly a
60% cost reduction versus Fuel cell, tracking Grid during off-peak
hours and undercutting it at peaks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import cached_comparison
from repro.sim.results import StrategyComparison

__all__ = ["Fig6Result", "run_fig6", "render_fig6"]


@dataclass(frozen=True)
class Fig6Result:
    """Per-slot energy cost ($) per strategy.

    Attributes:
        grid: (T,) Grid strategy cost series.
        fuel_cell: (T,) Fuel-cell strategy cost series.
        hybrid: (T,) Hybrid strategy cost series.
        comparison: underlying strategy results.
    """

    grid: np.ndarray
    fuel_cell: np.ndarray
    hybrid: np.ndarray
    comparison: StrategyComparison


def run_fig6(hours: int = 168, seed: int = 2014, workers: int = 1) -> Fig6Result:
    """Regenerate the Fig. 6 series."""
    comp = cached_comparison(hours=hours, seed=seed, workers=workers)
    return Fig6Result(
        grid=comp.grid.energy_cost,
        fuel_cell=comp.fuel_cell.energy_cost,
        hybrid=comp.hybrid.energy_cost,
        comparison=comp,
    )


def render_fig6(result: Fig6Result) -> str:
    """Headline statistics matching the paper's commentary."""
    saving_vs_fc = 1.0 - result.hybrid.sum() / result.fuel_cell.sum()
    saving_vs_grid = 1.0 - result.hybrid.sum() / result.grid.sum()
    return "\n".join(
        [
            "Fig. 6: energy cost under various strategies",
            f"Grid      : total ${result.grid.sum():,.0f} "
            f"(mean ${result.grid.mean():,.0f}/h)",
            f"Fuel cell : total ${result.fuel_cell.sum():,.0f} "
            f"(mean ${result.fuel_cell.mean():,.0f}/h)",
            f"Hybrid    : total ${result.hybrid.sum():,.0f} "
            f"(mean ${result.hybrid.mean():,.0f}/h)",
            f"hybrid saves {100 * saving_vs_fc:.1f}% vs fuel cell and "
            f"{100 * saving_vs_grid:.1f}% vs grid",
        ]
    )
