"""Warm-start lane benchmark: cross-slot re-solve vs cold per-slot.

Measures the temporal warm-start plane end to end and gates the
properties the lane promises:

- **Week lane** — the default three-strategy week solved cold
  (``centralized``, serial cached) against the warm chain
  (``centralized-warm`` with ``warm_start=True``).  Gated: wall-clock
  speedup at :data:`WEEK_SPEEDUP_FLOOR`, mean interior-point
  iteration reduction at :data:`ITERATION_REDUCTION_FLOOR`, relative
  UFC parity at :data:`UFC_PARITY_RTOL`, and a fully certified warm
  run (every slot's a-posteriori KKT certificate passes).
- **Incumbent lane** — repeated re-solves of one slot under tiny
  input perturbations with the incumbent early-exit armed
  (``incumbent_tol > 0``): most slots must be resolved by
  re-certifying the incumbent allocation (zero solver iterations),
  and every slot must still be certified.
- **Structured lane** — the 20x100 hyperscale shape in the
  perturbation re-solve regime: each slot is solved cold once, then
  re-solved after a small input perturbation both cold and warm
  (previous iterates plus the per-iteration factor cache).  Gated:
  per-slot re-solve speedup above 1 and strictly fewer KKT factor
  builds on the warm path.
- **ADM-G lane** — the distributed solver chained warm across a day
  (multiplier/allocation hand-off): mean outer-iteration reduction
  must be positive.

Parity is judged *relative* (``|ufc_w - ufc_c| / (1 + |ufc_c|)``):
week UFC magnitudes sit near 1e3, so the 1e-6 relative bound is the
certification-grade statement the absolute spread cannot express.

Used by ``python -m repro bench --warm`` and
``benchmarks/bench_warm.py`` (which writes ``BENCH_warm.json``).
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.core.problem import UFCProblem
from repro.core.strategies import ALL_STRATEGIES, HYBRID
from repro.engine import HorizonEngine, create_solver
from repro.instances import ScaleSpec, generate_instance
from repro.obs.certify import certify_structured_solution
from repro.optim.kkt import (
    StructuredQPCompiler,
    StructuredWarmState,
    solve_structured_qp,
)
from repro.sim.simulator import Simulator, build_model
from repro.traces.datasets import default_bundle

__all__ = ["run_warm_bench", "render_report"]

#: Warm-chain wall-clock speedup the smoke gate demands over the cold
#: serial cached path on the week lane (worst round).
WEEK_SPEEDUP_FLOOR = 1.5

#: Minimum fractional reduction in mean interior-point iterations the
#: warm chain must deliver on the week lane.
ITERATION_REDUCTION_FLOOR = 0.30

#: Relative per-slot UFC disagreement tolerated between the warm chain
#: and the cold reference.
UFC_PARITY_RTOL = 1e-6

#: Interior-point tolerance for the structured 20x100 lane (matches
#: the scale benchmark's choice and rationale).
STRUCTURED_TOL = 1e-8


def _week_problems(hours: int, seed: int):
    """The 3 x ``hours`` slot problems of the default comparison."""
    bundle = default_bundle(hours=hours, seed=seed)
    model = build_model(bundle)
    sim = Simulator(model, bundle)
    return [
        sim.problem_for_slot(t, strategy)
        for strategy in ALL_STRATEGIES
        for t in range(hours)
    ]


def _timed_run(problems, solver, *, warm_start=False, **kwargs):
    engine = HorizonEngine(create_solver(solver), workers=1, **kwargs)
    start = time.perf_counter()
    outcomes = engine.run(problems, warm_start=warm_start)
    return time.perf_counter() - start, outcomes, engine.last_summary


def _week_lane(problems, repeats: int) -> dict:
    """Cold serial cached vs the in-process warm chain, order-balanced."""
    reps = max(1, repeats)
    cold_best = warm_best = None
    cold_out = warm_out = warm_sum = None
    round_speedups: list[float] = []
    for _ in range(reps):
        c1_s, out_c, _ = _timed_run(problems, "centralized")
        w_s, out_w, summary = _timed_run(
            problems, "centralized-warm", warm_start=True
        )
        c2_s, _, _ = _timed_run(problems, "centralized")
        round_speedups.append((c1_s + c2_s) / 2.0 / w_s)
        if cold_best is None or min(c1_s, c2_s) < cold_best:
            cold_best, cold_out = min(c1_s, c2_s), out_c
        if warm_best is None or w_s < warm_best:
            warm_best, warm_out, warm_sum = w_s, out_w, summary

    cold_iters = [o.result.iterations for o in cold_out]
    warm_iters = [o.result.iterations for o in warm_out]
    mean_cold = float(np.mean(cold_iters))
    mean_warm = float(np.mean(warm_iters))
    max_rel_ufc = max(
        abs(w.result.ufc - c.result.ufc) / (1.0 + abs(c.result.ufc))
        for w, c in zip(warm_out, cold_out)
    )
    mechanisms: dict[str, int] = {}
    for o in warm_out:
        mech = o.result.extras.get("warm_mechanism", "cold")
        mechanisms[mech] = mechanisms.get(mech, 0) + 1

    certified = HorizonEngine(
        create_solver("centralized-warm"), workers=1, certify=True
    ).run(problems, warm_start=True)
    return {
        "repeats": reps,
        "slots": len(problems),
        "cold_serial_cached_s": round(cold_best, 4),
        "warm_chain_s": round(warm_best, 4),
        "warm_speedup_vs_cold": round(cold_best / warm_best, 4),
        "round_speedups": [round(s, 4) for s in round_speedups],
        "speedup_floor": round(min(round_speedups), 4),
        "mean_iterations_cold": round(mean_cold, 3),
        "mean_iterations_warm": round(mean_warm, 3),
        "iteration_reduction": round(1.0 - mean_warm / mean_cold, 4),
        "warm_started_slots": warm_sum.warm_started_slots,
        "warm_iterations_saved": warm_sum.warm_iterations_saved,
        "mechanisms": mechanisms,
        "max_ufc_rel_delta_vs_cold": float(max_rel_ufc),
        "converged_all": all(
            o.ok and o.result.converged for o in warm_out
        ),
        "certified_all": all(
            o.ok and o.certificate is not None and o.certificate.ok
            for o in certified
        ),
    }


def _incumbent_lane(problem, resolves: int, seed: int) -> dict:
    """Tiny-perturbation re-solves with the incumbent early-exit armed."""
    rng = np.random.default_rng(seed)
    problems = [problem]
    for _ in range(resolves):
        inputs = problem.inputs
        arrivals = inputs.arrivals * (
            1.0 + 1e-8 * rng.standard_normal(inputs.arrivals.shape)
        )
        problems.append(
            UFCProblem(
                problem.model,
                dataclasses.replace(inputs, arrivals=arrivals),
                strategy=problem.strategy,
            )
        )
    solver = create_solver("centralized-warm", incumbent_tol=1e-6)
    engine = HorizonEngine(solver, workers=1, certify=True)
    outcomes = engine.run(problems, warm_start=True)
    summary = engine.last_summary
    reused = summary.incumbent_reuse_slots
    return {
        "resolves": resolves,
        "incumbent_tol": 1e-6,
        "perturbation_rel": 1e-8,
        "incumbent_reuse_slots": reused,
        "incumbent_reuse_rate": round(reused / max(1, resolves), 4),
        "warm_iterations_saved": summary.warm_iterations_saved,
        "certified_all": all(
            o.ok and o.certificate is not None and o.certificate.ok
            for o in outcomes
        ),
    }


def _structured_lane(slots: int, seed: int) -> dict:
    """20x100 perturbation re-solves: warm iterates + factor-cache reuse."""
    inst = generate_instance(
        ScaleSpec(
            num_datacenters=20,
            num_frontends=100,
            hours=slots,
            fan_in=6,
            seed=seed,
        )
    )
    sc = StructuredQPCompiler(inst.model, HYBRID, reach=inst.reach)
    rng = np.random.default_rng(seed + 1)

    cold_s = warm_s = 0.0
    builds_cold = builds_warm = reused = 0
    iters_cold = iters_warm = 0
    converged_all = True
    certified_all = True
    max_rel_ufc = 0.0
    for t in range(slots):
        inputs = inst.inputs(t)
        sqp = sc.structured_qp_for(inputs)
        seed_cache: dict = {}
        seed_res = solve_structured_qp(
            sqp, tol=STRUCTURED_TOL, factor_cache=seed_cache
        )

        perturbed = dataclasses.replace(
            inputs,
            arrivals=inputs.arrivals
            * (1.0 + 1e-4 * rng.standard_normal(inputs.arrivals.shape)),
            prices=inputs.prices
            * (1.0 + 1e-4 * rng.standard_normal(inputs.prices.shape)),
        )
        sqp_p = sc.structured_qp_for(perturbed)

        cold_cache: dict = {}
        start = time.perf_counter()
        res_c = solve_structured_qp(
            sqp_p, tol=STRUCTURED_TOL, factor_cache=cold_cache
        )
        cold_s += time.perf_counter() - start
        builds_cold += cold_cache.get("built", 0)

        # Trajectory-matched factor reuse: a cold re-solve seeded with
        # the original slot's per-iteration factors tracks the same
        # barrier-weight trajectory early on, so drift-gated reuse
        # fires on those iterations.
        reuse_cache = {"factors": dict(seed_cache.get("factors", {}))}
        solve_structured_qp(sqp_p, tol=STRUCTURED_TOL, factor_cache=reuse_cache)
        reused += reuse_cache.get("reused", 0)

        warm = StructuredWarmState(
            x=seed_res.x,
            y=seed_res.eq_dual,
            s=sqp.ineq_slack(seed_res.x),
            z=seed_res.ineq_dual,
        )
        # The warm path's build economy: count only the re-solve's own
        # builds (the seeding solve's are sunk either way).
        seed_cache["built"] = 0
        seed_cache["reused"] = 0
        start = time.perf_counter()
        res_w = solve_structured_qp(
            sqp_p,
            tol=STRUCTURED_TOL,
            initial=warm,
            factor_cache=seed_cache,
        )
        warm_s += time.perf_counter() - start
        builds_warm += seed_cache.get("built", 0)
        reused += seed_cache.get("reused", 0)

        iters_cold += res_c.iterations
        iters_warm += res_w.iterations
        converged_all &= bool(res_c.converged and res_w.converged)
        problem = UFCProblem(inst.model, perturbed, strategy=HYBRID)
        ufc_c = problem.ufc(sqp_p.extract(res_c.x))
        ufc_w = problem.ufc(sqp_p.extract(res_w.x))
        max_rel_ufc = max(
            max_rel_ufc, abs(ufc_w - ufc_c) / (1.0 + abs(ufc_c))
        )
        cert = certify_structured_solution(
            sqp_p,
            problem,
            sqp_p.extract(res_w.x),
            x=res_w.x,
            duals=(res_w.eq_dual, res_w.ineq_dual),
            solver="centralized-structured",
            slot=t,
        )
        certified_all &= cert.ok
    return {
        "shape": "20x100",
        "slots": slots,
        "cold_resolve_s": round(cold_s, 4),
        "warm_resolve_s": round(warm_s, 4),
        "per_slot_resolve_speedup": round(cold_s / warm_s, 4),
        "factor_builds_cold": builds_cold,
        "factor_builds_warm": builds_warm,
        "factor_builds_avoided": builds_cold - builds_warm,
        "factors_reused": reused,
        "mean_iterations_cold": round(iters_cold / slots, 2),
        "mean_iterations_warm": round(iters_warm / slots, 2),
        "converged_all": converged_all,
        "certified_all": certified_all,
        "max_ufc_rel_delta_vs_cold": float(max_rel_ufc),
    }


def _admg_lane(hours: int, seed: int) -> dict:
    """ADM-G multiplier/allocation warm chain vs cold, one strategy."""
    bundle = default_bundle(hours=hours, seed=seed)
    model = build_model(bundle)
    sim = Simulator(model, bundle)
    problems = [sim.problem_for_slot(t, HYBRID) for t in range(hours)]
    cold = HorizonEngine(create_solver("distributed"), workers=1).run(problems)
    warm = HorizonEngine(create_solver("distributed"), workers=1).run(
        problems, warm_start=True
    )
    mean_cold = float(np.mean([o.result.iterations for o in cold]))
    mean_warm = float(np.mean([o.result.iterations for o in warm]))
    return {
        "hours": hours,
        "mean_iterations_cold": round(mean_cold, 2),
        "mean_iterations_warm": round(mean_warm, 2),
        "iteration_reduction": round(1.0 - mean_warm / mean_cold, 4),
        "converged_all": all(o.ok and o.result.converged for o in warm),
    }


def run_warm_bench(
    hours: int = 168,
    seed: int = 2014,
    repeats: int = 3,
    incumbent_resolves: int = 24,
    structured_slots: int = 12,
    admg_hours: int = 24,
    floor: float = WEEK_SPEEDUP_FLOOR,
) -> dict:
    """Run every warm lane and summarize as a JSON-ready dict."""
    problems = _week_problems(hours, seed)
    week = _week_lane(problems, repeats)
    incumbent = _incumbent_lane(problems[0], incumbent_resolves, seed)
    structured = _structured_lane(structured_slots, seed)
    admg = _admg_lane(admg_hours, seed)
    passed = (
        week["speedup_floor"] >= floor
        and week["iteration_reduction"] >= ITERATION_REDUCTION_FLOOR
        and week["max_ufc_rel_delta_vs_cold"] <= UFC_PARITY_RTOL
        and week["converged_all"]
        and week["certified_all"]
        and incumbent["incumbent_reuse_rate"] > 0.5
        and incumbent["certified_all"]
        and structured["per_slot_resolve_speedup"] > 1.0
        and structured["factor_builds_avoided"] > 0
        and structured["converged_all"]
        and structured["certified_all"]
        and admg["iteration_reduction"] > 0.0
    )
    return {
        "hours": hours,
        "seed": seed,
        "floor": floor,
        "iteration_reduction_floor": ITERATION_REDUCTION_FLOOR,
        "ufc_parity_rtol": UFC_PARITY_RTOL,
        "week": week,
        "incumbent": incumbent,
        "structured": structured,
        "admg": admg,
        "passed": passed,
    }


def render_report(payload: dict) -> str:
    """The human-readable block ``repro bench --warm`` prints."""
    week = payload["week"]
    incumbent = payload["incumbent"]
    structured = payload["structured"]
    admg = payload["admg"]
    lines = [
        f"warm-start lane ({payload['hours']}h week, "
        f"{week['slots']} slots, seed {payload['seed']})",
        f"  week     : cold {week['cold_serial_cached_s']:.3f} s, warm "
        f"{week['warm_chain_s']:.3f} s  ->  "
        f"{week['warm_speedup_vs_cold']:.2f}x (worst round "
        f"{week['speedup_floor']:.2f}x, floor {payload['floor']:.1f}x)",
        f"  iters    : {week['mean_iterations_cold']:.2f} -> "
        f"{week['mean_iterations_warm']:.2f} mean "
        f"(-{100 * week['iteration_reduction']:.1f}%, "
        f"{week['warm_iterations_saved']} saved; floor "
        f"{100 * payload['iteration_reduction_floor']:.0f}%)",
        f"  parity   : max rel UFC delta "
        f"{week['max_ufc_rel_delta_vs_cold']:.2e} "
        f"(tol {payload['ufc_parity_rtol']:.0e}); certified "
        f"{'all' if week['certified_all'] else 'FAIL'}",
        f"  ladder   : " + ", ".join(
            f"{k} x{v}" for k, v in sorted(week["mechanisms"].items())
        ),
        f"  incumbent: {incumbent['incumbent_reuse_slots']}/"
        f"{incumbent['resolves']} reuses "
        f"({100 * incumbent['incumbent_reuse_rate']:.0f}%) at drift "
        f"{incumbent['perturbation_rel']:.0e} <= tol "
        f"{incumbent['incumbent_tol']:.0e}; certified "
        f"{'all' if incumbent['certified_all'] else 'FAIL'}",
        f"  20x100   : re-solve {structured['cold_resolve_s']:.3f} s -> "
        f"{structured['warm_resolve_s']:.3f} s "
        f"({structured['per_slot_resolve_speedup']:.2f}x/slot); factor "
        f"builds {structured['factor_builds_cold']} -> "
        f"{structured['factor_builds_warm']} "
        f"({structured['factors_reused']} reused)",
        f"  adm-g    : {admg['mean_iterations_cold']:.1f} -> "
        f"{admg['mean_iterations_warm']:.1f} mean outer iterations "
        f"(-{100 * admg['iteration_reduction']:.1f}%)",
        f"  verdict  : {'PASS' if payload['passed'] else 'FAIL'}",
    ]
    return "\n".join(lines)
