"""The reproduction scorecard: every paper claim as a named check.

Each qualitative claim of the paper's evaluation is encoded as one
:class:`Check` with the published value/target, the measured value,
and a pass predicate.  ``python -m repro validate`` prints the
scorecard; the benchmark suite asserts the same predicates one
artifact at a time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["Check", "run_validation", "render_scorecard"]


@dataclass(frozen=True)
class Check:
    """One paper claim, checked against this run.

    Attributes:
        artifact: table/figure the claim comes from.
        claim: human-readable statement of the claim.
        paper: the published value/statement.
        measured: what this run produced.
        passed: whether the shape target holds.
    """

    artifact: str
    claim: str
    paper: str
    measured: str
    passed: bool


def _check(
    artifact: str, claim: str, paper: str, measured: float,
    fmt: Callable[[float], str], predicate: bool,
) -> Check:
    return Check(
        artifact=artifact, claim=claim, paper=paper,
        measured=fmt(measured), passed=bool(predicate),
    )


def run_validation(hours: int = 168, seed: int = 2014) -> list[Check]:
    """Run every experiment and evaluate every shape target."""
    from repro.experiments.fig4_utility import run_fig4
    from repro.experiments.fig5_latency import run_fig5
    from repro.experiments.fig8_utilization import run_fig8
    from repro.experiments.fig9_price_sweep import run_fig9
    from repro.experiments.fig10_tax_sweep import run_fig10
    from repro.experiments.fig11_convergence import run_fig11
    from repro.experiments.table1 import PAPER_TABLE1, run_table1

    checks: list[Check] = []
    pct = lambda x: f"{100 * x:.1f}%"

    t1 = run_table1()
    worst = max(
        abs(t1.costs[site][key] - published) / published
        for site, row in PAPER_TABLE1.items()
        for key, published in row.items()
    )
    checks.append(
        _check("Table I", "all six cells within 20% of published",
               "9644/27957/9387; 28470/27957/18250",
               worst, lambda x: f"max dev {pct(x)}", worst < 0.20)
    )
    sj = t1.costs["san_jose"]
    checks.append(
        _check("Table I", "hybrid arbitrage wins decisively at San Jose",
               "18250 vs 28470 (64%)", sj["hybrid"] / sj["grid"],
               lambda x: f"ratio {pct(x)}", sj["hybrid"] < 0.85 * sj["grid"])
    )

    f4 = run_fig4(hours=hours, seed=seed)
    checks.append(
        _check("Fig. 4", "hybrid never reduces UFC vs grid", "I_hg >= 0",
               float(f4.i_hg.min()), lambda x: f"min I_hg {pct(x)}",
               bool((f4.i_hg > -1e-4).all()))
    )
    checks.append(
        _check("Fig. 4", "hybrid peaks ~50% over grid at price peaks",
               "up to ~50%", float(f4.i_hg.max()),
               lambda x: f"max I_hg {pct(x)}", 0.2 < f4.i_hg.max() < 0.9)
    )
    checks.append(
        _check("Fig. 4", "fuel-cell-only hurts during off-peak hours",
               "down to -150%", float(f4.i_fg.min()),
               lambda x: f"min I_fg {pct(x)}",
               f4.i_fg.min() < -0.1 and (f4.i_fg < 0).mean() > 0.5)
    )

    f5 = run_fig5(hours=hours, seed=seed)
    checks.append(
        _check("Fig. 5", "load following: fuel cell <= hybrid <= grid latency",
               "14-16 / 14-17 / up to 23 ms",
               float(f5.grid.mean() - f5.fuel_cell.mean()),
               lambda x: f"grid premium {x:.2f} ms",
               f5.fuel_cell.mean() <= f5.hybrid.mean() + 0.05
               and f5.hybrid.mean() <= f5.grid.mean())
    )

    f8 = run_fig8(hours=hours, seed=seed)
    checks.append(
        _check("Fig. 8", "fuel cells poorly utilized at market prices",
               "mean 16.2%, never >= 70%", f8.mean,
               lambda x: f"mean {pct(x)}, peak {pct(f8.peak)}",
               0.08 < f8.mean < 0.30 and f8.peak < 0.85)
    )

    f9 = run_fig9(hours=hours, seed=seed)
    at27 = float(f9.utilization[list(f9.prices).index(27.0)])
    checks.append(
        _check("Fig. 9", "utilization saturates when p0 reaches ~$27/MWh",
               "100% at $27", at27, lambda x: f"util {pct(x)} at $27",
               at27 > 0.97)
    )
    checks.append(
        _check("Fig. 9", "both curves fall monotonically with p0",
               "monotone", float(np.diff(f9.utilization).max()),
               lambda x: f"max upstep {pct(x)}",
               bool((np.diff(f9.improvement) <= 1e-6).all()
                    and (np.diff(f9.utilization) <= 1e-6).all()))
    )

    f10 = run_fig10(hours=hours, seed=seed)
    at140 = float(f10.utilization[list(f10.rates).index(140.0)])
    at25 = float(f10.utilization[list(f10.rates).index(25.0)])
    checks.append(
        _check("Fig. 10", "utilization approaches 100% near $140/tonne",
               "~100% at $140", at140, lambda x: f"util {pct(x)} at $140",
               at140 > 0.85)
    )
    checks.append(
        _check("Fig. 10", "2014 policy band fails to promote fuel cells",
               "<20% at $5-39/tonne", at25, lambda x: f"util {pct(x)} at $25",
               at25 < 0.30)
    )

    f11 = run_fig11(hours=hours, seed=seed)
    within = f11.fraction_within(100)
    checks.append(
        _check("Fig. 11", "most ADM-G runs converge within 100 iterations",
               "80% within 100; range 37-130", within,
               lambda x: f"{pct(x)} within 100; range "
               f"{int(f11.iterations.min())}-{int(f11.iterations.max())}",
               within > 0.6 and f11.converged.all())
    )
    return checks


def render_scorecard(checks: list[Check]) -> str:
    """Text scorecard, one line per claim."""
    passed = sum(c.passed for c in checks)
    lines = [
        f"Reproduction scorecard: {passed}/{len(checks)} shape targets hold",
        "-" * 72,
    ]
    for c in checks:
        mark = "PASS" if c.passed else "FAIL"
        lines.append(f"[{mark}] {c.artifact:<9} {c.claim}")
        lines.append(f"       paper: {c.paper}   measured: {c.measured}")
    return "\n".join(lines)
