"""Fig. 7: per-slot carbon-emission cost under the three strategies.

The paper's shape: Fuel cell is carbon-free (zero emission cost);
Hybrid, despite having fuel cells available, still emits close to Grid
because the $25/tonne tax is small next to electricity prices — the
observation that motivates the Fig. 10 tax sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import cached_comparison
from repro.sim.results import StrategyComparison

__all__ = ["Fig7Result", "run_fig7", "render_fig7"]


@dataclass(frozen=True)
class Fig7Result:
    """Per-slot emission cost ($) and mass (kg) per strategy.

    Attributes:
        grid_cost: (T,) Grid strategy emission-cost series.
        fuel_cell_cost: (T,) Fuel-cell strategy series (all zeros).
        hybrid_cost: (T,) Hybrid strategy series.
        grid_kg: (T,) Grid strategy emission mass.
        hybrid_kg: (T,) Hybrid strategy emission mass.
        comparison: underlying strategy results.
    """

    grid_cost: np.ndarray
    fuel_cell_cost: np.ndarray
    hybrid_cost: np.ndarray
    grid_kg: np.ndarray
    hybrid_kg: np.ndarray
    comparison: StrategyComparison


def run_fig7(hours: int = 168, seed: int = 2014, workers: int = 1) -> Fig7Result:
    """Regenerate the Fig. 7 series."""
    comp = cached_comparison(hours=hours, seed=seed, workers=workers)
    return Fig7Result(
        grid_cost=comp.grid.carbon_cost,
        fuel_cell_cost=comp.fuel_cell.carbon_cost,
        hybrid_cost=comp.hybrid.carbon_cost,
        grid_kg=comp.grid.carbon_kg,
        hybrid_kg=comp.hybrid.carbon_kg,
        comparison=comp,
    )


def render_fig7(result: Fig7Result) -> str:
    """Headline statistics matching the paper's commentary."""
    ratio = result.hybrid_kg.sum() / result.grid_kg.sum()
    return "\n".join(
        [
            "Fig. 7: carbon emission cost under various strategies",
            f"Grid      : ${result.grid_cost.sum():,.0f} total "
            f"({result.grid_kg.sum() / 1000:,.1f} t)",
            f"Fuel cell : ${result.fuel_cell_cost.sum():,.0f} total (0 t)",
            f"Hybrid    : ${result.hybrid_cost.sum():,.0f} total "
            f"({result.hybrid_kg.sum() / 1000:,.1f} t)",
            f"hybrid still emits {100 * ratio:.0f}% of grid's carbon at the "
            "$25/tonne tax",
        ]
    )
