"""CSV exporters: every figure's series, written to disk.

The renderers in this package print headline statistics; these
exporters dump the underlying per-slot/per-point series so external
plotting tools can redraw the paper's figures.  No plotting library is
required (or used) anywhere in the repository.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.experiments.fig4_utility import run_fig4
from repro.experiments.fig8_utilization import run_fig8
from repro.experiments.fig9_price_sweep import run_fig9
from repro.experiments.fig10_tax_sweep import run_fig10
from repro.experiments.fig11_convergence import run_fig11
from repro.experiments.table1 import run_table1
from repro.experiments.traces_fig3 import run_fig3

__all__ = ["export_all"]


def _write_csv(path: Path, header: list[str], rows) -> None:
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


def export_all(out_dir: str | Path, hours: int = 168, seed: int = 2014) -> list[Path]:
    """Write every artifact's data series under ``out_dir``.

    Returns the list of files written.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    t1 = run_table1()
    path = out / "table1_energy_costs.csv"
    _write_csv(
        path,
        ["site", "grid", "fuel_cell", "hybrid"],
        [
            [site, row["grid"], row["fuel_cell"], row["hybrid"]]
            for site, row in t1.costs.items()
        ],
    )
    written.append(path)

    f3 = run_fig3(hours=hours, seed=seed)
    path = out / "fig3_traces.csv"
    bundle = f3.bundle
    header = (
        ["hour", "workload_total"]
        + [f"price_{r}" for r in bundle.regions]
        + [f"carbon_{r}" for r in bundle.regions]
    )
    rows = [
        [t, f3.workload_total[t], *bundle.prices[t], *bundle.carbon_rates[t]]
        for t in range(bundle.hours)
    ]
    _write_csv(path, header, rows)
    written.append(path)

    f4 = run_fig4(hours=hours, seed=seed)
    path = out / "fig4_ufc_improvements.csv"
    _write_csv(
        path,
        ["hour", "i_hg", "i_hf", "i_fg"],
        [[t, f4.i_hg[t], f4.i_hf[t], f4.i_fg[t]] for t in range(len(f4.i_hg))],
    )
    written.append(path)

    comp = f4.comparison
    path = out / "fig5to7_strategy_series.csv"
    _write_csv(
        path,
        [
            "hour",
            "latency_grid", "latency_fuel_cell", "latency_hybrid",
            "energy_grid", "energy_fuel_cell", "energy_hybrid",
            "carbon_cost_grid", "carbon_cost_fuel_cell", "carbon_cost_hybrid",
        ],
        [
            [
                t,
                comp.grid.avg_latency_ms[t],
                comp.fuel_cell.avg_latency_ms[t],
                comp.hybrid.avg_latency_ms[t],
                comp.grid.energy_cost[t],
                comp.fuel_cell.energy_cost[t],
                comp.hybrid.energy_cost[t],
                comp.grid.carbon_cost[t],
                comp.fuel_cell.carbon_cost[t],
                comp.hybrid.carbon_cost[t],
            ]
            for t in range(comp.grid.hours)
        ],
    )
    written.append(path)

    f8 = run_fig8(hours=hours, seed=seed)
    path = out / "fig8_utilization.csv"
    _write_csv(
        path,
        ["hour", "utilization"],
        [[t, f8.utilization[t]] for t in range(len(f8.utilization))],
    )
    written.append(path)

    f9 = run_fig9(hours=hours, seed=seed)
    path = out / "fig9_price_sweep.csv"
    _write_csv(
        path,
        ["fuel_cell_price", "improvement", "utilization"],
        list(zip(f9.prices, f9.improvement, f9.utilization)),
    )
    written.append(path)

    f10 = run_fig10(hours=hours, seed=seed)
    path = out / "fig10_tax_sweep.csv"
    _write_csv(
        path,
        ["tax_rate", "improvement", "utilization"],
        list(zip(f10.rates, f10.improvement, f10.utilization)),
    )
    written.append(path)

    f11 = run_fig11(hours=hours, seed=seed)
    path = out / "fig11_convergence_cdf.csv"
    _write_csv(
        path,
        ["iterations", "fraction_within"],
        list(zip(f11.cdf_counts, f11.cdf_fractions)),
    )
    written.append(path)

    return written
