"""Fig. 8: fuel-cell utilization over time under the Hybrid strategy.

The paper plots the ratio of fuel-cell generation to total power
demand per slot and reports wild fluctuation, a 16.2% average and a
ceiling below 70% — the evidence that current fuel-cell prices and
carbon taxes leave fuel cells poorly utilized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import cached_comparison
from repro.sim.results import StrategyComparison

__all__ = ["Fig8Result", "run_fig8", "render_fig8"]


@dataclass(frozen=True)
class Fig8Result:
    """Per-slot fuel-cell utilization under Hybrid.

    Attributes:
        utilization: (T,) fuel-cell generation / total demand.
        comparison: underlying strategy results.
    """

    utilization: np.ndarray
    comparison: StrategyComparison

    @property
    def mean(self) -> float:
        return float(self.utilization.mean())

    @property
    def peak(self) -> float:
        return float(self.utilization.max())


def run_fig8(hours: int = 168, seed: int = 2014, workers: int = 1) -> Fig8Result:
    """Regenerate the Fig. 8 series."""
    comp = cached_comparison(hours=hours, seed=seed, workers=workers)
    return Fig8Result(utilization=comp.hybrid.utilization, comparison=comp)


def render_fig8(result: Fig8Result) -> str:
    """Headline statistics matching the paper's commentary."""
    u = result.utilization
    return "\n".join(
        [
            "Fig. 8: fuel-cell utilization at each time period (Hybrid)",
            f"mean {100 * result.mean:.1f}% (paper: 16.2%), "
            f"peak {100 * result.peak:.1f}% (paper: < 70%), "
            f"idle in {100 * float((u < 1e-6).mean()):.0f}% of slots",
        ]
    )
