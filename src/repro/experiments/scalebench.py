"""Scale-lane benchmark: block-elimination KKT path vs the dense route.

The paper evaluates at (N, M) = (4, 10); the block-sparse KKT path in
:mod:`repro.optim.kkt` exists to push the same per-slot solve to
production shapes.  This driver generates hyperscale instances with
:mod:`repro.instances`, times the structured route against two dense
baselines shape by shape, and gates three properties:

- **Parity**: the dense interior-point route solving the *identical*
  reach-restricted QP (``sqp.to_dense()``) must agree with the
  structured route to certification-grade relative UFC accuracy —
  same problem, two factorizations.
- **Certification**: every structured slot's allocation and solver
  duals pass the a-posteriori KKT certifier — at shapes where no
  dense route is tractable, the certificate *is* the correctness
  evidence.
- **Speedup**: at ``N * M >= 2000`` the structured route must be at
  least 5x faster per slot than the same-problem dense route.

The second baseline (``dense_full``) is the library's pre-existing
full-reach compiled path — what a slot would cost *without* the scale
lane.  It solves a larger feasible set (every front-end may route
anywhere), so its UFC differs by the genuine fan-in restriction gap;
it is reported for context, never gated on parity.

A final check pins down that the scale lane cannot disturb the paper
reproduction: at paper scale, ``kkt_mode="auto"`` solves are
bit-identical to the dense route (the auto cutoff keeps small QPs on
the dense path).

Used by ``python -m repro bench --scale`` and
``benchmarks/bench_scale.py`` (which writes ``BENCH_scale.json``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.centralized import CentralizedSolver
from repro.core.compiled import CompiledQPStructure
from repro.core.strategies import HYBRID
from repro.instances import ScaleSpec, generate_instance
from repro.obs.certify import certify_structured_solution
from repro.optim.ipqp import solve_qp
from repro.optim.kkt import StructuredQPCompiler, solve_structured_qp

__all__ = ["ShapeResult", "run_scale_bench", "render_report", "DEFAULT_SHAPES"]

#: Shape ladder for the full benchmark: paper scale up to hyperscale.
DEFAULT_SHAPES: tuple[tuple[int, int], ...] = (
    (4, 10),
    (10, 50),
    (20, 100),
    (50, 500),
    (100, 1000),
)

#: Above this ``N * M`` neither dense baseline is timed (their KKT
#: factors would dominate the benchmark's runtime); the structured
#: route is then validated by certification instead of cross-checking.
DENSE_PRODUCT_LIMIT = 2000

#: Structured-vs-dense per-slot speedup the gate demands at
#: ``N * M >= 2000`` (against the same-problem dense route).
SPEEDUP_FLOOR = 5.0

#: Relative per-slot UFC disagreement tolerated between the two
#: routes on the identical QP (both converge to gap ~1e-6 absolute;
#: the bound leaves interior-point headroom).
PARITY_RTOL = 1e-4

#: Interior-point tolerance for the scale lane.  Residuals are judged
#: relative to the problem's coefficient scale (~1e2 for generated
#: instances), so 1e-8 lands near 1e-6 absolute — beyond
#: certification tolerance with margin, and robust at shapes where
#: the float64 Schur assembly limits achievable accuracy.
SCALE_TOL = 1e-8


@dataclass
class ShapeResult:
    """Timings and checks for one (N, M) rung of the ladder.

    ``dense_*`` fields are None above :data:`DENSE_PRODUCT_LIMIT`.
    """

    num_datacenters: int
    num_frontends: int
    slots: int
    fan_in: int
    structured_s: float
    structured_iters: int
    converged_slots: int
    certified_slots: int
    suspect_slots: list[int] = field(default_factory=list)
    #: Dense route on the identical reach-restricted QP.
    dense_same_s: float | None = None
    dense_slots: int = 0
    speedup: float | None = None
    max_ufc_rel_delta: float | None = None
    #: The library's full-reach compiled path (a larger feasible set).
    dense_full_s: float | None = None
    restriction_gap_rel: float | None = None

    @property
    def product(self) -> int:
        return self.num_datacenters * self.num_frontends

    @property
    def ok(self) -> bool:
        if self.converged_slots < self.slots or self.certified_slots < self.slots:
            return False
        if self.max_ufc_rel_delta is not None and self.max_ufc_rel_delta > PARITY_RTOL:
            return False
        if self.speedup is not None and self.product >= DENSE_PRODUCT_LIMIT:
            return self.speedup >= SPEEDUP_FLOOR
        return True

    def to_dict(self) -> dict:
        """JSON-ready summary row for ``BENCH_scale.json``."""
        return {
            "num_datacenters": self.num_datacenters,
            "num_frontends": self.num_frontends,
            "product": self.product,
            "slots": self.slots,
            "fan_in": self.fan_in,
            "structured_s": round(self.structured_s, 4),
            "structured_ms_per_slot": round(1000 * self.structured_s / self.slots, 2),
            "structured_iters": self.structured_iters,
            "converged_slots": self.converged_slots,
            "certified_slots": self.certified_slots,
            "suspect_slots": self.suspect_slots,
            "dense_same_s": (
                None if self.dense_same_s is None else round(self.dense_same_s, 4)
            ),
            "dense_slots": self.dense_slots,
            "speedup": None if self.speedup is None else round(self.speedup, 2),
            "max_ufc_rel_delta": self.max_ufc_rel_delta,
            "dense_full_s": (
                None if self.dense_full_s is None else round(self.dense_full_s, 4)
            ),
            "restriction_gap_rel": self.restriction_gap_rel,
            "ok": self.ok,
        }


def _paper_scale_bit_identity(hours: int = 6, seed: int = 2014) -> bool:
    """auto-mode solves are bit-identical to dense at paper scale."""
    from repro.sim.simulator import Simulator, build_model
    from repro.traces.datasets import default_bundle

    bundle = default_bundle(hours=hours, seed=seed)
    model = build_model(bundle)
    sim = Simulator(model, bundle)
    compiled = CompiledQPStructure(model, HYBRID)
    dense = CentralizedSolver(kkt_mode="dense")
    auto = CentralizedSolver(kkt_mode="auto")
    for t in range(hours):
        problem = sim.problem_for_slot(t, HYBRID)
        a = dense.solve(problem, compiled).allocation
        b = auto.solve(problem, compiled).allocation
        if not (
            np.array_equal(a.lam, b.lam)
            and np.array_equal(a.mu, b.mu)
            and np.array_equal(a.nu, b.nu)
        ):
            return False
    return True


def _bench_shape(
    n: int,
    m: int,
    slots: int,
    fan_in: int,
    seed: int,
    tol: float,
    dense_slots: int,
) -> ShapeResult:
    inst = generate_instance(
        ScaleSpec(
            num_datacenters=n,
            num_frontends=m,
            hours=slots,
            fan_in=min(fan_in, n),
            seed=seed,
        )
    )
    sc = StructuredQPCompiler(inst.model, HYBRID, reach=inst.reach)

    structured_ufc: list[float] = []
    converged = iters = certified = 0
    suspect: list[int] = []
    start = time.perf_counter()
    results = []
    for t in range(slots):
        sqp = sc.structured_qp_for(inst.inputs(t))
        res = solve_structured_qp(sqp, tol=tol, max_iter=120)
        results.append((sqp, res))
    structured_s = time.perf_counter() - start
    for t, (sqp, res) in enumerate(results):
        converged += bool(res.converged)
        iters += res.iterations
        alloc = sqp.extract(res.x)
        problem = inst.problem(t)
        structured_ufc.append(problem.ufc(alloc))
        cert = certify_structured_solution(
            sqp,
            problem,
            alloc,
            x=res.x,
            duals=(res.eq_dual, res.ineq_dual),
            solver="centralized-structured",
            slot=t,
        )
        if cert.ok:
            certified += 1
        else:
            suspect.append(t)

    result = ShapeResult(
        num_datacenters=n,
        num_frontends=m,
        slots=slots,
        fan_in=inst.fan_in,
        structured_s=structured_s,
        structured_iters=iters,
        converged_slots=converged,
        certified_slots=certified,
        suspect_slots=suspect,
    )

    if n * m <= DENSE_PRODUCT_LIMIT and dense_slots > 0:
        k = min(dense_slots, slots)

        # Same problem, dense factorization: the parity + speedup gate.
        deltas = []
        start = time.perf_counter()
        for t in range(k):
            sqp, _res = results[t]
            P, q, A, b, G, h = sqp.to_dense()
            res = solve_qp(P, q, A=A, b=b, G=G, h=h, tol=tol, max_iter=120)
            ufc = inst.problem(t).ufc(sqp.extract(res.x))
            deltas.append(
                abs(ufc - structured_ufc[t]) / (1.0 + abs(structured_ufc[t]))
            )
        dense_same_s = time.perf_counter() - start
        result.dense_same_s = dense_same_s
        result.dense_slots = k
        result.speedup = (dense_same_s / k) / max(structured_s / slots, 1e-12)
        result.max_ufc_rel_delta = float(max(deltas))

        # Full-reach compiled path (what a slot cost before the scale
        # lane): larger feasible set, so its UFC can only be better —
        # the difference is the fan-in restriction gap, reported for
        # context.
        compiled = CompiledQPStructure(inst.model, HYBRID)
        gaps = []
        start = time.perf_counter()
        for t in range(k):
            qp = compiled.qp_for(inst.inputs(t))
            res = solve_qp(
                qp.P, qp.q, A=qp.A, b=qp.b, G=qp.G, h=qp.h,
                tol=tol, max_iter=120,
            )
            ufc = inst.problem(t).ufc(qp.extract(res.x))
            gaps.append(
                (ufc - structured_ufc[t]) / (1.0 + abs(structured_ufc[t]))
            )
        result.dense_full_s = time.perf_counter() - start
        result.restriction_gap_rel = float(max(gaps))
    return result


def run_scale_bench(
    shapes: tuple[tuple[int, int], ...] = DEFAULT_SHAPES,
    slots: int = 24,
    fan_in: int = 6,
    seed: int = 2014,
    tol: float = SCALE_TOL,
    dense_slots: int = 3,
    check_paper_scale: bool = True,
) -> dict:
    """Run the ladder and return the JSON-ready summary payload.

    Args:
        shapes: (N, M) rungs to benchmark.
        slots: hourly slots solved per rung (every one is certified).
        fan_in: nearest-datacenter reach per front-end.
        seed: instance seed.
        tol: interior-point tolerance for every route.
        dense_slots: slots each dense baseline is timed on (they are
            10-500x slower at the gate shape, so a few slots suffice;
            per-slot averages make the comparison fair).
        check_paper_scale: also run the paper-scale bit-identity check.
    """
    shape_results = [
        _bench_shape(n, m, slots, fan_in, seed, tol, dense_slots)
        for n, m in shapes
    ]
    paper_ok = _paper_scale_bit_identity() if check_paper_scale else None

    gate_shapes = [
        r for r in shape_results
        if r.speedup is not None and r.product >= DENSE_PRODUCT_LIMIT
    ]
    rel_deltas = [
        r.max_ufc_rel_delta
        for r in shape_results
        if r.max_ufc_rel_delta is not None
    ]
    passed = (
        all(r.ok for r in shape_results)
        and (paper_ok is None or paper_ok)
        and all(r.speedup >= SPEEDUP_FLOOR for r in gate_shapes)
    )
    return {
        "slots_per_shape": slots,
        "fan_in": fan_in,
        "seed": seed,
        "tol": tol,
        "speedup_floor": SPEEDUP_FLOOR,
        "parity_rtol": PARITY_RTOL,
        "dense_product_limit": DENSE_PRODUCT_LIMIT,
        "shapes": [r.to_dict() for r in shape_results],
        "paper_scale_bit_identical": paper_ok,
        "max_ufc_rel_delta": max(rel_deltas) if rel_deltas else None,
        "passed": bool(passed),
    }


def render_report(payload: dict) -> str:
    """Human-readable table for the CLI."""
    lines = [
        "scale lane: block-elimination KKT vs dense route",
        f"  slots/shape {payload['slots_per_shape']}, fan-in "
        f"{payload['fan_in']}, tol {payload['tol']:g}",
        "",
        "  shape        structured     dense (same QP)   speedup  full reach"
        "   certified",
    ]
    for r in payload["shapes"]:
        shape = f"{r['num_datacenters']}x{r['num_frontends']}"
        structured = f"{r['structured_ms_per_slot']:8.1f} ms"
        if r["dense_same_s"] is None:
            dense = "     (skipped)"
            speedup = "      -"
            full = "         -"
        else:
            dense = f"{1000 * r['dense_same_s'] / r['dense_slots']:10.1f} ms"
            speedup = f"{r['speedup']:6.1f}x"
            full = f"{1000 * r['dense_full_s'] / r['dense_slots']:8.1f} ms"
        cert = f"{r['certified_slots']}/{r['slots']}"
        flag = "" if r["ok"] else "  <-- FAILED"
        lines.append(
            f"  {shape:<11}{structured}  {dense:>16}  {speedup}  {full:>10}"
            f"  {cert:>9}{flag}"
        )
    paper = payload["paper_scale_bit_identical"]
    if paper is not None:
        lines.append(
            "  paper-scale auto vs dense: "
            + ("bit-identical" if paper else "DIVERGED")
        )
    if payload["max_ufc_rel_delta"] is not None:
        lines.append(
            f"  same-QP parity: max relative UFC delta "
            f"{payload['max_ufc_rel_delta']:.2e} (tol {payload['parity_rtol']:g})"
        )
    lines.append(f"  overall: {'PASS' if payload['passed'] else 'FAIL'}")
    return "\n".join(lines)
