"""Fig. 5: average propagation latency under the three strategies.

The paper's shape: Fuel cell achieves the best latency (requests stay
near their users; 14-16 ms in their setup), Grid stretches latency by
routing toward cheap/green power (up to ~23 ms), and Hybrid stays
within ~1 ms of Fuel cell — the *load following* benefit of tunable
fuel-cell output.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import cached_comparison
from repro.sim.results import StrategyComparison

__all__ = ["Fig5Result", "run_fig5", "render_fig5"]


@dataclass(frozen=True)
class Fig5Result:
    """Per-slot mean propagation latency (ms) per strategy.

    Attributes:
        grid: (T,) Grid strategy latency series.
        fuel_cell: (T,) Fuel-cell strategy latency series.
        hybrid: (T,) Hybrid strategy latency series.
        comparison: underlying strategy results.
    """

    grid: np.ndarray
    fuel_cell: np.ndarray
    hybrid: np.ndarray
    comparison: StrategyComparison


def run_fig5(hours: int = 168, seed: int = 2014, workers: int = 1) -> Fig5Result:
    """Regenerate the Fig. 5 series."""
    comp = cached_comparison(hours=hours, seed=seed, workers=workers)
    return Fig5Result(
        grid=comp.grid.avg_latency_ms,
        fuel_cell=comp.fuel_cell.avg_latency_ms,
        hybrid=comp.hybrid.avg_latency_ms,
        comparison=comp,
    )


def render_fig5(result: Fig5Result) -> str:
    """Headline statistics matching the paper's commentary."""

    def fmt(x: np.ndarray) -> str:
        return f"mean {x.mean():5.2f} ms (range {x.min():.2f}-{x.max():.2f})"

    return "\n".join(
        [
            "Fig. 5: average propagation latency under various strategies",
            f"Grid      : {fmt(result.grid)}",
            f"Fuel cell : {fmt(result.fuel_cell)}",
            f"Hybrid    : {fmt(result.hybrid)}",
            "shape check: hybrid within "
            f"{(result.hybrid - result.fuel_cell).max():.2f} ms of fuel cell; "
            f"grid penalty {(result.grid - result.fuel_cell).mean():.2f} ms "
            "on average",
        ]
    )
