"""Experiment drivers regenerating every table and figure of the paper.

Each module exposes a ``run_*`` function returning a typed result and
a ``render`` helper printing the same rows/series the paper reports:

- :mod:`repro.experiments.table1` — Table I (+ the Fig. 1 profiles);
- :mod:`repro.experiments.traces_fig3` — Fig. 3 trace statistics;
- :mod:`repro.experiments.fig4_utility` — Fig. 4 UFC improvements;
- :mod:`repro.experiments.fig5_latency` — Fig. 5 propagation latency;
- :mod:`repro.experiments.fig6_energy` — Fig. 6 energy cost;
- :mod:`repro.experiments.fig7_carbon` — Fig. 7 carbon cost;
- :mod:`repro.experiments.fig8_utilization` — Fig. 8 fuel-cell
  utilization;
- :mod:`repro.experiments.fig9_price_sweep` — Fig. 9 fuel-cell price
  sweep;
- :mod:`repro.experiments.fig10_tax_sweep` — Fig. 10 carbon-tax sweep;
- :mod:`repro.experiments.fig11_convergence` — Fig. 11 ADM-G
  convergence CDF.
"""

from repro.experiments.common import evaluation_setup
from repro.experiments.fig4_utility import run_fig4
from repro.experiments.fig5_latency import run_fig5
from repro.experiments.fig6_energy import run_fig6
from repro.experiments.fig7_carbon import run_fig7
from repro.experiments.fig8_utilization import run_fig8
from repro.experiments.fig9_price_sweep import run_fig9
from repro.experiments.fig10_tax_sweep import run_fig10
from repro.experiments.fig11_convergence import run_fig11
from repro.experiments.table1 import run_table1
from repro.experiments.traces_fig3 import run_fig3

__all__ = [
    "evaluation_setup",
    "run_fig10",
    "run_fig11",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_table1",
]
