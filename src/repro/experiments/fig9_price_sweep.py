"""Fig. 9: how low must the fuel-cell price go?

Sweeps the fuel-cell generation price ``p0`` and reports the average
UFC improvement of Hybrid over Grid and the average fuel-cell
utilization at each price.  Paper shape: both climb steeply as ``p0``
falls; at the 2014 market price band ($80-110/MWh) improvement is only
11-17% and utilization 11-16%, while utilization saturates at 100%
once ``p0`` undercuts every effective grid price (~$27/MWh in their
traces).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Sequence

import numpy as np

from repro.core.model import CloudModel
from repro.core.strategies import GRID, HYBRID
from repro.exec import parallel_map
from repro.experiments.common import evaluation_setup
from repro.sim.metrics import average_improvement
from repro.sim.simulator import Simulator
from repro.traces.datasets import TraceBundle

__all__ = ["Fig9Result", "run_fig9", "render_fig9", "DEFAULT_PRICES"]

DEFAULT_PRICES: tuple[float, ...] = (20.0, 27.0, 35.0, 45.0, 55.0, 65.0, 80.0, 95.0, 110.0)


@dataclass(frozen=True)
class Fig9Result:
    """Average improvement and utilization per fuel-cell price.

    Attributes:
        prices: swept ``p0`` values, $/MWh.
        improvement: mean ``I_hg`` at each price (fraction).
        utilization: mean fuel-cell utilization at each price.
    """

    prices: np.ndarray
    improvement: np.ndarray
    utilization: np.ndarray


def _price_point(
    p0: float, *, bundle: TraceBundle, model: CloudModel, grid_ufc: np.ndarray
) -> tuple[float, float]:
    """One sweep point: (mean improvement, mean utilization) at ``p0``.

    Module-level so :func:`parallel_map` can ship it to a worker.
    """
    swept = model.with_fuel_cell_price(p0)
    hybrid = Simulator(swept, bundle).run(HYBRID)
    return average_improvement(hybrid.ufc, grid_ufc), hybrid.mean_utilization()


def run_fig9(
    prices: Sequence[float] = DEFAULT_PRICES,
    hours: int = 168,
    seed: int = 2014,
    workers: int = 1,
) -> Fig9Result:
    """Regenerate the Fig. 9 sweep.

    The Grid baseline is price-independent (it burns no fuel-cell
    energy) and is simulated once.  ``workers > 1`` evaluates the sweep
    points concurrently; the result is identical at any worker count.
    """
    bundle, model = evaluation_setup(hours=hours, seed=seed)
    grid_result = Simulator(model, bundle, workers=workers).run(GRID)
    points = parallel_map(
        partial(
            _price_point, bundle=bundle, model=model, grid_ufc=grid_result.ufc
        ),
        prices,
        workers=workers,
    )
    return Fig9Result(
        prices=np.asarray(prices, dtype=float),
        improvement=np.asarray([imp for imp, _ in points]),
        utilization=np.asarray([util for _, util in points]),
    )


def render_fig9(result: Fig9Result) -> str:
    """The two Fig. 9 curves as a text series."""
    lines = [
        "Fig. 9: average UFC improvement and fuel-cell utilization "
        "vs fuel-cell price",
        f"{'p0 ($/MWh)':>10} {'improvement':>12} {'utilization':>12}",
    ]
    for p, imp, util in zip(result.prices, result.improvement, result.utilization):
        lines.append(f"{p:>10.0f} {100 * imp:>11.1f}% {100 * util:>11.1f}%")
    return "\n".join(lines)
