"""Fig. 3: the evaluation traces themselves.

The paper's Fig. 3 plots the normalized workload trace, the four
sites' electricity prices and their carbon-emission rates over the
week.  This driver regenerates the three series and reports the
summary statistics that characterize them (diurnal swing, weekly mean,
spatial spread), which is what downstream results depend on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traces.datasets import TraceBundle, default_bundle

__all__ = ["Fig3Result", "run_fig3", "render_fig3"]


@dataclass(frozen=True)
class Fig3Result:
    """The three Fig. 3 panels plus their summary statistics.

    Attributes:
        bundle: the generated traces.
        workload_total: (T,) total arrivals across front-ends.
        price_stats: per-region (mean, min, max) price in $/MWh.
        carbon_stats: per-region (mean, min, max) intensity in kg/MWh.
    """

    bundle: TraceBundle
    workload_total: np.ndarray
    price_stats: dict[str, tuple[float, float, float]]
    carbon_stats: dict[str, tuple[float, float, float]]


def run_fig3(hours: int = 168, seed: int = 2014) -> Fig3Result:
    """Regenerate the Fig. 3 panels."""
    bundle = default_bundle(hours=hours, seed=seed)
    price_stats = {}
    carbon_stats = {}
    for k, region in enumerate(bundle.regions):
        p = bundle.prices[:, k]
        c = bundle.carbon_rates[:, k]
        price_stats[region] = (float(p.mean()), float(p.min()), float(p.max()))
        carbon_stats[region] = (float(c.mean()), float(c.min()), float(c.max()))
    return Fig3Result(
        bundle=bundle,
        workload_total=bundle.arrivals.sum(axis=1),
        price_stats=price_stats,
        carbon_stats=carbon_stats,
    )


def render_fig3(result: Fig3Result) -> str:
    """Text summary of the three panels."""
    w = result.workload_total
    lines = [
        "Fig. 3 traces (one week, hourly)",
        f"workload total: mean {w.mean():,.0f} servers, "
        f"peak {w.max():,.0f}, trough {w.min():,.0f} "
        f"(peak/trough {w.max() / w.min():.2f}x)",
        f"{'region':<12} {'price mean':>10} {'min':>7} {'max':>8} "
        f"{'C mean':>8} {'min':>6} {'max':>6}",
    ]
    for region in result.bundle.regions:
        pm, plo, phi = result.price_stats[region]
        cm, clo, chi = result.carbon_stats[region]
        lines.append(
            f"{region:<12} {pm:>10.1f} {plo:>7.1f} {phi:>8.1f} "
            f"{cm:>8.0f} {clo:>6.0f} {chi:>6.0f}"
        )
    return "\n".join(lines)
