"""Fig. 10: does the carbon tax work?

Sweeps the flat carbon-tax rate ``r`` and reports the average UFC
improvement of Hybrid over Grid and the average fuel-cell utilization.
Paper shape: both grow with the tax; utilization grows faster and
approaches 100% around $140/tonne, while the 2014 policy band
($5-39/tonne) moves neither by more than ~20%.

Unlike the Fig. 9 sweep, the Grid baseline must be re-simulated per
rate: its UFC includes the taxed emissions.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Sequence

import numpy as np

from repro.core.model import CloudModel
from repro.core.strategies import GRID, HYBRID
from repro.costs.carbon import LinearCarbonTax
from repro.exec import parallel_map
from repro.experiments.common import evaluation_setup
from repro.sim.metrics import average_improvement
from repro.sim.simulator import Simulator
from repro.traces.datasets import TraceBundle

__all__ = ["Fig10Result", "run_fig10", "render_fig10", "DEFAULT_RATES"]

DEFAULT_RATES: tuple[float, ...] = (0.0, 5.0, 25.0, 50.0, 80.0, 110.0, 140.0, 170.0)


@dataclass(frozen=True)
class Fig10Result:
    """Average improvement and utilization per carbon-tax rate.

    Attributes:
        rates: swept tax rates, $/tonne.
        improvement: mean ``I_hg`` at each rate (fraction).
        utilization: mean fuel-cell utilization at each rate.
    """

    rates: np.ndarray
    improvement: np.ndarray
    utilization: np.ndarray


def _tax_point(
    rate: float, *, bundle: TraceBundle, model: CloudModel
) -> tuple[float, float]:
    """One sweep point: (mean improvement, mean utilization) at ``rate``.

    Module-level so :func:`parallel_map` can ship it to a worker.  Grid
    and Hybrid share one simulator, so the taxed model's compiled
    structures are built once per point.
    """
    taxed = model.with_emission_costs(LinearCarbonTax(rate))
    sim = Simulator(taxed, bundle)
    grid = sim.run(GRID)
    hybrid = sim.run(HYBRID)
    return average_improvement(hybrid.ufc, grid.ufc), hybrid.mean_utilization()


def run_fig10(
    rates: Sequence[float] = DEFAULT_RATES,
    hours: int = 168,
    seed: int = 2014,
    workers: int = 1,
) -> Fig10Result:
    """Regenerate the Fig. 10 sweep.

    ``workers > 1`` evaluates the sweep points concurrently; the result
    is identical at any worker count.
    """
    bundle, model = evaluation_setup(hours=hours, seed=seed)
    points = parallel_map(
        partial(_tax_point, bundle=bundle, model=model), rates, workers=workers
    )
    return Fig10Result(
        rates=np.asarray(rates, dtype=float),
        improvement=np.asarray([imp for imp, _ in points]),
        utilization=np.asarray([util for _, util in points]),
    )


def render_fig10(result: Fig10Result) -> str:
    """The two Fig. 10 curves as a text series."""
    lines = [
        "Fig. 10: average UFC improvement and fuel-cell utilization "
        "vs carbon-tax rate",
        f"{'r ($/tonne)':>11} {'improvement':>12} {'utilization':>12}",
    ]
    for r, imp, util in zip(result.rates, result.improvement, result.utilization):
        lines.append(f"{r:>11.0f} {100 * imp:>11.1f}% {100 * util:>11.1f}%")
    return "\n".join(lines)
