"""One-shot regeneration of every table and figure.

Run as a module to print the full evaluation, in paper order::

    python -m repro.experiments.report            # everything (minutes)
    python -m repro.experiments.report --fast     # skip sweeps + Fig. 11
    python -m repro.experiments.report --hours 48 # shorter horizon

The output of the full run is what EXPERIMENTS.md records.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.fig4_utility import render_fig4, run_fig4
from repro.experiments.fig5_latency import render_fig5, run_fig5
from repro.experiments.fig6_energy import render_fig6, run_fig6
from repro.experiments.fig7_carbon import render_fig7, run_fig7
from repro.experiments.fig8_utilization import render_fig8, run_fig8
from repro.experiments.fig9_price_sweep import render_fig9, run_fig9
from repro.experiments.fig10_tax_sweep import render_fig10, run_fig10
from repro.experiments.fig11_convergence import render_fig11, run_fig11
from repro.experiments.table1 import render_table1, run_table1
from repro.experiments.traces_fig3 import render_fig3, run_fig3

__all__ = ["generate_report"]


def _chart_section(hours: int, seed: int) -> str:
    """ASCII sparklines of the headline series (no plotting libs)."""
    from repro.experiments.common import cached_comparison
    from repro.experiments.fig4_utility import run_fig4
    from repro.traces.datasets import default_bundle
    from repro.viz.ascii import sparkline

    bundle = default_bundle(hours=hours, seed=seed)
    comp = cached_comparison(hours=hours, seed=seed)
    fig4 = run_fig4(hours=hours, seed=seed)
    width = 72
    rows = [
        ("total workload", bundle.arrivals.sum(axis=1)),
        ("san jose price", bundle.prices[:, list(bundle.regions).index("san_jose")]),
        ("dallas price", bundle.prices[:, list(bundle.regions).index("dallas")]),
        ("I_hg (hybrid/grid)", fig4.i_hg),
        ("hybrid energy cost", comp.hybrid.energy_cost),
        ("hybrid latency", comp.hybrid.avg_latency_ms),
        ("FC utilization", comp.hybrid.utilization),
    ]
    label_width = max(len(name) for name, _ in rows)
    return "\n".join(
        f"{name:>{label_width}} {sparkline(series, width=width)}"
        for name, series in rows
    )


def generate_report(
    hours: int = 168,
    seed: int = 2014,
    fast: bool = False,
    charts: bool = True,
    workers: int = 1,
) -> str:
    """Render every artifact into one text report.

    ``workers > 1`` parallelizes the per-figure simulations (slots for
    Figs. 4-8/11, sweep points for Figs. 9-10) without changing any
    number in the report.
    """
    sections: list[tuple[str, str]] = []

    def add(title, fn, render):
        start = time.perf_counter()
        text = render(fn())
        sections.append((title, f"{text}\n[{time.perf_counter() - start:.1f}s]"))

    add("Table I", lambda: run_table1(), render_table1)
    add("Fig. 3", lambda: run_fig3(hours=hours, seed=seed), render_fig3)
    add("Fig. 4", lambda: run_fig4(hours=hours, seed=seed, workers=workers), render_fig4)
    add("Fig. 5", lambda: run_fig5(hours=hours, seed=seed, workers=workers), render_fig5)
    add("Fig. 6", lambda: run_fig6(hours=hours, seed=seed, workers=workers), render_fig6)
    add("Fig. 7", lambda: run_fig7(hours=hours, seed=seed, workers=workers), render_fig7)
    add("Fig. 8", lambda: run_fig8(hours=hours, seed=seed, workers=workers), render_fig8)
    if not fast:
        add("Fig. 9", lambda: run_fig9(hours=hours, seed=seed, workers=workers), render_fig9)
        add("Fig. 10", lambda: run_fig10(hours=hours, seed=seed, workers=workers), render_fig10)
        add("Fig. 11", lambda: run_fig11(hours=hours, seed=seed, workers=workers), render_fig11)
    if charts:
        sections.append(("Series charts", _chart_section(hours, seed)))

    bar = "=" * 72
    return "\n\n".join(f"{bar}\n{title}\n{bar}\n{text}" for title, text in sections)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hours", type=int, default=168)
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--fast", action="store_true",
                        help="skip the sweeps and Fig. 11")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the simulations")
    args = parser.parse_args(argv)
    print(
        generate_report(
            hours=args.hours, seed=args.seed, fast=args.fast, workers=args.workers
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
