"""Table I + Fig. 1: the single-site warm-up study.

The paper prices one week of a Facebook datacenter's power demand
three ways at Dallas and San Jose: **Grid** pays the local LMP every
hour, **Fuel cell** pays the flat ``p0 = $80/MWh``, and **Hybrid**
pays ``min(LMP, p0)`` (hour-by-hour arbitrage).  Published values:

    ========== ====== ========== ========
    Strategy     Grid  Fuel Cell   Hybrid
    ========== ====== ========== ========
    Dallas       9644      27957     9387
    San Jose    28470      27957    18250
    ========== ====== ========== ========

The reproduction regenerates the same three-by-two table from the
calibrated synthetic profiles; the shape targets are (i) Fuel cell is
identical at both sites, (ii) Grid at Dallas is ~1/3 of Fuel cell,
(iii) Grid at San Jose is on par with Fuel cell, and (iv) Hybrid wins
everywhere, decisively at San Jose.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traces.power_demand import facebook_power_profile
from repro.traces.prices import lmp_series

__all__ = ["Table1Result", "run_table1", "render_table1", "PAPER_TABLE1"]

#: Published Table I values, $ per one-week, indexed [site][strategy].
PAPER_TABLE1: dict[str, dict[str, float]] = {
    "dallas": {"grid": 9644.0, "fuel_cell": 27957.0, "hybrid": 9387.0},
    "san_jose": {"grid": 28470.0, "fuel_cell": 27957.0, "hybrid": 18250.0},
}


@dataclass(frozen=True)
class Table1Result:
    """One week of single-site energy costs under the three strategies.

    Attributes:
        costs: ``costs[site][strategy]`` in dollars.
        demand_mwh: the power-demand profile used (MWh per hour).
        prices: ``prices[site]`` hourly LMP series, $/MWh.
        fuel_cell_price: ``p0`` in $/MWh.
    """

    costs: dict[str, dict[str, float]]
    demand_mwh: np.ndarray
    prices: dict[str, np.ndarray]
    fuel_cell_price: float


def run_table1(
    sites: tuple[str, ...] = ("dallas", "san_jose"),
    hours: int = 168,
    seed: int = 2012,
    fuel_cell_price: float = 80.0,
) -> Table1Result:
    """Regenerate Table I from the calibrated synthetic profiles."""
    demand = facebook_power_profile(hours=hours, seed=seed)
    prices = {site: lmp_series(site, hours=hours, seed=seed) for site in sites}
    costs: dict[str, dict[str, float]] = {}
    for site in sites:
        p = prices[site]
        costs[site] = {
            "grid": float(demand @ p),
            "fuel_cell": float(demand.sum() * fuel_cell_price),
            "hybrid": float(demand @ np.minimum(p, fuel_cell_price)),
        }
    return Table1Result(
        costs=costs,
        demand_mwh=demand,
        prices=prices,
        fuel_cell_price=fuel_cell_price,
    )


def render_table1(result: Table1Result) -> str:
    """Text rendering mirroring the paper's Table I layout."""
    lines = [
        "Table I: Energy costs ($) of different strategies "
        "(measured | paper)",
        f"{'Strategy':<10} {'Grid':>16} {'Fuel Cell':>16} {'Hybrid':>16}",
    ]
    for site, row in result.costs.items():
        paper = PAPER_TABLE1.get(site, {})
        cells = []
        for key in ("grid", "fuel_cell", "hybrid"):
            measured = f"{row[key]:,.0f}"
            published = f"{paper[key]:,.0f}" if key in paper else "-"
            cells.append(f"{measured} | {published:>6}")
        lines.append(
            f"{site:<10} {cells[0]:>16} {cells[1]:>16} {cells[2]:>16}"
        )
    return "\n".join(lines)
