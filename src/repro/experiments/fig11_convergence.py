"""Fig. 11: convergence of the distributed ADM-G algorithm.

Runs the distributed solver cold-started on every slot of the week
(the paper's "168 runs") and reports the CDF of iterations to
convergence.  Paper shape: 80% of runs converge within 100
iterations, the fastest takes 37 and the slowest 130 — an order of
magnitude below the gradient/projection methods the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.admg.solver import DistributedUFCSolver
from repro.core.strategies import HYBRID
from repro.experiments.common import evaluation_setup
from repro.sim.metrics import iteration_cdf
from repro.sim.simulator import Simulator

__all__ = ["Fig11Result", "run_fig11", "render_fig11"]


@dataclass(frozen=True)
class Fig11Result:
    """Iteration counts of the per-slot ADM-G runs.

    Attributes:
        iterations: (T,) iterations to convergence per slot.
        converged: (T,) convergence flags.
        cdf_counts: sorted unique iteration counts.
        cdf_fractions: fraction of runs converging within each count.
    """

    iterations: np.ndarray
    converged: np.ndarray
    cdf_counts: np.ndarray
    cdf_fractions: np.ndarray

    def fraction_within(self, count: int) -> float:
        """Fraction of runs that converged within ``count`` iterations."""
        return float((self.iterations <= count).mean())


def run_fig11(
    hours: int = 168,
    seed: int = 2014,
    rho: float = 0.3,
    tol: float = 6e-3,
    max_iter: int = 1000,
    workers: int = 1,
) -> Fig11Result:
    """Regenerate the Fig. 11 CDF with cold-started distributed runs.

    The paper's iteration counts are 168 *cold-started* runs, so the
    slots stay independent and ``workers > 1`` can solve them in
    parallel without changing a single count.
    """
    bundle, model = evaluation_setup(hours=hours, seed=seed)
    solver = DistributedUFCSolver(rho=rho, tol=tol, max_iter=max_iter)
    sim = Simulator(model, bundle, solver=solver, warm_start=False, workers=workers)
    result = sim.run(HYBRID)
    counts, fractions = iteration_cdf(result.iterations)
    return Fig11Result(
        iterations=result.iterations,
        converged=result.converged,
        cdf_counts=counts,
        cdf_fractions=fractions,
    )


def render_fig11(result: Fig11Result) -> str:
    """Headline statistics matching the paper's commentary."""
    it = result.iterations
    return "\n".join(
        [
            "Fig. 11: CDF of iterations to ADM-G convergence "
            f"({len(it)} runs)",
            f"min {int(it.min())} (paper: 37), "
            f"max {int(it.max())} (paper: 130), "
            f"median {int(np.median(it))}",
            f"within 100 iterations: {100 * result.fraction_within(100):.0f}% "
            "(paper: 80%)",
            f"all runs converged: {bool(result.converged.all())}",
        ]
    )
