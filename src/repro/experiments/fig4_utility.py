"""Fig. 4: per-slot UFC improvements under the three strategies.

The paper plots ``I_hg`` (Hybrid over Grid), ``I_hf`` (Hybrid over
Fuel cell) and ``I_fg`` (Fuel cell over Grid) per hour and reports:

- Fuel cell *reduces* UFC during electricity off-peak hours (down to
  about -150% in their traces) and never gains more than ~30%;
- Hybrid improves over Fuel cell by more than 40% on average;
- Hybrid never falls below Grid and gains up to ~50% at price peaks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import cached_comparison
from repro.sim.metrics import improvement_series
from repro.sim.results import StrategyComparison

__all__ = ["Fig4Result", "run_fig4", "render_fig4"]


@dataclass(frozen=True)
class Fig4Result:
    """The three improvement series of Fig. 4 (fractions, not %).

    Attributes:
        i_hg: (T,) Hybrid over Grid.
        i_hf: (T,) Hybrid over Fuel cell.
        i_fg: (T,) Fuel cell over Grid.
        comparison: underlying strategy results.
    """

    i_hg: np.ndarray
    i_hf: np.ndarray
    i_fg: np.ndarray
    comparison: StrategyComparison


def run_fig4(hours: int = 168, seed: int = 2014, workers: int = 1) -> Fig4Result:
    """Regenerate the Fig. 4 series."""
    comp = cached_comparison(hours=hours, seed=seed, workers=workers)
    return Fig4Result(
        i_hg=improvement_series(comp.hybrid.ufc, comp.grid.ufc),
        i_hf=improvement_series(comp.hybrid.ufc, comp.fuel_cell.ufc),
        i_fg=improvement_series(comp.fuel_cell.ufc, comp.grid.ufc),
        comparison=comp,
    )


def render_fig4(result: Fig4Result) -> str:
    """Headline statistics matching the paper's commentary."""

    def pct(x: float) -> str:
        return f"{100 * x:+.1f}%"

    lines = [
        "Fig. 4: UFC improvement under various strategies",
        f"I_hg (Hybrid over Grid)      mean {pct(result.i_hg.mean())}, "
        f"min {pct(result.i_hg.min())}, max {pct(result.i_hg.max())}",
        f"I_hf (Hybrid over Fuel cell) mean {pct(result.i_hf.mean())}, "
        f"min {pct(result.i_hf.min())}, max {pct(result.i_hf.max())}",
        f"I_fg (Fuel cell over Grid)   mean {pct(result.i_fg.mean())}, "
        f"min {pct(result.i_fg.min())}, max {pct(result.i_fg.max())}",
        "shape checks: "
        f"Hybrid >= Grid in {100 * float((result.i_hg > -1e-4).mean()):.0f}% "
        "of slots; "
        f"Fuel cell hurts in {100 * float((result.i_fg < 0).mean()):.0f}% "
        "of slots",
    ]
    return "\n".join(lines)
