"""Shared setup and caching for the experiment drivers.

All figures of Sec. IV share one evaluation configuration (the default
168-hour bundle, ``p0 = 80``, $25/tonne tax, ``w = 10``); experiments
that only post-process the three-strategy comparison share a cached
run so regenerating every figure costs one simulation.
"""

from __future__ import annotations

from repro.core.model import CloudModel
from repro.sim.results import StrategyComparison
from repro.sim.simulator import Simulator, build_model
from repro.traces.datasets import TraceBundle, default_bundle

__all__ = ["evaluation_setup", "cached_comparison"]


def evaluation_setup(
    hours: int = 168,
    seed: int = 2014,
    fuel_cell_price: float = 80.0,
    carbon_tax: float | None = None,
) -> tuple[TraceBundle, CloudModel]:
    """The paper's Sec. IV-A configuration.

    Args:
        hours: horizon (one week by default).
        seed: trace generator seed.
        fuel_cell_price: ``p0`` in $/MWh.
        carbon_tax: flat tax rate in $/tonne; None keeps the model
            default ($25/tonne).
    """
    bundle = default_bundle(hours=hours, seed=seed)
    model = build_model(bundle, fuel_cell_price=fuel_cell_price)
    if carbon_tax is not None:
        from repro.costs.carbon import LinearCarbonTax

        model = model.with_emission_costs(LinearCarbonTax(carbon_tax))
    return bundle, model


_COMPARISON_CACHE: dict[tuple[int, int], StrategyComparison] = {}


def cached_comparison(
    hours: int = 168, seed: int = 2014, workers: int = 1
) -> StrategyComparison:
    """The three-strategy comparison under default parameters, cached so
    Figs. 4-8 share one simulation.

    The cache key is ``(hours, seed)`` only: worker count changes how
    the comparison is computed, never what it computes (results are
    bit-identical at any worker count), so a hit is valid regardless of
    the ``workers`` it was filled with.
    """
    key = (hours, seed)
    if key not in _COMPARISON_CACHE:
        bundle, model = evaluation_setup(hours=hours, seed=seed)
        _COMPARISON_CACHE[key] = Simulator(model, bundle).compare_strategies(
            workers=workers
        )
    return _COMPARISON_CACHE[key]
