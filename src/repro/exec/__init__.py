"""Elastic execution layer: pluggable clients, pipelining, result store.

``repro.exec`` owns *where and when* work runs, so the engine above it
can stay a policy layer:

- :mod:`repro.exec.clients` — the :class:`ExecutionClient` surface
  and registry: in-process, multiprocessing, and socket/RPC backends
  (the latter shards across machines via
  ``python -m repro exec-worker``);
- :mod:`repro.exec.pipeline` — :class:`BatchScheduler`, pipelined
  pending-batch completion with per-batch harvest budgets;
- :mod:`repro.exec.store` — :class:`ResultStore`, the persistent
  (model digest, strategy, solver, slot) -> result store that lets
  sweeps and chaos runs warm-start from disk;
- :mod:`repro.exec.supervisor` — :class:`FleetSupervisor`, the
  self-healing wrapper: lost/straggling tasks are resubmitted or
  hedged under a :class:`RetryBudget`, faulty workers quarantined,
  lost loopback workers respawned;
- :mod:`repro.exec.pmap` — :func:`parallel_map`, the sweep drivers'
  order-preserving map over the same clients.
"""

from repro.exec.clients import (
    ExecutionClient,
    InProcessClient,
    MultiprocessingClient,
    SocketClient,
    WorkerLostError,
    available_clients,
    create_client,
    mp_context,
    register_client,
    serve_worker,
    usable_cpu_count,
)
from repro.exec.pipeline import BatchScheduler
from repro.exec.pmap import parallel_map
from repro.exec.store import ResultStore, problem_digest
from repro.exec.supervisor import (
    FleetStats,
    FleetSupervisor,
    RetryBudget,
    SupervisorConfig,
    TaskTimeoutError,
)

__all__ = [
    "ExecutionClient",
    "FleetStats",
    "FleetSupervisor",
    "InProcessClient",
    "MultiprocessingClient",
    "RetryBudget",
    "SocketClient",
    "SupervisorConfig",
    "BatchScheduler",
    "ResultStore",
    "TaskTimeoutError",
    "WorkerLostError",
    "available_clients",
    "create_client",
    "mp_context",
    "parallel_map",
    "problem_digest",
    "register_client",
    "serve_worker",
    "usable_cpu_count",
]
