"""Fleet supervision: retries, hedging and liveness over any client.

PR 8 made remote failure *observable*: a dead socket worker surfaces as
structured :class:`~repro.exec.clients.WorkerLostError` outcomes and
the run ledger records them.  This module makes it *recoverable*.
:class:`FleetSupervisor` wraps any asynchronous
:class:`~repro.exec.clients.ExecutionClient` behind the same
submit/wait_next/discard surface, so the batch scheduler and engine
use it transparently, and adds four behaviors:

- **Resubmission.**  A task whose worker died, or whose attempt blew
  its per-attempt budget, is resubmitted to the surviving fleet under
  a bounded :class:`RetryBudget` — per-task attempt cap, exponential
  backoff, and a per-run retry ceiling.  Only when the budget is
  exhausted does the failure propagate (with the supervisor's task id
  attached, so the scheduler can still absorb it per-task).
- **Straggler hedging.**  Once enough attempts have completed to
  estimate a latency quantile, a task in flight longer than
  ``quantile * hedge_multiplier`` is speculatively duplicated on
  another worker; the first completed attempt wins and the loser is
  discarded.  Task functions are deterministic, so hedging never
  changes results — only tail latency.
- **Worker quarantine.**  A worker that faults repeatedly
  (``quarantine_after`` times) is retired from the rotation,
  circuit-breaker style — the fleet analogue of the engine's
  ``ResilienceConfig.quarantine_after``.
- **Respawn.**  When the wrapped client can grow its fleet back
  (:meth:`~repro.exec.clients.SocketClient.respawn_workers`), lost
  loopback workers are replaced up to ``max_respawns``.

Everything degrades gracefully by capability probing: a client without
``worker_for_task`` loses per-worker attribution but keeps retries and
hedging; one without ``check_liveness`` skips heartbeats.  The
supervisor is strictly opt-in — unwrapped clients take the exact
pre-supervision code path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.exec.clients import WorkerLostError

__all__ = [
    "FleetStats",
    "FleetSupervisor",
    "RetryBudget",
    "SupervisorConfig",
    "TaskTimeoutError",
]


class TaskTimeoutError(RuntimeError):
    """Every attempt of a supervised task blew its per-attempt budget.

    Carries ``task_id`` (the supervisor's task id) so a scheduler can
    attribute the failure, plus the attempt count and the workers that
    tried, for the retry lineage.
    """

    def __init__(
        self,
        message: str,
        task_id: int | None = None,
        attempts: int = 1,
        workers_tried: tuple[str, ...] = (),
    ) -> None:
        super().__init__(message)
        self.task_id = task_id
        self.attempts = attempts
        self.workers_tried = workers_tried


@dataclass(frozen=True)
class RetryBudget:
    """How hard the supervisor tries before letting a task fail.

    Args:
        max_attempts: total submissions per task (first try included).
        backoff_s: pause before the first resubmission.
        backoff_multiplier: growth factor per further resubmission.
        max_retries_run: ceiling on resubmissions across the whole run
            — a poisoned horizon cannot retry forever.
    """

    max_attempts: int = 3
    backoff_s: float = 0.05
    backoff_multiplier: float = 2.0
    max_retries_run: int = 64

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if self.max_retries_run < 0:
            raise ValueError(
                f"max_retries_run must be >= 0, got {self.max_retries_run}"
            )

    def backoff_for(self, resubmission: int) -> float:
        """Backoff before the ``resubmission``-th resubmission (1-based)."""
        return self.backoff_s * self.backoff_multiplier ** max(0, resubmission - 1)


@dataclass(frozen=True)
class SupervisorConfig:
    """Fleet supervision policy.

    Args:
        retry: the resubmission budget.
        hedging: speculatively duplicate stragglers.
        hedge_quantile: completed-attempt latency quantile the straggler
            deadline derives from.
        hedge_multiplier: a task is a straggler once its attempt has
            been in flight ``quantile * multiplier`` seconds.
        hedge_min_samples: completed attempts required before the
            quantile is trusted (no hedging before that).
        max_hedges_run: ceiling on hedges across the whole run.
        quarantine_after: faults (losses + timeouts) a single worker
            may cause before it is retired from the rotation; 0
            disables quarantine.
        heartbeat_s: ping idle workers this often (None disables).
        respawn: replace lost workers when the client can
            (``respawn_workers``).
        max_respawns: ceiling on replacement workers per run.
    """

    retry: RetryBudget = field(default_factory=RetryBudget)
    hedging: bool = True
    hedge_quantile: float = 0.99
    hedge_multiplier: float = 3.0
    hedge_min_samples: int = 8
    max_hedges_run: int = 16
    quarantine_after: int = 3
    heartbeat_s: float | None = 5.0
    respawn: bool = False
    max_respawns: int = 2

    def __post_init__(self) -> None:
        if not 0.0 < self.hedge_quantile <= 1.0:
            raise ValueError(
                f"hedge_quantile must be in (0, 1], got {self.hedge_quantile}"
            )
        if self.hedge_multiplier <= 0:
            raise ValueError(
                f"hedge_multiplier must be > 0, got {self.hedge_multiplier}"
            )
        if self.hedge_min_samples < 1:
            raise ValueError(
                f"hedge_min_samples must be >= 1, got {self.hedge_min_samples}"
            )
        if self.max_hedges_run < 0:
            raise ValueError(
                f"max_hedges_run must be >= 0, got {self.max_hedges_run}"
            )
        if self.quarantine_after < 0:
            raise ValueError(
                f"quarantine_after must be >= 0, got {self.quarantine_after}"
            )
        if self.heartbeat_s is not None and self.heartbeat_s <= 0:
            raise ValueError(f"heartbeat_s must be > 0, got {self.heartbeat_s}")
        if self.max_respawns < 0:
            raise ValueError(f"max_respawns must be >= 0, got {self.max_respawns}")


@dataclass
class FleetStats:
    """What the supervisor did over one run — feeds the HorizonSummary."""

    resubmissions: int = 0
    hedges_launched: int = 0
    hedges_won: int = 0
    hedges_lost: int = 0
    workers_lost: int = 0
    workers_revived: int = 0
    workers_quarantined: int = 0

    def to_dict(self) -> dict[str, int]:
        """Counters as a plain dict (ledger summary / JSON reports)."""
        return {
            "resubmissions": self.resubmissions,
            "hedges_launched": self.hedges_launched,
            "hedges_won": self.hedges_won,
            "hedges_lost": self.hedges_lost,
            "workers_lost": self.workers_lost,
            "workers_revived": self.workers_revived,
            "workers_quarantined": self.workers_quarantined,
        }


def _quantile(samples: list[float], q: float) -> float:
    """Nearest-rank quantile over a non-empty sample list."""
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


class _Attempt:
    __slots__ = ("inner_id", "submitted_at", "deadline", "worker", "hedge")

    def __init__(
        self,
        inner_id: int,
        submitted_at: float,
        deadline: float | None,
        hedge: bool,
    ) -> None:
        self.inner_id = inner_id
        self.submitted_at = submitted_at
        self.deadline = deadline
        self.worker: str | None = None
        self.hedge = hedge


class _TaskState:
    __slots__ = (
        "outer_id",
        "fn",
        "args",
        "budget",
        "attempts",
        "live",
        "retry_at",
        "faults",
        "hedged",
        "workers_tried",
    )

    def __init__(
        self, outer_id: int, fn: Callable[..., Any], args: tuple, budget: float | None
    ) -> None:
        self.outer_id = outer_id
        self.fn = fn
        self.args = args
        self.budget = budget
        self.attempts = 0  # total submissions, hedges included
        self.live: list[_Attempt] = []
        self.retry_at: float | None = None  # backoff-pending resubmission
        self.faults: list[str] = []  # error types, submission order
        self.hedged = False
        self.workers_tried: list[str] = []


class FleetSupervisor:
    """Self-healing wrapper around an asynchronous execution client.

    Implements the :class:`~repro.exec.clients.ExecutionClient`
    protocol, so it drops in anywhere a client does; the engine wraps
    its client in one when supervision is enabled.  Task ids returned
    by :meth:`submit` are the supervisor's own, assigned sequentially
    in submission order — resubmissions and hedges happen on inner ids
    the caller never sees.

    Args:
        client: the wrapped client; must be asynchronous (a synchronous
            client has already finished a task when submit returns, so
            there is nothing to supervise).
        config: supervision policy.
        budget_s: optional per-attempt wall budget, computed from the
            task's argument tuple (same shape as the scheduler's
            ``budget_s``).  With a supervisor in place the scheduler's
            own deadline enforcement is turned off — resubmission
            extends a task's life past any single-attempt budget, so
            the supervisor owns the clock.
        metrics: optional registry; maintains
            ``repro_exec_resubmits_total{reason=}``,
            ``repro_exec_hedges_total{outcome=}`` and the
            ``repro_exec_workers_alive`` gauge.
    """

    asynchronous = True

    def __init__(
        self,
        client: Any,
        config: SupervisorConfig | None = None,
        budget_s: Callable[[tuple[Any, ...]], float | None] | None = None,
        metrics: Any | None = None,
    ) -> None:
        if not getattr(client, "asynchronous", False):
            raise ValueError(
                "FleetSupervisor requires an asynchronous client; "
                f"{getattr(client, 'name', type(client).__name__)!r} is synchronous"
            )
        self.inner = client
        self.config = config or SupervisorConfig()
        self.budget_s = budget_s
        self.metrics = metrics
        self.stats = FleetStats()
        self._tasks: dict[int, _TaskState] = {}
        self._inner_to_outer: dict[int, int] = {}
        self._ready: dict[int, Any] = {}
        self._lineages: dict[int, dict[str, Any]] = {}
        self._durations: list[float] = []
        self._worker_faults: dict[str, int] = {}
        self._quarantined: set[str] = set()
        self._respawns_used = 0
        self._fleet_target = int(getattr(client, "workers", 1))
        self._last_workers = self._fleet_target
        self._next_outer = 0
        self._heartbeat_due = (
            time.monotonic() + self.config.heartbeat_s
            if self.config.heartbeat_s is not None
            else None
        )
        self._set_liveness_gauge()

    # -- ExecutionClient surface ---------------------------------------------

    @property
    def name(self) -> str:
        return str(getattr(self.inner, "name", "client"))

    @property
    def workers(self) -> int:
        return int(getattr(self.inner, "workers", 1))

    @property
    def start_method(self) -> str | None:
        return getattr(self.inner, "start_method", None)

    def submit(self, fn: Callable[..., Any], /, *args: Any) -> int:
        """Submit through the wrapped client under supervision."""
        outer_id = self._next_outer
        self._next_outer += 1
        budget = self.budget_s(args) if self.budget_s is not None else None
        state = _TaskState(outer_id, fn, args, budget)
        self._tasks[outer_id] = state
        self._launch_attempt(state, hedge=False)
        return outer_id

    def wait_next(self, timeout_s: float | None = None) -> tuple[int, Any] | None:
        """Deliver the next surviving result; recover along the way.

        Between deliveries the supervisor runs its housekeeping loop:
        expire per-attempt budgets, flush backoff-due resubmissions,
        launch hedges for stragglers, heartbeat idle workers, respawn
        lost ones.  A task whose budget is exhausted raises — with the
        supervisor's task id attached — exactly like an unsupervised
        failure, so existing scheduler error handling applies.
        """
        caller_deadline = (
            None if timeout_s is None else time.monotonic() + timeout_s
        )
        while True:
            if self._ready:
                return self._pop_ready()
            if not self._tasks:
                return None
            now = time.monotonic()
            self._expire_attempts(now)  # may raise for an exhausted task
            self._flush_retries(now)
            self._launch_hedges(now)
            self._heartbeat(now)
            if self._ready:
                return self._pop_ready()
            wake = self._next_wake(now)
            if caller_deadline is not None:
                wake = caller_deadline if wake is None else min(wake, caller_deadline)
            inner_timeout = None if wake is None else max(0.0, wake - now)
            try:
                got = self.inner.wait_next(timeout_s=inner_timeout)
            except Exception as exc:  # noqa: BLE001 - triaged below
                self._handle_failure(exc)  # re-raises when not recoverable
                continue
            if got is not None:
                self._handle_success(got[0], got[1], time.monotonic())
                continue
            now = time.monotonic()
            if caller_deadline is not None and now >= caller_deadline:
                return None
            if self.inner.num_pending() == 0:
                # Nothing in flight below us: either a resubmission is
                # waiting out its backoff (sleep it off — the inner
                # client returns immediately when idle) or we are stuck
                # with no way to run the remaining tasks.
                retry_due = self._earliest_retry()
                if retry_due is not None:
                    time.sleep(max(0.0, min(retry_due - now, 0.05)))
                    continue
                if not any(s.live for s in self._tasks.values()):
                    self._fail_stranded()

    def discard(self, task_id: int) -> None:
        """Abandon a supervised task and every attempt it has in flight."""
        self._ready.pop(task_id, None)
        state = self._tasks.pop(task_id, None)
        if state is None:
            return
        for attempt in state.live:
            self._inner_to_outer.pop(attempt.inner_id, None)
            self.inner.discard(attempt.inner_id)

    def num_pending(self) -> int:
        """Supervised tasks not yet delivered."""
        return len(self._tasks) + len(self._ready)

    def close(self) -> None:
        """Close the wrapped client.  Idempotent."""
        self.inner.close()

    # -- lineage --------------------------------------------------------------

    def lineage(self, task_id: int) -> dict[str, Any] | None:
        """The retry lineage for a delivered/failed task, or None.

        Returns None for first-try-clean tasks — only slots with a
        story get a lineage record in the ledger.
        """
        return self._lineages.get(task_id)

    def lineages(self) -> dict[int, dict[str, Any]]:
        """All recorded lineages, keyed by supervisor task id."""
        return dict(self._lineages)

    # -- attempt lifecycle ----------------------------------------------------

    def _launch_attempt(self, state: _TaskState, hedge: bool) -> None:
        now = time.monotonic()
        inner_id = self.inner.submit(state.fn, *state.args)
        deadline = None if state.budget is None else now + state.budget
        attempt = _Attempt(inner_id, now, deadline, hedge)
        state.attempts += 1
        state.live.append(attempt)
        state.retry_at = None
        self._inner_to_outer[inner_id] = state.outer_id
        worker = self._worker_of(inner_id)
        if worker is not None:
            attempt.worker = worker
            if worker not in state.workers_tried:
                state.workers_tried.append(worker)

    def _worker_of(self, inner_id: int) -> str | None:
        probe = getattr(self.inner, "worker_for_task", None)
        if probe is None:
            return None
        worker = probe(inner_id)
        return None if worker is None else str(worker)

    def _refresh_attribution(self, state: _TaskState, attempt: _Attempt) -> None:
        """Re-read an attempt's worker — queued tasks have none at submit."""
        attempt.worker = self._worker_of(attempt.inner_id) or attempt.worker
        if attempt.worker and attempt.worker not in state.workers_tried:
            state.workers_tried.append(attempt.worker)

    def _pop_ready(self) -> tuple[int, Any]:
        outer_id = min(self._ready)
        return outer_id, self._ready.pop(outer_id)

    def _handle_success(self, inner_id: int, value: Any, now: float) -> None:
        outer_id = self._inner_to_outer.pop(inner_id, None)
        if outer_id is None or outer_id not in self._tasks:
            return  # late result of a task discarded above us
        state = self._tasks.pop(outer_id)
        winner = None
        for attempt in state.live:
            if attempt.inner_id == inner_id:
                winner = attempt
            else:
                self._refresh_attribution(state, attempt)
                self._inner_to_outer.pop(attempt.inner_id, None)
                self.inner.discard(attempt.inner_id)
        if winner is not None:
            winner.worker = self._worker_of(inner_id) or winner.worker
            if winner.worker and winner.worker not in state.workers_tried:
                state.workers_tried.append(winner.worker)
            self._durations.append(now - winner.submitted_at)
        if state.hedged:
            if winner is not None and winner.hedge:
                self.stats.hedges_won += 1
                self._count("repro_exec_hedges_total", outcome="won")
            else:
                self.stats.hedges_lost += 1
                self._count("repro_exec_hedges_total", outcome="lost")
        self._record_lineage(
            state, outcome="ok", winner_hedge=bool(winner and winner.hedge)
        )
        self._ready[outer_id] = value

    def _handle_failure(self, exc: BaseException) -> None:
        """Recover from an inner-task failure, or re-raise it.

        Only worker loss is recoverable — a task that *raised* on a
        healthy worker is deterministic and would raise again, so it
        propagates untouched (with the outer id for attribution).
        """
        inner_id = getattr(exc, "task_id", None)
        outer_id = (
            self._inner_to_outer.pop(inner_id, None) if inner_id is not None else None
        )
        self._note_worker_change()
        if outer_id is None or outer_id not in self._tasks:
            raise exc  # unattributable (or already-discarded): propagate
        state = self._tasks[outer_id]
        attempt = next(
            (a for a in state.live if a.inner_id == inner_id), None
        )
        if attempt is not None:
            state.live.remove(attempt)
            self._refresh_attribution(state, attempt)
        if not isinstance(exc, WorkerLostError):
            # Deterministic task failure: retrying cannot help.
            self._finish_failed(state, exc)
            exc.task_id = outer_id
            raise exc
        state.faults.append(type(exc).__name__)
        self._fault_worker(attempt.worker if attempt is not None else None)
        self._maybe_respawn()
        if state.live:
            return  # a hedge twin is still running this task
        if self._may_retry(state):
            self._schedule_retry(state, reason="lost")
            return
        self._finish_failed(state, exc)
        exc.task_id = outer_id
        exc.attempts = state.attempts
        raise exc

    def _expire_attempts(self, now: float) -> None:
        """Discard attempts past their per-attempt budget; retry or raise."""
        for state in list(self._tasks.values()):
            expired = [
                a for a in state.live if a.deadline is not None and a.deadline <= now
            ]
            if not expired:
                continue
            for attempt in expired:
                state.live.remove(attempt)
                self._refresh_attribution(state, attempt)
                self._inner_to_outer.pop(attempt.inner_id, None)
                self.inner.discard(attempt.inner_id)
                state.faults.append("SlotTimeoutError")
                self._fault_worker(attempt.worker)
            if state.live:
                continue
            if self._may_retry(state):
                self._schedule_retry(state, reason="timeout")
                continue
            error = TaskTimeoutError(
                f"task {state.outer_id} exhausted {state.attempts} attempt(s) "
                f"of {state.budget:.3g}s each",
                task_id=state.outer_id,
                attempts=state.attempts,
                workers_tried=tuple(state.workers_tried),
            )
            self._finish_failed(state, error)
            raise error

    def _may_retry(self, state: _TaskState) -> bool:
        if state.attempts >= self.config.retry.max_attempts:
            return False
        if self.stats.resubmissions >= self.config.retry.max_retries_run:
            return False
        if self.workers < 1 and not self._can_respawn():
            return False
        return True

    def _schedule_retry(self, state: _TaskState, reason: str) -> None:
        resubmission = state.attempts  # 1-based: first retry after attempt 1
        state.retry_at = time.monotonic() + self.config.retry.backoff_for(
            resubmission
        )
        self.stats.resubmissions += 1
        self._count("repro_exec_resubmits_total", reason=reason)

    def _flush_retries(self, now: float) -> None:
        for state in self._tasks.values():
            if state.retry_at is not None and state.retry_at <= now:
                self._launch_attempt(state, hedge=False)

    def _finish_failed(self, state: _TaskState, exc: BaseException) -> None:
        self._tasks.pop(state.outer_id, None)
        for attempt in state.live:
            self._inner_to_outer.pop(attempt.inner_id, None)
            self.inner.discard(attempt.inner_id)
        self._record_lineage(
            state, outcome=type(exc).__name__, winner_hedge=False
        )

    def _fail_stranded(self) -> None:
        """No workers, no retries in flight: fail the oldest task."""
        outer_id = min(self._tasks)
        state = self._tasks[outer_id]
        error = WorkerLostError(
            "all workers lost and retry budget exhausted", task_id=outer_id
        )
        self._finish_failed(state, error)
        raise error

    # -- hedging --------------------------------------------------------------

    def _straggler_deadline_s(self) -> float | None:
        if (
            not self.config.hedging
            or len(self._durations) < self.config.hedge_min_samples
        ):
            return None
        return (
            _quantile(self._durations, self.config.hedge_quantile)
            * self.config.hedge_multiplier
        )

    def _launch_hedges(self, now: float) -> None:
        if self.stats.hedges_launched >= self.config.max_hedges_run:
            return
        threshold = self._straggler_deadline_s()
        if threshold is None:
            return
        idle_probe = getattr(self.inner, "idle_workers", None)
        for state in self._tasks.values():
            if len(state.live) != 1 or state.hedged or state.retry_at is not None:
                continue
            if now - state.live[0].submitted_at < threshold:
                continue
            if idle_probe is not None and idle_probe() < 1:
                return  # a hedge with nowhere to run just queues behind itself
            state.hedged = True
            self.stats.hedges_launched += 1
            self._launch_attempt(state, hedge=True)
            if self.stats.hedges_launched >= self.config.max_hedges_run:
                return

    # -- fleet health ---------------------------------------------------------

    def _fault_worker(self, worker: str | None) -> None:
        if worker is None:
            return
        self._worker_faults[worker] = self._worker_faults.get(worker, 0) + 1
        if (
            self.config.quarantine_after > 0
            and worker not in self._quarantined
            and self._worker_faults[worker] >= self.config.quarantine_after
        ):
            probe = getattr(self.inner, "quarantine_worker", None)
            if probe is not None and probe(worker):
                self._quarantined.add(worker)
                self.stats.workers_quarantined += 1
                self._note_worker_change()

    def _can_respawn(self) -> bool:
        return (
            self.config.respawn
            and self._respawns_used < self.config.max_respawns
            and getattr(self.inner, "respawn_workers", None) is not None
        )

    def _maybe_respawn(self) -> None:
        if not self._can_respawn():
            return
        deficit = self._fleet_target - self.workers
        if deficit < 1:
            return
        want = min(deficit, self.config.max_respawns - self._respawns_used)
        revived = int(self.inner.respawn_workers(want))
        self._respawns_used += want
        if revived:
            self.stats.workers_revived += revived
            self._note_worker_change(revival=True)

    def _heartbeat(self, now: float) -> None:
        if self._heartbeat_due is None or now < self._heartbeat_due:
            return
        self._heartbeat_due = now + float(self.config.heartbeat_s or 0.0)
        probe = getattr(self.inner, "check_liveness", None)
        if probe is None:
            return
        dropped = probe(timeout_s=min(1.0, float(self.config.heartbeat_s or 1.0)))
        if dropped:
            self._note_worker_change()
            self._maybe_respawn()

    def _note_worker_change(self, revival: bool = False) -> None:
        current = self.workers
        if current < self._last_workers and not revival:
            self.stats.workers_lost += self._last_workers - current
        self._last_workers = current
        self._set_liveness_gauge()

    def _set_liveness_gauge(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge(
                "repro_exec_workers_alive", client=self.name
            ).set(self.workers)

    # -- scheduling helpers ---------------------------------------------------

    def _earliest_retry(self) -> float | None:
        dues = [
            s.retry_at for s in self._tasks.values() if s.retry_at is not None
        ]
        return min(dues) if dues else None

    def _next_wake(self, now: float) -> float | None:
        """When housekeeping next needs the loop back, or None."""
        candidates: list[float] = []
        retry = self._earliest_retry()
        if retry is not None:
            candidates.append(retry)
        if self._heartbeat_due is not None:
            candidates.append(self._heartbeat_due)
        for state in self._tasks.values():
            for attempt in state.live:
                if attempt.deadline is not None:
                    candidates.append(attempt.deadline)
        threshold = self._straggler_deadline_s()
        if threshold is not None:
            for state in self._tasks.values():
                if len(state.live) == 1 and not state.hedged:
                    candidates.append(state.live[0].submitted_at + threshold)
        return min(candidates) if candidates else None

    def _record_lineage(
        self, state: _TaskState, outcome: str, winner_hedge: bool
    ) -> None:
        if state.attempts <= 1 and not state.hedged and not state.faults:
            return  # first-try clean: no story to tell
        self._lineages[state.outer_id] = {
            "attempts": state.attempts,
            "workers": list(state.workers_tried),
            "faults": list(state.faults),
            "hedged": state.hedged,
            "hedge_won": winner_hedge if state.hedged else None,
            "outcome": outcome,
        }

    def _count(self, name: str, **labels: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name, client=self.name, **labels).inc()
