"""Order-preserving parallel map over an execution client.

The canonical home of what used to be
``repro.engine.horizon.parallel_map``: the sweep drivers (Fig. 9/10)
evaluate independent grid points through the same client layer the
horizon engine solves slots through, so mp-context pinning, CPU
clamping and pipelining live in exactly one place
(:mod:`repro.exec.clients`).
"""

from __future__ import annotations

from typing import Callable, Iterable, TypeVar

from repro.exec.clients import (
    ExecutionClient,
    MultiprocessingClient,
    create_client,
    usable_cpu_count,
)
from repro.exec.pipeline import BatchScheduler
from repro.obs import Telemetry, as_telemetry

__all__ = ["parallel_map"]

_T = TypeVar("_T")
_R = TypeVar("_R")


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    workers: int = 1,
    telemetry: Telemetry | None = None,
    oversubscribe: bool = False,
    client: str | ExecutionClient | None = None,
    max_pending: int | None = None,
) -> list[_R]:
    """Order-preserving map over an execution client.

    ``fn`` and every item must be picklable (module-level functions,
    models, bundles all are).  With the default ``client=None`` the
    worker count decides the backend: clamped to the usable CPUs
    (``oversubscribe=True`` disables the clamp), and with ≤1 effective
    worker — requested or clamped — the map degrades to a plain list
    comprehension.  The decision lands in ``telemetry`` as a
    ``parallel_map.decision`` event either way.  Passing ``client``
    (a registry name or an :class:`ExecutionClient` instance) routes
    the map through that backend instead — a name is instantiated and
    closed here; an instance stays open for the caller to reuse.
    ``max_pending`` caps the in-flight window (None keeps every item
    in flight).

    Exceptions propagate to the caller — a sweep point is not a slot,
    so there is no per-item capture here.
    """
    items = list(items)
    sink = as_telemetry(telemetry)
    requested = workers
    usable = usable_cpu_count()
    owns = False
    backend: ExecutionClient | None = None
    if client is None:
        if workers > 1 and not oversubscribe:
            workers = min(workers, usable)
        effective = workers if (workers > 1 and len(items) > 1) else 1
    else:
        backend = create_client(client, workers=workers, oversubscribe=oversubscribe)
        owns = isinstance(client, str)
        effective = getattr(backend, "workers", 1)
    if sink.enabled:
        sink.counter(
            "parallel_map.decision",
            effective,
            requested=requested,
            usable_cpus=usable,
            items=len(items),
            oversubscribe=oversubscribe,
            client=None if backend is None else backend.name,
        )
    if backend is None:
        if effective <= 1:
            return [fn(item) for item in items]
        backend = MultiprocessingClient(
            workers=min(effective, len(items)), oversubscribe=True
        )
        owns = True
    try:
        scheduler = BatchScheduler(
            backend, max_pending=max_pending, telemetry=telemetry
        )
        return scheduler.map(fn, [(item,) for item in items])
    finally:
        if owns:
            backend.close()
