"""Pipelined pending-batch scheduling over an execution client.

:class:`BatchScheduler` is the piece between "a list of batches" and
"a client that runs one batch at a time": it keeps up to
``max_pending`` batches in flight, submits the next batch the moment
one completes (out-of-order completion, in-order results), and — for
asynchronous clients — enforces a wall-clock harvest budget per batch,
so a wedged worker surfaces as a timed-out batch instead of stalling
the whole horizon.

Observability is built in: every submit/harvest emits an
``exec.submit`` / ``exec.harvest`` telemetry event carrying the
pending depth, and a metrics registry (when attached) gains batch
counters and a max-pending-depth gauge.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Sequence

from repro.obs import Telemetry, as_telemetry

__all__ = ["BatchScheduler"]


class BatchScheduler:
    """Submit batches through a client, pipelined, harvest-ordered.

    Args:
        client: an :class:`~repro.exec.clients.ExecutionClient`.
        max_pending: maximum batches in flight at once; None keeps
            every batch in flight (the classic submit-all-then-drain
            pool shape).  Lower values bound memory and smooth
            elasticity: with ``max_pending=4`` a 40-batch horizon
            never materializes more than 4 batches of futures.
        telemetry: optional sink for ``exec.submit`` /
            ``exec.harvest`` events.
        metrics: optional :class:`~repro.obs.MetricsRegistry` for
            batch counters and the pending-depth gauge.

    After :meth:`map`, :attr:`pending_max_observed` holds the deepest
    in-flight window the run reached and :attr:`timed_out_batches` the
    number of batches abandoned at harvest time.
    """

    def __init__(
        self,
        client: Any,
        max_pending: int | None = None,
        telemetry: Telemetry | None = None,
        metrics: Any | None = None,
    ) -> None:
        if max_pending is not None and max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.client = client
        self.max_pending = max_pending
        self.telemetry = as_telemetry(telemetry)
        self.metrics = metrics
        self.pending_max_observed = 0
        self.timed_out_batches = 0

    # -- internals -----------------------------------------------------------

    def _emit_submit(self, task_id: int, depth: int) -> None:
        if self.telemetry.enabled:
            self.telemetry.counter(
                "exec.submit", depth, task=task_id, client=self.client.name
            )
        if self.metrics is not None:
            self.metrics.counter(
                "repro_exec_batches_total", client=self.client.name
            ).inc()
            gauge = self.metrics.gauge(
                "repro_exec_pending_batches", client=self.client.name
            )
            gauge.set(max(gauge.value, depth))

    def _emit_harvest(
        self, task_id: int, depth: int, waited_s: float, timed_out: bool
    ) -> None:
        if self.telemetry.enabled:
            self.telemetry.timer(
                "exec.harvest",
                waited_s,
                task=task_id,
                pending=depth,
                client=self.client.name,
                timed_out=timed_out,
            )
        if timed_out and self.metrics is not None:
            self.metrics.counter(
                "repro_exec_batch_timeouts_total", client=self.client.name
            ).inc()

    # -- the one entry point -------------------------------------------------

    def map(
        self,
        fn: Callable[..., Any],
        tasks: Sequence[tuple[Any, ...]],
        budget_s: Callable[[tuple[Any, ...]], float | None] | None = None,
        on_timeout: Callable[[tuple[Any, ...]], Any] | None = None,
    ) -> list[Any]:
        """Run ``fn(*task)`` for every task; results in task order.

        Args:
            fn: picklable callable every task is applied to.
            tasks: argument tuples, one per batch.
            budget_s: optional per-batch harvest budget (seconds from
                submission), computed per task.  Only enforceable on
                asynchronous clients — a synchronous client has already
                finished the task when submit returns.
            on_timeout: builds the stand-in result for a batch that
                blew its budget; required when ``budget_s`` is given.
                The abandoned task is discarded on the client, so a
                late result is dropped, not delivered.

        A task that *raised* re-raises here (per-slot error capture
        belongs to the task function itself, exactly as with a plain
        executor).
        """
        tasks = list(tasks)
        if budget_s is not None and on_timeout is None:
            raise ValueError("budget_s requires on_timeout")
        enforce = (
            budget_s is not None
            and bool(getattr(self.client, "asynchronous", False))
        )
        results: list[Any] = [None] * len(tasks)
        pending: dict[int, tuple[int, float, float | None]] = {}
        next_task = 0
        harvested = 0
        while harvested < len(tasks):
            while next_task < len(tasks) and (
                self.max_pending is None or len(pending) < self.max_pending
            ):
                args = tasks[next_task]
                submitted_at = time.monotonic()
                task_id = self.client.submit(fn, *args)
                deadline = None
                if enforce:
                    budget = budget_s(args)
                    if budget is not None:
                        deadline = submitted_at + budget
                pending[task_id] = (next_task, submitted_at, deadline)
                self.pending_max_observed = max(
                    self.pending_max_observed, len(pending)
                )
                self._emit_submit(task_id, len(pending))
                next_task += 1
            timeout = None
            if enforce:
                deadlines = [d for _, _, d in pending.values() if d is not None]
                if deadlines:
                    timeout = max(0.0, min(deadlines) - time.monotonic())
            got = self.client.wait_next(timeout_s=timeout)
            now = time.monotonic()
            if got is None:
                expired = [
                    task_id
                    for task_id, (_, _, deadline) in pending.items()
                    if deadline is not None and deadline <= now
                ]
                for task_id in expired:
                    index, submitted_at, _ = pending.pop(task_id)
                    self.client.discard(task_id)
                    results[index] = on_timeout(tasks[index])
                    harvested += 1
                    self.timed_out_batches += 1
                    self._emit_harvest(
                        task_id, len(pending), now - submitted_at, timed_out=True
                    )
                continue
            task_id, value = got
            if task_id not in pending:  # pragma: no cover - defensive
                continue
            index, submitted_at, deadline = pending.pop(task_id)
            if enforce and deadline is not None and now > deadline:
                # Arrived, but past its harvest budget: same verdict as
                # never arriving — the budget is the contract.
                results[index] = on_timeout(tasks[index])
                self.timed_out_batches += 1
                self._emit_harvest(
                    task_id, len(pending), now - submitted_at, timed_out=True
                )
            else:
                results[index] = value
                self._emit_harvest(
                    task_id, len(pending), now - submitted_at, timed_out=False
                )
            harvested += 1
        return results
