"""Pipelined pending-batch scheduling over an execution client.

:class:`BatchScheduler` is the piece between "a list of batches" and
"a client that runs one batch at a time": it keeps up to
``max_pending`` batches in flight, submits the next batch the moment
one completes (out-of-order completion, in-order results), and — for
asynchronous clients — enforces a wall-clock harvest budget per batch,
so a wedged worker surfaces as a timed-out batch instead of stalling
the whole horizon.

Observability is built in: every submit/harvest emits an
``exec.submit`` / ``exec.harvest`` telemetry event carrying the
pending depth, and a metrics registry (when attached) gains batch
counters plus two pending-depth series — a live gauge updated on both
the submit and harvest paths (so drain phases are visible as the depth
walks back to zero) and a high-water peak gauge.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Sequence

from repro.obs import MetricsRegistry, Telemetry, as_telemetry

__all__ = ["BatchScheduler"]


class BatchScheduler:
    """Submit batches through a client, pipelined, harvest-ordered.

    Args:
        client: an :class:`~repro.exec.clients.ExecutionClient`.
        max_pending: maximum batches in flight at once; None keeps
            every batch in flight (the classic submit-all-then-drain
            pool shape).  Lower values bound memory and smooth
            elasticity: with ``max_pending=4`` a 40-batch horizon
            never materializes more than 4 batches of futures.
        telemetry: optional sink for ``exec.submit`` /
            ``exec.harvest`` events.
        metrics: optional :class:`~repro.obs.MetricsRegistry`; when
            attached the scheduler maintains
            ``repro_exec_batches_total``,
            ``repro_exec_pending_batches`` (live in-flight depth,
            updated on submit *and* harvest),
            ``repro_exec_pending_batches_peak`` (high-water depth),
            ``repro_exec_batch_timeouts_total`` and
            ``repro_exec_batch_errors_total``.

    After :meth:`map`, :attr:`pending_max_observed` holds the deepest
    in-flight window the run reached and :attr:`timed_out_batches` the
    number of batches abandoned at harvest time.
    """

    def __init__(
        self,
        client: Any,
        max_pending: int | None = None,
        telemetry: Telemetry | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_pending is not None and max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.client = client
        self.max_pending = max_pending
        self.telemetry = as_telemetry(telemetry)
        self.metrics: MetricsRegistry | None = metrics
        self.pending_max_observed = 0
        self.timed_out_batches = 0
        self.errored_batches = 0

    # -- internals -----------------------------------------------------------

    def _set_depth(self, depth: int) -> None:
        self.metrics.gauge(
            "repro_exec_pending_batches", client=self.client.name
        ).set(depth)
        peak = self.metrics.gauge(
            "repro_exec_pending_batches_peak", client=self.client.name
        )
        peak.set(max(peak.value, depth))

    def _emit_submit(self, task_id: int, depth: int) -> None:
        if self.telemetry.enabled:
            self.telemetry.counter(
                "exec.submit", depth, task=task_id, client=self.client.name
            )
        if self.metrics is not None:
            self.metrics.counter(
                "repro_exec_batches_total", client=self.client.name
            ).inc()
            self._set_depth(depth)

    def _emit_harvest(
        self,
        task_id: int,
        depth: int,
        waited_s: float,
        timed_out: bool,
        errored: bool = False,
    ) -> None:
        if self.telemetry.enabled:
            self.telemetry.timer(
                "exec.harvest",
                waited_s,
                task=task_id,
                pending=depth,
                client=self.client.name,
                timed_out=timed_out,
                errored=errored,
            )
        if self.metrics is not None:
            self._set_depth(depth)
            if timed_out:
                self.metrics.counter(
                    "repro_exec_batch_timeouts_total", client=self.client.name
                ).inc()
            if errored:
                self.metrics.counter(
                    "repro_exec_batch_errors_total", client=self.client.name
                ).inc()

    # -- the one entry point -------------------------------------------------

    def map(
        self,
        fn: Callable[..., Any],
        tasks: Sequence[tuple[Any, ...]],
        budget_s: Callable[[tuple[Any, ...]], float | None] | None = None,
        on_timeout: Callable[[tuple[Any, ...]], Any] | None = None,
        on_result: Callable[[tuple[Any, ...], Any, int], None] | None = None,
        on_error: Callable[[tuple[Any, ...], BaseException], Any] | None = None,
    ) -> list[Any]:
        """Run ``fn(*task)`` for every task; results in task order.

        Args:
            fn: picklable callable every task is applied to.
            tasks: argument tuples, one per batch.
            budget_s: optional per-batch harvest budget (seconds from
                submission), computed per task.  Only enforceable on
                asynchronous clients — a synchronous client has already
                finished the task when submit returns.
            on_timeout: builds the stand-in result for a batch that
                blew its budget; required when ``budget_s`` is given.
                The abandoned task is discarded on the client, so a
                late result is dropped, not delivered.
            on_result: called once per harvested batch, in *harvest*
                order, with ``(task, result, pending_depth)`` — the
                hook live consumers (run ledger, metrics merging) ride,
                including timeout/error stand-ins.
            on_error: called when a batch's harvest *raises* and the
                client could attribute the exception to a task (the
                exception carries a ``task_id``); returns the stand-in
                result for that batch, or re-raises.  Without it, the
                exception propagates exactly as before.

        A task that *raised* re-raises here (per-slot error capture
        belongs to the task function itself, exactly as with a plain
        executor) — unless ``on_error`` absorbs it into a stand-in
        result, which is how worker-loss surfaces as structured
        per-slot failures instead of killing the run.
        """
        tasks = list(tasks)
        if budget_s is not None and on_timeout is None:
            raise ValueError("budget_s requires on_timeout")
        enforce = (
            budget_s is not None
            and bool(getattr(self.client, "asynchronous", False))
        )
        results: list[Any] = [None] * len(tasks)
        pending: dict[int, tuple[int, float, float | None]] = {}
        next_task = 0
        harvested = 0
        while harvested < len(tasks):
            while next_task < len(tasks) and (
                self.max_pending is None or len(pending) < self.max_pending
            ):
                args = tasks[next_task]
                submitted_at = time.monotonic()
                task_id = self.client.submit(fn, *args)
                deadline = None
                if enforce:
                    budget = budget_s(args)
                    if budget is not None:
                        deadline = submitted_at + budget
                pending[task_id] = (next_task, submitted_at, deadline)
                self.pending_max_observed = max(
                    self.pending_max_observed, len(pending)
                )
                self._emit_submit(task_id, len(pending))
                next_task += 1
            timeout = None
            if enforce:
                deadlines = [d for _, _, d in pending.values() if d is not None]
                if deadlines:
                    timeout = max(0.0, min(deadlines) - time.monotonic())
            try:
                got = self.client.wait_next(timeout_s=timeout)
            except Exception as exc:
                failed_id = getattr(exc, "task_id", None)
                if on_error is None or failed_id is None or failed_id not in pending:
                    raise
                now = time.monotonic()
                index, submitted_at, _ = pending.pop(failed_id)
                results[index] = on_error(tasks[index], exc)
                harvested += 1
                self.errored_batches += 1
                self._emit_harvest(
                    failed_id,
                    len(pending),
                    now - submitted_at,
                    timed_out=False,
                    errored=True,
                )
                if on_result is not None:
                    on_result(tasks[index], results[index], len(pending))
                continue
            now = time.monotonic()
            if enforce:
                # Expire over-deadline tasks on *every* pass, not only
                # when the wait timed out: with a steady result stream a
                # wedged task would otherwise keep its window slot for
                # the rest of the run, silently shrinking concurrency.
                # (A task that just delivered is handled below — its
                # late arrival gets the same timeout verdict without a
                # double harvest.)
                expired = [
                    task_id
                    for task_id, (_, _, deadline) in pending.items()
                    if deadline is not None
                    and deadline <= now
                    and (got is None or task_id != got[0])
                ]
                for task_id in expired:
                    index, submitted_at, _ = pending.pop(task_id)
                    self.client.discard(task_id)
                    results[index] = on_timeout(tasks[index])
                    harvested += 1
                    self.timed_out_batches += 1
                    self._emit_harvest(
                        task_id, len(pending), now - submitted_at, timed_out=True
                    )
                    if on_result is not None:
                        on_result(tasks[index], results[index], len(pending))
            if got is None:
                continue
            task_id, value = got
            if task_id not in pending:  # pragma: no cover - defensive
                continue
            index, submitted_at, deadline = pending.pop(task_id)
            if enforce and deadline is not None and now > deadline:
                # Arrived, but past its harvest budget: same verdict as
                # never arriving — the budget is the contract.
                results[index] = on_timeout(tasks[index])
                self.timed_out_batches += 1
                self._emit_harvest(
                    task_id, len(pending), now - submitted_at, timed_out=True
                )
            else:
                results[index] = value
                self._emit_harvest(
                    task_id, len(pending), now - submitted_at, timed_out=False
                )
            harvested += 1
            if on_result is not None:
                on_result(tasks[index], results[index], len(pending))
        return results
